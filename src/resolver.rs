//! One front door: a [`Resolver`] session API over a shared
//! [`Runtime`], unifying all five entity-resolution scenarios.
//!
//! Historically every workload class had its own entry point —
//! `run_er`, `run_linkage`, `run_sorted_neighborhood`,
//! `run_multipass_sn`, `run_two_source_sn` — with two config structs
//! duplicating the shared execution knobs and two error types. The
//! resolver collapses that into one declarative surface:
//!
//! 1. create a [`Runtime`] once — its worker pool is spawned **once**
//!    and shared by every subsequent run;
//! 2. build a [`Resolver`] and set the workload knobs (blocking
//!    function, matcher, sort key, window, …);
//! 3. describe *what* to resolve with a [`Scenario`] value and call
//!    [`Resolver::resolve`], which compiles the scenario into the very
//!    same [`Workflow`] stages the
//!    legacy drivers build — so outputs are byte-identical to the old
//!    entry points (proven in `tests/resolver_api.rs`) — and returns
//!    one unified [`Outcome`] or [`ResolveError`].
//!
//! ```
//! use std::sync::Arc;
//! use dedupe_mr::prelude::*;
//!
//! let entities: Vec<Ent> = vec![
//!     Arc::new(Entity::new(0, [("title", "canon eos 5d mark iii")])),
//!     Arc::new(Entity::new(1, [("title", "canon eos 5d mark iri")])),
//!     Arc::new(Entity::new(2, [("title", "nikon d800 body only")])),
//! ];
//! let input = partition_evenly(entities.into_iter().map(|e| ((), e)).collect(), 2);
//!
//! let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(2));
//! let resolver = Resolver::new(&runtime);
//!
//! // Same session, two scenarios, one thread pool:
//! let dedup = resolver
//!     .resolve(&Scenario::Dedup { strategy: StrategyKind::BlockSplit }, input.clone())
//!     .unwrap();
//! let sn = resolver
//!     .resolve(&Scenario::sorted_neighborhood(SnStrategy::JobSn), input)
//!     .unwrap();
//! assert_eq!(dedup.result.len(), 1);
//! assert_eq!(sn.result.len(), 1);
//! ```

use std::sync::Arc;

use er_core::blocking::BlockingFunction;
use er_core::sortkey::{RangePartitioner, SortKey, SortKeyFunction};
use er_core::{MatchResult, Matcher, SourceId};
use er_loadbalance::block_split::SplitPolicy;
use er_loadbalance::driver::run_er_in;
use er_loadbalance::two_source::run_linkage_in;
use er_loadbalance::{BlockDistributionMatrix, Ent, RangePolicy, StrategyKind};
use er_lsh::driver::run_lsh_in;
use er_lsh::{LshConfig, LshParams, LshRound};
use er_sn::driver::run_sorted_neighborhood_in;
use er_sn::multipass::run_multipass_sn_in;
use er_sn::two_source::run_two_source_sn_in;
use er_sn::{NullKeyPolicy, SnConfig, SnError, SnPassReport, SnStrategy};
use mr_engine::error::MrError;
use mr_engine::fault::{FaultPlan, FaultPolicy};
use mr_engine::input::Partitions;
use mr_engine::metrics::JobMetrics;
use mr_engine::runtime::Runtime;
use mr_engine::trace::TraceSink;
use mr_engine::workflow::{Workflow, WorkflowMetrics};

use er_loadbalance::ErConfig;

/// A declarative description of *what* to resolve; the [`Resolver`]
/// compiles it into the matching multi-stage workflow.
///
/// Each variant corresponds to (and is proven byte-identical with) one
/// legacy entry point:
///
/// | Scenario | Legacy entry point |
/// |---|---|
/// | `Dedup` | `er_loadbalance::run_er` |
/// | `Linkage` | `er_loadbalance::two_source::run_linkage` |
/// | `SortedNeighborhood` (no passes) | `er_sn::run_sorted_neighborhood` |
/// | `SortedNeighborhood` (explicit passes) | `er_sn::run_multipass_sn` |
/// | `TwoSourceSn` | `er_sn::run_two_source_sn` |
/// | `Lsh` | `er_lsh::run_lsh` |
#[derive(Clone)]
pub enum Scenario {
    /// Single-source deduplication via blocking (paper Figure 2) under
    /// one of the three load-balancing strategies.
    Dedup {
        /// Matching-job strategy (Basic / BlockSplit / PairRange).
        strategy: StrategyKind,
    },
    /// Two-source record linkage (paper Appendix I): `sources[p]` tags
    /// input partition `p` as `R` or `S`; only cross-source pairs
    /// within shared blocks are compared.
    Linkage {
        /// Matching-job strategy.
        strategy: StrategyKind,
        /// One source tag per input partition.
        sources: Vec<SourceId>,
    },
    /// Sorted Neighborhood blocking: sliding window over a total sort
    /// order, with one of the two boundary strategies.
    ///
    /// With `passes` empty, a single pass runs under the resolver's
    /// configured sort key ([`Resolver::with_sort_key`]). With
    /// explicit `passes`, one window workflow runs per key function
    /// and the pair sets union under the first-pass-wins dedup gate —
    /// multi-pass SN.
    SortedNeighborhood {
        /// Boundary-handling strategy (JobSN / RepSN).
        strategy: SnStrategy,
        /// Sort keys for multi-pass SN; empty = single pass under the
        /// resolver's sort key.
        passes: Vec<Arc<dyn SortKeyFunction>>,
    },
    /// Two-source Sorted Neighborhood linkage: both sources interleave
    /// in one sort order; only cross-source window pairs are
    /// evaluated.
    TwoSourceSn {
        /// Boundary-handling strategy.
        strategy: SnStrategy,
        /// One source tag per input partition.
        sources: Vec<SourceId>,
    },
    /// Banded-MinHash (LSH) blocking, load-balanced over the banded
    /// key space via the session's BlockSplit/PairRange configuration
    /// (see [`Resolver::with_lsh_balance`]).
    ///
    /// With `params` fixed, one signature round runs under that
    /// banding; with `params: None` the adaptive driver walks the
    /// session's `(bands, rows)` ladder until the enumerated candidate
    /// workload fits the configured budget (see
    /// [`Resolver::with_lsh_ladder`] /
    /// [`Resolver::with_lsh_budget`]), reporting every round in the
    /// outcome's [`ScenarioDetails::Lsh`].
    Lsh {
        /// Fixed banding, or `None` for the adaptive ladder.
        params: Option<LshParams>,
        /// `None` deduplicates one source; `Some(tags)` links two
        /// (`tags[p]` labels input partition `p`; only cross-source
        /// pairs within shared band buckets are compared).
        sources: Option<Vec<SourceId>>,
    },
}

impl Scenario {
    /// Single-pass Sorted Neighborhood under the resolver's sort key.
    pub fn sorted_neighborhood(strategy: SnStrategy) -> Self {
        Scenario::SortedNeighborhood {
            strategy,
            passes: Vec::new(),
        }
    }

    /// Multi-pass Sorted Neighborhood over the given sort keys.
    pub fn multipass_sn(
        strategy: SnStrategy,
        passes: impl IntoIterator<Item = Arc<dyn SortKeyFunction>>,
    ) -> Self {
        Scenario::SortedNeighborhood {
            strategy,
            passes: passes.into_iter().collect(),
        }
    }

    /// Single-source LSH deduplication under a fixed banding.
    pub fn lsh(params: LshParams) -> Self {
        Scenario::Lsh {
            params: Some(params),
            sources: None,
        }
    }

    /// Single-source LSH deduplication under the session's adaptive
    /// `(bands, rows)` ladder.
    pub fn lsh_adaptive() -> Self {
        Scenario::Lsh {
            params: None,
            sources: None,
        }
    }

    /// Two-source LSH linkage (fixed banding when `params` is `Some`,
    /// adaptive otherwise).
    pub fn lsh_linkage(params: Option<LshParams>, sources: Vec<SourceId>) -> Self {
        Scenario::Lsh {
            params,
            sources: Some(sources),
        }
    }

    /// The workflow name this scenario compiles to — identical to the
    /// name the matching legacy entry point uses, so metrics stay
    /// comparable across the old and new surface.
    pub fn workflow_name(&self) -> String {
        match self {
            Scenario::Dedup { strategy } => format!("er-{strategy}"),
            Scenario::Linkage { strategy, .. } => format!("linkage-{strategy}"),
            Scenario::SortedNeighborhood { strategy, passes } if passes.is_empty() => {
                format!("sn-{strategy}")
            }
            Scenario::SortedNeighborhood { strategy, .. } => format!("sn-multipass-{strategy}"),
            Scenario::TwoSourceSn { strategy, .. } => format!("sn-two-source-{strategy}"),
            Scenario::Lsh { sources: None, .. } => "lsh".to_string(),
            Scenario::Lsh {
                sources: Some(_), ..
            } => "lsh-linkage".to_string(),
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::Dedup { strategy } => {
                f.debug_struct("Dedup").field("strategy", strategy).finish()
            }
            Scenario::Linkage { strategy, sources } => f
                .debug_struct("Linkage")
                .field("strategy", strategy)
                .field("sources", sources)
                .finish(),
            Scenario::SortedNeighborhood { strategy, passes } => f
                .debug_struct("SortedNeighborhood")
                .field("strategy", strategy)
                .field("passes", &passes.len())
                .finish(),
            Scenario::TwoSourceSn { strategy, sources } => f
                .debug_struct("TwoSourceSn")
                .field("strategy", strategy)
                .field("sources", sources)
                .finish(),
            Scenario::Lsh { params, sources } => f
                .debug_struct("Lsh")
                .field("params", params)
                .field("sources", sources)
                .finish(),
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.workflow_name())
    }
}

/// The one error type of the unified surface, composing every layer's
/// failures so `?` works across them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The MapReduce engine rejected the run (configuration or
    /// input-shape problem; no task ran).
    Mr(MrError),
    /// RepSN precondition violated: an interior key range holds fewer
    /// than `window − 1` entities (see
    /// [`er_sn::SnError::ThinPartition`]). Re-run with JobSN, a
    /// smaller window, or fewer partitions.
    ThinPartition {
        /// The offending range.
        partition: usize,
        /// Entities it holds.
        entities: u64,
        /// The configured window.
        window: usize,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Mr(e) => write!(f, "MapReduce error: {e}"),
            ResolveError::ThinPartition {
                partition,
                entities,
                window,
            } => write!(
                f,
                "RepSN requires every interior range to hold at least w-1 = {} entities, \
                 but range {partition} holds {entities}; use JobSN for this workload",
                window - 1
            ),
        }
    }
}

impl std::error::Error for ResolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResolveError::Mr(e) => Some(e),
            ResolveError::ThinPartition { .. } => None,
        }
    }
}

impl From<MrError> for ResolveError {
    fn from(e: MrError) -> Self {
        ResolveError::Mr(e)
    }
}

impl From<SnError> for ResolveError {
    fn from(e: SnError) -> Self {
        match e {
            SnError::Mr(e) => ResolveError::Mr(e),
            SnError::ThinPartition {
                partition,
                entities,
                window,
            } => ResolveError::ThinPartition {
                partition,
                entities,
                window,
            },
        }
    }
}

/// Per-scenario extras of an [`Outcome`], beyond the match result and
/// the workflow roll-up every scenario shares.
#[derive(Debug)]
pub enum ScenarioDetails {
    /// Blocking-based scenarios ([`Scenario::Dedup`],
    /// [`Scenario::Linkage`]).
    Blocked {
        /// The BDM (absent for Basic, which runs without
        /// preprocessing).
        bdm: Option<Arc<BlockDistributionMatrix>>,
        /// Metrics of the BDM job (absent for Basic).
        bdm_metrics: Option<JobMetrics>,
        /// Metrics of the matching job.
        match_metrics: JobMetrics,
    },
    /// Single-pass Sorted Neighborhood scenarios
    /// (single-key [`Scenario::SortedNeighborhood`],
    /// [`Scenario::TwoSourceSn`]).
    Sorted {
        /// The sampled range partitioner the run routed by.
        partitioner: RangePartitioner<SortKey>,
        /// Metrics of the sort-key distribution job.
        sample_metrics: JobMetrics,
        /// Metrics of the window/matching job.
        match_metrics: JobMetrics,
        /// Metrics of JobSN's stitch job (absent for RepSN and
        /// boundary-free runs).
        stitch_metrics: Option<JobMetrics>,
    },
    /// Multi-pass Sorted Neighborhood: one report per pass.
    MultiPass {
        /// Per-pass reports, in pass order.
        passes: Vec<SnPassReport>,
    },
    /// Banded-MinHash scenarios ([`Scenario::Lsh`]).
    Lsh {
        /// The accepted banding.
        params: LshParams,
        /// One report per executed adaptive round, in ladder order.
        rounds: Vec<LshRound>,
        /// The accepted rung's band-bucket distribution matrix.
        bdm: Arc<BlockDistributionMatrix>,
        /// Metrics of the accepted signature job.
        bdm_metrics: JobMetrics,
        /// Metrics of the candidate/matching job.
        match_metrics: JobMetrics,
    },
}

impl ScenarioDetails {
    /// The matching job's metrics, for scenarios with exactly one
    /// matching job (`None` for multi-pass runs — see
    /// [`ScenarioDetails::passes`]).
    pub fn match_metrics(&self) -> Option<&JobMetrics> {
        match self {
            ScenarioDetails::Blocked { match_metrics, .. }
            | ScenarioDetails::Sorted { match_metrics, .. }
            | ScenarioDetails::Lsh { match_metrics, .. } => Some(match_metrics),
            ScenarioDetails::MultiPass { .. } => None,
        }
    }

    /// The Block Distribution Matrix, when the scenario computed one
    /// (for LSH scenarios: the accepted rung's band-bucket matrix).
    pub fn bdm(&self) -> Option<&Arc<BlockDistributionMatrix>> {
        match self {
            ScenarioDetails::Blocked { bdm, .. } => bdm.as_ref(),
            ScenarioDetails::Lsh { bdm, .. } => Some(bdm),
            _ => None,
        }
    }

    /// The accepted banding, for LSH scenarios.
    pub fn lsh_params(&self) -> Option<LshParams> {
        match self {
            ScenarioDetails::Lsh { params, .. } => Some(*params),
            _ => None,
        }
    }

    /// Per-round adaptive reports, for LSH scenarios.
    pub fn lsh_rounds(&self) -> Option<&[LshRound]> {
        match self {
            ScenarioDetails::Lsh { rounds, .. } => Some(rounds),
            _ => None,
        }
    }

    /// The sampled range partitioner, for single-pass SN scenarios.
    pub fn partitioner(&self) -> Option<&RangePartitioner<SortKey>> {
        match self {
            ScenarioDetails::Sorted { partitioner, .. } => Some(partitioner),
            _ => None,
        }
    }

    /// Per-pass reports, for multi-pass SN scenarios.
    pub fn passes(&self) -> Option<&[SnPassReport]> {
        match self {
            ScenarioDetails::MultiPass { passes } => Some(passes),
            _ => None,
        }
    }
}

/// Everything a completed [`Resolver::resolve`] produces, uniformly
/// across scenarios.
#[derive(Debug)]
pub struct Outcome {
    /// The deduplicated match result (cross-source only for the
    /// linkage scenarios; empty under count-only mode).
    pub result: MatchResult,
    /// Rolled-up metrics of the whole run: per-stage walls, end-to-end
    /// wall, merged counters, peak-memory gauges.
    pub workflow: WorkflowMetrics,
    /// Per-scenario extras (BDM, range partitioner, pass reports, …).
    pub details: ScenarioDetails,
}

impl Outcome {
    /// Total pair comparisons across every stage of the run — the
    /// workload unit the paper's strategies balance. Uniform over all
    /// scenarios (matching + stitch jobs for JobSN, summed passes for
    /// multi-pass).
    pub fn total_comparisons(&self) -> u64 {
        self.workflow.counters.get(er_loadbalance::COMPARISONS)
    }

    /// Comparison counts per reduce task of the matching job (`None`
    /// for multi-pass runs, which have one matching job per pass).
    pub fn reduce_loads(&self) -> Option<Vec<u64>> {
        self.details
            .match_metrics()
            .map(|m| m.per_reduce_counter(er_loadbalance::COMPARISONS))
    }
}

/// The unified session front end: borrows a [`Runtime`] (whose pool
/// outlives any single run) and compiles [`Scenario`]s into workflows.
///
/// A resolver is a configured *session*: workload knobs set once apply
/// to every subsequent [`Resolver::resolve`] call, and any number of
/// scenarios can be resolved back to back — all on the runtime's
/// persistent worker pool. Internally it keeps one [`ErConfig`] and
/// one [`SnConfig`] template synced with the runtime's
/// [`RuntimeConfig`](mr_engine::runtime::RuntimeConfig), so a compiled
/// scenario is *exactly* what the legacy entry point would have built.
///
/// # Concurrency contract
///
/// `Resolver` is `Send + Sync` (asserted at compile time):
/// [`Resolver::resolve`] may be called from any number of threads at
/// once — on one shared resolver, or on per-tenant clones of it
/// (cloning is cheap; the configs are `Arc`-backed). Concurrent
/// resolves interleave stage-by-stage on the runtime's pool under its
/// [`SchedulingPolicy`](mr_engine::pool::SchedulingPolicy), and each
/// produces the same [`Outcome`] — byte-identical result, exact
/// per-workflow metrics — it would produce running alone. Give each
/// tenant's clone its own [`Resolver::with_tenant`] label to make
/// fair-share scheduling, [`mr_engine::pool::PoolStats`], and the
/// per-tenant trace report section attribute work correctly. One
/// tenant's failure (even an injected panic) never stalls another's
/// dispatch — see [`Runtime`]'s concurrency contract.
#[derive(Clone)]
pub struct Resolver<'rt> {
    runtime: &'rt Runtime,
    er: ErConfig,
    sn: SnConfig,
    lsh: LshConfig,
    /// Tenant label this session's workflows are attributed to on the
    /// shared pool; `None` uses the pool's `"default"` tenant.
    tenant: Option<Arc<str>>,
    /// Session-level trace sink; overrides the runtime's when set.
    trace_sink: Option<Arc<dyn TraceSink>>,
}

/// Compile-time pin of the concurrency contract: sessions must stay
/// shareable across threads so one runtime can serve many concurrent
/// tenants.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Resolver<'_>>();
    assert_send_sync::<Scenario>();
};

// Manual: `dyn TraceSink` carries no `Debug` bound.
impl std::fmt::Debug for Resolver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resolver")
            .field("runtime", &self.runtime)
            .field("er", &self.er)
            .field("sn", &self.sn)
            .field("lsh", &self.lsh)
            .field("traced", &self.trace_sink.is_some())
            .finish_non_exhaustive()
    }
}

impl<'rt> Resolver<'rt> {
    /// Starts a session on `runtime`, inheriting its shared knobs
    /// (`reduce_tasks` default, `count_only`,
    /// `matcher_cache_capacity`) and paper-default workload settings.
    pub fn new(runtime: &'rt Runtime) -> Self {
        let shared = *runtime.config();
        Self {
            runtime,
            // The strategy placeholders are overwritten per scenario.
            er: ErConfig::new(StrategyKind::Basic).with_runtime(shared),
            sn: SnConfig::new(SnStrategy::JobSn).with_runtime(shared),
            lsh: LshConfig::new().with_runtime(shared),
            tenant: None,
            trace_sink: None,
        }
    }

    /// The runtime this session executes on.
    pub fn runtime(&self) -> &'rt Runtime {
        self.runtime
    }

    /// Overrides the blocking function of the blocking-based scenarios
    /// (paper default: first 3 letters of `title`).
    pub fn with_blocking(mut self, blocking: Arc<dyn BlockingFunction>) -> Self {
        self.er = self.er.with_blocking(blocking);
        self
    }

    /// Overrides the matcher for every scenario (paper default: edit
    /// distance ≥ 0.8 on `title`).
    pub fn with_matcher(mut self, matcher: Arc<Matcher>) -> Self {
        self.er = self.er.with_matcher(Arc::clone(&matcher));
        self.lsh = self.lsh.with_matcher(Arc::clone(&matcher));
        self.sn = self.sn.with_matcher(matcher);
        self
    }

    /// Overrides the sort key of single-pass SN scenarios (default:
    /// full normalized `title`).
    pub fn with_sort_key(mut self, sort_key: Arc<dyn SortKeyFunction>) -> Self {
        self.sn = self.sn.with_sort_key(sort_key);
        self
    }

    /// Overrides the SN window size (`w ≥ 2`).
    pub fn with_window(mut self, window: usize) -> Self {
        self.sn = self.sn.with_window(window);
        self
    }

    /// Overrides the number of reduce tasks for this session — both
    /// jobs of the blocking scenarios *and* the SN key-range count
    /// (the ranges are the reduce tasks of SN's matching job). Use
    /// [`Resolver::with_partitions`] to set the SN range count
    /// independently.
    pub fn with_reduce_tasks(mut self, r: usize) -> Self {
        self.er = self.er.with_reduce_tasks(r);
        self.lsh = self.lsh.with_reduce_tasks(r);
        self.sn = self.sn.with_partitions(r);
        self
    }

    /// Overrides the SN key-range count only.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.sn = self.sn.with_partitions(partitions);
        self
    }

    /// Overrides the SN histogram sampling rate (in `(0, 1]`).
    pub fn with_sample_rate(mut self, rate: f64) -> Self {
        self.sn = self.sn.with_sample_rate(rate);
        self
    }

    /// Overrides the SN null-sort-key policy.
    pub fn with_null_key_policy(mut self, policy: NullKeyPolicy) -> Self {
        self.sn = self.sn.with_null_key_policy(policy);
        self
    }

    /// Overrides the PairRange range formula.
    pub fn with_range_policy(mut self, policy: RangePolicy) -> Self {
        self.er = self.er.with_range_policy(policy);
        self.lsh = self.lsh.with_range_policy(policy);
        self
    }

    /// Replaces the BlockSplit splitting policy.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.er.split_policy = policy;
        self.lsh.split_policy = policy;
        self
    }

    /// Forces BlockSplit to split any block larger than `cap`
    /// entities.
    pub fn with_memory_cap(mut self, cap: u64) -> Self {
        self.er = self.er.with_memory_cap(cap);
        self.lsh.split_policy = SplitPolicy::with_memory_cap(cap);
        self
    }

    /// Toggles the per-map-task combiner of the preprocessing jobs.
    pub fn with_use_combiner(mut self, use_combiner: bool) -> Self {
        self.er.use_combiner = use_combiner;
        self.sn.use_combiner = use_combiner;
        self.lsh.use_combiner = use_combiner;
        self
    }

    /// Switches comparison counting only (no similarity evaluation)
    /// for this session, overriding the runtime default.
    pub fn with_count_only(mut self, count_only: bool) -> Self {
        self.er = self.er.with_count_only(count_only);
        self.sn = self.sn.with_count_only(count_only);
        self.lsh = self.lsh.with_count_only(count_only);
        self
    }

    /// Bounds the prepared-entity caches for this session, overriding
    /// the runtime default.
    pub fn with_matcher_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.er = self.er.with_matcher_cache_capacity(capacity);
        self.sn = self.sn.with_matcher_cache_capacity(capacity);
        self.lsh = self.lsh.with_matcher_cache_capacity(capacity);
        self
    }

    /// Sets the map-side spill threshold for this session, overriding
    /// the runtime default: shuffle buckets are sealed into sorted
    /// runs every `threshold` open records, bounding map-phase
    /// resident memory. `None` restores the spill-free default;
    /// outputs are byte-identical at any threshold.
    pub fn with_spill_threshold(mut self, threshold: Option<usize>) -> Self {
        self.er = self.er.with_spill_threshold(threshold);
        self.sn = self.sn.with_spill_threshold(threshold);
        self.lsh = self.lsh.with_spill_threshold(threshold);
        self
    }

    /// Overrides the per-task fault-tolerance policy (retry budget,
    /// straggler deadline) for this session, replacing the runtime's
    /// [`RuntimeConfig::fault_policy`](mr_engine::runtime::RuntimeConfig::fault_policy)
    /// default. Retried or speculated tasks never change the match
    /// result — outputs stay byte-identical to a fault-free run.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.er = self.er.with_fault_policy(policy);
        self.sn = self.sn.with_fault_policy(policy);
        self.lsh = self.lsh.with_fault_policy(policy);
        self
    }

    /// Installs a deterministic fault-injection schedule for every
    /// scenario this session resolves — the test/bench harness that
    /// exercises the retry and speculation paths at exact task
    /// coordinates. An empty plan (the default) injects nothing.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.er = self.er.with_fault_plan(plan.clone());
        self.lsh = self.lsh.with_fault_plan(plan.clone());
        self.sn = self.sn.with_fault_plan(plan);
        self
    }

    /// Replaces the LSH adaptive `(bands, rows)` ladder, widest rung
    /// first — what [`Scenario::lsh_adaptive`] walks until the
    /// candidate workload fits the budget.
    pub fn with_lsh_ladder(mut self, ladder: Vec<LshParams>) -> Self {
        self.lsh = self.lsh.with_ladder(ladder);
        self
    }

    /// Sets the candidate budget the adaptive LSH rounds tighten
    /// towards (`None`, the default, accepts the widest rung
    /// immediately).
    pub fn with_lsh_budget(mut self, budget: Option<u64>) -> Self {
        self.lsh = self.lsh.with_candidate_budget(budget);
        self
    }

    /// Sets the estimated-recall floor each adaptive LSH round is
    /// scored against (default 0.8, evaluated at the target
    /// similarity).
    pub fn with_lsh_recall_floor(mut self, floor: f64) -> Self {
        self.lsh = self.lsh.with_recall_floor(floor);
        self
    }

    /// Overrides how the LSH candidate job balances the banded key
    /// space (default: BlockSplit — oversized band buckets split into
    /// balanced sub-tasks).
    pub fn with_lsh_balance(mut self, balance: StrategyKind) -> Self {
        self.lsh = self.lsh.with_balance(balance);
        self
    }

    /// Overrides the LSH shingle scheme (default: character trigrams).
    pub fn with_lsh_scheme(mut self, scheme: er_core::minhash::ShingleScheme) -> Self {
        self.lsh = self.lsh.with_scheme(scheme);
        self
    }

    /// Overrides the MinHash family seed.
    pub fn with_lsh_seed(mut self, seed: u64) -> Self {
        self.lsh = self.lsh.with_seed(seed);
        self
    }

    /// Overrides the attribute LSH signatures are computed over
    /// (default `title`).
    pub fn with_lsh_attribute(mut self, attribute: impl Into<String>) -> Self {
        self.lsh = self.lsh.with_attribute(attribute);
        self
    }

    /// Labels every workflow this session resolves with `tenant` on
    /// the runtime's shared pool — the identity fair-share scheduling
    /// balances across, [`mr_engine::pool::PoolStats`] reports
    /// inflight work by, and the trace report's per-tenant section
    /// aggregates on. Typical use: clone one configured resolver per
    /// tenant and give each clone its own label. Purely operational —
    /// outputs are byte-identical under any labeling.
    pub fn with_tenant(mut self, tenant: impl Into<Arc<str>>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// The tenant label of this session, if one is set.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Attaches a [`TraceSink`] receiving structured execution events
    /// (task attempts, retries, speculation, spills, pool scheduling;
    /// see [`mr_engine::trace`]) from every scenario this session
    /// resolves — overriding any sink on the runtime. The default (no
    /// sink) resolves untraced at zero cost.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// The blocking-scenario config this session would compile for
    /// `strategy` — what [`Resolver::resolve`] hands to the stage
    /// compilers, exposed for oracles
    /// ([`er_loadbalance::driver::naive_reference`]) and tests.
    pub fn er_config(&self, strategy: StrategyKind) -> ErConfig {
        self.er.clone().with_strategy(strategy)
    }

    /// The SN config this session would compile for `strategy`.
    pub fn sn_config(&self, strategy: SnStrategy) -> SnConfig {
        self.sn.clone().with_strategy(strategy)
    }

    /// The LSH config this session would compile — a one-rung ladder
    /// when `params` fixes the banding, the session's adaptive ladder
    /// otherwise. Exposed for oracles ([`er_lsh::lsh_oracle`]) and
    /// tests.
    pub fn lsh_config(&self, params: Option<LshParams>) -> LshConfig {
        match params {
            Some(p) => self.lsh.clone().with_params(p),
            None => self.lsh.clone(),
        }
    }

    /// Resolves one scenario over pre-partitioned input (each inner
    /// `Vec` is one input partition == one map task), executing on the
    /// runtime's persistent pool.
    ///
    /// The scenario is compiled into the same workflow stages its
    /// legacy entry point builds, so the outcome's `result` and
    /// counters are byte-identical to the old surface at any
    /// parallelism.
    pub fn resolve(
        &self,
        scenario: &Scenario,
        input: Partitions<(), Ent>,
    ) -> Result<Outcome, ResolveError> {
        self.resolve_in(
            self.runtime.workflow(scenario.workflow_name()),
            scenario,
            input,
        )
    }

    /// Like [`Resolver::resolve`], but caps how many of the runtime's
    /// persistent workers this run may occupy — no new threads are
    /// spawned and none are torn down; the run simply schedules its
    /// tasks onto at most `max_parallelism` of the existing pool.
    ///
    /// Lets one shared runtime serve latency-sensitive foreground runs
    /// next to throughput batch runs. Outputs are byte-identical to
    /// [`Resolver::resolve`] at any cap.
    ///
    /// # Panics
    /// If `max_parallelism` is zero.
    pub fn resolve_with(
        &self,
        scenario: &Scenario,
        input: Partitions<(), Ent>,
        max_parallelism: usize,
    ) -> Result<Outcome, ResolveError> {
        self.resolve_in(
            self.runtime
                .workflow_with_parallelism(scenario.workflow_name(), max_parallelism),
            scenario,
            input,
        )
    }

    fn resolve_in(
        &self,
        mut workflow: Workflow,
        scenario: &Scenario,
        input: Partitions<(), Ent>,
    ) -> Result<Outcome, ResolveError> {
        // Session-level fault settings override the runtime default
        // the workflow was seeded with (`er` and `sn` are kept in
        // sync, so either carries the session's settings).
        workflow = workflow
            .with_fault_policy(self.er.fault_policy())
            .with_fault_plan(self.er.fault_plan().clone());
        if let Some(tenant) = &self.tenant {
            workflow = workflow.with_tenant(Arc::clone(tenant));
        }
        if let Some(sink) = &self.trace_sink {
            workflow = workflow.with_trace_sink(Arc::clone(sink));
        }
        match scenario {
            Scenario::Dedup { strategy } => {
                let config = self.er_config(*strategy);
                let stages = run_er_in(&mut workflow, input, &config)?;
                Ok(Outcome {
                    result: stages.result,
                    details: ScenarioDetails::Blocked {
                        bdm: stages.bdm,
                        bdm_metrics: stages.bdm_metrics,
                        match_metrics: stages.match_metrics,
                    },
                    workflow: workflow.finish(),
                })
            }
            Scenario::Linkage { strategy, sources } => {
                let config = self.er_config(*strategy);
                let stages = run_linkage_in(&mut workflow, input, sources.clone(), &config)?;
                Ok(Outcome {
                    result: stages.result,
                    details: ScenarioDetails::Blocked {
                        bdm: stages.bdm,
                        bdm_metrics: stages.bdm_metrics,
                        match_metrics: stages.match_metrics,
                    },
                    workflow: workflow.finish(),
                })
            }
            Scenario::SortedNeighborhood { strategy, passes } if passes.is_empty() => {
                let config = self.sn_config(*strategy);
                let stages = run_sorted_neighborhood_in(&mut workflow, input, &config)?;
                Ok(Outcome {
                    result: stages.result,
                    details: ScenarioDetails::Sorted {
                        partitioner: stages.partitioner,
                        sample_metrics: stages.sample_metrics,
                        match_metrics: stages.match_metrics,
                        stitch_metrics: stages.stitch_metrics,
                    },
                    workflow: workflow.finish(),
                })
            }
            Scenario::SortedNeighborhood { strategy, passes } => {
                let config = self.sn_config(*strategy);
                let stages = run_multipass_sn_in(&mut workflow, input, &config, passes)?;
                Ok(Outcome {
                    result: stages.result,
                    details: ScenarioDetails::MultiPass {
                        passes: stages.passes,
                    },
                    workflow: workflow.finish(),
                })
            }
            Scenario::TwoSourceSn { strategy, sources } => {
                let config = self.sn_config(*strategy);
                let stages = run_two_source_sn_in(&mut workflow, input, sources.clone(), &config)?;
                Ok(Outcome {
                    result: stages.result,
                    details: ScenarioDetails::Sorted {
                        partitioner: stages.partitioner,
                        sample_metrics: stages.sample_metrics,
                        match_metrics: stages.match_metrics,
                        stitch_metrics: stages.stitch_metrics,
                    },
                    workflow: workflow.finish(),
                })
            }
            Scenario::Lsh { params, sources } => {
                let config = self.lsh_config(*params);
                let stages = run_lsh_in(&mut workflow, input, sources.clone(), &config)?;
                Ok(Outcome {
                    result: stages.result,
                    details: ScenarioDetails::Lsh {
                        params: stages.params,
                        rounds: stages.rounds,
                        bdm: stages.bdm,
                        bdm_metrics: stages.bdm_metrics,
                        match_metrics: stages.match_metrics,
                    },
                    workflow: workflow.finish(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::Entity;
    use mr_engine::input::partition_evenly;
    use mr_engine::runtime::RuntimeConfig;

    fn runtime() -> Runtime {
        Runtime::new(RuntimeConfig::new().with_parallelism(1))
    }

    fn tiny_input() -> Partitions<(), Ent> {
        let entities: Vec<Ent> = [
            "canon eos 5d mark iii",
            "canon eos 5d mark iri",
            "nikon d800 body only",
        ]
        .iter()
        .enumerate()
        .map(|(id, t)| Arc::new(Entity::new(id as u64, [("title", *t)])) as Ent)
        .collect();
        partition_evenly(entities.into_iter().map(|e| ((), e)).collect(), 2)
    }

    #[test]
    fn scenario_names_mirror_the_legacy_workflows() {
        assert_eq!(
            Scenario::Dedup {
                strategy: StrategyKind::BlockSplit
            }
            .workflow_name(),
            "er-BlockSplit"
        );
        assert_eq!(
            Scenario::Linkage {
                strategy: StrategyKind::Basic,
                sources: vec![]
            }
            .workflow_name(),
            "linkage-Basic"
        );
        assert_eq!(
            Scenario::sorted_neighborhood(SnStrategy::JobSn).workflow_name(),
            "sn-JobSN"
        );
        assert_eq!(
            Scenario::multipass_sn(
                SnStrategy::RepSn,
                [Arc::new(er_core::sortkey::AttributeSortKey::title())
                    as Arc<dyn SortKeyFunction>]
            )
            .workflow_name(),
            "sn-multipass-RepSN"
        );
        assert_eq!(
            Scenario::TwoSourceSn {
                strategy: SnStrategy::RepSn,
                sources: vec![]
            }
            .to_string(),
            "sn-two-source-RepSN"
        );
    }

    #[test]
    fn resolve_error_composes_with_question_mark() {
        fn run() -> Result<(), ResolveError> {
            Err(MrError::NoMapTasks)?
        }
        fn run_sn() -> Result<(), ResolveError> {
            Err(SnError::ThinPartition {
                partition: 1,
                entities: 0,
                window: 4,
            })?
        }
        assert_eq!(run().unwrap_err(), ResolveError::Mr(MrError::NoMapTasks));
        let thin = run_sn().unwrap_err();
        assert!(matches!(
            thin,
            ResolveError::ThinPartition { window: 4, .. }
        ));
        assert!(thin.to_string().contains("JobSN"));
        // Error::source threads the engine error through.
        use std::error::Error;
        let mr: ResolveError = MrError::NoMapTasks.into();
        assert!(mr.source().is_some());
        assert!(thin.source().is_none());
        // SnError::Mr flattens to ResolveError::Mr — one engine-error
        // representation, not two nesting depths.
        let flat: ResolveError = SnError::Mr(MrError::NoReduceTasks).into();
        assert_eq!(flat, ResolveError::Mr(MrError::NoReduceTasks));
    }

    #[test]
    fn thin_partition_surfaces_through_resolve() {
        let runtime = runtime();
        let resolver = Resolver::new(&runtime).with_window(4).with_partitions(3);
        let entities: Vec<Ent> = ["aa", "bb", "cc"]
            .iter()
            .enumerate()
            .map(|(id, t)| Arc::new(Entity::new(id as u64, [("title", *t)])) as Ent)
            .collect();
        let input = vec![entities.into_iter().map(|e| ((), e)).collect()];
        let err = resolver
            .resolve(&Scenario::sorted_neighborhood(SnStrategy::RepSn), input)
            .unwrap_err();
        assert!(matches!(err, ResolveError::ThinPartition { .. }));
    }

    #[test]
    fn outcome_exposes_uniform_accessors() {
        let runtime = runtime();
        let resolver = Resolver::new(&runtime);
        let outcome = resolver
            .resolve(
                &Scenario::Dedup {
                    strategy: StrategyKind::BlockSplit,
                },
                tiny_input(),
            )
            .unwrap();
        assert_eq!(outcome.result.len(), 1);
        assert!(outcome.total_comparisons() >= 1);
        assert_eq!(
            outcome.reduce_loads().expect("one matching job").len(),
            runtime.config().reduce_tasks
        );
        assert!(outcome.details.bdm().is_some());
        assert!(outcome.details.match_metrics().is_some());
        assert!(outcome.details.partitioner().is_none());
        assert!(outcome.details.passes().is_none());
        assert_eq!(outcome.workflow.num_stages(), 2);
    }

    #[test]
    fn session_knobs_flow_into_compiled_configs() {
        let runtime = Runtime::new(
            RuntimeConfig::new()
                .with_parallelism(1)
                .with_reduce_tasks(9)
                .with_count_only(true),
        );
        let resolver = Resolver::new(&runtime).with_window(6);
        let er = resolver.er_config(StrategyKind::PairRange);
        assert_eq!(er.reduce_tasks(), 9);
        assert!(er.count_only());
        let sn = resolver.sn_config(SnStrategy::RepSn);
        assert_eq!(sn.partitions(), 9, "reduce_tasks default reaches SN ranges");
        assert_eq!(sn.window, 6);
        assert!(sn.count_only());
        // A per-session override narrows only this session.
        let narrowed = resolver.clone().with_reduce_tasks(3).with_partitions(5);
        assert_eq!(narrowed.er_config(StrategyKind::Basic).reduce_tasks(), 3);
        assert_eq!(narrowed.sn_config(SnStrategy::JobSn).partitions(), 5);
        assert_eq!(runtime.config().reduce_tasks, 9, "runtime stays untouched");
    }
}
