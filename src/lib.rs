//! # dedupe-mr
//!
//! Load-balanced MapReduce-based entity resolution: a full Rust
//! implementation of *"Load Balancing for MapReduce-based Entity
//! Resolution"* (Kolb, Thor, Rahm; ICDE 2012) — the **BlockSplit** and
//! **PairRange** skew-handling strategies, the **Block Distribution
//! Matrix** preprocessing job, the **Basic** baseline, two-source
//! matching, null-key handling and multi-pass blocking — together with
//! every substrate the paper depends on: an in-process MapReduce
//! runtime, an entity-resolution core (blocking, similarity,
//! matching), the companion paper's Sorted Neighborhood subsystem, an
//! adaptive banded-MinHash (LSH) blocking family whose banded key
//! space rides the same BDM load balancing, synthetic workload
//! generators, and a virtual Hadoop cluster for paper-scale timing
//! studies.
//!
//! ## One front door: `Runtime` + `Resolver`
//!
//! Every workload runs through one unified session API: a [`Runtime`]
//! owns a persistent worker pool (threads spawned **once**, shared by
//! every subsequent run) and the execution knobs; a [`Resolver`]
//! holds the workload configuration and compiles declarative
//! [`Scenario`] values into multi-stage MapReduce workflows.
//!
//! ```
//! use std::sync::Arc;
//! use dedupe_mr::prelude::*;
//!
//! // Three product offers; two are near-duplicates.
//! let entities: Vec<Ent> = vec![
//!     Arc::new(Entity::new(0, [("title", "canon eos 5d mark iii")])),
//!     Arc::new(Entity::new(1, [("title", "canon eos 5d mark iri")])),
//!     Arc::new(Entity::new(2, [("title", "nikon d800 body only")])),
//! ];
//! let input = partition_evenly(entities.into_iter().map(|e| ((), e)).collect(), 2);
//!
//! // Created once; back-to-back runs share its worker pool.
//! let runtime = Runtime::new(
//!     RuntimeConfig::new().with_parallelism(2).with_reduce_tasks(4),
//! );
//! let resolver = Resolver::new(&runtime);
//!
//! // Blocking-based dedup with skew-resistant load balancing...
//! let outcome = resolver
//!     .resolve(
//!         &Scenario::Dedup { strategy: StrategyKind::BlockSplit },
//!         input.clone(),
//!     )
//!     .unwrap();
//! assert_eq!(outcome.result.len(), 1); // the canon pair
//!
//! // ...and Sorted Neighborhood, on the same pool, same session:
//! let sn = resolver
//!     .resolve(&Scenario::sorted_neighborhood(SnStrategy::JobSn), input)
//!     .unwrap();
//! assert_eq!(sn.result.pair_set(), outcome.result.pair_set());
//! ```
//!
//! The five legacy entry points (`run_er`, `run_linkage`,
//! `run_sorted_neighborhood`, `run_multipass_sn`, `run_two_source_sn`)
//! remain as thin wrappers over the same scenario compilers — each
//! proven byte-identical to its [`Scenario`] in
//! `tests/resolver_api.rs` — but new code should prefer the resolver:
//! one configuration surface, one error type ([`ResolveError`]), one
//! outcome shape ([`Outcome`]), and no per-run thread spawning.

pub use cluster_sim;
pub use er_core;
pub use er_datagen;
pub use er_loadbalance;
pub use er_lsh;
pub use er_sn;
pub use mr_engine;

pub mod resolver;

/// The shared execution runtime: [`runtime::Runtime`] (persistent
/// worker pool + engine handle) and [`runtime::RuntimeConfig`] (the
/// knobs every scenario shares). Re-exported from
/// [`mr_engine::runtime`], where the pool lives.
pub mod runtime {
    pub use mr_engine::runtime::{Runtime, RuntimeConfig};
}

pub use resolver::{Outcome, ResolveError, Resolver, Scenario, ScenarioDetails};
pub use runtime::{Runtime, RuntimeConfig};

/// The most common imports for building ER pipelines.
pub mod prelude {
    pub use crate::resolver::{Outcome, ResolveError, Resolver, Scenario, ScenarioDetails};
    pub use er_core::blocking::{
        AttributeBlocking, BlockKey, BlockingFunction, ConstantBlocking, MultiPassBlocking,
        PrefixBlocking,
    };
    pub use er_core::sortkey::{
        AttributeSortKey, RangePartitioner, ReversedSortKey, SortKey, SortKeyFunction,
    };
    pub use er_core::{
        Entity, EntityId, EntityRef, GoldStandard, MatchPair, MatchResult, MatchRule, Matcher,
        QualityReport, SourceId,
    };
    pub use er_loadbalance::driver::{naive_reference, run_er, ErConfig, ErOutcome, ErStages};
    pub use er_loadbalance::null_keys::{deduplicate_with_null_keys, link_with_null_keys};
    pub use er_loadbalance::two_source::run_linkage;
    pub use er_loadbalance::{
        BlockDistributionMatrix, Ent, Keyed, RangePolicy, StrategyKind, WorkloadStats, COMPARISONS,
    };
    pub use er_lsh::{
        lsh_candidate_pairs, lsh_oracle, run_lsh, LshBlocking, LshConfig, LshOutcome, LshParams,
        LshRound,
    };
    pub use er_sn::{
        multipass_oracle_comparisons, multipass_sn_oracle, run_multipass_sn,
        run_sorted_neighborhood, run_two_source_sn, sn_oracle, two_source_input,
        two_source_oracle_comparisons, two_source_sn_oracle, MultiPassSnOutcome, NullKeyPolicy,
        SnConfig, SnError, SnOutcome, SnStrategy,
    };
    pub use mr_engine::fault::{FaultKind, FaultPlan, FaultPolicy, TaskError};
    pub use mr_engine::input::{partition_evenly, partition_round_robin, Partitions};
    pub use mr_engine::pool::WorkerPool;
    pub use mr_engine::runtime::{Runtime, RuntimeConfig};
    pub use mr_engine::workflow::{Workflow, WorkflowMetrics};
}
