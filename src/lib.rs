//! # dedupe-mr
//!
//! Load-balanced MapReduce-based entity resolution: a full Rust
//! implementation of *"Load Balancing for MapReduce-based Entity
//! Resolution"* (Kolb, Thor, Rahm; ICDE 2012) — the **BlockSplit** and
//! **PairRange** skew-handling strategies, the **Block Distribution
//! Matrix** preprocessing job, the **Basic** baseline, two-source
//! matching, null-key handling and multi-pass blocking — together with
//! every substrate the paper depends on: an in-process MapReduce
//! runtime, an entity-resolution core (blocking, similarity,
//! matching), synthetic workload generators, and a virtual Hadoop
//! cluster for paper-scale timing studies.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use dedupe_mr::prelude::*;
//!
//! // Three product offers; two are near-duplicates.
//! let entities: Vec<Ent> = vec![
//!     Arc::new(Entity::new(0, [("title", "canon eos 5d mark iii")])),
//!     Arc::new(Entity::new(1, [("title", "canon eos 5d mark iri")])),
//!     Arc::new(Entity::new(2, [("title", "nikon d800 body only")])),
//! ];
//! let input = partition_evenly(entities.into_iter().map(|e| ((), e)).collect(), 2);
//!
//! let config = ErConfig::new(StrategyKind::BlockSplit)
//!     .with_reduce_tasks(4)
//!     .with_parallelism(2);
//! let outcome = run_er(input, &config).unwrap();
//! assert_eq!(outcome.result.len(), 1); // the canon pair
//! ```

pub use cluster_sim;
pub use er_core;
pub use er_datagen;
pub use er_loadbalance;
pub use er_sn;
pub use mr_engine;

/// The most common imports for building ER pipelines.
pub mod prelude {
    pub use er_core::blocking::{
        AttributeBlocking, BlockKey, BlockingFunction, ConstantBlocking, MultiPassBlocking,
        PrefixBlocking,
    };
    pub use er_core::sortkey::{
        AttributeSortKey, RangePartitioner, ReversedSortKey, SortKey, SortKeyFunction,
    };
    pub use er_core::{
        Entity, EntityId, EntityRef, GoldStandard, MatchPair, MatchResult, MatchRule, Matcher,
        QualityReport, SourceId,
    };
    pub use er_loadbalance::driver::{naive_reference, run_er, ErConfig, ErOutcome};
    pub use er_loadbalance::null_keys::{deduplicate_with_null_keys, link_with_null_keys};
    pub use er_loadbalance::two_source::run_linkage;
    pub use er_loadbalance::{
        BlockDistributionMatrix, Ent, Keyed, RangePolicy, StrategyKind, WorkloadStats, COMPARISONS,
    };
    pub use er_sn::{
        multipass_oracle_comparisons, multipass_sn_oracle, run_multipass_sn,
        run_sorted_neighborhood, run_two_source_sn, sn_oracle, two_source_input,
        two_source_oracle_comparisons, two_source_sn_oracle, MultiPassSnOutcome, NullKeyPolicy,
        SnConfig, SnError, SnOutcome, SnStrategy,
    };
    pub use mr_engine::input::{partition_evenly, partition_round_robin, Partitions};
    pub use mr_engine::workflow::{Workflow, WorkflowMetrics};
}
