//! Skew explorer: sweep the §VI-A skew factor on a real (small-scale)
//! execution and watch Basic's balance collapse while BlockSplit and
//! PairRange hold.
//!
//! ```sh
//! cargo run --release --example skew_explorer
//! ```

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::skew::exponential_dataset;

fn main() {
    const N: usize = 4_000;
    const BLOCKS: usize = 40;
    const M: usize = 8;
    const R: usize = 24;

    println!("n = {N} entities, b = {BLOCKS} blocks, m = {M}, r = {R}; real execution\n");
    println!(
        "{:>4} {:>10}  {:<28} {:<28} {:<28}",
        "s", "pairs", "Basic (imbal, max)", "BlockSplit (imbal, max)", "PairRange (imbal, max)"
    );
    // One count-only session serves the whole sweep: 18 scenario runs
    // (6 skews × 3 strategies) on one worker pool.
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(4)
            .with_reduce_tasks(R)
            .with_count_only(true),
    );
    let resolver = Resolver::new(&runtime);
    for step in 0..=5 {
        let s = step as f64 * 0.4;
        let dataset = exponential_dataset(N, BLOCKS, s, 99);
        let input = partition_evenly(
            dataset
                .entities
                .iter()
                .map(|e| ((), Arc::new(e.clone())))
                .collect::<Vec<_>>(),
            M,
        );
        let mut row = format!("{s:>4.1}");
        let mut pairs_printed = false;
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let outcome = resolver
                .resolve(&Scenario::Dedup { strategy }, input.clone())
                .unwrap();
            let match_metrics = outcome.details.match_metrics().expect("one matching job");
            let stats = WorkloadStats::from_metrics(strategy, match_metrics);
            if !pairs_printed {
                row.push_str(&format!(" {:>10}", stats.total_comparisons()));
                pairs_printed = true;
            }
            row.push_str(&format!(
                "  {:<28}",
                format!(
                    "imbal {:>5.2}  max {:>8}",
                    stats.imbalance(),
                    stats.max_comparisons()
                )
            ));
        }
        println!("{row}");
    }
    println!("\nreading: 'imbal' is max/mean comparisons per reduce task (1.00 = perfect);");
    println!("'max' bounds the reduce-phase makespan. Basic's max grows with the largest");
    println!("block; the balanced strategies keep it pinned near total/r at every skew.");
}
