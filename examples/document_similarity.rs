//! Beyond entity resolution: pairwise document similarity.
//!
//! The paper's introduction notes that "MR's inherent vulnerability to
//! load imbalances due to data skew is relevant for all kind of
//! pairwise similarity computation, e.g., document similarity
//! computation and set-similarity joins. Such applications can
//! therefore also benefit from our load balancing approaches."
//!
//! This example treats short documents as entities, blocks them by a
//! signature (their rarest starting token — a crude term-signature
//! scheme à la Elsayed et al.), and computes pairwise token-Jaccard
//! similarity under each strategy. Skew appears naturally: most
//! documents share the most common opening words.
//!
//! ```sh
//! cargo run --release --example document_similarity
//! ```

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_core::similarity::Jaccard;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TOPICS: &[&str] = &[
    "the quick brown fox jumps over a lazy dog near the river bank",
    "a slow green turtle walks under the warm summer sun all day",
    "the stock market rallied today as tech shares posted gains",
    "scientists discover new species of beetle in remote rainforest",
];

fn synth_documents(n: usize, seed: u64) -> Vec<Ent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            // Zipf-ish topic choice: topic 0 dominates -> skewed blocks.
            let t = loop {
                let cand = rng.gen_range(0..TOPICS.len());
                if cand == 0 || rng.gen_bool(0.35) {
                    break cand;
                }
            };
            let words: Vec<&str> = TOPICS[t].split_whitespace().collect();
            // Sample a window plus noise words to vary similarity.
            let start = rng.gen_range(0..words.len() / 2);
            let len = rng.gen_range(5..=words.len() - start);
            let mut text: Vec<String> = words[start..start + len]
                .iter()
                .map(|w| w.to_string())
                .collect();
            if rng.gen_bool(0.5) {
                text.push(format!("extra{}", rng.gen_range(0..50)));
            }
            Arc::new(Entity::new(id, [("text", text.join(" ").as_str())]))
        })
        .collect()
}

fn main() {
    let docs = synth_documents(1_500, 77);
    println!("{} documents, blocked on their first token\n", docs.len());
    let input = partition_evenly(docs.iter().map(|d| ((), Arc::clone(d))).collect(), 6);

    // Blocking: first token of the text (a one-signature scheme).
    // Matching: token Jaccard >= 0.7.
    let blocking: Arc<dyn BlockingFunction> = Arc::new(AttributeBlockingFirstWord::new("text"));
    let matcher = Arc::new(Matcher::new(
        vec![MatchRule::new("text", Arc::new(Jaccard))],
        0.7,
    ));

    // One session carries the domain configuration (signature
    // blocking + Jaccard matcher); each strategy is just a scenario.
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(4)
            .with_reduce_tasks(16),
    );
    let resolver = Resolver::new(&runtime)
        .with_blocking(Arc::clone(&blocking))
        .with_matcher(Arc::clone(&matcher));

    println!(
        "{:<11} {:>12} {:>10} {:>10}",
        "strategy", "comparisons", "pairs>=0.7", "imbalance"
    );
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let outcome = resolver
            .resolve(&Scenario::Dedup { strategy }, input.clone())
            .unwrap();
        let match_metrics = outcome.details.match_metrics().expect("one matching job");
        let stats = WorkloadStats::from_metrics(strategy, match_metrics);
        println!(
            "{:<11} {:>12} {:>10} {:>10.2}",
            strategy.to_string(),
            stats.total_comparisons(),
            outcome.result.len(),
            stats.imbalance()
        );
    }
    println!("\nSame machinery, different domain: the strategies never look inside");
    println!("the similarity function — any pairwise computation over blocks works.");
}

/// Blocks on the first whitespace token of an attribute.
struct AttributeBlockingFirstWord {
    attribute: String,
}

impl AttributeBlockingFirstWord {
    fn new(attribute: impl Into<String>) -> Self {
        Self {
            attribute: attribute.into(),
        }
    }
}

impl BlockingFunction for AttributeBlockingFirstWord {
    fn key(&self, entity: &Entity) -> Option<BlockKey> {
        entity
            .get(&self.attribute)?
            .split_whitespace()
            .next()
            .map(BlockKey::new)
    }
}
