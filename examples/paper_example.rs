//! The paper's running example, end to end — every number from
//! Figures 3–7 and the Appendix's Figures 15–17, reproduced by the
//! real pipeline.
//!
//! ```sh
//! cargo run --example paper_example
//! ```

use dedupe_mr::prelude::*;
use er_loadbalance::bdm::running_example_bdm;
use er_loadbalance::block_split::{create_match_tasks, TaskAssignment};
use er_loadbalance::pair_range::enumeration::pair_index;
use er_loadbalance::pair_range::ranges::RangeIndexer;
use er_loadbalance::running_example;
use er_loadbalance::two_source::appendix_example;

fn figure_3_and_4() {
    println!("== Figures 3 & 4: example data and its BDM ==\n");
    for (p, partition) in running_example::entity_partitions().iter().enumerate() {
        let names: Vec<String> = partition
            .iter()
            .map(|(_, e)| {
                format!(
                    "{}:{}",
                    e.get("name").unwrap(),
                    &e.get("title").unwrap()[..1]
                )
            })
            .collect();
        println!("  Π{p}: {}", names.join("  "));
    }
    let bdm = running_example_bdm();
    println!("\n  BDM (block × partition):");
    for k in 0..bdm.num_blocks() {
        println!(
            "    Φ{k} (key {}): Π0={} Π1={}  -> {} entities, {} pairs",
            bdm.key(k),
            bdm.size_in(k, 0),
            bdm.size_in(k, 1),
            bdm.size(k),
            bdm.pairs_in_block(k)
        );
    }
    println!(
        "\n  total P = {} pairs; largest block z holds {} = 50% of all comparisons\n",
        bdm.total_pairs(),
        bdm.pairs_in_block(3)
    );
}

fn figure_5_block_split(resolver: &Resolver<'_>) {
    println!("== Figure 5: BlockSplit match tasks and assignment (r = 3) ==\n");
    let bdm = running_example_bdm();
    let tasks = create_match_tasks(&bdm, 3);
    let assignment = TaskAssignment::greedy(tasks.clone(), 3);
    for t in &tasks {
        let rt = assignment.reduce_task_for(t.block, t.i, t.j).unwrap();
        // A block is split iff it owns more than one match task; the
        // (k,0,0) encoding is shared between "whole block" and
        // "sub-block 0", exactly as in the paper's pseudo-code.
        let block_is_split = tasks.iter().filter(|o| o.block == t.block).count() > 1;
        let label = if !block_is_split {
            format!("{}.*", t.block)
        } else if t.i == t.j {
            format!("{}.{}", t.block, t.i)
        } else {
            format!("{}.{}x{}", t.block, t.i, t.j)
        };
        println!(
            "  match task {label:<6} {} comparisons -> reduce task {rt}",
            t.comparisons
        );
    }
    println!(
        "  reduce loads: {:?} (paper: between six and seven)\n",
        assignment.loads()
    );

    let outcome = resolver
        .resolve(
            &Scenario::Dedup {
                strategy: StrategyKind::BlockSplit,
            },
            running_example::entity_partitions(),
        )
        .unwrap();
    println!(
        "  executed: map emitted {} KV pairs (paper: 19), loads {:?}\n",
        outcome
            .details
            .match_metrics()
            .expect("one matching job")
            .map_output_records(),
        outcome.reduce_loads().expect("one matching job")
    );
}

fn figures_6_and_7_pair_range(resolver: &Resolver<'_>) {
    println!("== Figures 6 & 7: PairRange enumeration and dataflow (r = 3) ==\n");
    let bdm = running_example_bdm();
    let ranges = RangeIndexer::new(
        bdm.total_pairs(),
        3,
        dedupe_mr::prelude::RangePolicy::CeilDiv,
    );
    println!(
        "  pair index blocks: o = [0, 6, 7, 10], P = {}",
        bdm.total_pairs()
    );
    for (k, (lo, hi)) in [
        (0usize, (0u64, 5u64)),
        (1, (6, 6)),
        (2, (7, 9)),
        (3, (10, 19)),
    ] {
        println!("    Φ{k} (key {}): pairs {lo}..={hi}", bdm.key(k));
    }
    println!(
        "\n  ranges: R0=[0,6] R1=[7,13] R2=[14,19] (sizes {}, {}, {})",
        ranges.range_size(0),
        ranges.range_size(1),
        ranges.range_size(2)
    );
    let m_pairs: Vec<u64> = [(0u64, 2u64), (1, 2), (2, 3), (2, 4)]
        .iter()
        .map(|&(x, y)| pair_index(&bdm, 3, x, y))
        .collect();
    println!(
        "  entity M (index 2 of Φ3): pairs {m_pairs:?} -> ranges {:?} (paper: 11,14,17,18 -> R1,R2)",
        m_pairs.iter().map(|&p| ranges.range_of(p)).collect::<std::collections::BTreeSet<_>>()
    );

    let outcome = resolver
        .resolve(
            &Scenario::Dedup {
                strategy: StrategyKind::PairRange,
            },
            running_example::entity_partitions(),
        )
        .unwrap();
    println!(
        "  executed: map emitted {} KV pairs, loads {:?} (paper: 7/7/6)\n",
        outcome
            .details
            .match_metrics()
            .expect("one matching job")
            .map_output_records(),
        outcome.reduce_loads().expect("one matching job")
    );
}

fn appendix_two_sources(resolver: &Resolver<'_>) {
    println!("== Appendix I (Figures 15-17): matching two sources ==\n");
    let ts = appendix_example::bdm();
    println!("  blocks (R-count x S-count -> pairs):");
    for k in 0..ts.num_blocks() {
        println!(
            "    Φ{k} (key {}): {} x {} -> {} pairs",
            ts.bdm().key(k),
            ts.size_r(k),
            ts.size_s(k),
            ts.pairs_in_block(k)
        );
    }
    println!("  total: {} pairs (paper: 12)\n", ts.total_pairs());
    for strategy in [StrategyKind::BlockSplit, StrategyKind::PairRange] {
        let outcome = resolver
            .resolve(
                &Scenario::Linkage {
                    strategy,
                    sources: appendix_example::partition_sources(),
                },
                appendix_example::entity_partitions(),
            )
            .unwrap();
        println!(
            "  {strategy}: {} comparisons, loads {:?} (paper: three tasks of 4)",
            outcome.total_comparisons(),
            outcome.reduce_loads().expect("one matching job")
        );
    }
}

fn main() {
    // One count-only session reproduces every executed figure: the
    // paper's blocking, r = 3, sequential execution for readability.
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(1)
            .with_reduce_tasks(3)
            .with_count_only(true),
    );
    let resolver = Resolver::new(&runtime).with_blocking(running_example::blocking());
    figure_3_and_4();
    figure_5_block_split(&resolver);
    figures_6_and_7_pair_range(&resolver);
    appendix_two_sources(&resolver);
}
