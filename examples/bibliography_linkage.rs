//! Two-source record linkage: match a publication catalog against a
//! second, independently dirty copy (the Appendix-I workflow), with
//! null-key handling for records that lost their title.
//!
//! ```sh
//! cargo run --release --example bibliography_linkage
//! ```

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::{ds2_spec, generate_publications};

fn main() {
    // Source R: a slice of the DS2-like catalog. Source S: the same
    // records re-attributed (same titles, fresh venues/years), i.e. a
    // second catalog describing the same publications.
    let base = generate_publications(&ds2_spec(11).scaled(0.001));
    let r_entities: Vec<Ent> = base.entities.iter().map(|e| Arc::new(e.clone())).collect();
    let s_entities: Vec<Ent> = base
        .entities
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0) // S covers half of R's publications
        .map(|(_, e)| Arc::new(Entity::with_source(SourceId::S, e.id().0, e.attributes())))
        .collect();
    println!(
        "source R: {} publications; source S: {} publications\n",
        r_entities.len(),
        s_entities.len()
    );

    // Partitions: R in two partitions, S in two partitions (each
    // partition holds one source, as MultipleInputs would arrange).
    let mut input: Partitions<(), Ent> = Vec::new();
    let mut sources = Vec::new();
    for chunk in r_entities.chunks(r_entities.len() / 2 + 1) {
        input.push(chunk.iter().map(|e| ((), Arc::clone(e))).collect());
        sources.push(SourceId::R);
    }
    for chunk in s_entities.chunks(s_entities.len() / 2 + 1) {
        input.push(chunk.iter().map(|e| ((), Arc::clone(e))).collect());
        sources.push(SourceId::S);
    }

    // One linkage session over the shared runtime; each strategy is a
    // `Scenario::Linkage` resolved on the same worker pool.
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(4)
            .with_reduce_tasks(12),
    );
    let resolver = Resolver::new(&runtime);
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let outcome = resolver
            .resolve(
                &Scenario::Linkage {
                    strategy,
                    sources: sources.clone(),
                },
                input.clone(),
            )
            .unwrap();
        let match_metrics = outcome.details.match_metrics().expect("one matching job");
        let stats = WorkloadStats::from_metrics(strategy, match_metrics);
        println!(
            "{:<11} comparisons={:<8} matches={:<6} imbalance={:.2}",
            strategy.to_string(),
            stats.total_comparisons(),
            outcome.result.len(),
            stats.imbalance()
        );
    }

    // Every S record duplicates an R record with an identical title,
    // so the expected match count is |S| (plus matches against R's
    // intra-source duplicates of those titles).
    let expected_min = s_entities.len();
    let outcome = resolver
        .resolve(
            &Scenario::Linkage {
                strategy: StrategyKind::PairRange,
                sources: sources.clone(),
            },
            input.clone(),
        )
        .unwrap();
    println!(
        "\nPairRange found {} cross-source matches for {} S-records (>= {} expected)",
        outcome.result.len(),
        s_entities.len(),
        expected_min
    );

    // Null-key handling on a handcrafted mini-catalog: one S record
    // lost its title entirely, so blocking can never see it — the
    // paper's Cartesian decomposition match⊥(R, S∅) still links it via
    // the authors field.
    println!("\n-- null-key handling (paper Appendix I) --");
    let r_mini: Vec<((), Ent)> = vec![
        (
            (),
            Arc::new(Entity::new(
                0,
                [
                    ("title", "skew handling in parallel joins"),
                    ("authors", "DeWitt, Naughton"),
                ],
            )),
        ),
        (
            (),
            Arc::new(Entity::new(
                1,
                [
                    ("title", "parallel set similarity joins"),
                    ("authors", "Vernica, Carey"),
                ],
            )),
        ),
    ];
    let s_mini: Vec<((), Ent)> = vec![
        (
            (),
            Arc::new(Entity::with_source(
                SourceId::S,
                10,
                [
                    ("title", "skew handling in parallel joinz"),
                    ("authors", "DeWitt, Naughton"),
                ],
            )),
        ),
        // Title lost during extraction — no blocking key.
        (
            (),
            Arc::new(Entity::with_source(
                SourceId::S,
                11,
                [("authors", "Vernica, Carey")],
            )),
        ),
    ];
    let mini_input: Partitions<(), Ent> = vec![r_mini, s_mini];
    let mini_sources = vec![SourceId::R, SourceId::S];
    // Equal weights at threshold 0.5: identical authors alone score
    // (0 + 1)/2 = 0.5 and carry the title-less record.
    let matcher = Arc::new(Matcher::new(
        vec![
            MatchRule::new(
                "title",
                Arc::new(er_core::similarity::NormalizedLevenshtein),
            ),
            MatchRule::new(
                "authors",
                Arc::new(er_core::similarity::NormalizedLevenshtein),
            ),
        ],
        0.5,
    ));
    // The null-key composition helper still takes an `ErConfig`; the
    // resolver hands out exactly the config it would compile itself.
    let config = resolver
        .clone()
        .with_matcher(matcher)
        .er_config(StrategyKind::PairRange);
    let (result, report) = link_with_null_keys(&mini_input, &mini_sources, &config).unwrap();
    println!(
        "matches={} (blocked={} + cartesian={}); the title-less S#11 was linked via match⊥",
        result.len(),
        report.blocked_matches,
        report.cartesian_matches
    );
    for (pair, score) in result.iter() {
        println!("  {:.3}  {} == {}", score, pair.lo(), pair.hi());
    }
}
