//! Product deduplication at realistic scale: a DS1-like catalog with
//! injected duplicates, deduplicated by all three strategies through
//! one `Resolver` session, with match quality evaluated against the
//! gold standard and workload balance compared.
//!
//! ```sh
//! cargo run --release --example product_dedup
//! ```

use std::sync::Arc;
use std::time::Instant;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};

fn main() {
    // 2% of DS1: ~2,300 products, same skew shape as the paper's
    // dataset (the dominant 3-letter prefix carries most pairs).
    let dataset = generate_products(&ds1_spec(7).scaled(0.02));
    println!(
        "dataset: {} entities, {} gold duplicate pairs\n",
        dataset.len(),
        dataset.gold.len()
    );
    let input = partition_evenly(
        dataset
            .entities
            .iter()
            .map(|e| ((), Arc::new(e.clone())))
            .collect::<Vec<_>>(),
        8,
    );

    // One runtime for the whole comparison: the three strategy runs
    // share its worker pool instead of spawning threads per run.
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(4)
            .with_reduce_tasks(16),
    );
    let resolver = Resolver::new(&runtime);

    println!(
        "{:<11} {:>9} {:>9} {:>8} {:>8} {:>9} {:>10} {:>9}",
        "strategy", "matches", "compars", "precis", "recall", "f1", "imbalance", "wall"
    );
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let start = Instant::now();
        let outcome = resolver
            .resolve(&Scenario::Dedup { strategy }, input.clone())
            .expect("pipeline runs");
        let wall = start.elapsed();
        let quality = QualityReport::evaluate(&outcome.result, &dataset.gold);
        let match_metrics = outcome.details.match_metrics().expect("one matching job");
        let stats = WorkloadStats::from_metrics(strategy, match_metrics);
        println!(
            "{:<11} {:>9} {:>9} {:>8.3} {:>8.3} {:>9.3} {:>10.2} {:>8.0}ms",
            strategy.to_string(),
            outcome.result.len(),
            stats.total_comparisons(),
            quality.precision(),
            quality.recall(),
            quality.f1(),
            stats.imbalance(),
            wall.as_secs_f64() * 1e3,
        );
    }

    println!("\nnotes:");
    println!("  * all strategies produce identical match results — load balancing");
    println!("    only changes *where* pairs are compared, never *which*;");
    println!("  * precision is 1.0 by the generator's similarity-margin design;");
    println!("  * recall < 1.0 only if a duplicate's typo broke its blocking prefix");
    println!("    (disabled by default) — blocking never sees such pairs;");
    println!("  * 'imbalance' is max/mean comparisons per reduce task: Basic's grows");
    println!("    with the dominant block while BlockSplit/PairRange stay near 1.");
}
