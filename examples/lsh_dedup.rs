//! LSH dedup: block by banded-MinHash signatures instead of key
//! equality, on the same `Runtime`/`Resolver` session as every other
//! scenario — then let the adaptive ladder tighten the banding until
//! the candidate workload fits a budget.
//!
//! ```sh
//! cargo run --release --example lsh_dedup
//! ```

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::duplicates::{perturb_title, rs_code, EditOps};
use er_datagen::rng::stream_rng;
use er_datagen::vocab::{block_prefix, PRODUCT_NOUNS, PRODUCT_QUALIFIERS};

/// A corpus where textual similarity *is* duplicate-ness: distinct
/// products carry distinct 13-char codes (far apart in trigram space),
/// and every sixth product gets a near-duplicate with two character
/// substitutions (trigram Jaccard well above the banding threshold).
fn corpus(n: usize) -> (Vec<Ent>, GoldStandard) {
    let mut entities = Vec::new();
    let mut gold = Vec::new();
    let mut id = 0u64;
    for i in 0..n {
        let title = format!(
            "{} {} {} {}",
            block_prefix(i % 25),
            PRODUCT_QUALIFIERS[(i * 7) % PRODUCT_QUALIFIERS.len()],
            PRODUCT_NOUNS[(i * 3) % PRODUCT_NOUNS.len()],
            rs_code(i)
        );
        let original = Entity::new(id, [("title", title.as_str())]);
        id += 1;
        if i.is_multiple_of(6) {
            let mut rng = stream_rng(2012, i as u64);
            let (dup, _) = perturb_title(&mut rng, &title, 2, 4, EditOps::SubstituteOnly);
            let duplicate = Entity::new(id, [("title", dup.as_str())]);
            id += 1;
            gold.push(MatchPair::new(
                original.entity_ref(),
                duplicate.entity_ref(),
            ));
            entities.push(Arc::new(duplicate) as Ent);
        }
        entities.push(Arc::new(original) as Ent);
    }
    (entities, GoldStandard::from_pairs(gold))
}

fn main() {
    let (entities, gold) = corpus(1_200);
    let n = entities.len();
    let input = partition_evenly(entities.into_iter().map(|e| ((), e)).collect(), 4);
    println!(
        "corpus: {n} product offers, {} true duplicate pairs\n",
        gold.len()
    );

    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(4)
            .with_reduce_tasks(8),
    );
    let resolver = Resolver::new(&runtime);

    // 1. Fixed banding: 16 bands x 2 rows. The band digests become
    //    ordinary BlockKeys, so the candidate space rides the same BDM
    //    load balancing as BlockSplit/PairRange.
    let params = LshParams { bands: 16, rows: 2 };
    let lsh = resolver
        .resolve(&Scenario::lsh(params), input.clone())
        .unwrap();
    let prefix = resolver
        .resolve(
            &Scenario::Dedup {
                strategy: StrategyKind::BlockSplit,
            },
            input.clone(),
        )
        .unwrap();
    let lsh_quality = QualityReport::evaluate(&lsh.result, &gold);
    let prefix_quality = QualityReport::evaluate(&prefix.result, &gold);
    println!("-- fixed banding {params} vs prefix blocking --");
    println!(
        "  LSH    : {:>7} comparisons, recall {:.3}, {} matches",
        lsh.total_comparisons(),
        lsh_quality.recall(),
        lsh.result.len()
    );
    println!(
        "  prefix : {:>7} comparisons, recall {:.3}, {} matches",
        prefix.total_comparisons(),
        prefix_quality.recall(),
        prefix.result.len()
    );

    // 2. Adaptive: walk a (bands x rows) ladder until the measured
    //    candidate count fits the budget; only the accepted rung pays
    //    for similarity evaluation.
    let budget = lsh.total_comparisons().saturating_sub(1).max(1);
    let adaptive = resolver
        .clone()
        .with_lsh_ladder(vec![
            LshParams { bands: 16, rows: 2 },
            LshParams { bands: 8, rows: 4 },
            LshParams { bands: 4, rows: 8 },
        ])
        .with_lsh_budget(Some(budget))
        .resolve(&Scenario::lsh_adaptive(), input)
        .unwrap();
    println!("\n-- adaptive ladder (candidate budget {budget}) --");
    for (i, round) in adaptive
        .details
        .lsh_rounds()
        .expect("LSH reports its rounds")
        .iter()
        .enumerate()
    {
        println!(
            "  round {}: {:>5}  {:>9} candidates  est recall {:.3}  {}",
            i + 1,
            round.params.to_string(),
            round.candidate_pairs,
            round.est_recall,
            if round.accepted {
                "accepted"
            } else {
                "over budget"
            }
        );
    }
    let accepted = adaptive.details.lsh_params().expect("a rung was accepted");
    let adaptive_quality = QualityReport::evaluate(&adaptive.result, &gold);
    println!(
        "  -> matched with {accepted}: {} comparisons, recall {:.3}",
        adaptive.total_comparisons(),
        adaptive_quality.recall()
    );
    assert!(adaptive.total_comparisons() <= budget, "budget respected");
}
