//! Quickstart: one `Runtime`, one `Resolver`, two scenarios — dedupe
//! a small product catalog with BlockSplit, then re-check it with
//! Sorted Neighborhood on the same worker pool.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use dedupe_mr::prelude::*;

fn main() {
    // A toy catalog. Titles blocked on their first three letters;
    // matching is normalized edit distance with threshold 0.8 — the
    // paper's configuration.
    let catalog = [
        "canon eos 5d mark iii body",
        "canon eos 5d mark iri body", // typo'd duplicate
        "canon powershot g7x",
        "nikon d800 body only",
        "nikon d800 body onli", // typo'd duplicate
        "nikon coolpix p900",
        "sony alpha 7r iv kit",
        "dell ultrasharp 27 monitor",
    ];
    let entities: Vec<Ent> = catalog
        .iter()
        .enumerate()
        .map(|(id, title)| Arc::new(Entity::new(id as u64, [("title", *title)])))
        .collect();

    // Two input partitions == two map tasks, exactly like splitting an
    // input file on a distributed file system.
    let input = partition_evenly(entities.iter().map(|e| ((), Arc::clone(e))).collect(), 2);

    // The runtime is created once: its worker pool serves every run.
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(2)
            .with_reduce_tasks(4),
    );
    let resolver = Resolver::new(&runtime);

    // Scenario 1: blocking-based dedup with skew-resistant balancing.
    let outcome = resolver
        .resolve(
            &Scenario::Dedup {
                strategy: StrategyKind::BlockSplit,
            },
            input.clone(),
        )
        .expect("pipeline runs");

    println!("matches found:");
    for (pair, score) in outcome.result.iter() {
        let title = |r: EntityRef| entities[r.id.0 as usize].get("title").unwrap().to_string();
        println!(
            "  {:.3}  {:?} == {:?}",
            score,
            title(pair.lo()),
            title(pair.hi())
        );
    }

    let bdm = outcome.details.bdm().expect("BlockSplit computes a BDM");
    println!("\nblock distribution matrix ({} blocks):", bdm.num_blocks());
    for k in 0..bdm.num_blocks() {
        println!(
            "  block {:>2} key={:<4} entities={} pairs={}",
            k,
            bdm.key(k).to_string(),
            bdm.size(k),
            bdm.pairs_in_block(k)
        );
    }
    println!(
        "\nreduce-task comparison loads: {:?} (total {})",
        outcome.reduce_loads().expect("one matching job"),
        outcome.total_comparisons()
    );

    // Scenario 2: Sorted Neighborhood over the same input — same
    // resolver, same pool, no new threads.
    let sn = resolver
        .resolve(&Scenario::sorted_neighborhood(SnStrategy::JobSn), input)
        .expect("pipeline runs");
    println!(
        "\nsorted-neighborhood (window 4) agrees: {} matches, {} window comparisons",
        sn.result.len(),
        sn.total_comparisons()
    );
    assert_eq!(sn.result.pair_set(), outcome.result.pair_set());
    println!(
        "worker pool: {} threads spawned once, {} pooled tasks executed across both runs",
        runtime.pool().threads_spawned(),
        runtime.pool().tasks_executed()
    );
}
