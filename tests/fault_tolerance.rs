//! Acceptance suite for the fault-tolerance layer:
//!
//! * **fault matrix** — fail-once and fail-twice schedules injected at
//!   every task kind (map, sort, reduce), for each of three scenario
//!   families (BlockSplit dedup, RepSN, two-source BlockSplit
//!   linkage), at parallelism {1, 2, 4, 8}: the run completes `Ok`,
//!   the match output is byte-identical (pairs *and* score bits) to a
//!   fault-free reference, and the workflow gauges count every
//!   injected event exactly once;
//! * **fail-always** — an exhausted retry budget surfaces as the typed
//!   [`ResolveError`] carrying job, stage, task and attempt identity —
//!   never a panic;
//! * **graceful degradation** — the same `Runtime` that just failed a
//!   resolve immediately completes a fault-free resolve with identical
//!   output and `threads_spawned()` unchanged;
//! * **speculation** — a deterministic injected straggler is
//!   re-dispatched under a task deadline and the first completion
//!   wins, without changing the output.

use std::sync::Arc;
use std::time::Duration;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};
use mr_engine::MrError;

const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// Task kinds a fault can strike at; every scenario family is probed
/// at all three.
const KINDS: [FaultKind; 3] = [FaultKind::Map, FaultKind::Sort, FaultKind::Reduce];

/// A DS1-shaped corpus small enough for the full matrix (kinds ×
/// schedules × parallelism levels × scenario families).
fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(77).scaled(0.003));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

/// Two-source input: the corpus split into an R and an S catalog.
fn two_source_corpus() -> (Partitions<(), Ent>, Vec<SourceId>) {
    let ds = generate_products(&ds1_spec(78).scaled(0.003));
    let mut r = Vec::new();
    let mut s = Vec::new();
    for (i, e) in ds.entities.into_iter().enumerate() {
        if i % 2 == 0 {
            r.push(Arc::new(e) as Ent);
        } else {
            s.push(Arc::new(Entity::with_source(SourceId::S, e.id().0, e.attributes())) as Ent);
        }
    }
    two_source_input(r, s, 2)
}

/// Byte-exact view of a match result: pairs plus raw score bits.
fn result_bits(result: &MatchResult) -> Vec<(MatchPair, u64)> {
    result.iter().map(|(p, s)| (p, s.to_bits())).collect()
}

/// The three scenario families of the matrix, with their inputs and
/// the number of workflow stages a wildcard task-0 injection strikes.
fn families() -> Vec<(&'static str, Scenario, Partitions<(), Ent>, u64)> {
    let (linkage_input, sources) = two_source_corpus();
    vec![
        (
            "BlockSplit dedup",
            Scenario::Dedup {
                strategy: StrategyKind::BlockSplit,
            },
            corpus(4),
            2, // bdm + er-block-split
        ),
        (
            "RepSN",
            Scenario::sorted_neighborhood(SnStrategy::RepSn),
            corpus(4),
            2, // sn-sample + sn-repsn
        ),
        (
            "two-source linkage",
            Scenario::Linkage {
                strategy: StrategyKind::BlockSplit,
                sources,
            },
            linkage_input,
            2, // bdm + er-block-split-2src
        ),
    ]
}

fn resolver(runtime: &Runtime) -> Resolver<'_> {
    Resolver::new(runtime).with_window(3)
}

/// Fail-once at every kind: wildcard task-0 injection on attempt 1
/// strikes each stage once; with a 2-attempt budget the run completes
/// with byte-identical output and the gauges count each injected panic
/// exactly once, at every parallelism.
#[test]
fn fail_once_matrix_is_byte_identical_and_counted_exactly() {
    for (name, scenario, input, stages) in families() {
        let reference_rt = Runtime::new(RuntimeConfig::new().with_parallelism(1));
        let reference = resolver(&reference_rt)
            .resolve(&scenario, input.clone())
            .unwrap();
        for kind in KINDS {
            for parallelism in PARALLELISM_LEVELS {
                let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
                let outcome = resolver(&runtime)
                    .with_fault_policy(FaultPolicy::retry(2))
                    .with_fault_plan(FaultPlan::new().silence_injected_panics().panic_at(
                        FaultPlan::ANY_JOB,
                        kind,
                        0,
                        1,
                        "injected once",
                    ))
                    .resolve(&scenario, input.clone())
                    .unwrap_or_else(|e| {
                        panic!("{name}, {kind} fault, x{parallelism}: resolve failed: {e}")
                    });
                assert_eq!(
                    result_bits(&outcome.result),
                    result_bits(&reference.result),
                    "{name}, {kind} fault, x{parallelism}: output drifted"
                );
                assert_eq!(
                    outcome.workflow.task_failures(),
                    stages,
                    "{name}, {kind} fault, x{parallelism}: one failure per stage"
                );
                assert_eq!(
                    outcome.workflow.tasks_retried(),
                    stages,
                    "{name}, {kind} fault, x{parallelism}: every failure retried"
                );
                assert_eq!(outcome.workflow.speculative_launched(), 0);
            }
        }
    }
}

/// Fail-twice: attempts 1 and 2 both panic; a 3-attempt budget
/// recovers with exact double-counted gauges and identical output.
#[test]
fn fail_twice_recovers_under_a_three_attempt_budget() {
    for (name, scenario, input, stages) in families() {
        let reference_rt = Runtime::new(RuntimeConfig::new().with_parallelism(1));
        let reference = resolver(&reference_rt)
            .resolve(&scenario, input.clone())
            .unwrap();
        for kind in KINDS {
            let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(4));
            let outcome = resolver(&runtime)
                .with_fault_policy(FaultPolicy::retry(3))
                .with_fault_plan(
                    FaultPlan::new()
                        .silence_injected_panics()
                        .panic_at(FaultPlan::ANY_JOB, kind, 0, 1, "first")
                        .panic_at(FaultPlan::ANY_JOB, kind, 0, 2, "second"),
                )
                .resolve(&scenario, input.clone())
                .unwrap_or_else(|e| panic!("{name}, {kind} fail-twice: resolve failed: {e}"));
            assert_eq!(
                result_bits(&outcome.result),
                result_bits(&reference.result),
                "{name}, {kind} fail-twice: output drifted"
            );
            assert_eq!(
                outcome.workflow.task_failures(),
                2 * stages,
                "{name} {kind}"
            );
            assert_eq!(
                outcome.workflow.tasks_retried(),
                2 * stages,
                "{name} {kind}"
            );
        }
    }
}

/// Fail-always: the retry budget exhausts and the run returns the
/// typed error — with the full task identity in its display — instead
/// of panicking.
#[test]
fn exhausted_retries_surface_job_stage_and_task_identity() {
    for (name, scenario, input, _) in families() {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(2));
        let err = resolver(&runtime)
            .with_fault_policy(FaultPolicy::retry(3))
            .with_fault_plan(FaultPlan::new().silence_injected_panics().panic_always(
                FaultPlan::ANY_JOB,
                FaultKind::Map,
                0,
                "terminal fault",
            ))
            .resolve(&scenario, input)
            .unwrap_err();
        let ResolveError::Mr(MrError::TaskFailed(task_error)) = &err else {
            panic!("{name}: expected TaskFailed, got {err:?}");
        };
        assert_eq!(task_error.kind, FaultKind::Map, "{name}");
        assert_eq!(task_error.task, 0, "{name}");
        assert_eq!(task_error.attempts, 3, "{name}: full budget spent");
        let stage = task_error.stage.as_deref().unwrap_or_default();
        assert!(
            stage.starts_with(&scenario.workflow_name()),
            "{name}: stage `{stage}` must name the workflow"
        );
        // The one-line display carries workflow, stage, task identity
        // and the failure payload — satellite requirement.
        let display = err.to_string();
        for needle in [
            task_error.job.as_str(),
            stage,
            "map task 0",
            "3 attempt",
            "terminal fault",
        ] {
            assert!(
                display.contains(needle),
                "{name}: display `{display}` must mention `{needle}`"
            );
        }
    }
}

/// Graceful degradation: a runtime whose resolve just failed is fully
/// usable — the next, fault-free resolve on the *same* runtime
/// completes with byte-identical output and no thread churn.
#[test]
fn runtime_survives_failure_and_completes_the_next_resolve() {
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(4));
    let session = resolver(&runtime);
    for (name, scenario, input, _) in families() {
        let reference = session.resolve(&scenario, input.clone()).unwrap();
        for kind in KINDS {
            let err = session
                .clone()
                .with_fault_policy(FaultPolicy::retry(2))
                .with_fault_plan(FaultPlan::new().silence_injected_panics().panic_always(
                    FaultPlan::ANY_JOB,
                    kind,
                    0,
                    "unrecoverable",
                ))
                .resolve(&scenario, input.clone())
                .unwrap_err();
            assert!(
                matches!(err, ResolveError::Mr(MrError::TaskFailed(_))),
                "{name} {kind}: typed error expected, got {err:?}"
            );
            // The very same runtime, immediately afterwards:
            let again = session.resolve(&scenario, input.clone()).unwrap();
            assert_eq!(
                result_bits(&again.result),
                result_bits(&reference.result),
                "{name} {kind}: post-failure resolve drifted"
            );
        }
    }
    assert_eq!(
        runtime.pool().threads_spawned(),
        4,
        "failed resolves must never spawn replacement threads"
    );
}

/// Straggler speculation: a 1.2s injected delay on one map attempt
/// under a 150ms deadline launches a clean twin whose completion wins,
/// with the output unchanged. The deadline is far above any honest
/// task's debug-mode wall time, so exactly one twin launches.
#[test]
fn injected_straggler_is_speculated_away() {
    let input = corpus(4);
    let scenario = Scenario::Dedup {
        strategy: StrategyKind::BlockSplit,
    };
    let reference_rt = Runtime::new(RuntimeConfig::new().with_parallelism(1));
    let reference = resolver(&reference_rt)
        .resolve(&scenario, input.clone())
        .unwrap();
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(4));
    let outcome = resolver(&runtime)
        .with_fault_policy(
            FaultPolicy::retry(2).with_task_deadline(Some(Duration::from_millis(150))),
        )
        .with_fault_plan(FaultPlan::new().delay_at(
            "bdm",
            FaultKind::Map,
            0,
            1,
            Duration::from_millis(1200),
        ))
        .resolve(&scenario, input)
        .unwrap();
    assert_eq!(
        result_bits(&outcome.result),
        result_bits(&reference.result),
        "speculation changed the output"
    );
    assert_eq!(
        outcome.workflow.speculative_launched(),
        1,
        "the delayed attempt must be re-dispatched exactly once"
    );
    assert_eq!(
        outcome.workflow.speculative_won(),
        1,
        "the clean twin must beat a 1.2s straggler under a 150ms deadline"
    );
    assert_eq!(outcome.workflow.task_failures(), 0);
}

/// The legacy entry points carry the same fault configuration as the
/// resolver: `run_er` under a fail-once plan retries and reproduces
/// the fault-free output byte-for-byte.
#[test]
fn legacy_run_er_threads_the_fault_config() {
    let input = corpus(3);
    let clean = ErConfig::new(StrategyKind::BlockSplit).with_parallelism(2);
    let reference = run_er(input.clone(), &clean).unwrap();
    let faulted = clean
        .clone()
        .with_fault_policy(FaultPolicy::retry(2))
        .with_fault_plan(FaultPlan::new().silence_injected_panics().panic_at(
            FaultPlan::ANY_JOB,
            FaultKind::Reduce,
            0,
            1,
            "injected once",
        ));
    let outcome = run_er(input.clone(), &faulted).unwrap();
    assert_eq!(result_bits(&outcome.result), result_bits(&reference.result));
    assert_eq!(outcome.workflow.task_failures(), 2, "one per stage");
    // Exhaustion through the legacy surface is the same typed error.
    let fatal = clean.with_fault_plan(FaultPlan::new().silence_injected_panics().panic_always(
        "er-block-split",
        FaultKind::Reduce,
        0,
        "doomed",
    ));
    let err = run_er(input, &fatal).unwrap_err();
    let MrError::TaskFailed(task_error) = err else {
        panic!("expected TaskFailed, got {err:?}");
    };
    assert_eq!(task_error.job, "er-block-split");
    assert_eq!(task_error.attempts, 1, "fail-fast default: one attempt");
}
