//! Property: all three strategies produce exactly the match result of
//! the naive per-block all-pairs reference — on arbitrary datasets,
//! partitionings and reduce-task counts. Load balancing relocates
//! comparisons; it must never add, drop or duplicate one.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_loadbalance::driver::naive_reference;
use proptest::prelude::*;

/// Random entity: short titles over a tiny alphabet so blocks collide
/// and similarities span the threshold.
fn entity_strategy() -> impl Strategy<Value = (String, String)> {
    let prefix = prop_oneof!["aa", "ab", "ba", "zz"];
    let suffix = proptest::string::string_regex("[abc]{0,6}").unwrap();
    (prefix, suffix)
}

fn build_entities(specs: Vec<(String, String)>) -> Vec<Ent> {
    specs
        .into_iter()
        .enumerate()
        .map(|(id, (prefix, suffix))| {
            Arc::new(Entity::new(
                id as u64,
                [("title", format!("{prefix}{suffix}").as_str())],
            ))
        })
        .collect()
}

fn matcher() -> Arc<Matcher> {
    Arc::new(Matcher::new(
        vec![MatchRule::new(
            "title",
            Arc::new(er_core::similarity::NormalizedLevenshtein),
        )],
        0.6,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn strategies_equal_naive_reference(
        specs in proptest::collection::vec(entity_strategy(), 2..40),
        m in 1usize..5,
        r in 1usize..9,
    ) {
        let entities = build_entities(specs);
        let reference = {
            let config = ErConfig::new(StrategyKind::Basic)
                .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
                .with_matcher(matcher());
            naive_reference(&entities, &config)
        };
        for strategy in [StrategyKind::Basic, StrategyKind::BlockSplit, StrategyKind::PairRange] {
            let config = ErConfig::new(strategy)
                .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
                .with_matcher(matcher())
                .with_reduce_tasks(r)
                .with_parallelism(2);
            let input = partition_evenly(
                entities.iter().map(|e| ((), Arc::clone(e))).collect(),
                m,
            );
            let outcome = run_er(input, &config).unwrap();
            prop_assert_eq!(
                outcome.result.pair_set(),
                reference.pair_set(),
                "{} with m={} r={} diverged from the reference",
                strategy, m, r
            );
        }
    }

    #[test]
    fn comparison_count_is_exactly_the_block_pair_sum(
        specs in proptest::collection::vec(entity_strategy(), 2..40),
        m in 1usize..5,
        r in 1usize..9,
    ) {
        let entities = build_entities(specs);
        for strategy in [StrategyKind::Basic, StrategyKind::BlockSplit, StrategyKind::PairRange] {
            let config = ErConfig::new(strategy)
                .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
                .with_matcher(matcher())
                .with_reduce_tasks(r)
                .with_parallelism(1)
                .with_count_only(true);
            let input = partition_evenly(
                entities.iter().map(|e| ((), Arc::clone(e))).collect(),
                m,
            );
            let outcome = run_er(input, &config).unwrap();
            // Expected: sum of C(block size, 2) over blocks.
            let mut counts = std::collections::BTreeMap::new();
            let blocking = PrefixBlocking::new("title", 2);
            for e in &entities {
                if let Some(k) = blocking.key(e) {
                    *counts.entry(k).or_insert(0u64) += 1;
                }
            }
            let expected: u64 = counts.values().map(|&c| c * (c - 1) / 2).sum();
            prop_assert_eq!(
                outcome.total_comparisons(), expected,
                "{} with m={} r={} computed a different pair count",
                strategy, m, r
            );
        }
    }

    #[test]
    fn range_policy_does_not_change_results(
        specs in proptest::collection::vec(entity_strategy(), 2..30),
        r in 1usize..9,
    ) {
        let entities = build_entities(specs);
        let mut results = Vec::new();
        for policy in [RangePolicy::CeilDiv, RangePolicy::Proportional] {
            let config = ErConfig::new(StrategyKind::PairRange)
                .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
                .with_matcher(matcher())
                .with_reduce_tasks(r)
                .with_parallelism(1)
                .with_range_policy(policy);
            let input = partition_evenly(
                entities.iter().map(|e| ((), Arc::clone(e))).collect(),
                2,
            );
            results.push(run_er(input, &config).unwrap().result.pair_set());
        }
        prop_assert_eq!(&results[0], &results[1]);
    }
}
