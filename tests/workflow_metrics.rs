//! The workflow-layer acceptance suite: both drivers execute through
//! `mr_engine::workflow::Workflow`, and the rolled-up
//! `WorkflowMetrics` must be internally consistent — per-stage walls
//! sum-consistent with the end-to-end wall, merged counters equal to
//! the per-job counters, peak-memory gauges parallelism-invariant —
//! while the identical-partitioning invariant surfaces as the typed
//! `MrError::StageShapeMismatch`.

use std::sync::Arc;
use std::time::Duration;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};

fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(2012).scaled(0.003));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

/// Every counter of every stage must reappear, summed, in the merged
/// workflow counters — and nothing else.
fn assert_counters_merge(workflow: &WorkflowMetrics) {
    let mut expected = mr_engine::CounterSet::new();
    for stage in &workflow.stages {
        expected.merge(&stage.counters);
    }
    assert_eq!(
        workflow.counters, expected,
        "merged counters must equal the sum of per-job counters"
    );
}

#[test]
fn er_outcome_reports_stage_rollup() {
    let input = corpus(3);
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = ErConfig::new(strategy)
            .with_reduce_tasks(4)
            .with_parallelism(1);
        let outcome = run_er(input.clone(), &config).unwrap();
        let wf = &outcome.workflow;
        assert_eq!(wf.workflow_name, format!("er-{strategy}"));
        match strategy {
            StrategyKind::Basic => {
                assert_eq!(wf.num_stages(), 1);
                assert!(wf.stage("bdm").is_none());
            }
            _ => {
                assert_eq!(wf.num_stages(), 2);
                // Stage 1 is the BDM job — and its roll-up entry is the
                // same metrics object the outcome exposes directly.
                let bdm = wf.stage("bdm").expect("BDM stage recorded");
                assert_eq!(
                    bdm.counters,
                    outcome.bdm_metrics.as_ref().unwrap().counters,
                    "{strategy}: stage metrics must mirror bdm_metrics"
                );
            }
        }
        // The matching job is always the last stage.
        let last = wf.stages.last().unwrap();
        assert_eq!(last.counters, outcome.match_metrics.counters);
        assert!(
            wf.stages_wall() <= wf.wall,
            "{strategy}: stage walls ({:?}) cannot exceed the end-to-end wall ({:?})",
            wf.stages_wall(),
            wf.wall
        );
        assert!(wf.wall > Duration::ZERO);
        assert_counters_merge(wf);
        // The workflow-level comparison counter equals the outcome's.
        assert_eq!(wf.counters.get(COMPARISONS), outcome.total_comparisons());
    }
}

#[test]
fn sn_outcome_reports_stage_rollup() {
    let input = corpus(4);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let config = SnConfig::new(strategy)
            .with_window(5)
            .with_partitions(4)
            .with_parallelism(1);
        let outcome = run_sorted_neighborhood(input.clone(), &config).unwrap();
        let wf = &outcome.workflow;
        assert_eq!(wf.workflow_name, format!("sn-{strategy}"));
        let expected_stages = match strategy {
            SnStrategy::JobSn => 2 + usize::from(outcome.stitch_metrics.is_some()),
            SnStrategy::RepSn => 2,
        };
        assert_eq!(wf.num_stages(), expected_stages, "{strategy}");
        assert_eq!(
            wf.stage("sn-sample").unwrap().counters,
            outcome.sample_metrics.counters
        );
        assert!(wf.stages_wall() <= wf.wall, "{strategy}");
        assert_counters_merge(wf);
        assert_eq!(wf.counters.get(COMPARISONS), outcome.total_comparisons());
        // The streaming-reduce gauges survive the roll-up: the window
        // job's peaks dominate and stay below its task input.
        assert_eq!(
            wf.peak_group_len(),
            wf.stages
                .iter()
                .map(|s| s.peak_group_len())
                .max()
                .unwrap_or(0)
        );
        assert!(wf.peak_resident_records() > 0, "{strategy}");
    }
}

#[test]
fn workflow_gauges_and_counters_are_parallelism_invariant() {
    let input = corpus(3);
    let er_config = ErConfig::new(StrategyKind::BlockSplit).with_reduce_tasks(4);
    let sn_config = SnConfig::new(SnStrategy::RepSn)
        .with_window(4)
        .with_partitions(4);
    let mut er_reference: Option<(u64, u64, mr_engine::CounterSet)> = None;
    let mut sn_reference: Option<(u64, u64, mr_engine::CounterSet)> = None;
    for parallelism in [1usize, 2, 4, 8] {
        let er = run_er(
            input.clone(),
            &er_config.clone().with_parallelism(parallelism),
        )
        .unwrap()
        .workflow;
        let sn = run_sorted_neighborhood(
            input.clone(),
            &sn_config.clone().with_parallelism(parallelism),
        )
        .unwrap()
        .workflow;
        let er_probe = (
            er.peak_group_len(),
            er.peak_resident_records(),
            er.counters.clone(),
        );
        let sn_probe = (
            sn.peak_group_len(),
            sn.peak_resident_records(),
            sn.counters.clone(),
        );
        match &er_reference {
            None => er_reference = Some(er_probe),
            Some(r) => assert_eq!(
                r, &er_probe,
                "ER workflow gauges/counters changed at parallelism {parallelism}"
            ),
        }
        match &sn_reference {
            None => sn_reference = Some(sn_probe),
            Some(r) => assert_eq!(
                r, &sn_probe,
                "SN workflow gauges/counters changed at parallelism {parallelism}"
            ),
        }
    }
}

#[test]
fn shape_drift_between_stages_is_a_typed_error() {
    // Drive the workflow layer directly with a drifting chain: the
    // same invariant the drivers rely on must surface as
    // StageShapeMismatch, not a panic or silent misalignment.
    use mr_engine::prelude::*;
    let mapper = ClosureMapper::new(
        |_: &(), v: &u32, ctx: &mut MapContext<u32, u32, ((), u32)>| {
            ctx.side_output(((), *v));
            ctx.emit(*v % 4, *v);
        },
    );
    let reducer = ClosureReducer::new(
        |g: Group<'_, u32, u32>, ctx: &mut ReduceContext<u32, u32>| {
            ctx.emit(*g.key(), g.values().sum());
        },
    );
    let job = Job::builder("stage", mapper, reducer)
        .reduce_tasks(2)
        .parallelism(1)
        .build();
    let mut wf = Workflow::new("drift");
    let out = wf
        .chained_stage(
            &job,
            partition_evenly((0..8u32).map(|v| ((), v)).collect(), 4),
        )
        .unwrap();
    // Merge two side-output partitions before chaining — exactly the
    // "splitting of input files" Figure 2 prohibits.
    let mut merged = out.side_outputs;
    let tail = merged.pop().unwrap();
    merged.last_mut().unwrap().extend(tail);
    let err = wf.chained_stage(&job, merged).unwrap_err();
    assert_eq!(
        err,
        MrError::StageShapeMismatch {
            stage: "drift/stage".into(),
            partition: None,
            expected: 4,
            got: 3,
        }
    );
    assert!(err.to_string().contains("same partitioning"));
}
