//! Two-source strategies must agree with a naive cross-source
//! reference on arbitrary inputs.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use proptest::prelude::*;

fn entity_strategy() -> impl Strategy<Value = (String, String)> {
    let prefix = prop_oneof!["aa", "ab", "zz"];
    let suffix = proptest::string::string_regex("[ab]{0,5}").unwrap();
    (prefix, suffix)
}

fn matcher() -> Arc<Matcher> {
    Arc::new(Matcher::new(
        vec![MatchRule::new(
            "title",
            Arc::new(er_core::similarity::NormalizedLevenshtein),
        )],
        0.6,
    ))
}

fn naive_cross_source(
    r_entities: &[Ent],
    s_entities: &[Ent],
    blocking: &dyn BlockingFunction,
    matcher: &Matcher,
) -> std::collections::BTreeSet<MatchPair> {
    let mut result = std::collections::BTreeSet::new();
    for a in r_entities {
        for b in s_entities {
            let (Some(ka), Some(kb)) = (blocking.key(a), blocking.key(b)) else {
                continue;
            };
            if ka == kb && matcher.matches(a, b).is_some() {
                result.insert(MatchPair::new(a.entity_ref(), b.entity_ref()));
            }
        }
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn linkage_equals_naive_cross_source(
        r_specs in proptest::collection::vec(entity_strategy(), 1..20),
        s_specs in proptest::collection::vec(entity_strategy(), 1..20),
        r in 1usize..7,
    ) {
        let r_entities: Vec<Ent> = r_specs
            .iter()
            .enumerate()
            .map(|(id, (p, s))| {
                Arc::new(Entity::new(id as u64, [("title", format!("{p}{s}").as_str())]))
            })
            .collect();
        let s_entities: Vec<Ent> = s_specs
            .iter()
            .enumerate()
            .map(|(id, (p, s))| {
                Arc::new(Entity::with_source(
                    SourceId::S,
                    id as u64,
                    [("title", format!("{p}{s}").as_str())],
                ))
            })
            .collect();

        // R in up to 2 partitions, S in up to 2 partitions.
        let mut input: Partitions<(), Ent> = Vec::new();
        let mut sources = Vec::new();
        for chunk in r_entities.chunks(r_entities.len().div_ceil(2)) {
            input.push(chunk.iter().map(|e| ((), Arc::clone(e))).collect());
            sources.push(SourceId::R);
        }
        for chunk in s_entities.chunks(s_entities.len().div_ceil(2)) {
            input.push(chunk.iter().map(|e| ((), Arc::clone(e))).collect());
            sources.push(SourceId::S);
        }

        let blocking = PrefixBlocking::new("title", 2);
        let reference = naive_cross_source(&r_entities, &s_entities, &blocking, &matcher());

        for strategy in [StrategyKind::Basic, StrategyKind::BlockSplit, StrategyKind::PairRange] {
            let config = ErConfig::new(strategy)
                .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
                .with_matcher(matcher())
                .with_reduce_tasks(r)
                .with_parallelism(2);
            let outcome = run_linkage(input.clone(), sources.clone(), &config).unwrap();
            prop_assert_eq!(
                outcome.result.pair_set(),
                reference.clone(),
                "{} with r={} diverged",
                strategy, r
            );
        }
    }

    #[test]
    fn cross_pair_counts_match_the_block_products(
        r_specs in proptest::collection::vec(entity_strategy(), 1..16),
        s_specs in proptest::collection::vec(entity_strategy(), 1..16),
        r in 1usize..7,
    ) {
        let blocking = PrefixBlocking::new("title", 2);
        let mk = |specs: &[(String, String)], source: SourceId| -> Vec<Ent> {
            specs.iter().enumerate().map(|(id, (p, s))| {
                Arc::new(Entity::with_source(source, id as u64,
                    [("title", format!("{p}{s}").as_str())]))
            }).collect()
        };
        let r_entities = mk(&r_specs, SourceId::R);
        let s_entities = mk(&s_specs, SourceId::S);
        let mut expected = 0u64;
        let mut count = std::collections::BTreeMap::new();
        for e in &r_entities {
            if let Some(k) = blocking.key(e) {
                count.entry(k).or_insert((0u64, 0u64)).0 += 1;
            }
        }
        for e in &s_entities {
            if let Some(k) = blocking.key(e) {
                count.entry(k).or_insert((0u64, 0u64)).1 += 1;
            }
        }
        for (_, (nr, ns)) in count {
            expected += nr * ns;
        }

        let input: Partitions<(), Ent> = vec![
            r_entities.iter().map(|e| ((), Arc::clone(e))).collect(),
            s_entities.iter().map(|e| ((), Arc::clone(e))).collect(),
        ];
        let sources = vec![SourceId::R, SourceId::S];
        for strategy in [StrategyKind::Basic, StrategyKind::BlockSplit, StrategyKind::PairRange] {
            let config = ErConfig::new(strategy)
                .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
                .with_matcher(matcher())
                .with_reduce_tasks(r)
                .with_parallelism(1)
                .with_count_only(true);
            let outcome = run_linkage(input.clone(), sources.clone(), &config).unwrap();
            prop_assert_eq!(outcome.total_comparisons(), expected, "{}", strategy);
        }
    }
}
