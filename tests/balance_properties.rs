//! Quantitative balance guarantees, as properties over random block
//! distributions.

use dedupe_mr::prelude::*;
use er_loadbalance::analysis::analyze;
use proptest::prelude::*;

fn bdm_strategy() -> impl Strategy<Value = BlockDistributionMatrix> {
    // Up to 12 blocks spread over up to 5 partitions with wildly
    // varying sizes (including the heavy-tail case).
    let cell = 0u64..40;
    proptest::collection::vec(proptest::collection::vec(cell, 2..6), 1..13).prop_map(|rows| {
        let m = rows.iter().map(Vec::len).max().unwrap();
        let mut counts = Vec::new();
        for (k, row) in rows.iter().enumerate() {
            for (p, &c) in row.iter().enumerate() {
                if c > 0 {
                    counts.push((BlockKey::new(format!("b{k:02}")), p, c));
                }
            }
        }
        BlockDistributionMatrix::from_counts(m, counts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn every_strategy_conserves_pairs(bdm in bdm_strategy(), r in 1usize..20) {
        for strategy in [StrategyKind::Basic, StrategyKind::BlockSplit, StrategyKind::PairRange] {
            let w = analyze(&bdm, strategy, r, RangePolicy::CeilDiv);
            prop_assert_eq!(w.total_comparisons(), bdm.total_pairs(), "{}", strategy);
        }
    }

    #[test]
    fn pair_range_ceildiv_load_is_at_most_ceil_p_over_r(bdm in bdm_strategy(), r in 1usize..20) {
        let w = analyze(&bdm, StrategyKind::PairRange, r, RangePolicy::CeilDiv);
        let bound = bdm.total_pairs().div_ceil(r as u64);
        prop_assert!(w.max_comparisons() <= bound);
    }

    #[test]
    fn pair_range_proportional_is_within_one_pair(bdm in bdm_strategy(), r in 1usize..20) {
        let w = analyze(&bdm, StrategyKind::PairRange, r, RangePolicy::Proportional);
        let max = w.max_comparisons();
        let min = w.reduce_comparisons.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "loads {:?}", w.reduce_comparisons);
    }

    #[test]
    fn block_split_is_within_lpt_bound_of_the_ideal(bdm in bdm_strategy(), r in 1usize..20) {
        // LPT: makespan <= 4/3 OPT + largest-task effects; OPT >=
        // max(mean, largest task). The largest match task can itself
        // exceed the mean when a block is confined to one partition —
        // the bound uses the actual task sizes.
        let tasks = er_loadbalance::block_split::create_match_tasks(&bdm, r);
        if tasks.is_empty() {
            return Ok(());
        }
        let total: u64 = tasks.iter().map(|t| t.comparisons).sum();
        let largest = tasks.iter().map(|t| t.comparisons).max().unwrap();
        let w = analyze(&bdm, StrategyKind::BlockSplit, r, RangePolicy::CeilDiv);
        let lower = (total as f64 / r as f64).max(largest as f64);
        prop_assert!(
            w.max_comparisons() as f64 <= lower * 4.0 / 3.0 + 1.0,
            "max load {} vs lower bound {}",
            w.max_comparisons(),
            lower
        );
    }

    #[test]
    fn balanced_strategies_never_lose_to_basic_on_max_load(
        bdm in bdm_strategy(),
        r in 2usize..20,
    ) {
        let basic = analyze(&bdm, StrategyKind::Basic, r, RangePolicy::CeilDiv);
        let pr = analyze(&bdm, StrategyKind::PairRange, r, RangePolicy::CeilDiv);
        // PairRange's max is ceil(P/r); Basic's max is at least the
        // largest block, which is at least ... in all cases PairRange
        // <= Basic + 1 (the +1 covers ceil rounding when Basic is
        // perfectly balanced).
        prop_assert!(
            pr.max_comparisons() <= basic.max_comparisons() + 1,
            "PairRange {} vs Basic {}",
            pr.max_comparisons(),
            basic.max_comparisons()
        );
    }

    #[test]
    fn block_split_replication_is_bounded_by_nonempty_partitions(
        bdm in bdm_strategy(),
        r in 1usize..20,
    ) {
        let w = analyze(&bdm, StrategyKind::BlockSplit, r, RangePolicy::CeilDiv);
        let entities: u64 = (0..bdm.num_blocks()).map(|k| bdm.size(k)).sum();
        prop_assert!(w.map_output_records <= entities * bdm.num_partitions() as u64);
    }
}
