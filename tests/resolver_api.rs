//! Acceptance suite for the unified `Runtime` + `Resolver` front door:
//!
//! * **old-vs-new equivalence** — every [`Scenario`] must produce
//!   byte-identical output (match pairs *and* score bits) and equal
//!   `WorkflowMetrics` counters / stage names / per-reduce loads vs
//!   its legacy entry point, across parallelism {1, 2, 4};
//! * **pool reuse** — one `Runtime` runs several scenarios back to
//!   back on the worker pool it spawned at construction: no further
//!   thread spawn, no output drift.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};
use mr_engine::metrics::JobMetrics;

const PARALLELISM_LEVELS: [usize; 3] = [1, 2, 4];

/// A DS1-shaped corpus small enough for the full matrix: scenarios ×
/// strategies × parallelism levels, all with real similarity
/// evaluation.
fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(77).scaled(0.003));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

/// Two-source input: the corpus split into an R and an S catalog.
fn two_source_corpus() -> (Partitions<(), Ent>, Vec<SourceId>) {
    let ds = generate_products(&ds1_spec(78).scaled(0.003));
    let mut r = Vec::new();
    let mut s = Vec::new();
    for (i, e) in ds.entities.into_iter().enumerate() {
        if i % 2 == 0 {
            r.push(Arc::new(e) as Ent);
        } else {
            s.push(Arc::new(Entity::with_source(SourceId::S, e.id().0, e.attributes())) as Ent);
        }
    }
    two_source_input(r, s, 2)
}

fn passes() -> Vec<Arc<dyn SortKeyFunction>> {
    vec![
        Arc::new(AttributeSortKey::title()),
        Arc::new(ReversedSortKey::title()),
    ]
}

/// Byte-exact view of a match result: pairs plus raw score bits.
fn result_bits(result: &MatchResult) -> Vec<(MatchPair, u64)> {
    result.iter().map(|(p, s)| (p, s.to_bits())).collect()
}

fn stage_names(metrics: &WorkflowMetrics) -> Vec<String> {
    metrics.stages.iter().map(|s| s.job_name.clone()).collect()
}

fn reduce_loads(metrics: &JobMetrics) -> Vec<u64> {
    metrics.per_reduce_counter(COMPARISONS)
}

/// Asserts the new outcome is indistinguishable from a legacy result
/// in everything deterministic: match output (bit-exact scores),
/// workflow name, stage names, merged counters, and per-stage merged
/// counters.
fn assert_equivalent(
    context: &str,
    new: &dedupe_mr::Outcome,
    legacy_result: &MatchResult,
    legacy_workflow: &WorkflowMetrics,
) {
    assert_eq!(
        result_bits(&new.result),
        result_bits(legacy_result),
        "{context}: match output must be byte-identical"
    );
    assert_eq!(
        new.workflow.workflow_name, legacy_workflow.workflow_name,
        "{context}: workflow name"
    );
    assert_eq!(
        stage_names(&new.workflow),
        stage_names(legacy_workflow),
        "{context}: stage composition"
    );
    assert_eq!(
        new.workflow.counters, legacy_workflow.counters,
        "{context}: merged workflow counters"
    );
    for (stage_new, stage_old) in new.workflow.stages.iter().zip(&legacy_workflow.stages) {
        assert_eq!(
            stage_new.counters, stage_old.counters,
            "{context}: stage `{}` counters",
            stage_old.job_name
        );
        assert_eq!(
            reduce_loads(stage_new),
            reduce_loads(stage_old),
            "{context}: stage `{}` per-reduce comparison loads",
            stage_old.job_name
        );
    }
}

#[test]
fn dedup_scenario_equals_run_er_across_parallelism() {
    let input = corpus(3);
    for parallelism in PARALLELISM_LEVELS {
        let runtime = Runtime::new(
            RuntimeConfig::new()
                .with_parallelism(parallelism)
                .with_reduce_tasks(5),
        );
        let resolver = Resolver::new(&runtime);
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let legacy = run_er(input.clone(), &resolver.er_config(strategy)).unwrap();
            let new = resolver
                .resolve(&Scenario::Dedup { strategy }, input.clone())
                .unwrap();
            assert_equivalent(
                &format!("dedup/{strategy}/p{parallelism}"),
                &new,
                &legacy.result,
                &legacy.workflow,
            );
            assert_eq!(new.total_comparisons(), legacy.total_comparisons());
            assert_eq!(new.reduce_loads(), Some(legacy.reduce_loads()));
            assert_eq!(
                new.details.bdm().map(|b| b.total_pairs()),
                legacy.bdm.as_ref().map(|b| b.total_pairs())
            );
        }
    }
}

#[test]
fn linkage_scenario_equals_run_linkage_across_parallelism() {
    let (input, sources) = two_source_corpus();
    for parallelism in PARALLELISM_LEVELS {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
        let resolver = Resolver::new(&runtime);
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let legacy = run_linkage(
                input.clone(),
                sources.clone(),
                &resolver.er_config(strategy),
            )
            .unwrap();
            let new = resolver
                .resolve(
                    &Scenario::Linkage {
                        strategy,
                        sources: sources.clone(),
                    },
                    input.clone(),
                )
                .unwrap();
            assert_equivalent(
                &format!("linkage/{strategy}/p{parallelism}"),
                &new,
                &legacy.result,
                &legacy.workflow,
            );
            assert!(
                new.result
                    .iter()
                    .all(|(pair, _)| pair.lo().source != pair.hi().source),
                "linkage output must stay cross-source"
            );
        }
    }
}

#[test]
fn sorted_neighborhood_scenario_equals_run_sorted_neighborhood() {
    let input = corpus(3);
    for parallelism in PARALLELISM_LEVELS {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
        let resolver = Resolver::new(&runtime).with_window(5).with_partitions(4);
        for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
            let legacy =
                run_sorted_neighborhood(input.clone(), &resolver.sn_config(strategy)).unwrap();
            let new = resolver
                .resolve(&Scenario::sorted_neighborhood(strategy), input.clone())
                .unwrap();
            assert_equivalent(
                &format!("sn/{strategy}/p{parallelism}"),
                &new,
                &legacy.result,
                &legacy.workflow,
            );
            assert_eq!(new.total_comparisons(), legacy.total_comparisons());
            assert_eq!(
                new.details.partitioner().map(|p| p.num_partitions()),
                Some(legacy.partitioner.num_partitions())
            );
        }
    }
}

#[test]
fn multipass_scenario_equals_run_multipass_sn() {
    let input = corpus(2);
    for parallelism in PARALLELISM_LEVELS {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
        let resolver = Resolver::new(&runtime).with_window(4).with_partitions(3);
        for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
            let legacy =
                run_multipass_sn(input.clone(), &resolver.sn_config(strategy), &passes()).unwrap();
            let new = resolver
                .resolve(&Scenario::multipass_sn(strategy, passes()), input.clone())
                .unwrap();
            assert_equivalent(
                &format!("sn-multipass/{strategy}/p{parallelism}"),
                &new,
                &legacy.result,
                &legacy.workflow,
            );
            let new_passes = new.details.passes().expect("multi-pass reports");
            assert_eq!(new_passes.len(), legacy.passes.len());
            for (a, b) in new_passes.iter().zip(&legacy.passes) {
                assert_eq!(a.comparisons, b.comparisons);
                assert_eq!(a.skipped, b.skipped);
                assert_eq!(a.new_matches, b.new_matches);
            }
            assert_eq!(new.total_comparisons(), legacy.total_comparisons());
        }
    }
}

#[test]
fn two_source_sn_scenario_equals_run_two_source_sn() {
    let (input, sources) = two_source_corpus();
    for parallelism in PARALLELISM_LEVELS {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
        let resolver = Resolver::new(&runtime).with_window(4).with_partitions(3);
        for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
            let legacy = run_two_source_sn(
                input.clone(),
                sources.clone(),
                &resolver.sn_config(strategy),
            )
            .unwrap();
            let new = resolver
                .resolve(
                    &Scenario::TwoSourceSn {
                        strategy,
                        sources: sources.clone(),
                    },
                    input.clone(),
                )
                .unwrap();
            assert_equivalent(
                &format!("sn-two-source/{strategy}/p{parallelism}"),
                &new,
                &legacy.result,
                &legacy.workflow,
            );
        }
    }
}

#[test]
fn count_only_sessions_count_without_scoring_across_scenarios() {
    // ErConfig always had count-only mode; through the shared
    // RuntimeConfig it now reaches SN scenarios too: identical
    // comparison counters, empty match result.
    let input = corpus(2);
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(2));
    let full = Resolver::new(&runtime).with_window(4).with_partitions(3);
    let counting = full.clone().with_count_only(true);
    for scenario in [
        Scenario::Dedup {
            strategy: StrategyKind::BlockSplit,
        },
        Scenario::sorted_neighborhood(SnStrategy::JobSn),
        Scenario::sorted_neighborhood(SnStrategy::RepSn),
        Scenario::multipass_sn(SnStrategy::JobSn, passes()),
    ] {
        let scored = full.resolve(&scenario, input.clone()).unwrap();
        let counted = counting.resolve(&scenario, input.clone()).unwrap();
        assert_eq!(
            counted.total_comparisons(),
            scored.total_comparisons(),
            "{scenario}: count-only must count the same workload"
        );
        assert!(
            counted.result.is_empty(),
            "{scenario}: count-only must not score"
        );
        assert!(!scored.result.is_empty(), "{scenario}: corpus has matches");
    }
}

#[test]
fn resolve_with_caps_parallelism_without_spawning_threads() {
    let input = corpus(3);
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(4)
            .with_reduce_tasks(5),
    );
    let resolver = Resolver::new(&runtime).with_window(4).with_partitions(3);
    let spawned_at_construction = runtime.pool().threads_spawned();
    assert_eq!(spawned_at_construction, 4);

    for scenario in [
        Scenario::Dedup {
            strategy: StrategyKind::BlockSplit,
        },
        Scenario::sorted_neighborhood(SnStrategy::JobSn),
    ] {
        let uncapped = resolver.resolve(&scenario, input.clone()).unwrap();
        for cap in [1, 2, 8] {
            let capped = resolver
                .resolve_with(&scenario, input.clone(), cap)
                .unwrap();
            assert_eq!(
                result_bits(&capped.result),
                result_bits(&uncapped.result),
                "{scenario}/cap{cap}: capped run drifted from the uncapped one"
            );
            assert_eq!(
                capped.workflow.counters, uncapped.workflow.counters,
                "{scenario}/cap{cap}: merged workflow counters"
            );
            assert_eq!(
                runtime.pool().threads_spawned(),
                spawned_at_construction,
                "{scenario}/cap{cap}: a capped run must reuse the pool, not respawn it"
            );
        }
    }
}

#[test]
fn one_runtime_reuses_its_pool_across_scenarios_without_drift() {
    let input = corpus(3);
    let (ts_input, ts_sources) = two_source_corpus();

    // Reference outcomes from the legacy, transient-pool entry points.
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(2)
            .with_reduce_tasks(4),
    );
    let resolver = Resolver::new(&runtime).with_window(4).with_partitions(3);
    let legacy_dedup =
        run_er(input.clone(), &resolver.er_config(StrategyKind::BlockSplit)).unwrap();
    let legacy_sn =
        run_sorted_neighborhood(input.clone(), &resolver.sn_config(SnStrategy::JobSn)).unwrap();
    let legacy_linkage = run_two_source_sn(
        ts_input.clone(),
        ts_sources.clone(),
        &resolver.sn_config(SnStrategy::RepSn),
    )
    .unwrap();

    let spawned_at_construction = runtime.pool().threads_spawned();
    assert_eq!(spawned_at_construction, 2);

    // Three different scenarios, twice each, all on the one pool.
    for round in 0..2 {
        let mut executed_before = runtime.pool().tasks_executed();
        let dedup = resolver
            .resolve(
                &Scenario::Dedup {
                    strategy: StrategyKind::BlockSplit,
                },
                input.clone(),
            )
            .unwrap();
        assert_eq!(
            result_bits(&dedup.result),
            result_bits(&legacy_dedup.result),
            "round {round}: dedup drifted"
        );
        let sn = resolver
            .resolve(
                &Scenario::sorted_neighborhood(SnStrategy::JobSn),
                input.clone(),
            )
            .unwrap();
        assert_eq!(
            result_bits(&sn.result),
            result_bits(&legacy_sn.result),
            "round {round}: sn drifted"
        );
        let linkage = resolver
            .resolve(
                &Scenario::TwoSourceSn {
                    strategy: SnStrategy::RepSn,
                    sources: ts_sources.clone(),
                },
                ts_input.clone(),
            )
            .unwrap();
        assert_eq!(
            result_bits(&linkage.result),
            result_bits(&legacy_linkage.result),
            "round {round}: two-source sn drifted"
        );
        for outcome in [&dedup, &sn, &linkage] {
            let executed_now = runtime.pool().tasks_executed();
            assert!(executed_now >= executed_before, "counter is monotonic");
            executed_before = executed_now;
            assert!(outcome.workflow.num_stages() >= 2);
        }
        assert_eq!(
            runtime.pool().threads_spawned(),
            spawned_at_construction,
            "round {round}: a scenario run spawned threads — the hot path must reuse the pool"
        );
    }
    assert!(
        runtime.pool().tasks_executed() > 0,
        "the scenarios must actually have executed on the pool"
    );
}
