//! Fast shape checks on the simulated paper experiments — the CI-grade
//! versions of the figure benches' PASS lines.

use cluster_sim::CostModel;
use dedupe_mr::prelude::*;
use er_datagen::dataset::key_sequence;
use er_datagen::ds1_spec;
use er_loadbalance::analysis::analyze;

fn bdm(keys: &[BlockKey], m: usize) -> BlockDistributionMatrix {
    let len = keys.len();
    let base = len / m;
    let extra = len % m;
    let mut partitions: Vec<Vec<BlockKey>> = Vec::with_capacity(m);
    let mut offset = 0;
    for i in 0..m {
        let take = base + usize::from(i < extra);
        partitions.push(keys[offset..offset + take].to_vec());
        offset += take;
    }
    BlockDistributionMatrix::from_key_partitions(&partitions)
}

fn simulate(
    bdm: &BlockDistributionMatrix,
    strategy: StrategyKind,
    nodes: usize,
    r: usize,
    cost: &CostModel,
) -> f64 {
    let entities: u64 = (0..bdm.num_blocks()).map(|k| bdm.size(k)).sum();
    let w = analyze(bdm, strategy, r, RangePolicy::CeilDiv);
    let reduce_tasks: Vec<(u64, u64)> = w
        .reduce_input_records
        .iter()
        .zip(&w.reduce_comparisons)
        .map(|(&kv, &c)| (kv, c))
        .collect();
    let matching = cluster_sim::SimJob::matching(
        strategy.to_string(),
        cost,
        bdm.num_partitions(),
        entities,
        w.map_output_records,
        &reduce_tasks,
    );
    let cluster = cluster_sim::ClusterConfig::paper(nodes);
    match strategy {
        StrategyKind::Basic => cluster_sim::simulate_jobs(&[matching], &cluster, cost).total_ms,
        _ => {
            let bdm_job = cluster_sim::SimJob::bdm(cost, bdm.num_partitions(), r, entities);
            cluster_sim::simulate_jobs(&[bdm_job, matching], &cluster, cost).total_ms
        }
    }
}

#[test]
fn balanced_strategies_beat_basic_on_the_skewed_dataset() {
    let keys = key_sequence(&ds1_spec(2012));
    let b = bdm(&keys, 20);
    let cost = CostModel::default();
    let basic = simulate(&b, StrategyKind::Basic, 10, 100, &cost);
    let bs = simulate(&b, StrategyKind::BlockSplit, 10, 100, &cost);
    let pr = simulate(&b, StrategyKind::PairRange, 10, 100, &cost);
    assert!(
        basic > 3.0 * bs,
        "Basic {basic:.0}ms should trail BlockSplit {bs:.0}ms by >3x"
    );
    assert!(basic > 3.0 * pr);
}

#[test]
fn basic_plateaus_with_more_nodes_while_balanced_scale() {
    let keys = key_sequence(&ds1_spec(2012));
    let cost = CostModel::default();
    let t = |s: StrategyKind, n: usize| {
        let b = bdm(&keys, 2 * n);
        simulate(&b, s, n, 10 * n, &cost)
    };
    let basic_speedup = t(StrategyKind::Basic, 2) / t(StrategyKind::Basic, 20);
    let bs_speedup = t(StrategyKind::BlockSplit, 2) / t(StrategyKind::BlockSplit, 20);
    assert!(
        basic_speedup < 2.0,
        "Basic sped up {basic_speedup:.1}x from 2 to 20 nodes — should plateau"
    );
    assert!(
        bs_speedup > 4.0,
        "BlockSplit sped up only {bs_speedup:.1}x from 2 to 20 nodes"
    );
}

#[test]
fn sorted_input_hurts_block_split_only() {
    let keys = key_sequence(&ds1_spec(2012));
    let mut sorted = keys.clone();
    sorted.sort();
    let cost = CostModel::default();
    let unsorted_bdm = bdm(&keys, 20);
    let sorted_bdm = bdm(&sorted, 20);
    let bs_u = simulate(&unsorted_bdm, StrategyKind::BlockSplit, 10, 100, &cost);
    let bs_s = simulate(&sorted_bdm, StrategyKind::BlockSplit, 10, 100, &cost);
    let pr_u = simulate(&unsorted_bdm, StrategyKind::PairRange, 10, 100, &cost);
    let pr_s = simulate(&sorted_bdm, StrategyKind::PairRange, 10, 100, &cost);
    assert!(
        bs_s > bs_u * 1.3,
        "sorted input should slow BlockSplit: {bs_u:.0} -> {bs_s:.0}"
    );
    assert!(
        (pr_s / pr_u - 1.0).abs() < 0.05,
        "PairRange should not care: {pr_u:.0} -> {pr_s:.0}"
    );
}

#[test]
fn map_output_shapes_match_figure_12() {
    let keys = key_sequence(&ds1_spec(2012).scaled(0.25));
    let b = bdm(&keys, 20);
    let entities: u64 = keys.len() as u64;
    let mut bs_outputs = Vec::new();
    let mut pr_outputs = Vec::new();
    for r in [20usize, 60, 100, 160] {
        let basic = analyze(&b, StrategyKind::Basic, r, RangePolicy::CeilDiv);
        assert_eq!(basic.map_output_records, entities, "Basic never replicates");
        bs_outputs.push(
            analyze(&b, StrategyKind::BlockSplit, r, RangePolicy::CeilDiv).map_output_records,
        );
        pr_outputs
            .push(analyze(&b, StrategyKind::PairRange, r, RangePolicy::CeilDiv).map_output_records);
    }
    assert!(
        pr_outputs.windows(2).all(|w| w[1] > w[0]),
        "PairRange output grows with r: {pr_outputs:?}"
    );
    assert!(
        bs_outputs.windows(2).all(|w| w[1] >= w[0]),
        "BlockSplit output is a non-decreasing step function: {bs_outputs:?}"
    );
    assert!(pr_outputs.last().unwrap() > bs_outputs.last().unwrap());
}
