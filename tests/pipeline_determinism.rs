//! End-to-end determinism: the full two-job ER pipeline must produce
//! byte-identical outputs regardless of worker parallelism, and the
//! side-output plumbing must preserve partition shape between jobs.
#![allow(clippy::type_complexity)]

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};

fn input(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(55).scaled(0.005));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

#[test]
fn results_are_identical_across_parallelism_levels() {
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let mut reference: Option<(Vec<(MatchPair, String)>, Vec<u64>)> = None;
        for parallelism in [1usize, 2, 8] {
            let config = ErConfig::new(strategy)
                .with_reduce_tasks(12)
                .with_parallelism(parallelism);
            let outcome = run_er(input(5), &config).unwrap();
            let fingerprint: Vec<(MatchPair, String)> = outcome
                .result
                .iter()
                .map(|(p, s)| (p, format!("{s:.12}")))
                .collect();
            let loads = outcome.reduce_loads();
            match &reference {
                None => reference = Some((fingerprint, loads)),
                Some((fp, ld)) => {
                    assert_eq!(fp, &fingerprint, "{strategy} at parallelism {parallelism}");
                    assert_eq!(
                        ld, &loads,
                        "{strategy}: even per-task loads must be identical"
                    );
                }
            }
        }
    }
}

#[test]
fn sort_merge_shuffle_reproduces_byte_identical_reduce_outputs() {
    // The shuffle rework (map-side sorted runs + in-reduce k-way
    // merge) must keep the engine's strongest guarantee: the *exact*
    // per-reduce-task output structure — scores compared by bit
    // pattern, not epsilon — is independent of worker parallelism.
    use er_core::Matcher;
    use er_loadbalance::basic::basic_job;
    use er_loadbalance::compare::PairComparer;

    let mut reference: Option<Vec<Vec<(MatchPair, u64)>>> = None;
    for parallelism in [1usize, 2, 4, 8] {
        let job = basic_job(
            Arc::new(PrefixBlocking::title3()),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            6,
            parallelism,
        );
        let out = job.run(input(4)).unwrap();
        let fingerprint: Vec<Vec<(MatchPair, u64)>> = out
            .reduce_outputs
            .into_iter()
            .map(|task| {
                task.into_iter()
                    .map(|(pair, score)| (pair, score.to_bits()))
                    .collect()
            })
            .collect();
        match &reference {
            None => reference = Some(fingerprint),
            Some(r) => assert_eq!(
                r, &fingerprint,
                "parallelism {parallelism} changed reduce_outputs"
            ),
        }
    }
}

#[test]
fn bdm_is_independent_of_reduce_task_count() {
    // The BDM describes the data, not the job configuration.
    let mut reference: Option<String> = None;
    for r in [2usize, 7, 31] {
        let config = ErConfig::new(StrategyKind::BlockSplit)
            .with_reduce_tasks(r)
            .with_parallelism(2);
        let outcome = run_er(input(4), &config).unwrap();
        let tsv = outcome.bdm.unwrap().to_tsv();
        match &reference {
            None => reference = Some(tsv),
            Some(t) => assert_eq!(t, &tsv, "BDM changed with r={r}"),
        }
    }
}

#[test]
fn more_map_tasks_do_not_change_results() {
    let mut reference: Option<std::collections::BTreeSet<MatchPair>> = None;
    for m in [1usize, 3, 9] {
        let config = ErConfig::new(StrategyKind::PairRange)
            .with_reduce_tasks(8)
            .with_parallelism(2);
        let outcome = run_er(input(m), &config).unwrap();
        let pairs = outcome.result.pair_set();
        match &reference {
            None => reference = Some(pairs),
            Some(p) => assert_eq!(p, &pairs, "m={m} changed the result"),
        }
    }
}

#[test]
fn multipass_pipeline_is_deterministic_and_duplicate_free() {
    use er_core::blocking::{AttributeBlocking, MultiPassBlocking};
    let blocking: Arc<dyn BlockingFunction> = Arc::new(MultiPassBlocking::new(vec![
        Arc::new(PrefixBlocking::title3()),
        Arc::new(AttributeBlocking::new("sku")),
    ]));
    let config = ErConfig::new(StrategyKind::BlockSplit)
        .with_blocking(blocking)
        .with_reduce_tasks(9)
        .with_parallelism(4);
    let a = run_er(input(4), &config).unwrap();
    let b = run_er(input(4), &config).unwrap();
    assert_eq!(a.result.pair_set(), b.result.pair_set());
    // Multi-pass may skip but never double-count: comparisons +
    // skipped == BDM pair total.
    let skipped = a
        .match_metrics
        .counters
        .get(er_loadbalance::compare::MULTIPASS_SKIPPED);
    assert_eq!(
        a.total_comparisons() + skipped,
        a.bdm.unwrap().total_pairs()
    );
}
