//! The analytic workload model must agree *exactly* with executed
//! counters — it is the foundation of every paper-scale experiment.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};
use er_loadbalance::analysis::analyze;

fn dataset_input(m: usize) -> (Partitions<(), Ent>, usize) {
    let ds = generate_products(&ds1_spec(31).scaled(0.01));
    let n = ds.len();
    (
        partition_evenly(
            ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
            m,
        ),
        n,
    )
}

#[test]
fn analysis_equals_execution_for_every_strategy() {
    for (m, r) in [(3usize, 5usize), (5, 16), (8, 40)] {
        let (input, _) = dataset_input(m);
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let config = ErConfig::new(strategy)
                .with_reduce_tasks(r)
                .with_parallelism(2)
                .with_count_only(true);
            let outcome = run_er(input.clone(), &config).unwrap();
            // Basic computes no BDM: derive one from the input for the
            // analysis side.
            let bdm = match &outcome.bdm {
                Some(b) => Arc::clone(b),
                None => {
                    let keys: Vec<Vec<BlockKey>> = input
                        .iter()
                        .map(|part| {
                            part.iter()
                                .filter_map(|(_, e)| PrefixBlocking::title3().key(e))
                                .collect()
                        })
                        .collect();
                    Arc::new(BlockDistributionMatrix::from_key_partitions(&keys))
                }
            };
            let workload = analyze(&bdm, strategy, r, RangePolicy::CeilDiv);

            assert_eq!(
                workload.reduce_comparisons,
                outcome.reduce_loads(),
                "{strategy} m={m} r={r}: per-task comparisons diverge"
            );
            assert_eq!(
                workload.map_output_records,
                outcome.match_metrics.map_output_records(),
                "{strategy} m={m} r={r}: map output diverges"
            );
            let executed_inputs: Vec<u64> = outcome
                .match_metrics
                .reduce_tasks
                .iter()
                .map(|t| t.records_in)
                .collect();
            assert_eq!(
                workload.reduce_input_records, executed_inputs,
                "{strategy} m={m} r={r}: reduce inputs diverge"
            );
        }
    }
}

#[test]
fn analysis_conserves_total_pairs() {
    let (input, _) = dataset_input(4);
    let config = ErConfig::new(StrategyKind::BlockSplit)
        .with_reduce_tasks(8)
        .with_parallelism(1)
        .with_count_only(true);
    let outcome = run_er(input, &config).unwrap();
    let bdm = outcome.bdm.unwrap();
    for r in [1usize, 2, 7, 33, 129] {
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let w = analyze(&bdm, strategy, r, RangePolicy::CeilDiv);
            assert_eq!(
                w.total_comparisons(),
                bdm.total_pairs(),
                "{strategy} r={r} lost pairs"
            );
        }
    }
}
