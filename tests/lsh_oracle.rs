//! LSH correctness contract: the MR banded-MinHash workflow must
//! reproduce the brute-force banded oracle exactly — same candidate
//! set (each distinct pair exactly once across all shared bands), same
//! matches, bit-identical scores — at every parallelism level, for
//! dedup and two-source linkage, and the adaptive ladder must tighten
//! deterministically to its candidate budget.

use std::sync::Arc;

use dedupe_mr::er_loadbalance::compare::MULTIPASS_SKIPPED;
use dedupe_mr::er_loadbalance::two_source::TwoSourceBdm;
use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};

const CONFIGS: [LshParams; 2] = [
    LshParams { bands: 8, rows: 2 },
    LshParams { bands: 4, rows: 4 },
];
const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

fn corpus() -> Vec<Ent> {
    generate_products(&ds1_spec(11).scaled(0.002))
        .entities
        .into_iter()
        .map(|e| Arc::new(e) as Ent)
        .collect()
}

fn dedup_input(m: usize) -> Partitions<(), Ent> {
    partition_evenly(corpus().into_iter().map(|e| ((), e)).collect(), m)
}

/// The corpus split into two tagged sources (even ids → R, odd → S).
fn linkage_corpus() -> (Vec<Ent>, Vec<Ent>) {
    let mut r = Vec::new();
    let mut s = Vec::new();
    for e in corpus() {
        if e.id().0.is_multiple_of(2) {
            r.push(e);
        } else {
            s.push(Arc::new(Entity::with_source(SourceId::S, e.id().0, e.attributes())) as Ent);
        }
    }
    (r, s)
}

/// Bit-exact fingerprint of a match result.
type Fingerprint = Vec<(MatchPair, u64)>;

fn fingerprint(result: &MatchResult) -> Fingerprint {
    result.iter().map(|(p, s)| (p, s.to_bits())).collect()
}

#[test]
fn dedup_equals_the_banded_oracle_byte_identically_at_every_parallelism() {
    for params in CONFIGS {
        let mut reference: Option<(Fingerprint, Vec<u64>)> = None;
        for parallelism in PARALLELISM_LEVELS {
            let runtime = Runtime::new(
                RuntimeConfig::new()
                    .with_parallelism(parallelism)
                    .with_reduce_tasks(7),
            );
            let resolver = Resolver::new(&runtime);
            let outcome = resolver
                .resolve(&Scenario::lsh(params), dedup_input(4))
                .unwrap();

            // Candidate contract: the MR pair set equals brute force.
            let entities = corpus();
            let config = resolver.lsh_config(Some(params));
            let oracle = lsh_oracle(&entities, &config, params, false);
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{params}: match set must equal the banded oracle"
            );
            let blocking = config.blocking_for(params);
            let candidates = lsh_candidate_pairs(&entities, &blocking, false);
            assert_eq!(
                outcome.total_comparisons(),
                candidates.len() as u64,
                "{params}: every distinct banded candidate exactly once"
            );

            // Exactly-once across bands: what the reducers enumerated
            // but the smallest-band gate skipped accounts for every
            // extra band a pair shares.
            let bdm = outcome.details.bdm().expect("LSH computes a BDM");
            let skipped = outcome.workflow.counters.get(MULTIPASS_SKIPPED);
            assert_eq!(
                outcome.total_comparisons() + skipped,
                bdm.total_pairs(),
                "{params}: enumerated = compared once + cross-band skipped"
            );

            // Byte-identity across parallelism, including the exact
            // per-reduce-task comparison loads.
            let fp = fingerprint(&outcome.result);
            let loads = outcome.reduce_loads().expect("one matching job");
            match &reference {
                None => reference = Some((fp, loads)),
                Some((rf, rl)) => {
                    assert_eq!(rf, &fp, "{params} at parallelism {parallelism}");
                    assert_eq!(rl, &loads, "{params}: identical reduce loads");
                }
            }
        }
    }
}

#[test]
fn linkage_equals_the_cross_source_banded_oracle_at_every_parallelism() {
    let (r, s) = linkage_corpus();
    let all: Vec<Ent> = r.iter().chain(s.iter()).map(Arc::clone).collect();
    let (input, sources) = two_source_input(r, s, 2);
    for params in CONFIGS {
        let mut reference: Option<Fingerprint> = None;
        for parallelism in PARALLELISM_LEVELS {
            let runtime = Runtime::new(
                RuntimeConfig::new()
                    .with_parallelism(parallelism)
                    .with_reduce_tasks(5),
            );
            let resolver = Resolver::new(&runtime);
            let outcome = resolver
                .resolve(
                    &Scenario::lsh_linkage(Some(params), sources.clone()),
                    input.clone(),
                )
                .unwrap();

            let config = resolver.lsh_config(Some(params));
            let oracle = lsh_oracle(&all, &config, params, true);
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{params}: linkage must equal the cross-source banded oracle"
            );
            let blocking = config.blocking_for(params);
            let candidates = lsh_candidate_pairs(&all, &blocking, true);
            assert_eq!(outcome.total_comparisons(), candidates.len() as u64);

            // Enumeration is structurally R×S per bucket, so the
            // exactly-once ledger balances against the two-source BDM.
            let bdm = outcome.details.bdm().expect("LSH computes a BDM");
            let ts = TwoSourceBdm::new(Arc::clone(bdm), sources.clone());
            let skipped = outcome.workflow.counters.get(MULTIPASS_SKIPPED);
            assert_eq!(outcome.total_comparisons() + skipped, ts.total_pairs());

            let fp = fingerprint(&outcome.result);
            match &reference {
                None => reference = Some(fp),
                Some(rf) => assert_eq!(rf, &fp, "{params} at parallelism {parallelism}"),
            }
        }
    }
}

#[test]
fn every_balance_strategy_yields_the_same_lsh_result() {
    let params = LshParams { bands: 8, rows: 2 };
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(2)
            .with_reduce_tasks(6),
    );
    let reference = Resolver::new(&runtime)
        .resolve(&Scenario::lsh(params), dedup_input(3))
        .unwrap();
    for balance in [StrategyKind::Basic, StrategyKind::PairRange] {
        let outcome = Resolver::new(&runtime)
            .with_lsh_balance(balance)
            .resolve(&Scenario::lsh(params), dedup_input(3))
            .unwrap();
        assert_eq!(
            outcome.result.pair_set(),
            reference.result.pair_set(),
            "{balance} must agree with BlockSplit"
        );
        assert_eq!(outcome.total_comparisons(), reference.total_comparisons());
    }
}

#[test]
fn adaptive_ladder_reports_rounds_and_respects_the_budget() {
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(2)
            .with_reduce_tasks(6),
    );
    let wide = LshParams { bands: 16, rows: 2 };
    let tight = LshParams { bands: 4, rows: 8 };

    // First measure the widest rung's workload, then set a budget just
    // below it: the driver must fall through to the tight rung.
    let probe = Resolver::new(&runtime)
        .resolve(&Scenario::lsh(wide), dedup_input(4))
        .unwrap();
    let wide_pairs = probe.details.bdm().unwrap().total_pairs();

    let resolver = Resolver::new(&runtime)
        .with_lsh_ladder(vec![wide, tight])
        .with_lsh_budget(Some(wide_pairs.saturating_sub(1).max(1)));
    let outcome = resolver
        .resolve(&Scenario::lsh_adaptive(), dedup_input(4))
        .unwrap();

    let rounds = outcome.details.lsh_rounds().expect("LSH reports rounds");
    assert_eq!(rounds.len(), 2, "both rungs measured");
    assert!(!rounds[0].within_budget && !rounds[0].accepted);
    assert!(rounds[1].accepted);
    assert_eq!(rounds[0].candidate_pairs, wide_pairs);
    assert!(
        rounds[0].est_recall > rounds[1].est_recall,
        "tightening trades estimated recall for candidates"
    );
    assert_eq!(outcome.details.lsh_params(), Some(tight));

    // The accepted rung's run is identical to resolving it directly.
    let direct = Resolver::new(&runtime)
        .resolve(&Scenario::lsh(tight), dedup_input(4))
        .unwrap();
    assert_eq!(fingerprint(&outcome.result), fingerprint(&direct.result));
    assert_eq!(outcome.total_comparisons(), direct.total_comparisons());

    // Without a budget the widest rung is accepted immediately and
    // later rungs never run.
    let eager = Resolver::new(&runtime)
        .with_lsh_ladder(vec![wide, tight])
        .resolve(&Scenario::lsh_adaptive(), dedup_input(4))
        .unwrap();
    let eager_rounds = eager.details.lsh_rounds().unwrap();
    assert_eq!(eager_rounds.len(), 1);
    assert!(eager_rounds[0].accepted && eager_rounds[0].within_budget);
    assert_eq!(eager.details.lsh_params(), Some(wide));
}

#[test]
fn exact_dedup_counts_for_multi_band_collisions() {
    // Three identical titles collide in *every* band; two unrelated
    // singletons collide in none. The cluster contributes exactly
    // C(3,2) = 3 comparisons — once per distinct pair, not once per
    // shared band — and everything else the buckets enumerate is
    // gated.
    let titles = [
        "canon eos five d mark three body",
        "canon eos five d mark three body",
        "canon eos five d mark three body",
        "nikon d eight hundred body only",
        "olympus om d e m five mark two",
    ];
    let entities: Vec<Ent> = titles
        .iter()
        .enumerate()
        .map(|(id, t)| Arc::new(Entity::new(id as u64, [("title", *t)])) as Ent)
        .collect();
    let input = partition_evenly(entities.iter().map(|e| ((), Arc::clone(e))).collect(), 2);
    let params = LshParams { bands: 8, rows: 2 };
    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(2)
            .with_reduce_tasks(4),
    );
    let resolver = Resolver::new(&runtime);
    let outcome = resolver.resolve(&Scenario::lsh(params), input).unwrap();

    let config = resolver.lsh_config(Some(params));
    let blocking = config.blocking_for(params);
    let candidates = lsh_candidate_pairs(&entities, &blocking, false);
    assert!(candidates.len() >= 3, "the cluster is fully connected");
    assert_eq!(outcome.total_comparisons(), candidates.len() as u64);
    assert_eq!(outcome.result.len(), 3, "exactly the three identical pairs");

    // The identical cluster shares all 8 bands: 3 pairs × 8 buckets
    // enumerated, 3 compared, the rest skipped by smallest-band-wins.
    let bdm = outcome.details.bdm().unwrap();
    let skipped = outcome.workflow.counters.get(MULTIPASS_SKIPPED);
    assert_eq!(outcome.total_comparisons() + skipped, bdm.total_pairs());
    assert!(skipped >= 3 * 7, "every extra shared band is gated");
}
