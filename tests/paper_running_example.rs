//! Every concrete number of the paper's running example (Figures 3–7)
//! and two-source appendix (Figures 15–17), checked end to end through
//! the public facade.

use dedupe_mr::prelude::*;
use er_loadbalance::running_example;
use er_loadbalance::two_source::appendix_example;

fn example_config(strategy: StrategyKind) -> ErConfig {
    ErConfig::new(strategy)
        .with_blocking(running_example::blocking())
        .with_reduce_tasks(3)
        .with_parallelism(1)
        .with_count_only(true)
}

#[test]
fn bdm_matches_figure_4() {
    let outcome = run_er(
        running_example::entity_partitions(),
        &example_config(StrategyKind::BlockSplit),
    )
    .unwrap();
    let bdm = outcome.bdm.expect("BDM computed");
    // b = 4 blocks over m = 2 partitions; row [z, 1, 3] from Figure 4.
    assert_eq!(bdm.num_blocks(), 4);
    assert_eq!(bdm.num_partitions(), 2);
    assert_eq!(bdm.size_in(3, 1), 3);
    // Block sizes 4, 2, 3, 5; pair offsets 0, 6, 7, 10; P = 20.
    assert_eq!(
        (bdm.size(0), bdm.size(1), bdm.size(2), bdm.size(3)),
        (4, 2, 3, 5)
    );
    assert_eq!(bdm.total_pairs(), 20);
    assert_eq!(bdm.pair_offset(3), 10);
}

#[test]
fn block_split_matches_figure_5() {
    let outcome = run_er(
        running_example::entity_partitions(),
        &example_config(StrategyKind::BlockSplit),
    )
    .unwrap();
    // 19 map output KV pairs (14 entities + 5 replicas of block z).
    assert_eq!(outcome.match_metrics.map_output_records(), 19);
    // Reduce loads 7 / 7 / 6 ("between six and seven comparisons").
    let mut loads = outcome.reduce_loads();
    loads.sort_unstable();
    assert_eq!(loads, vec![6, 7, 7]);
    assert_eq!(outcome.total_comparisons(), 20);
}

#[test]
fn pair_range_matches_figures_6_and_7() {
    let outcome = run_er(
        running_example::entity_partitions(),
        &example_config(StrategyKind::PairRange),
    )
    .unwrap();
    // Ranges [0,6], [7,13], [14,19] -> loads 7, 7, 6 in task order.
    assert_eq!(outcome.reduce_loads(), vec![7, 7, 6]);
    // Figure 7's dataflow: 18 emitted KV pairs (range 0: 6 entities,
    // range 1: 8, range 2: 4).
    assert_eq!(outcome.match_metrics.map_output_records(), 18);
    let inputs: Vec<u64> = outcome
        .match_metrics
        .reduce_tasks
        .iter()
        .map(|t| t.records_in)
        .collect();
    assert_eq!(inputs, vec![6, 8, 4]);
}

#[test]
fn basic_computes_the_same_20_pairs_without_balancing() {
    let outcome = run_er(
        running_example::entity_partitions(),
        &example_config(StrategyKind::Basic),
    )
    .unwrap();
    assert_eq!(outcome.total_comparisons(), 20);
    assert_eq!(outcome.match_metrics.map_output_records(), 14);
    assert!(outcome.bdm.is_none(), "Basic runs without the BDM job");
}

#[test]
fn appendix_example_matches_figures_15_to_17() {
    for strategy in [StrategyKind::BlockSplit, StrategyKind::PairRange] {
        let outcome = run_linkage(
            appendix_example::entity_partitions(),
            appendix_example::partition_sources(),
            &example_config(strategy),
        )
        .unwrap();
        assert_eq!(outcome.total_comparisons(), 12, "{strategy}: 12 pairs");
        assert_eq!(
            outcome.reduce_loads(),
            vec![4, 4, 4],
            "{strategy}: three ranges/tasks of 4"
        );
    }
}

#[test]
fn all_strategies_find_the_same_matches_with_real_similarity() {
    // Run with actual edit-distance matching (threshold lowered so the
    // single-letter example titles produce matches).
    let matcher = std::sync::Arc::new(Matcher::new(
        vec![MatchRule::new(
            "title",
            std::sync::Arc::new(er_core::similarity::JaroWinkler::default()),
        )],
        0.5,
    ));
    let mut reference: Option<std::collections::BTreeSet<MatchPair>> = None;
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let config = example_config(strategy)
            .with_count_only(false)
            .with_matcher(matcher.clone());
        let outcome = run_er(running_example::entity_partitions(), &config).unwrap();
        let pairs = outcome.result.pair_set();
        match &reference {
            None => reference = Some(pairs),
            Some(r) => assert_eq!(r, &pairs, "{strategy} differs"),
        }
    }
    assert!(
        !reference.unwrap().is_empty(),
        "the lowered threshold must produce at least one match"
    );
}
