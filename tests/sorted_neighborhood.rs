//! The er-sn acceptance suite: JobSN and RepSN must produce pair sets
//! exactly equal to the single-machine sliding-window oracle —
//! including cross-boundary pairs, with no replica × replica
//! duplicates — on er-datagen corpora, byte-identical across
//! parallelism ∈ {1, 2, 4, 8}, identical across partition counts and
//! across the two strategies.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};
use er_sn::{oracle_comparisons, NULL_SORT_KEYS};

const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// A DS1-shaped product corpus at laptop scale, pre-partitioned into
/// `m` map inputs.
fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(2012).scaled(0.003));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

fn base_config(strategy: SnStrategy) -> SnConfig {
    SnConfig::new(strategy)
        .with_window(5)
        .with_partitions(4)
        .with_parallelism(1)
}

fn corpus_entities(input: &Partitions<(), Ent>) -> usize {
    input.iter().map(Vec::len).sum()
}

#[test]
fn both_strategies_equal_the_oracle_on_a_product_corpus() {
    let input = corpus(3);
    let n = corpus_entities(&input);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let config = base_config(strategy);
        let oracle = sn_oracle(&input, &config);
        let outcome = run_sorted_neighborhood(input.clone(), &config).unwrap();
        assert_eq!(
            outcome.result.pair_set(),
            oracle.pair_set(),
            "{strategy} diverged from the sliding-window oracle"
        );
        assert!(
            !outcome.result.is_empty(),
            "the corpus contains injected near-duplicates"
        );
        // Exactly one comparison per window pair: cross-boundary pairs
        // are covered and nothing (replica x replica, double stitch)
        // is compared twice.
        assert_eq!(
            outcome.total_comparisons(),
            oracle_comparisons(n, config.window),
            "{strategy} comparison count"
        );
    }
}

#[test]
fn output_is_byte_identical_across_parallelism() {
    let input = corpus(4);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let mut reference: Option<Vec<(er_core::MatchPair, u64)>> = None;
        for parallelism in PARALLELISM_LEVELS {
            let config = base_config(strategy).with_parallelism(parallelism);
            let outcome = run_sorted_neighborhood(input.clone(), &config).unwrap();
            // Compare scores bit-for-bit, not approximately.
            let bits: Vec<(er_core::MatchPair, u64)> = outcome
                .result
                .iter()
                .map(|(pair, score)| (pair, score.to_bits()))
                .collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(
                    r, &bits,
                    "{strategy} changed its output at parallelism {parallelism}"
                ),
            }
        }
    }
}

#[test]
fn pair_set_is_invariant_under_the_partition_count() {
    let input = corpus(3);
    let n = corpus_entities(&input);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let oracle = sn_oracle(&input, &base_config(strategy));
        for partitions in [1usize, 2, 4, 8] {
            let config = base_config(strategy).with_partitions(partitions);
            let outcome = run_sorted_neighborhood(input.clone(), &config).unwrap();
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{strategy} with {partitions} partitions"
            );
            assert_eq!(outcome.total_comparisons(), oracle_comparisons(n, 5));
        }
    }
}

#[test]
fn strategies_agree_with_each_other_and_sampling_does_not_change_the_result() {
    let input = corpus(2);
    // A thinned sample moves the range boundaries; the pair set must
    // not move with them.
    for sample_rate in [1.0, 0.25] {
        let jobsn = run_sorted_neighborhood(
            input.clone(),
            &base_config(SnStrategy::JobSn).with_sample_rate(sample_rate),
        )
        .unwrap();
        let repsn = run_sorted_neighborhood(
            input.clone(),
            &base_config(SnStrategy::RepSn).with_sample_rate(sample_rate),
        )
        .unwrap();
        assert_eq!(
            jobsn.result.pair_set(),
            repsn.result.pair_set(),
            "strategies diverged at sample rate {sample_rate}"
        );
    }
}

#[test]
fn cross_boundary_duplicates_are_found() {
    // Two near-duplicate titles that straddle a range boundary by
    // construction: keys "mmm a" and "mmm b" sort adjacently; with two
    // ranges and a 50/50 sample split they land in different ranges.
    let titles = [
        "aaa product one",
        "bbb product two",
        "ccc product three",
        "mmm same item x",
        "mmm same item y", // the cross-boundary pair
        "qqq product four",
        "rrr product five",
        "zzz product six",
    ];
    let input: Partitions<(), Ent> = vec![titles
        .iter()
        .enumerate()
        .map(|(i, t)| ((), Arc::new(Entity::new(i as u64, [("title", *t)]))))
        .collect()];
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let config = SnConfig::new(strategy)
            .with_window(2)
            .with_partitions(2)
            .with_parallelism(1);
        let outcome = run_sorted_neighborhood(input.clone(), &config).unwrap();
        // The boundary falls between the two "mmm" entities (4 keys on
        // each side), so this match only exists if boundary handling
        // works.
        let sizes = outcome.partition_sizes();
        assert_eq!(sizes, vec![4, 4], "{strategy}: boundary placement");
        let pair = er_core::MatchPair::new(
            Entity::new(3, [("t", "")]).entity_ref(),
            Entity::new(4, [("t", "")]).entity_ref(),
        );
        assert!(
            outcome.result.contains(&pair),
            "{strategy} missed the cross-boundary duplicate"
        );
        assert_eq!(
            outcome.result.pair_set(),
            sn_oracle(&input, &config).pair_set()
        );
    }
}

#[test]
fn null_sort_keys_are_routed_not_dropped() {
    // Entities 10 and 11 have no title: under SortFirst they collate
    // at the front and match each other through the window.
    let mut records: Vec<((), Ent)> = ["aab thing", "aac thing", "prq other"]
        .iter()
        .enumerate()
        .map(|(i, t)| ((), Arc::new(Entity::new(i as u64, [("title", *t)])) as Ent))
        .collect();
    records.push(((), Arc::new(Entity::new(10, [("brand", "same brand")]))));
    records.push(((), Arc::new(Entity::new(11, [("brand", "same brand")]))));
    let input = vec![records];
    // Match on brand too, so the keyless pair can actually score.
    let matcher = Arc::new(Matcher::new(
        vec![
            MatchRule::new(
                "title",
                Arc::new(er_core::similarity::NormalizedLevenshtein),
            ),
            MatchRule::new(
                "brand",
                Arc::new(er_core::similarity::NormalizedLevenshtein),
            ),
        ],
        0.45,
    ));
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let config = SnConfig::new(strategy)
            .with_window(2)
            .with_partitions(2)
            .with_parallelism(1)
            .with_matcher(Arc::clone(&matcher));
        let outcome = run_sorted_neighborhood(input.clone(), &config).unwrap();
        assert_eq!(
            outcome.sample_metrics.counters.get(NULL_SORT_KEYS),
            2,
            "{strategy}: keyless entities counted"
        );
        let keyless_pair = er_core::MatchPair::new(
            Entity::new(10, [("t", "")]).entity_ref(),
            Entity::new(11, [("t", "")]).entity_ref(),
        );
        assert!(
            outcome.result.contains(&keyless_pair),
            "{strategy}: SortFirst must let keyless duplicates meet in the window"
        );
        assert_eq!(
            outcome.result.pair_set(),
            sn_oracle(&input, &config).pair_set()
        );

        // Skip policy: keyless entities leave the flow (deterministic,
        // counted) and the oracle agrees.
        let skip = config.clone().with_null_key_policy(NullKeyPolicy::Skip);
        let skipped = run_sorted_neighborhood(input.clone(), &skip).unwrap();
        assert!(!skipped.result.contains(&keyless_pair));
        assert_eq!(
            skipped.result.pair_set(),
            sn_oracle(&input, &skip).pair_set()
        );
    }
}

#[test]
fn repsn_refuses_thin_ranges_and_jobsn_covers_them() {
    // All-duplicate sort keys: every entity shares one key, so with 4
    // requested ranges three are empty (trailing) — JobSN stays exact
    // with no stitch work at all.
    let input: Partitions<(), Ent> = vec![(0..6u64)
        .map(|i| {
            (
                (),
                Arc::new(Entity::new(i, [("title", "same title")])) as Ent,
            )
        })
        .collect()];
    let jobsn = SnConfig::new(SnStrategy::JobSn)
        .with_window(3)
        .with_partitions(4)
        .with_parallelism(1);
    let outcome = run_sorted_neighborhood(input.clone(), &jobsn).unwrap();
    assert_eq!(
        outcome.result.pair_set(),
        sn_oracle(&input, &jobsn).pair_set()
    );
    assert_eq!(outcome.total_comparisons(), oracle_comparisons(6, 3));

    // A thin interior range under RepSN errors instead of silently
    // dropping cross-boundary pairs: 4 distinct keys over 4 ranges
    // gives 1-entity ranges, below w - 1 = 2.
    let spread: Partitions<(), Ent> = vec![["aa", "bb", "cc", "dd"]
        .iter()
        .enumerate()
        .map(|(i, t)| ((), Arc::new(Entity::new(i as u64, [("title", *t)])) as Ent))
        .collect()];
    let repsn = SnConfig::new(SnStrategy::RepSn)
        .with_window(3)
        .with_partitions(4)
        .with_parallelism(1);
    match run_sorted_neighborhood(spread.clone(), &repsn) {
        Err(SnError::ThinPartition { entities, .. }) => assert!(entities < 2),
        other => panic!("expected ThinPartition, got {other:?}"),
    }
    // The same workload under JobSN matches the oracle.
    let jobsn = SnConfig {
        strategy: SnStrategy::JobSn,
        ..repsn
    };
    let outcome = run_sorted_neighborhood(spread.clone(), &jobsn).unwrap();
    assert_eq!(
        outcome.result.pair_set(),
        sn_oracle(&spread, &jobsn).pair_set()
    );
    assert_eq!(outcome.total_comparisons(), oracle_comparisons(4, 3));
}

#[test]
fn bounded_matcher_cache_reproduces_unbounded_sn_results() {
    let input = corpus(2);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let unbounded = run_sorted_neighborhood(input.clone(), &base_config(strategy)).unwrap();
        let bounded = run_sorted_neighborhood(
            input.clone(),
            &base_config(strategy).with_matcher_cache_capacity(Some(2)),
        )
        .unwrap();
        let a: Vec<(er_core::MatchPair, u64)> = unbounded
            .result
            .iter()
            .map(|(p, s)| (p, s.to_bits()))
            .collect();
        let b: Vec<(er_core::MatchPair, u64)> = bounded
            .result
            .iter()
            .map(|(p, s)| (p, s.to_bits()))
            .collect();
        assert_eq!(a, b, "{strategy}: capacity bound changed the output");
    }
}

#[test]
fn window_job_streams_ranges_instead_of_materializing_them() {
    // Grouping == sorting for the window jobs: the reduce side
    // buffers one key run + the w-1 ring, never the whole range. The
    // engine's resident gauges must stay far below task input.
    let input = corpus(4);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let outcome = run_sorted_neighborhood(input.clone(), &base_config(strategy)).unwrap();
        let m = &outcome.match_metrics;
        assert!(
            m.peak_resident_fraction() < 0.5,
            "{strategy}: resident/input = {:.3} — the range is being materialized",
            m.peak_resident_fraction()
        );
    }
}

#[test]
fn window_growth_only_adds_pairs() {
    let input = corpus(2);
    let mut previous: Option<std::collections::BTreeSet<er_core::MatchPair>> = None;
    for window in [2usize, 4, 8] {
        let config = base_config(SnStrategy::JobSn).with_window(window);
        let outcome = run_sorted_neighborhood(input.clone(), &config).unwrap();
        let pairs = outcome.result.pair_set();
        if let Some(prev) = &previous {
            assert!(
                prev.is_subset(&pairs),
                "window {window} lost pairs a smaller window found"
            );
        }
        previous = Some(pairs);
    }
}
