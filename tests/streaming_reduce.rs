//! Consumer-level contract of the streaming reduce path: every
//! strategy's `reduce_outputs` stays byte-identical to the
//! materialized-merge reference at any parallelism, the new memory
//! gauges are themselves deterministic, and on multi-group workloads
//! they stay strictly below the task-input bound a materialized merge
//! would pin.
#![allow(clippy::type_complexity)]

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_core::Matcher;
use er_datagen::{ds1_spec, generate_products};
use er_loadbalance::basic::basic_job;
use er_loadbalance::compare::PairComparer;
use mr_engine::merge::merge_sorted_runs;
use mr_engine::natural_order;

fn input(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(77).scaled(0.005));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

#[test]
fn streaming_reduce_outputs_are_byte_identical_across_parallelism() {
    // The satellite's core claim: streaming groups out of the heap
    // merge produces the exact per-task output structure at every
    // parallelism level, for all three strategies (PairRange's coarse
    // grouping comparator included). Scores compare by bit pattern.
    let input = input(4);
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let mut reference: Option<Vec<(MatchPair, u64)>> = None;
        for parallelism in [1usize, 2, 4, 8] {
            let config = ErConfig::new(strategy)
                .with_reduce_tasks(8)
                .with_parallelism(parallelism);
            let outcome = run_er(input.clone(), &config).unwrap();
            let fingerprint: Vec<(MatchPair, u64)> = outcome
                .result
                .iter()
                .map(|(p, s)| (p, s.to_bits()))
                .collect();
            match &reference {
                None => reference = Some(fingerprint),
                Some(r) => assert_eq!(
                    r, &fingerprint,
                    "{strategy} at parallelism {parallelism} changed outputs"
                ),
            }
        }
    }
}

#[test]
fn peak_gauges_are_deterministic_across_parallelism() {
    // The gauges are a property of (input, job definition), not of
    // scheduling: every reduce task must report identical peaks at
    // every parallelism level.
    let input = input(4);
    for strategy in [
        StrategyKind::Basic,
        StrategyKind::BlockSplit,
        StrategyKind::PairRange,
    ] {
        let mut reference: Option<Vec<(u64, u64)>> = None;
        for parallelism in [1usize, 2, 8] {
            let config = ErConfig::new(strategy)
                .with_reduce_tasks(6)
                .with_parallelism(parallelism)
                .with_count_only(true);
            let outcome = run_er(input.clone(), &config).unwrap();
            let gauges: Vec<(u64, u64)> = outcome
                .match_metrics
                .reduce_tasks
                .iter()
                .map(|t| (t.peak_group_len, t.peak_resident_records))
                .collect();
            match &reference {
                None => reference = Some(gauges),
                Some(r) => assert_eq!(r, &gauges, "{strategy} gauges moved at p={parallelism}"),
            }
        }
    }
}

#[test]
fn peak_resident_stays_below_task_input_on_multi_group_workloads() {
    // DS1 prefix blocking yields many blocks per reduce task, so every
    // task with more than one group must buffer strictly less than its
    // input — the bound the materialized merge sat at.
    let job = basic_job(
        Arc::new(PrefixBlocking::title3()),
        PairComparer::new(Arc::new(Matcher::paper_default())),
        6,
        2,
    );
    let out = job.run(input(4)).unwrap();
    let mut multi_group_tasks = 0;
    for t in &out.metrics.reduce_tasks {
        if t.records_in == 0 {
            continue;
        }
        let groups = t.counter("mr.reduce.input.groups");
        assert!(
            t.peak_group_len <= t.records_in,
            "task {}: group cannot exceed input",
            t.index
        );
        if groups > 1 {
            multi_group_tasks += 1;
            assert!(
                t.peak_resident_records < t.records_in,
                "task {} has {} groups but buffered {}/{} records",
                t.index,
                groups,
                t.peak_resident_records,
                t.records_in
            );
        }
    }
    assert!(
        multi_group_tasks >= 4,
        "workload must actually be multi-group (got {multi_group_tasks})"
    );
    assert!(
        out.metrics.peak_resident_fraction() < 0.6,
        "job-level resident fraction {} must beat the 0.6 acceptance bound",
        out.metrics.peak_resident_fraction()
    );
}

#[test]
fn pair_range_coarse_grouping_streams_whole_ranges() {
    // PairRange sorts by (range, block, entity index) but groups by
    // range only — the adversarial case for a streaming group
    // iterator, since one group spans many distinct sort keys fed from
    // all map tasks. The match result must equal the sequential
    // reference, and the largest streamed group must cover multiple
    // entities (i.e. grouping really is coarser than sorting).
    let entities: Vec<Ent> = (0..40)
        .map(|id| {
            Arc::new(Entity::new(
                id as u64,
                [("title", format!("aaa widget {id:03}").as_str())],
            ))
        })
        .collect();
    let flat: Vec<Ent> = entities.clone();
    let input: Partitions<(), Ent> =
        partition_round_robin(entities.into_iter().map(|e| ((), e)).collect(), 3);
    let config = ErConfig::new(StrategyKind::PairRange)
        .with_reduce_tasks(4)
        .with_parallelism(2);
    let outcome = run_er(input, &config).unwrap();
    let reference = naive_reference(&flat, &config);
    assert_eq!(outcome.result.pair_set(), reference.pair_set());
    let metrics = &outcome.match_metrics;
    assert!(
        metrics.peak_group_len() > 1,
        "a range group buffers several entities"
    );
    let max_task_input = metrics
        .reduce_tasks
        .iter()
        .map(|t| t.records_in)
        .max()
        .unwrap();
    assert!(
        metrics.peak_group_len() <= max_task_input,
        "a streamed group never exceeds its task's input"
    );
    assert!(
        metrics.peak_resident_records() >= metrics.peak_group_len(),
        "resident includes the group buffer"
    );
}

#[test]
fn reference_merge_is_available_to_consumers() {
    // The materialized merge stays exported as the equivalence oracle:
    // downstream crates (and this test) can re-derive the merged order
    // the streaming path must reproduce.
    let cmp = natural_order::<u32>();
    let runs = vec![vec![(1u32, "a"), (3, "b")], vec![(2, "c"), (3, "d")]];
    assert_eq!(
        merge_sorted_runs(runs, &cmp),
        vec![(1, "a"), (2, "c"), (3, "b"), (3, "d")]
    );
}
