//! Cross-tenant isolation suite for the concurrent runtime:
//!
//! * **determinism under interleaving** — N tenant threads resolving
//!   mixed scenarios on one shared [`Runtime`] produce outputs
//!   byte-identical (match pairs *and* score bits) to a sequential
//!   parallelism-1 reference, at parallelism {1, 2, 4, 8} under every
//!   [`SchedulingPolicy`];
//! * **exact metrics** — each tenant's `WorkflowMetrics` (stage names,
//!   merged counters) roll up exactly as in the sequential run, with
//!   no cross-tenant bleed;
//! * **fault isolation** — a tenant whose session injects a terminal
//!   fault gets its typed error while every co-resident tenant
//!   completes byte-identically, and the runtime stays usable;
//! * **per-tenant observability** — a traced concurrent run yields a
//!   [`TraceReport`] with one scheduler-activity section per tenant.

use std::sync::Arc;
use std::thread;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};
use mr_engine::pool::SchedulingPolicy;
use mr_engine::trace::{TraceRecorder, TraceReport, TraceSink};
use mr_engine::MrError;

const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

const POLICIES: [SchedulingPolicy; 3] = [
    SchedulingPolicy::Fifo,
    SchedulingPolicy::FairShare,
    SchedulingPolicy::ShortestRemainingWork,
];

/// A DS1-shaped corpus small enough for the full matrix (tenants ×
/// policies × parallelism levels) with real similarity evaluation.
fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(77).scaled(0.003));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

/// Byte-exact view of a match result: pairs plus raw score bits.
fn result_bits(result: &MatchResult) -> Vec<(MatchPair, u64)> {
    result.iter().map(|(p, s)| (p, s.to_bits())).collect()
}

fn stage_names(metrics: &WorkflowMetrics) -> Vec<String> {
    metrics.stages.iter().map(|s| s.job_name.clone()).collect()
}

/// The mixed multi-tenant workload: five tenants, five scenario
/// shapes (all three blocking families), so concurrent stages of
/// *different* workflows interleave on the shared pool.
fn tenants() -> Vec<(&'static str, Scenario, Partitions<(), Ent>)> {
    vec![
        (
            "tenant-block-split",
            Scenario::Dedup {
                strategy: StrategyKind::BlockSplit,
            },
            corpus(4),
        ),
        (
            "tenant-repsn",
            Scenario::sorted_neighborhood(SnStrategy::RepSn),
            corpus(4),
        ),
        (
            "tenant-pair-range",
            Scenario::Dedup {
                strategy: StrategyKind::PairRange,
            },
            corpus(3),
        ),
        (
            "tenant-jobsn",
            Scenario::sorted_neighborhood(SnStrategy::JobSn),
            corpus(4),
        ),
        (
            "tenant-lsh",
            Scenario::lsh(LshParams { bands: 8, rows: 2 }),
            corpus(3),
        ),
    ]
}

fn resolver(runtime: &Runtime) -> Resolver<'_> {
    Resolver::new(runtime).with_window(4).with_partitions(3)
}

/// What a tenant's run must reproduce exactly, regardless of how many
/// other tenants were interleaved on the pool while it ran.
struct Reference {
    bits: Vec<(MatchPair, u64)>,
    workflow_name: String,
    stages: Vec<String>,
    counters: dedupe_mr::Outcome,
}

fn references() -> Vec<Reference> {
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(1));
    let sequential = resolver(&runtime);
    tenants()
        .into_iter()
        .map(|(_, scenario, input)| {
            let outcome = sequential.resolve(&scenario, input).unwrap();
            Reference {
                bits: result_bits(&outcome.result),
                workflow_name: outcome.workflow.workflow_name.clone(),
                stages: stage_names(&outcome.workflow),
                counters: outcome,
            }
        })
        .collect()
}

fn assert_matches_reference(context: &str, outcome: &dedupe_mr::Outcome, reference: &Reference) {
    assert_eq!(
        result_bits(&outcome.result),
        reference.bits,
        "{context}: match output must be byte-identical to the sequential run"
    );
    assert_eq!(
        outcome.workflow.workflow_name, reference.workflow_name,
        "{context}: workflow name"
    );
    assert_eq!(
        stage_names(&outcome.workflow),
        reference.stages,
        "{context}: stage composition"
    );
    assert_eq!(
        outcome.workflow.counters, reference.counters.workflow.counters,
        "{context}: merged workflow counters must roll up exactly"
    );
}

/// Five tenant threads × parallelism {1, 2, 4, 8} × all three
/// scheduling policies: every tenant's output and metrics are exactly
/// the sequential reference. Interleaving changes only wall time.
#[test]
fn concurrent_tenants_are_byte_identical_to_sequential_under_every_policy() {
    let refs = references();
    let workload = tenants();
    for parallelism in PARALLELISM_LEVELS {
        for policy in POLICIES {
            let runtime = Runtime::new(
                RuntimeConfig::new()
                    .with_parallelism(parallelism)
                    .with_scheduling_policy(policy),
            );
            let base = resolver(&runtime);
            thread::scope(|scope| {
                let handles: Vec<_> = workload
                    .iter()
                    .map(|(tenant, scenario, input)| {
                        let session = base.clone().with_tenant(*tenant);
                        let input = input.clone();
                        scope.spawn(move || session.resolve(scenario, input))
                    })
                    .collect();
                for ((handle, (tenant, _, _)), reference) in
                    handles.into_iter().zip(&workload).zip(&refs)
                {
                    let outcome = handle
                        .join()
                        .expect("tenant thread must not panic")
                        .unwrap_or_else(|e| {
                            panic!("{tenant} @ p={parallelism} {}: {e}", policy.name())
                        });
                    let context = format!("{tenant} @ p={parallelism} {}", policy.name());
                    assert_matches_reference(&context, &outcome, reference);
                }
            });
            // The shared pool drains completely between waves.
            let stats = runtime.pool_stats();
            assert_eq!(stats.queue_depth, 0, "p={parallelism}: queue drained");
            assert_eq!(stats.active_batches, 0, "p={parallelism}: no batch leaked");
            assert!(
                stats.per_tenant_inflight.is_empty(),
                "p={parallelism}: no tenant left inflight"
            );
        }
    }
}

/// One tenant's session injects a terminal fault. That tenant gets
/// its typed `TaskFailed` error; the four co-resident tenants are
/// byte-identical to the sequential reference; and the runtime keeps
/// serving resolves afterwards.
#[test]
fn faulting_tenant_is_isolated_from_co_resident_tenants() {
    let refs = references();
    let workload = tenants();
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(4));
    let base = resolver(&runtime);
    thread::scope(|scope| {
        let handles: Vec<_> = workload
            .iter()
            .enumerate()
            .map(|(i, (tenant, scenario, input))| {
                let mut session = base.clone().with_tenant(*tenant);
                if i == 0 {
                    session = session.with_fault_plan(
                        FaultPlan::new().silence_injected_panics().panic_always(
                            FaultPlan::ANY_JOB,
                            FaultKind::Map,
                            0,
                            "tenant-local fault",
                        ),
                    );
                }
                let input = input.clone();
                scope.spawn(move || session.resolve(scenario, input))
            })
            .collect();
        for (i, ((handle, (tenant, _, _)), reference)) in
            handles.into_iter().zip(&workload).zip(&refs).enumerate()
        {
            let result = handle.join().expect("tenant thread must not panic");
            if i == 0 {
                let err = result.expect_err("faulting tenant must observe its injected fault");
                let ResolveError::Mr(MrError::TaskFailed(task_error)) = &err else {
                    panic!("{tenant}: expected TaskFailed, got {err:?}");
                };
                assert_eq!(task_error.kind, FaultKind::Map, "{tenant}");
                assert_eq!(task_error.task, 0, "{tenant}");
            } else {
                let outcome = result.unwrap_or_else(|e| panic!("{tenant}: {e}"));
                assert_matches_reference(tenant, &outcome, reference);
            }
        }
    });
    // The failure did not wedge the shared pool: the formerly faulting
    // tenant's scenario resolves cleanly on the same runtime.
    let (tenant, scenario, input) = &workload[0];
    let outcome = base
        .clone()
        .with_tenant(*tenant)
        .resolve(scenario, input.clone())
        .unwrap();
    assert_matches_reference("post-fault retry", &outcome, &refs[0]);
    let stats = runtime.pool_stats();
    assert_eq!(stats.queue_depth, 0, "pool drained after fault");
    assert!(stats.per_tenant_inflight.is_empty(), "no tenant inflight");
}

/// A traced concurrent run surfaces one scheduler-activity section
/// per tenant: stages registered, stages admitted, and task claims
/// executed under each tenant's tag.
#[test]
fn trace_report_carries_one_section_per_tenant() {
    let recorder = Arc::new(TraceRecorder::new());
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(2))
        .with_trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>);
    let base = resolver(&runtime);
    let workload: Vec<_> = tenants().into_iter().take(2).collect();
    thread::scope(|scope| {
        for (tenant, scenario, input) in &workload {
            let session = base.clone().with_tenant(*tenant);
            let input = input.clone();
            scope.spawn(move || session.resolve(scenario, input).unwrap());
        }
    });
    let report = TraceReport::from_events(&recorder.events());
    for (tenant, _, _) in &workload {
        let summary = report
            .tenants()
            .iter()
            .find(|t| t.tenant == *tenant)
            .unwrap_or_else(|| panic!("report must carry a section for {tenant}"));
        assert!(
            summary.stages_submitted >= 1,
            "{tenant}: registered at least one stage batch"
        );
        assert!(
            summary.stages_admitted <= summary.stages_submitted,
            "{tenant}: admitted cannot exceed submitted"
        );
        assert!(
            summary.tasks_dispatched >= 1,
            "{tenant}: executed at least one task claim"
        );
        assert!(
            summary.tasks_submitted >= summary.stages_submitted,
            "{tenant}: every batch carries at least one task"
        );
    }
}
