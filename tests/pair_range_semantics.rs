//! The Algorithm-2 `return` typo, demonstrated.
//!
//! Listing 2 line 41 aborts the whole reduce group once a pair's range
//! exceeds the task's (`else if k > r then return`). That is safe only
//! per stream element: with a large block cut into many ranges, range
//! 0 covers a prefix of *column 0*, so while streaming entity `x` the
//! pair `(1, x)` overshoots (column 1 starts N−2 pairs later) — but
//! the *next* entity's pair `(0, x+1)` still belongs to range 0. A
//! literal `return` silently drops those pairs. Our reducer `break`s
//! the buffer scan instead; these tests construct the scenario and
//! prove completeness.

use std::sync::Arc;

use dedupe_mr::prelude::*;

/// One block of `n` identically-prefixed entities, spread over `m`
/// partitions round-robin.
fn one_block_input(n: usize, m: usize) -> Partitions<(), Ent> {
    let entities: Vec<Ent> = (0..n)
        .map(|id| {
            Arc::new(Entity::new(
                id as u64,
                [("title", format!("zz item {id:04}").as_str())],
            ))
        })
        .collect();
    partition_round_robin(entities.into_iter().map(|e| ((), e)).collect(), m)
}

#[test]
fn many_ranges_over_one_block_lose_no_pairs() {
    // n = 30 entities -> 435 pairs; r = 60 ranges cuts column 0
    // (pairs 0..28) into several ranges: the exact scenario where the
    // listing's `return` would drop pairs.
    let n = 30;
    let input = one_block_input(n, 3);
    let config = ErConfig::new(StrategyKind::PairRange)
        .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
        .with_reduce_tasks(60)
        .with_parallelism(2)
        .with_count_only(true);
    let outcome = run_er(input, &config).unwrap();
    let expected = (n * (n - 1) / 2) as u64;
    assert_eq!(
        outcome.total_comparisons(),
        expected,
        "every pair must be computed exactly once"
    );
}

#[test]
fn a_return_style_reducer_would_drop_pairs() {
    // Simulate the listing's `return` semantics over the same pair
    // stream and show it computes fewer pairs — the regression the
    // break-fix prevents.
    use er_loadbalance::bdm::BlockDistributionMatrix;
    use er_loadbalance::pair_range::enumeration::pair_index;
    use er_loadbalance::pair_range::mapper::relevant_ranges;
    use er_loadbalance::pair_range::ranges::{RangeIndexer, RangePolicy};

    let n = 30u64;
    let bdm = BlockDistributionMatrix::from_counts(1, vec![(BlockKey::new("zz"), 0usize, n)]);
    let r = 60usize;
    let ranges = RangeIndexer::new(bdm.total_pairs(), r, RangePolicy::CeilDiv);

    let mut computed_break = 0u64;
    let mut computed_return = 0u64;
    for range in 0..r as u64 {
        // Entities relevant to this range, in index order (as the
        // shuffle would deliver them).
        let members: Vec<u64> = (0..n)
            .filter(|&x| relevant_ranges(&bdm, &ranges, 0, x).contains(&range))
            .collect();
        // break semantics (ours).
        let mut buffer: Vec<u64> = Vec::new();
        for &x2 in &members {
            for &x1 in &buffer {
                let k = ranges.range_of(pair_index(&bdm, 0, x1, x2));
                if k == range {
                    computed_break += 1;
                } else if k > range {
                    break;
                }
            }
            buffer.push(x2);
        }
        // return semantics (the listing, read literally).
        let mut buffer: Vec<u64> = Vec::new();
        'group: for &x2 in &members {
            for &x1 in &buffer {
                let k = ranges.range_of(pair_index(&bdm, 0, x1, x2));
                if k == range {
                    computed_return += 1;
                } else if k > range {
                    break 'group;
                }
            }
            buffer.push(x2);
        }
    }
    let expected = n * (n - 1) / 2;
    assert_eq!(computed_break, expected, "break semantics are complete");
    assert!(
        computed_return < expected,
        "literal return semantics must demonstrably drop pairs \
         (computed {computed_return} of {expected}); if this ever fails, \
         the counterexample construction needs a bigger block"
    );
}

#[test]
fn every_range_holds_its_exact_share() {
    let n = 24;
    let input = one_block_input(n, 2);
    let r = 10;
    let config = ErConfig::new(StrategyKind::PairRange)
        .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
        .with_reduce_tasks(r)
        .with_parallelism(1)
        .with_count_only(true);
    let outcome = run_er(input, &config).unwrap();
    let total = (n * (n - 1) / 2) as u64;
    let width = total.div_ceil(r as u64);
    let loads = outcome.reduce_loads();
    for (t, &load) in loads.iter().enumerate() {
        let start = (t as u64) * width;
        let expected = width.min(total.saturating_sub(start));
        assert_eq!(load, expected, "range {t}");
    }
}
