//! Acceptance suite for the two workflow-composed SN scenarios:
//!
//! * **multi-pass SN** — union of window pair sets over several sort
//!   keys, each unioned pair compared exactly once globally (the
//!   first-pass-wins dedup gate), equal to the union-of-oracles ground
//!   truth, byte-identical across parallelism and invariant across
//!   partition counts;
//! * **two-source SN** — R and S interleaved in one sorted order,
//!   cross-source window pairs only, equal to the cross-source oracle
//!   with the same invariances.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};

const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(2012).scaled(0.003));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

fn passes() -> Vec<Arc<dyn SortKeyFunction>> {
    vec![
        Arc::new(AttributeSortKey::title()),
        Arc::new(ReversedSortKey::title()),
    ]
}

fn result_bits(result: &MatchResult) -> Vec<(MatchPair, u64)> {
    result.iter().map(|(p, s)| (p, s.to_bits())).collect()
}

// ---- multi-pass SN -----------------------------------------------------

#[test]
fn multipass_equals_the_union_of_oracles_and_compares_each_pair_once() {
    let input = corpus(3);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let config = SnConfig::new(strategy)
            .with_window(5)
            .with_partitions(4)
            .with_parallelism(1);
        let outcome = run_multipass_sn(input.clone(), &config, &passes()).unwrap();
        let oracle = multipass_sn_oracle(&input, &config, &passes());
        assert_eq!(
            outcome.result.pair_set(),
            oracle.pair_set(),
            "{strategy} diverged from the union of per-pass oracles"
        );
        assert_eq!(
            outcome.total_comparisons(),
            multipass_oracle_comparisons(&input, &config, &passes()),
            "{strategy}: every unioned window pair exactly once"
        );
        assert!(
            outcome.total_skipped() > 0,
            "{strategy}: overlapping passes must engage the dedup gate"
        );
        // The reversed pass must contribute matches the forward pass
        // misses (the whole point of multi-pass SN).
        let forward = run_sorted_neighborhood(input.clone(), &config).unwrap();
        assert!(
            outcome.result.len() > forward.result.len(),
            "{strategy}: the reversed-title pass must add recall \
             (multi {} vs single {})",
            outcome.result.len(),
            forward.result.len()
        );
        // Both passes' stages ran under one workflow.
        assert_eq!(
            outcome.workflow.num_stages(),
            outcome
                .passes
                .iter()
                .map(|p| 2 + usize::from(p.stitch_metrics.is_some()))
                .sum::<usize>()
        );
    }
}

#[test]
fn multipass_output_is_byte_identical_across_parallelism() {
    let input = corpus(4);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let mut reference: Option<Vec<(MatchPair, u64)>> = None;
        for parallelism in PARALLELISM_LEVELS {
            let config = SnConfig::new(strategy)
                .with_window(4)
                .with_partitions(4)
                .with_parallelism(parallelism);
            let outcome = run_multipass_sn(input.clone(), &config, &passes()).unwrap();
            let bits = result_bits(&outcome.result);
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(
                    r, &bits,
                    "{strategy} multi-pass output changed at parallelism {parallelism}"
                ),
            }
        }
    }
}

#[test]
fn multipass_pair_set_is_invariant_under_the_partition_count() {
    let input = corpus(3);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let base = SnConfig::new(strategy).with_window(4).with_parallelism(1);
        let oracle = multipass_sn_oracle(&input, &base.clone().with_partitions(1), &passes());
        for partitions in [1usize, 2, 4, 8] {
            let config = base.clone().with_partitions(partitions);
            let outcome = run_multipass_sn(input.clone(), &config, &passes()).unwrap();
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{strategy} with {partitions} partitions"
            );
            assert_eq!(
                outcome.total_comparisons(),
                multipass_oracle_comparisons(&input, &config, &passes()),
                "{strategy}: comparison count must not depend on partitioning"
            );
        }
    }
}

// ---- two-source SN -----------------------------------------------------

/// Two catalogs over one title space: near-duplicates cross sources,
/// plus same-source near-duplicates that MUST NOT appear in linkage
/// output (they sit adjacently in the interleaved order, so they probe
/// the cross-source gate, not just the window).
fn two_source_corpus(partitions_per_source: usize) -> (Partitions<(), Ent>, Vec<SourceId>) {
    let ds = generate_products(&ds1_spec(7).scaled(0.002));
    let n = ds.entities.len();
    let mut r: Vec<Ent> = Vec::new();
    let mut s: Vec<Ent> = Vec::new();
    for (i, e) in ds.entities.into_iter().enumerate() {
        if i % 2 == 0 {
            r.push(Arc::new(e));
        } else {
            s.push(Arc::new(Entity::with_source(
                SourceId::S,
                e.id().0,
                e.attributes(),
            )));
        }
    }
    assert!(r.len() + s.len() == n);
    two_source_input(r, s, partitions_per_source)
}

#[test]
fn two_source_sn_equals_the_cross_source_oracle() {
    let (input, sources) = two_source_corpus(2);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let config = SnConfig::new(strategy)
            .with_window(5)
            .with_partitions(4)
            .with_parallelism(1);
        let outcome = run_two_source_sn(input.clone(), sources.clone(), &config).unwrap();
        let oracle = two_source_sn_oracle(&input, &config);
        assert_eq!(
            outcome.result.pair_set(),
            oracle.pair_set(),
            "{strategy} diverged from the cross-source oracle"
        );
        assert_eq!(
            outcome.total_comparisons(),
            two_source_oracle_comparisons(&input, &config),
            "{strategy}: each cross-source window pair exactly once"
        );
        assert!(
            outcome
                .result
                .iter()
                .all(|(pair, _)| pair.lo().source == SourceId::R
                    && pair.hi().source == SourceId::S),
            "{strategy}: linkage output must contain only R × S pairs"
        );
        assert!(
            !outcome.result.is_empty(),
            "{strategy}: split duplicates must link across sources"
        );
        // Same-source neighbours exist in the interleaved order and
        // must be skipped (counted), never evaluated.
        assert!(
            outcome
                .workflow
                .counters
                .get(er_loadbalance::compare::SAME_SOURCE_SKIPPED)
                > 0,
            "{strategy}: the cross-source gate must have engaged"
        );
    }
}

#[test]
fn two_source_output_is_byte_identical_across_parallelism() {
    let (input, sources) = two_source_corpus(2);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let mut reference: Option<Vec<(MatchPair, u64)>> = None;
        for parallelism in PARALLELISM_LEVELS {
            let config = SnConfig::new(strategy)
                .with_window(4)
                .with_partitions(4)
                .with_parallelism(parallelism);
            let outcome = run_two_source_sn(input.clone(), sources.clone(), &config).unwrap();
            let bits = result_bits(&outcome.result);
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(
                    r, &bits,
                    "{strategy} two-source output changed at parallelism {parallelism}"
                ),
            }
        }
    }
}

#[test]
fn two_source_pair_set_is_invariant_under_the_partition_count() {
    let (input, sources) = two_source_corpus(1);
    for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
        let base = SnConfig::new(strategy).with_window(4).with_parallelism(1);
        let oracle = two_source_sn_oracle(&input, &base.clone().with_partitions(1));
        for partitions in [1usize, 2, 4, 8] {
            let config = base.clone().with_partitions(partitions);
            let outcome = run_two_source_sn(input.clone(), sources.clone(), &config).unwrap();
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{strategy} with {partitions} partitions"
            );
        }
    }
}

#[test]
fn two_source_strategies_agree_under_thinned_sampling() {
    let (input, sources) = two_source_corpus(2);
    for sample_rate in [1.0, 0.25] {
        let jobsn = run_two_source_sn(
            input.clone(),
            sources.clone(),
            &SnConfig::new(SnStrategy::JobSn)
                .with_window(4)
                .with_partitions(4)
                .with_parallelism(1)
                .with_sample_rate(sample_rate),
        )
        .unwrap();
        let repsn = run_two_source_sn(
            input.clone(),
            sources.clone(),
            &SnConfig::new(SnStrategy::RepSn)
                .with_window(4)
                .with_partitions(4)
                .with_parallelism(1)
                .with_sample_rate(sample_rate),
        )
        .unwrap();
        assert_eq!(
            jobsn.result.pair_set(),
            repsn.result.pair_set(),
            "strategies diverged at sample rate {sample_rate}"
        );
    }
}
