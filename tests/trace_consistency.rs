//! Trace/metrics consistency suite for the observability layer:
//!
//! * **gauge agreement** — for every fault schedule of the
//!   fault-tolerance matrix (fail-once and fail-twice at every task
//!   kind, three scenario families, parallelism {1, 2, 4, 8}), the
//!   per-category event counts recorded by an attached
//!   [`TraceRecorder`] equal the workflow gauges *exactly*:
//!   `attempt_failed == task_failures()`, `attempt_retried ==
//!   tasks_retried()`, `speculative_launched/won` and
//!   `spill_run_sealed` likewise;
//! * **parallelism invariance** — the sorted logical event stream
//!   (timestamps, walls and worker slots stripped) is byte-identical
//!   across parallelism {1, 2, 4, 8} for any deterministic
//!   (deadline-free) plan, faulted or clean;
//! * **spill attribution** — under a small spill threshold every
//!   sealed run is traced, and the count matches `spilled_runs()`;
//! * **speculation attribution** — an injected straggler produces
//!   exactly the launch/win events the gauges report, and
//!   [`TraceReport`] attributes the race to the twin.

use std::sync::Arc;
use std::time::Duration;

use dedupe_mr::prelude::*;
use er_datagen::{ds1_spec, generate_products};
use mr_engine::trace::{TraceRecorder, TraceReport, TraceSink};

const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

const KINDS: [FaultKind; 3] = [FaultKind::Map, FaultKind::Sort, FaultKind::Reduce];

/// Same DS1-shaped corpus the fault-tolerance matrix uses.
fn corpus(m: usize) -> Partitions<(), Ent> {
    let ds = generate_products(&ds1_spec(77).scaled(0.003));
    partition_evenly(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

/// Two-source input: the corpus split into an R and an S catalog.
fn two_source_corpus() -> (Partitions<(), Ent>, Vec<SourceId>) {
    let ds = generate_products(&ds1_spec(78).scaled(0.003));
    let mut r = Vec::new();
    let mut s = Vec::new();
    for (i, e) in ds.entities.into_iter().enumerate() {
        if i % 2 == 0 {
            r.push(Arc::new(e) as Ent);
        } else {
            s.push(Arc::new(Entity::with_source(SourceId::S, e.id().0, e.attributes())) as Ent);
        }
    }
    two_source_input(r, s, 2)
}

/// The three scenario families of the matrix, with their inputs and
/// the number of workflow stages a wildcard task-0 injection strikes.
fn families() -> Vec<(&'static str, Scenario, Partitions<(), Ent>, u64)> {
    let (linkage_input, sources) = two_source_corpus();
    vec![
        (
            "BlockSplit dedup",
            Scenario::Dedup {
                strategy: StrategyKind::BlockSplit,
            },
            corpus(4),
            2,
        ),
        (
            "RepSN",
            Scenario::sorted_neighborhood(SnStrategy::RepSn),
            corpus(4),
            2,
        ),
        (
            "two-source linkage",
            Scenario::Linkage {
                strategy: StrategyKind::BlockSplit,
                sources,
            },
            linkage_input,
            2,
        ),
    ]
}

fn resolver(runtime: &Runtime) -> Resolver<'_> {
    Resolver::new(runtime).with_window(3)
}

/// The recorder as a shared sink (explicit unsize to the trait
/// object, which argument-position inference won't do through
/// `Arc::clone`).
fn sink_of(recorder: &Arc<TraceRecorder>) -> Arc<dyn TraceSink> {
    let concrete: Arc<TraceRecorder> = Arc::clone(recorder);
    concrete
}

/// Every count the recorder derived must equal the corresponding
/// workflow gauge — the events are emitted at the gauge-increment
/// sites, so any disagreement is a threading bug, not noise.
fn assert_counts_match_gauges(recorder: &TraceRecorder, workflow: &WorkflowMetrics, tag: &str) {
    assert_eq!(
        recorder.count("attempt_failed"),
        workflow.task_failures(),
        "{tag}: attempt_failed events vs task_failures gauge"
    );
    assert_eq!(
        recorder.count("attempt_retried"),
        workflow.tasks_retried(),
        "{tag}: attempt_retried events vs tasks_retried gauge"
    );
    assert_eq!(
        recorder.count("speculative_launched"),
        workflow.speculative_launched(),
        "{tag}: speculative_launched events vs gauge"
    );
    assert_eq!(
        recorder.count("speculative_won"),
        workflow.speculative_won(),
        "{tag}: speculative_won events vs gauge"
    );
    assert_eq!(
        recorder.count("spill_run_sealed"),
        workflow.spilled_runs(),
        "{tag}: spill_run_sealed events vs spilled_runs gauge"
    );
    // Deadline-free runs: every started attempt either finishes or
    // fails — nothing is abandoned mid-flight.
    assert_eq!(
        recorder.count("attempt_started"),
        recorder.count("attempt_finished") + recorder.count("attempt_failed"),
        "{tag}: attempt lifecycle must balance"
    );
}

/// Clean runs: the recorder observes the full job/stage lifecycle, no
/// failure-path events, and the logical stream is byte-identical at
/// every parallelism.
#[test]
fn clean_runs_trace_the_full_lifecycle_and_are_parallelism_invariant() {
    for (name, scenario, input, stages) in families() {
        let mut reference: Option<Vec<String>> = None;
        for parallelism in PARALLELISM_LEVELS {
            let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
            let recorder = Arc::new(TraceRecorder::new());
            let outcome = resolver(&runtime)
                .with_trace_sink(sink_of(&recorder))
                .resolve(&scenario, input.clone())
                .unwrap_or_else(|e| panic!("{name} x{parallelism}: resolve failed: {e}"));
            assert_counts_match_gauges(
                &recorder,
                &outcome.workflow,
                &format!("{name} clean x{parallelism}"),
            );
            assert_eq!(recorder.count("attempt_failed"), 0, "{name} x{parallelism}");
            assert_eq!(
                recorder.count("job_started"),
                stages,
                "{name} x{parallelism}: one job per stage"
            );
            assert_eq!(
                recorder.count("job_finished"),
                recorder.count("job_started"),
                "{name} x{parallelism}"
            );
            assert_eq!(
                recorder.count("stage_started"),
                stages,
                "{name} x{parallelism}"
            );
            assert_eq!(
                recorder.count("stage_finished"),
                stages,
                "{name} x{parallelism}"
            );
            let logical = recorder.logical_events();
            assert!(!logical.is_empty(), "{name} x{parallelism}: empty trace");
            match &reference {
                None => reference = Some(logical),
                Some(expected) => assert_eq!(
                    &logical, expected,
                    "{name} x{parallelism}: logical stream drifted from x1"
                ),
            }
        }
    }
}

/// Fail-once at every kind, at every parallelism: the recorded
/// failure/retry events agree with the gauges exactly (one per
/// stage), and the logical stream — which now includes the
/// `attempt_failed` / `attempt_retried` lines — is still
/// parallelism-invariant.
#[test]
fn fail_once_matrix_counts_match_gauges_at_every_parallelism() {
    for (name, scenario, input, stages) in families() {
        for kind in KINDS {
            let mut reference: Option<Vec<String>> = None;
            for parallelism in PARALLELISM_LEVELS {
                let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
                let recorder = Arc::new(TraceRecorder::new());
                let outcome = resolver(&runtime)
                    .with_trace_sink(sink_of(&recorder))
                    .with_fault_policy(FaultPolicy::retry(2))
                    .with_fault_plan(FaultPlan::new().silence_injected_panics().panic_at(
                        FaultPlan::ANY_JOB,
                        kind,
                        0,
                        1,
                        "injected once",
                    ))
                    .resolve(&scenario, input.clone())
                    .unwrap_or_else(|e| {
                        panic!("{name}, {kind} fault, x{parallelism}: resolve failed: {e}")
                    });
                let tag = format!("{name}, {kind} fault, x{parallelism}");
                assert_counts_match_gauges(&recorder, &outcome.workflow, &tag);
                assert_eq!(recorder.count("attempt_failed"), stages, "{tag}");
                assert_eq!(recorder.count("attempt_retried"), stages, "{tag}");
                assert_eq!(recorder.count("speculative_launched"), 0, "{tag}");
                let logical = recorder.logical_events();
                match &reference {
                    None => reference = Some(logical),
                    Some(expected) => assert_eq!(
                        &logical, expected,
                        "{tag}: faulted logical stream drifted from x1"
                    ),
                }
            }
        }
    }
}

/// Fail-twice under a three-attempt budget: every event is counted
/// exactly twice per stage, in lockstep with the gauges.
#[test]
fn fail_twice_counts_double_in_lockstep_with_gauges() {
    for (name, scenario, input, stages) in families() {
        for kind in KINDS {
            let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(4));
            let recorder = Arc::new(TraceRecorder::new());
            let outcome = resolver(&runtime)
                .with_trace_sink(sink_of(&recorder))
                .with_fault_policy(FaultPolicy::retry(3))
                .with_fault_plan(
                    FaultPlan::new()
                        .silence_injected_panics()
                        .panic_at(FaultPlan::ANY_JOB, kind, 0, 1, "first")
                        .panic_at(FaultPlan::ANY_JOB, kind, 0, 2, "second"),
                )
                .resolve(&scenario, input.clone())
                .unwrap_or_else(|e| panic!("{name}, {kind} fail-twice: resolve failed: {e}"));
            let tag = format!("{name}, {kind} fail-twice");
            assert_counts_match_gauges(&recorder, &outcome.workflow, &tag);
            assert_eq!(recorder.count("attempt_failed"), 2 * stages, "{tag}");
            assert_eq!(recorder.count("attempt_retried"), 2 * stages, "{tag}");
        }
    }
}

/// A small spill threshold forces map-side runs to disk: every sealed
/// run emits exactly one event, the count equals the gauge, and the
/// spill schedule — a function of each map task's input alone — is
/// parallelism-invariant.
#[test]
fn spill_events_match_the_spilled_runs_gauge() {
    let scenario = Scenario::Dedup {
        strategy: StrategyKind::BlockSplit,
    };
    let input = corpus(4);
    let mut reference: Option<Vec<String>> = None;
    for parallelism in PARALLELISM_LEVELS {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
        let recorder = Arc::new(TraceRecorder::new());
        let outcome = resolver(&runtime)
            .with_spill_threshold(Some(8))
            .with_trace_sink(sink_of(&recorder))
            .resolve(&scenario, input.clone())
            .unwrap();
        assert!(
            outcome.workflow.spilled_runs() > 0,
            "x{parallelism}: threshold 8 must force spills on this corpus"
        );
        assert_counts_match_gauges(
            &recorder,
            &outcome.workflow,
            &format!("spill x{parallelism}"),
        );
        let logical = recorder.logical_events();
        assert!(
            logical.iter().any(|l| l.starts_with("spill_run_sealed ")),
            "x{parallelism}: sealed runs must appear in the logical stream"
        );
        match &reference {
            None => reference = Some(logical),
            Some(expected) => assert_eq!(
                &logical, expected,
                "x{parallelism}: spill schedule drifted from x1"
            ),
        }
    }
}

/// An injected straggler under a task deadline: the recorder sees
/// exactly the speculative launch and win the gauges report, the
/// logical stream is untouched by the race (speculation events are
/// operational, not logical), and [`TraceReport`] attributes the win
/// to the twin.
#[test]
fn speculation_events_match_gauges_and_report_attribution() {
    let input = corpus(4);
    let scenario = Scenario::Dedup {
        strategy: StrategyKind::BlockSplit,
    };
    let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(4));
    let recorder = Arc::new(TraceRecorder::new());
    let outcome = resolver(&runtime)
        .with_trace_sink(sink_of(&recorder))
        .with_fault_policy(
            FaultPolicy::retry(2).with_task_deadline(Some(Duration::from_millis(150))),
        )
        .with_fault_plan(FaultPlan::new().delay_at(
            "bdm",
            FaultKind::Map,
            0,
            1,
            Duration::from_millis(1200),
        ))
        .resolve(&scenario, input)
        .unwrap();
    assert_eq!(outcome.workflow.speculative_launched(), 1);
    assert_eq!(recorder.count("speculative_launched"), 1);
    assert_eq!(outcome.workflow.speculative_won(), 1);
    assert_eq!(recorder.count("speculative_won"), 1);
    assert!(
        recorder.count("speculative_lost") <= 1,
        "at most the one straggler can lose the race"
    );
    assert!(
        recorder
            .logical_events()
            .iter()
            .all(|l| !l.starts_with("speculative")),
        "speculation is operational — it must never enter the logical stream"
    );
    let report = TraceReport::from_events(&recorder.events());
    assert_eq!(report.speculation().len(), 1, "one race, one attribution");
    let race = &report.speculation()[0];
    assert_eq!(race.job, "bdm");
    assert_eq!(race.kind, FaultKind::Map);
    assert_eq!(race.task, 0);
    assert!(race.twin_won, "the clean twin must beat a 1.2s straggler");
}
