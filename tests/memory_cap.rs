//! The two memory guards, end to end:
//!
//! * **reduce side** — BlockSplit's split-policy cap: blocks larger
//!   than the cap split even when their workload fits the average,
//!   bounding the entities any reduce group must buffer;
//! * **map side** — the shuffle spill threshold: map tasks seal their
//!   in-memory buckets into immutable sorted runs every `t` open
//!   records, so peak map residency is `O(t)` regardless of input
//!   size, with byte-identical output at any threshold.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_loadbalance::block_split::{create_match_tasks_with_policy, SplitPolicy};
use mr_engine::metrics::JobMetrics;

fn one_big_block(n: usize, m: usize) -> Partitions<(), Ent> {
    let entities: Vec<Ent> = (0..n)
        .map(|id| {
            Arc::new(Entity::new(
                id as u64,
                [("title", format!("aaa item {id:05}").as_str())],
            ))
        })
        .collect();
    partition_round_robin(entities.into_iter().map(|e| ((), e)).collect(), m)
}

#[test]
fn capped_run_produces_identical_matches() {
    let input = one_big_block(60, 4);
    let plain = ErConfig::new(StrategyKind::BlockSplit)
        .with_reduce_tasks(1)
        .with_parallelism(2);
    let capped = plain.clone().with_memory_cap(20);
    let a = run_er(input.clone(), &plain).unwrap();
    let b = run_er(input, &capped).unwrap();
    assert_eq!(a.result.pair_set(), b.result.pair_set());
    assert_eq!(a.total_comparisons(), b.total_comparisons());
}

#[test]
fn cap_bounds_reduce_group_buffering() {
    // r = 1: the paper's policy keeps the 60-entity block whole (one
    // reduce group buffers all 60); a 20-entity cap splits it into
    // sub-blocks of ~15 (round-robin over 4 partitions), so no group
    // buffers more than two sub-blocks.
    let n = 60u64;
    let m = 4usize;
    let input = one_big_block(n as usize, m);

    let plain = run_er(
        one_big_block(n as usize, m),
        &ErConfig::new(StrategyKind::BlockSplit)
            .with_reduce_tasks(1)
            .with_parallelism(1)
            .with_count_only(true),
    )
    .unwrap();
    let max_group_plain = plain
        .match_metrics
        .reduce_tasks
        .iter()
        .map(|t| t.records_in)
        .max()
        .unwrap();
    assert_eq!(max_group_plain, n, "uncapped: the whole block in one task");

    let capped = run_er(
        input,
        &ErConfig::new(StrategyKind::BlockSplit)
            .with_reduce_tasks(1)
            .with_parallelism(1)
            .with_count_only(true)
            .with_memory_cap(20),
    )
    .unwrap();
    // All match tasks share reduce task 0 (r = 1), but each *group*
    // (match task) holds at most two sub-blocks of 15.
    let groups = capped
        .match_metrics
        .reduce_tasks
        .iter()
        .map(|t| t.counter("mr.reduce.input.groups"))
        .sum::<u64>();
    assert!(groups > 1, "the cap must create multiple match tasks");
    assert_eq!(capped.total_comparisons(), n * (n - 1) / 2);
}

/// A DS1-shaped corpus of exactly `n` entities with real titles (so
/// full scoring runs).
fn spill_corpus(n: usize, m: usize) -> Partitions<(), Ent> {
    let mut spec = er_datagen::ds1_spec(42).scaled(n as f64 / 114_000.0);
    spec.n_entities = n;
    let ds = er_datagen::generate_products(&spec);
    partition_round_robin(
        ds.entities.into_iter().map(|e| ((), Arc::new(e))).collect(),
        m,
    )
}

#[test]
fn spill_threshold_bounds_map_and_reduce_resident_records() {
    // Acceptance gate of the out-of-core map side: on a corpus at
    // least 4x the spill threshold, the peak resident record gauges
    // (map buckets + reduce merge window) must stay a small fraction
    // of the input, and the output must not change at all.
    let n = 200usize;
    let threshold = 25usize; // n/m = 100 records per map task >= 4x this
    let m = 2usize;
    let input = spill_corpus(n, m);

    let runtime = Runtime::new(
        RuntimeConfig::new()
            .with_parallelism(2)
            .with_reduce_tasks(3),
    );
    let plain = Resolver::new(&runtime);
    let spilling = plain.clone().with_spill_threshold(Some(threshold));
    let scenario = Scenario::Dedup {
        strategy: StrategyKind::BlockSplit,
    };

    let reference = plain.resolve(&scenario, input.clone()).unwrap();
    assert_eq!(
        reference.workflow.spilled_runs(),
        0,
        "no threshold, no spills"
    );

    let spilled = spilling.resolve(&scenario, input).unwrap();
    assert!(
        spilled.workflow.spilled_runs() > 0,
        "a 4x-threshold corpus must actually spill"
    );
    // Map side: every map task's resident bucket set stays at the
    // threshold; multi-key blocking may hold the final record's few
    // replicas on top.
    let map_peak = spilled.workflow.map_peak_resident_records();
    assert!(
        map_peak <= threshold as u64 + 4,
        "map peak {map_peak} must be bounded by the spill threshold {threshold}"
    );
    // Whole-run residency (worst map task + worst reduce merge
    // window) stays well under the input size: the run is out-of-core
    // on both sides.
    let reduce_peak: u64 = spilled
        .workflow
        .stages
        .iter()
        .map(JobMetrics::peak_resident_records)
        .max()
        .unwrap_or(0);
    assert!(
        map_peak + reduce_peak < (n as u64) / 2,
        "resident set {map_peak} + {reduce_peak} must stay below half the {n}-record input"
    );
    // And spilling must be invisible in the output.
    assert_eq!(
        result_bits(&spilled.result),
        result_bits(&reference.result),
        "spilling changed the match output"
    );
    // The combiner now runs per sealed run, so *post-combine* record
    // counts may legitimately differ; everything upstream of the
    // combiner and everything semantic must not.
    for counter in [
        "er.comparisons",
        "mr.map.input.records",
        "mr.map.output.records.precombine",
        "mr.map.side.records",
        "mr.reduce.output.records",
    ] {
        assert_eq!(
            spilled.workflow.counters.get(counter),
            reference.workflow.counters.get(counter),
            "spilling changed `{counter}`"
        );
    }
}

/// Byte-exact view of a match result: pairs plus raw score bits.
fn result_bits(result: &MatchResult) -> Vec<(MatchPair, u64)> {
    result.iter().map(|(p, s)| (p, s.to_bits())).collect()
}

#[test]
fn output_is_byte_identical_across_spill_thresholds_and_parallelism() {
    // threshold in {1 (spill every record), default (never), "infinity"
    // (threshold > input, zero seals)} x parallelism {1, 2, 4, 8}: one
    // reference, eleven runs, zero drift.
    let input = spill_corpus(120, 3);
    let scenario = Scenario::Dedup {
        strategy: StrategyKind::BlockSplit,
    };
    let thresholds = [Some(1), None, Some(usize::MAX)];

    let mut reference: Option<Vec<(MatchPair, u64)>> = None;
    for parallelism in [1usize, 2, 4, 8] {
        let runtime = Runtime::new(
            RuntimeConfig::new()
                .with_parallelism(parallelism)
                .with_reduce_tasks(4),
        );
        for threshold in thresholds {
            let resolver = Resolver::new(&runtime).with_spill_threshold(threshold);
            let outcome = resolver.resolve(&scenario, input.clone()).unwrap();
            if threshold == Some(usize::MAX) {
                assert_eq!(
                    outcome.workflow.spilled_runs(),
                    0,
                    "a threshold beyond the input must never seal a run"
                );
            }
            let bits = result_bits(&outcome.result);
            match &reference {
                None => reference = Some(bits),
                Some(expected) => assert_eq!(
                    &bits, expected,
                    "threshold {threshold:?} x parallelism {parallelism} drifted"
                ),
            }
        }
    }
}

#[test]
fn map_memory_gauges_are_parallelism_invariant() {
    // The gauges measure the plan (records per map task at each
    // instant), not the schedule: timing-independent by construction,
    // pinned here across worker counts.
    let input = spill_corpus(120, 3);
    let scenario = Scenario::sorted_neighborhood(SnStrategy::JobSn);
    let mut reference: Option<(u64, u64)> = None;
    for parallelism in [1usize, 2, 8] {
        let runtime = Runtime::new(RuntimeConfig::new().with_parallelism(parallelism));
        let resolver = Resolver::new(&runtime)
            .with_window(4)
            .with_partitions(3)
            .with_spill_threshold(Some(10));
        let outcome = resolver.resolve(&scenario, input.clone()).unwrap();
        let gauges = (
            outcome.workflow.map_peak_resident_records(),
            outcome.workflow.spilled_runs(),
        );
        match reference {
            None => reference = Some(gauges),
            Some(expected) => assert_eq!(
                gauges, expected,
                "p{parallelism}: map gauges must not depend on the schedule"
            ),
        }
    }
}

#[test]
fn cap_splits_below_average_blocks() {
    use er_loadbalance::bdm::BlockDistributionMatrix;
    // Two equal blocks, r = 2: each fits the average exactly, so the
    // paper's policy keeps both whole; a cap of 5 splits both.
    let bdm = BlockDistributionMatrix::from_counts(
        2,
        vec![
            (BlockKey::new("a"), 0, 4),
            (BlockKey::new("a"), 1, 4),
            (BlockKey::new("b"), 0, 4),
            (BlockKey::new("b"), 1, 4),
        ],
    );
    let plain = create_match_tasks_with_policy(&bdm, 2, SplitPolicy::paper());
    assert_eq!(plain.len(), 2, "both blocks whole under the paper policy");
    let capped = create_match_tasks_with_policy(&bdm, 2, SplitPolicy::with_memory_cap(5));
    assert_eq!(capped.len(), 6, "3 tasks per block once capped");
    let total: u64 = capped.iter().map(|t| t.comparisons).sum();
    assert_eq!(total, 2 * 28, "pairs conserved");
}
