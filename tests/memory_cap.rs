//! The memory-guard extension of BlockSplit's split policy: blocks
//! larger than the cap split even when their workload fits the
//! average, bounding the entities any reduce group must buffer.

use std::sync::Arc;

use dedupe_mr::prelude::*;
use er_loadbalance::block_split::{create_match_tasks_with_policy, SplitPolicy};

fn one_big_block(n: usize, m: usize) -> Partitions<(), Ent> {
    let entities: Vec<Ent> = (0..n)
        .map(|id| {
            Arc::new(Entity::new(
                id as u64,
                [("title", format!("aaa item {id:05}").as_str())],
            ))
        })
        .collect();
    partition_round_robin(entities.into_iter().map(|e| ((), e)).collect(), m)
}

#[test]
fn capped_run_produces_identical_matches() {
    let input = one_big_block(60, 4);
    let plain = ErConfig::new(StrategyKind::BlockSplit)
        .with_reduce_tasks(1)
        .with_parallelism(2);
    let capped = plain.clone().with_memory_cap(20);
    let a = run_er(input.clone(), &plain).unwrap();
    let b = run_er(input, &capped).unwrap();
    assert_eq!(a.result.pair_set(), b.result.pair_set());
    assert_eq!(a.total_comparisons(), b.total_comparisons());
}

#[test]
fn cap_bounds_reduce_group_buffering() {
    // r = 1: the paper's policy keeps the 60-entity block whole (one
    // reduce group buffers all 60); a 20-entity cap splits it into
    // sub-blocks of ~15 (round-robin over 4 partitions), so no group
    // buffers more than two sub-blocks.
    let n = 60u64;
    let m = 4usize;
    let input = one_big_block(n as usize, m);

    let plain = run_er(
        one_big_block(n as usize, m),
        &ErConfig::new(StrategyKind::BlockSplit)
            .with_reduce_tasks(1)
            .with_parallelism(1)
            .with_count_only(true),
    )
    .unwrap();
    let max_group_plain = plain
        .match_metrics
        .reduce_tasks
        .iter()
        .map(|t| t.records_in)
        .max()
        .unwrap();
    assert_eq!(max_group_plain, n, "uncapped: the whole block in one task");

    let capped = run_er(
        input,
        &ErConfig::new(StrategyKind::BlockSplit)
            .with_reduce_tasks(1)
            .with_parallelism(1)
            .with_count_only(true)
            .with_memory_cap(20),
    )
    .unwrap();
    // All match tasks share reduce task 0 (r = 1), but each *group*
    // (match task) holds at most two sub-blocks of 15.
    let groups = capped
        .match_metrics
        .reduce_tasks
        .iter()
        .map(|t| t.counter("mr.reduce.input.groups"))
        .sum::<u64>();
    assert!(groups > 1, "the cap must create multiple match tasks");
    assert_eq!(capped.total_comparisons(), n * (n - 1) / 2);
}

#[test]
fn cap_splits_below_average_blocks() {
    use er_loadbalance::bdm::BlockDistributionMatrix;
    // Two equal blocks, r = 2: each fits the average exactly, so the
    // paper's policy keeps both whole; a cap of 5 splits both.
    let bdm = BlockDistributionMatrix::from_counts(
        2,
        vec![
            (BlockKey::new("a"), 0, 4),
            (BlockKey::new("a"), 1, 4),
            (BlockKey::new("b"), 0, 4),
            (BlockKey::new("b"), 1, 4),
        ],
    );
    let plain = create_match_tasks_with_policy(&bdm, 2, SplitPolicy::paper());
    assert_eq!(plain.len(), 2, "both blocks whole under the paper policy");
    let capped = create_match_tasks_with_policy(&bdm, 2, SplitPolicy::with_memory_cap(5));
    assert_eq!(capped.len(), 6, "3 tasks per block once capped");
    let total: u64 = capped.iter().map(|t| t.comparisons).sum();
    assert_eq!(total, 2 * 28, "pairs conserved");
}
