//! Workload statistics extracted from executed jobs.

use mr_engine::metrics::JobMetrics;

use crate::{StrategyKind, COMPARISONS};

/// Summary of one matching job's workload distribution.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    /// The strategy that produced the workload.
    pub strategy: StrategyKind,
    /// Entities read by the map phase.
    pub map_input_records: u64,
    /// Key-value pairs emitted by the map phase — Figure 12's metric.
    pub map_output_records: u64,
    /// Comparisons per reduce task, in task order.
    pub reduce_comparisons: Vec<u64>,
}

impl WorkloadStats {
    /// Extracts stats from a matching job's metrics.
    pub fn from_metrics(strategy: StrategyKind, metrics: &JobMetrics) -> Self {
        Self {
            strategy,
            map_input_records: metrics.map_input_records(),
            map_output_records: metrics.map_output_records(),
            reduce_comparisons: metrics.per_reduce_counter(COMPARISONS),
        }
    }

    /// Total comparisons across reduce tasks.
    pub fn total_comparisons(&self) -> u64 {
        self.reduce_comparisons.iter().sum()
    }

    /// Largest reduce-task comparison load.
    pub fn max_comparisons(&self) -> u64 {
        self.reduce_comparisons.iter().copied().max().unwrap_or(0)
    }

    /// Max/mean comparison load (1.0 = perfect balance). Reduce tasks
    /// with zero load still count toward the mean — an idle task is
    /// precisely the waste the paper's strategies eliminate.
    pub fn imbalance(&self) -> f64 {
        if self.reduce_comparisons.is_empty() {
            return 1.0;
        }
        let total = self.total_comparisons();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.reduce_comparisons.len() as f64;
        self.max_comparisons() as f64 / mean
    }

    /// Average number of replicas emitted per input entity (1.0 for
    /// Basic; BlockSplit and PairRange replicate split-block/
    /// multi-range entities).
    pub fn replication_factor(&self) -> f64 {
        if self.map_input_records == 0 {
            return 0.0;
        }
        self.map_output_records as f64 / self.map_input_records as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_er, ErConfig};
    use crate::running_example;

    fn stats_for(strategy: StrategyKind) -> WorkloadStats {
        let config = ErConfig::new(strategy)
            .with_blocking(running_example::blocking())
            .with_reduce_tasks(3)
            .with_parallelism(1)
            .with_count_only(true);
        let outcome = run_er(running_example::entity_partitions(), &config).unwrap();
        WorkloadStats::from_metrics(strategy, &outcome.match_metrics)
    }

    #[test]
    fn basic_replication_factor_is_one() {
        let s = stats_for(StrategyKind::Basic);
        assert_eq!(s.map_output_records, 14);
        assert!((s.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_split_emits_19_pairs_on_the_example() {
        let s = stats_for(StrategyKind::BlockSplit);
        assert_eq!(s.map_output_records, 19, "paper: 19 KV pairs");
        assert!(s.replication_factor() > 1.0);
    }

    #[test]
    fn pair_range_emits_18_pairs_on_the_example() {
        let s = stats_for(StrategyKind::PairRange);
        assert_eq!(s.map_output_records, 18, "Figure 7 dataflow");
    }

    #[test]
    fn imbalance_reflects_balance_quality() {
        let balanced = stats_for(StrategyKind::PairRange);
        assert!(balanced.imbalance() < 1.1, "7/7/6 is near-perfect");
        assert_eq!(balanced.total_comparisons(), 20);
        assert_eq!(balanced.max_comparisons(), 7);
    }

    #[test]
    fn degenerate_stats() {
        let s = WorkloadStats {
            strategy: StrategyKind::Basic,
            map_input_records: 0,
            map_output_records: 0,
            reduce_comparisons: vec![],
        };
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.replication_factor(), 0.0);
        assert_eq!(s.max_comparisons(), 0);
    }
}
