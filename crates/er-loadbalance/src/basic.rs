//! The Basic strategy (paper Section III): hash blocking keys to
//! reduce tasks. One MR job, no BDM — and no skew resistance: an
//! entire block is matched inside a single reduce task, so the largest
//! block lower-bounds the job's execution time.

use std::sync::Arc;

use er_core::blocking::{BlockKey, BlockingFunction};
use er_core::result::MatchPair;
use mr_engine::prelude::*;

use er_core::MatcherCache;

use crate::compare::{PairComparer, PreparedRef};
use crate::{Ent, Keyed};

/// Basic mapper: derive the blocking key(s), emit `(key, entity)`.
#[derive(Clone)]
pub struct BasicMapper {
    blocking: Arc<dyn BlockingFunction>,
}

impl BasicMapper {
    /// Creates the mapper.
    pub fn new(blocking: Arc<dyn BlockingFunction>) -> Self {
        Self { blocking }
    }
}

impl Mapper for BasicMapper {
    type KIn = ();
    type VIn = Ent;
    type KOut = BlockKey;
    type VOut = Keyed;
    type Side = ();

    fn map(&mut self, _key: &(), entity: &Ent, ctx: &mut MapContext<BlockKey, Keyed, ()>) {
        let replicas = Keyed::derive_all(self.blocking.as_ref(), entity);
        if replicas.is_empty() {
            ctx.add_counter(crate::bdm_job::NULL_KEY_ENTITIES, 1);
            return;
        }
        for keyed in replicas {
            ctx.emit(keyed.key.clone(), keyed);
        }
    }
}

/// Basic reducer: stream all pairs of one block.
///
/// Every entity of the block must be buffered — the memory problem the
/// paper points out ("a reduce task must therefore store all entities
/// passed to a reduce call in main memory"). Each entity is prepared
/// once as it is buffered; the O(b²) pair loop runs entirely on cached
/// prepared forms.
#[derive(Clone)]
pub struct BasicReducer {
    comparer: PairComparer,
    cache: MatcherCache,
}

impl BasicReducer {
    /// Creates the reducer.
    pub fn new(comparer: PairComparer) -> Self {
        let cache = comparer.new_cache();
        Self { comparer, cache }
    }
}

impl Reducer for BasicReducer {
    type KIn = BlockKey;
    type VIn = Keyed;
    type KOut = MatchPair;
    type VOut = f64;

    fn reduce(
        &mut self,
        group: Group<'_, BlockKey, Keyed>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        let block = group.key().clone();
        let mut buffer: Vec<PreparedRef<'_>> = Vec::with_capacity(group.len());
        for e2 in group.values() {
            let e2 = self.comparer.prepare_cached(&mut self.cache, e2);
            for e1 in &buffer {
                self.comparer
                    .compare_prepared(&self.cache, e1, &e2, &block, ctx);
            }
            buffer.push(e2);
        }
    }
}

/// Builds the Basic job: hash-partition on the blocking key, sort and
/// group on the full key.
pub fn basic_job(
    blocking: Arc<dyn BlockingFunction>,
    comparer: PairComparer,
    reduce_tasks: usize,
    parallelism: usize,
) -> Job<BasicMapper, BasicReducer> {
    Job::builder(
        "er-basic",
        BasicMapper::new(blocking),
        BasicReducer::new(comparer),
    )
    .reduce_tasks(reduce_tasks)
    .parallelism(parallelism)
    .partitioner(HashPartitioner)
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::COMPARISONS;
    use er_core::blocking::PrefixBlocking;
    use er_core::{Entity, Matcher};

    fn input() -> Partitions<(), Ent> {
        let e = |id: u64, t: &str| ((), Arc::new(Entity::new(id, [("title", t)])));
        vec![
            vec![e(0, "aa same title x"), e(1, "bb other")],
            vec![
                e(2, "aa same title y"),
                e(3, "aa unrelated zz"),
                e(4, "bb other"),
            ],
        ]
    }

    fn run(r: usize) -> (Vec<(MatchPair, f64)>, JobMetrics) {
        let job = basic_job(
            Arc::new(PrefixBlocking::new("title", 2)),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            r,
            1,
        );
        let out = job.run(input()).unwrap();
        let metrics = out.metrics.clone();
        (out.into_records(), metrics)
    }

    #[test]
    fn finds_matches_within_blocks() {
        let (records, metrics) = run(3);
        // Block "aa": {0,2,3} -> 3 comparisons; block "bb": {1,4} -> 1.
        assert_eq!(metrics.counters.get(COMPARISONS), 4);
        // 0 and 2 differ by one char at length 15 -> sim 14/15 > 0.8;
        // 1 and 4 are identical.
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn map_output_equals_input_size_no_replication() {
        let (_, metrics) = run(2);
        assert_eq!(
            metrics.map_output_records(),
            5,
            "Basic never replicates entities (paper Figure 12)"
        );
    }

    #[test]
    fn whole_block_lands_on_one_reduce_task() {
        let (_, metrics) = run(4);
        // Each reduce task's comparison count must equal a sum of whole
        // blocks (3 or 1 here) — never a fraction of one.
        for t in &metrics.reduce_tasks {
            let c = t.counter(COMPARISONS);
            assert!(matches!(c, 0 | 1 | 3 | 4), "got {c}");
        }
    }
}
