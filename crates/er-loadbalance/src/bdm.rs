//! The Block Distribution Matrix (paper Section III-B).
//!
//! A `b × m` matrix giving the number of entities of each of `b`
//! blocks in each of `m` input partitions. Both load-balancing
//! strategies read it at map-task initialization to plan the entity
//! redistribution. Block indexes are assigned in lexicographic
//! blocking-key order — a deterministic stand-in for the paper's
//! "(arbitrary) order of the blocks from the reduce output", which in
//! the running example is lexicographic as well (w, x, y, z).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use er_core::blocking::BlockKey;
use er_core::pairs::triangle_pairs;

/// One row of the BDM: a block and its per-partition entity counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRow {
    /// The blocking key of this block.
    pub key: BlockKey,
    /// Entity count per input partition (length `m`).
    pub per_partition: Vec<u64>,
    /// Total entities in the block.
    pub total: u64,
}

/// The block distribution matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDistributionMatrix {
    rows: Vec<BlockRow>,
    by_key: BTreeMap<BlockKey, usize>,
    num_partitions: usize,
    /// `pair_offsets[k]` = o(k) = pairs in blocks 0..k; last entry = P.
    pair_offsets: Vec<u64>,
}

impl BlockDistributionMatrix {
    /// Builds a BDM from `(blocking key, partition index, count)`
    /// triples — the output records of the BDM job (Algorithm 3).
    ///
    /// Duplicate `(key, partition)` triples are summed. `m` is the
    /// total number of input partitions.
    ///
    /// # Panics
    /// If a partition index is `>= m`.
    pub fn from_counts(m: usize, counts: impl IntoIterator<Item = (BlockKey, usize, u64)>) -> Self {
        let mut per_key: BTreeMap<BlockKey, Vec<u64>> = BTreeMap::new();
        for (key, partition, count) in counts {
            assert!(
                partition < m,
                "partition index {partition} out of range (m = {m})"
            );
            per_key.entry(key).or_insert_with(|| vec![0; m])[partition] += count;
        }
        let mut rows = Vec::with_capacity(per_key.len());
        let mut by_key = BTreeMap::new();
        for (key, per_partition) in per_key {
            let total = per_partition.iter().sum();
            by_key.insert(key.clone(), rows.len());
            rows.push(BlockRow {
                key,
                per_partition,
                total,
            });
        }
        let mut pair_offsets = Vec::with_capacity(rows.len() + 1);
        let mut acc = 0u64;
        for row in &rows {
            pair_offsets.push(acc);
            acc += triangle_pairs(row.total);
        }
        pair_offsets.push(acc);
        Self {
            rows,
            by_key,
            num_partitions: m,
            pair_offsets,
        }
    }

    /// Convenience: builds the BDM directly from per-partition blocking
    /// key sequences (used by the analytic experiment path, bypassing
    /// job execution).
    pub fn from_key_partitions(partitions: &[Vec<BlockKey>]) -> Self {
        let m = partitions.len();
        let mut counts: BTreeMap<(BlockKey, usize), u64> = BTreeMap::new();
        for (p, keys) in partitions.iter().enumerate() {
            for key in keys {
                *counts.entry((key.clone(), p)).or_insert(0) += 1;
            }
        }
        Self::from_counts(m, counts.into_iter().map(|((k, p), c)| (k, p, c)))
    }

    /// Number of blocks `b`.
    pub fn num_blocks(&self) -> usize {
        self.rows.len()
    }

    /// Number of input partitions `m`.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Index of the block with `key`, if present.
    pub fn block_index(&self, key: &BlockKey) -> Option<usize> {
        self.by_key.get(key).copied()
    }

    /// The blocking key of block `k`.
    pub fn key(&self, k: usize) -> &BlockKey {
        &self.rows[k].key
    }

    /// Row access.
    pub fn row(&self, k: usize) -> &BlockRow {
        &self.rows[k]
    }

    /// |Φ_k|: entities in block `k`.
    pub fn size(&self, k: usize) -> u64 {
        self.rows[k].total
    }

    /// |Φ_k^i|: entities of block `k` in partition `i`.
    pub fn size_in(&self, k: usize, partition: usize) -> u64 {
        self.rows[k].per_partition[partition]
    }

    /// Number of comparisons within block `k`.
    pub fn pairs_in_block(&self, k: usize) -> u64 {
        triangle_pairs(self.size(k))
    }

    /// o(k): comparisons in all blocks before `k` (paper formula).
    pub fn pair_offset(&self, k: usize) -> u64 {
        self.pair_offsets[k]
    }

    /// P: total comparisons over all blocks.
    pub fn total_pairs(&self) -> u64 {
        *self.pair_offsets.last().expect("offsets never empty")
    }

    /// Entity-index offset: number of entities of block `k` in
    /// partitions before `partition` — what a map task adds to its
    /// local enumeration to obtain global entity indexes (Section V).
    pub fn entity_index_offset(&self, k: usize, partition: usize) -> u64 {
        self.rows[k].per_partition[..partition].iter().sum()
    }

    /// Serializes to a TSV string (`key<TAB>partition<TAB>count` per
    /// line, matching Algorithm 3's reduce output format).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            for (p, &count) in row.per_partition.iter().enumerate() {
                if count > 0 {
                    let _ = writeln!(out, "{}\t{p}\t{count}", row.key);
                }
            }
        }
        out
    }

    /// Parses the TSV format produced by [`Self::to_tsv`].
    ///
    /// Returns `None` on malformed input.
    pub fn from_tsv(m: usize, tsv: &str) -> Option<Self> {
        let mut counts = Vec::new();
        for line in tsv.lines() {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let key = BlockKey::new(fields.next()?);
            let partition: usize = fields.next()?.parse().ok()?;
            let count: u64 = fields.next()?.parse().ok()?;
            if partition >= m || fields.next().is_some() {
                return None;
            }
            counts.push((key, partition, count));
        }
        Some(Self::from_counts(m, counts))
    }
}

/// The paper's running example (Figures 3 and 4): 14 entities A–O in
/// two partitions, four blocks w, x, y, z with per-partition counts
/// `w:[2,2] x:[1,1] y:[2,1] z:[2,3]`. Exposed for tests, docs and the
/// `paper_example` binary.
pub fn running_example_bdm() -> BlockDistributionMatrix {
    BlockDistributionMatrix::from_counts(
        2,
        vec![
            (BlockKey::new("w"), 0, 2),
            (BlockKey::new("w"), 1, 2),
            (BlockKey::new("x"), 0, 1),
            (BlockKey::new("x"), 1, 1),
            (BlockKey::new("y"), 0, 2),
            (BlockKey::new("y"), 1, 1),
            (BlockKey::new("z"), 0, 2),
            (BlockKey::new("z"), 1, 3),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_figure4() {
        let bdm = running_example_bdm();
        assert_eq!(bdm.num_blocks(), 4);
        assert_eq!(bdm.num_partitions(), 2);
        // Block order w, x, y, z as in the paper.
        assert_eq!(bdm.key(0).as_str(), "w");
        assert_eq!(bdm.key(3).as_str(), "z");
        // Sizes 4, 2, 3, 5 — "block sizes vary between 2 and 5".
        assert_eq!(bdm.size(0), 4);
        assert_eq!(bdm.size(1), 2);
        assert_eq!(bdm.size(2), 3);
        assert_eq!(bdm.size(3), 5);
        // The reduce output [z, 1, 3] of Figure 4.
        assert_eq!(bdm.size_in(3, 1), 3);
        assert_eq!(bdm.size_in(3, 0), 2);
        // "the largest block with key z entails 50% of all comparisons"
        assert_eq!(bdm.total_pairs(), 20);
        assert_eq!(bdm.pairs_in_block(3), 10);
        // Pair offsets of Figure 6: o = [0, 6, 7, 10].
        assert_eq!(bdm.pair_offset(0), 0);
        assert_eq!(bdm.pair_offset(1), 6);
        assert_eq!(bdm.pair_offset(2), 7);
        assert_eq!(bdm.pair_offset(3), 10);
    }

    #[test]
    fn entity_index_offsets_follow_partition_order() {
        let bdm = running_example_bdm();
        // M is the first z-entity of partition 1; two z-entities
        // precede it in partition 0 -> index offset 2 (paper: "M is
        // the third entity of Φ3 and is thus assigned entity index 2").
        assert_eq!(bdm.entity_index_offset(3, 1), 2);
        assert_eq!(bdm.entity_index_offset(3, 0), 0);
    }

    #[test]
    fn duplicate_counts_are_summed() {
        let bdm = BlockDistributionMatrix::from_counts(
            2,
            vec![
                (BlockKey::new("a"), 0, 1),
                (BlockKey::new("a"), 0, 2),
                (BlockKey::new("a"), 1, 4),
            ],
        );
        assert_eq!(bdm.size_in(0, 0), 3);
        assert_eq!(bdm.size(0), 7);
    }

    #[test]
    fn from_key_partitions_counts_correctly() {
        let k = |s: &str| BlockKey::new(s);
        let bdm = BlockDistributionMatrix::from_key_partitions(&[
            vec![k("w"), k("w"), k("x")],
            vec![k("x"), k("w")],
        ]);
        assert_eq!(bdm.size_in(0, 0), 2);
        assert_eq!(bdm.size_in(0, 1), 1);
        assert_eq!(bdm.size_in(1, 0), 1);
        assert_eq!(bdm.size_in(1, 1), 1);
    }

    #[test]
    fn block_lookup() {
        let bdm = running_example_bdm();
        assert_eq!(bdm.block_index(&BlockKey::new("y")), Some(2));
        assert_eq!(bdm.block_index(&BlockKey::new("nope")), None);
        assert_eq!(bdm.row(2).key.as_str(), "y");
    }

    #[test]
    fn tsv_round_trip() {
        let bdm = running_example_bdm();
        let tsv = bdm.to_tsv();
        let parsed = BlockDistributionMatrix::from_tsv(2, &tsv).expect("parse");
        assert_eq!(parsed, bdm);
    }

    #[test]
    fn tsv_rejects_malformed_input() {
        assert!(BlockDistributionMatrix::from_tsv(2, "a\t5\t1").is_none()); // partition >= m
        assert!(BlockDistributionMatrix::from_tsv(2, "a\tnope\t1").is_none());
        assert!(BlockDistributionMatrix::from_tsv(2, "a\t0").is_none());
        assert!(BlockDistributionMatrix::from_tsv(2, "a\t0\t1\textra").is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_partition_index_panics() {
        let _ = BlockDistributionMatrix::from_counts(1, vec![(BlockKey::new("a"), 3, 1)]);
    }

    #[test]
    fn empty_bdm_is_valid() {
        let bdm = BlockDistributionMatrix::from_counts(3, vec![]);
        assert_eq!(bdm.num_blocks(), 0);
        assert_eq!(bdm.total_pairs(), 0);
    }
}
