//! Analytic workload model: per-task workloads straight from the BDM.
//!
//! The paper-scale experiments (Figures 9–14) need per-reduce-task
//! comparison counts and map-output sizes for datasets whose *pair*
//! counts reach 10¹¹ — far beyond what any in-process execution could
//! evaluate. All three strategies are deterministic functions of the
//! BDM, so those quantities can be computed exactly without running a
//! single comparison:
//!
//! * **Basic** — each block's pairs land on `hash(key) mod r` (the
//!   same hash the engine's partitioner uses, so analysis and real
//!   execution agree bucket for bucket);
//! * **BlockSplit** — the greedy assignment *is* the workload;
//! * **PairRange** — range sizes are closed-form; per-entity range
//!   memberships (map output / reduce input) use the contiguity of
//!   each entity's pair-index span: when every gap between an entity's
//!   consecutive pair indexes is at most one range width, the hit
//!   ranges form one interval (`O(1)` per entity, provably exact);
//!   otherwise the mapper's own `relevant_ranges` runs (`O(x)` per
//!   entity, only ever needed for blocks smaller than ~`P/r`).
//!
//! Equivalence with executed counters is asserted by
//! `tests/analysis_matches_execution.rs`.

use mr_engine::partitioner::HashPartitioner;

use crate::bdm::BlockDistributionMatrix;
use crate::block_split::{create_match_tasks, TaskAssignment};
use crate::pair_range::enumeration::pair_index;
use crate::pair_range::mapper::relevant_ranges;
use crate::pair_range::ranges::{RangeIndexer, RangePolicy};
use crate::StrategyKind;

/// Exact per-task workloads of one strategy at `(m, r)` as induced by
/// a BDM.
#[derive(Debug, Clone)]
pub struct StrategyWorkload {
    /// The analyzed strategy.
    pub strategy: StrategyKind,
    /// Number of map tasks (the BDM's partition count).
    pub m: usize,
    /// Number of reduce tasks.
    pub r: usize,
    /// Key-value pairs the map phase emits (Figure 12's metric).
    pub map_output_records: u64,
    /// Comparisons per reduce task.
    pub reduce_comparisons: Vec<u64>,
    /// Key-value pairs received per reduce task.
    pub reduce_input_records: Vec<u64>,
}

impl StrategyWorkload {
    /// Total comparisons (equals the BDM's pair count for every
    /// strategy — splitting never drops or duplicates pairs).
    pub fn total_comparisons(&self) -> u64 {
        self.reduce_comparisons.iter().sum()
    }

    /// Largest per-task comparison load — the quantity that bounds the
    /// reduce phase's makespan.
    pub fn max_comparisons(&self) -> u64 {
        self.reduce_comparisons.iter().copied().max().unwrap_or(0)
    }

    /// Max/mean comparison load.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_comparisons();
        if total == 0 || self.reduce_comparisons.is_empty() {
            return 1.0;
        }
        self.max_comparisons() as f64 / (total as f64 / self.reduce_comparisons.len() as f64)
    }
}

/// Analyzes `strategy` over `bdm` for `r` reduce tasks.
pub fn analyze(
    bdm: &BlockDistributionMatrix,
    strategy: StrategyKind,
    r: usize,
    policy: RangePolicy,
) -> StrategyWorkload {
    match strategy {
        StrategyKind::Basic => analyze_basic(bdm, r),
        StrategyKind::BlockSplit => analyze_block_split(bdm, r),
        StrategyKind::PairRange => analyze_pair_range(bdm, r, policy),
    }
}

fn analyze_basic(bdm: &BlockDistributionMatrix, r: usize) -> StrategyWorkload {
    let mut comparisons = vec![0u64; r];
    let mut inputs = vec![0u64; r];
    let mut map_output = 0u64;
    for k in 0..bdm.num_blocks() {
        let bucket = HashPartitioner::bucket(bdm.key(k), r);
        comparisons[bucket] += bdm.pairs_in_block(k);
        inputs[bucket] += bdm.size(k);
        map_output += bdm.size(k);
    }
    StrategyWorkload {
        strategy: StrategyKind::Basic,
        m: bdm.num_partitions(),
        r,
        map_output_records: map_output,
        reduce_comparisons: comparisons,
        reduce_input_records: inputs,
    }
}

fn analyze_block_split(bdm: &BlockDistributionMatrix, r: usize) -> StrategyWorkload {
    let m = bdm.num_partitions();
    let tasks = create_match_tasks(bdm, r);
    let assignment = TaskAssignment::greedy(tasks.clone(), r);
    let comparisons = assignment.loads().to_vec();

    let mut inputs = vec![0u64; r];
    let mut map_output = 0u64;
    // Which blocks were split? A block is split iff it has any
    // non-unsplit task; unsplit blocks have exactly the (k, 0, 0) task.
    let mut split = vec![false; bdm.num_blocks()];
    let mut has_task = vec![false; bdm.num_blocks()];
    for t in &tasks {
        has_task[t.block] = true;
        if !t.is_unsplit() {
            split[t.block] = true;
        }
    }
    // A block of >= 2 partitions whose (0,0) task is a *sub-block*
    // task is also split; disambiguate via the paper's own criterion.
    for (k, is_split) in split.iter_mut().enumerate() {
        *is_split = !crate::block_split::match_tasks::fits_average(
            bdm.pairs_in_block(k),
            bdm.total_pairs(),
            r,
        );
    }
    for k in 0..bdm.num_blocks() {
        if !split[k] {
            if has_task[k] && bdm.pairs_in_block(k) > 0 {
                map_output += bdm.size(k);
                let rt = assignment
                    .reduce_task_for(k, 0, 0)
                    .expect("unsplit task exists");
                inputs[rt] += bdm.size(k);
            }
        } else {
            let nonempty = (0..m).filter(|&p| bdm.size_in(k, p) > 0).count() as u64;
            map_output += bdm.size(k) * nonempty;
            for t in tasks.iter().filter(|t| t.block == k) {
                let rt = assignment
                    .reduce_task_for(t.block, t.i, t.j)
                    .expect("assigned");
                if t.i == t.j {
                    inputs[rt] += bdm.size_in(k, t.i);
                } else {
                    inputs[rt] += bdm.size_in(k, t.i) + bdm.size_in(k, t.j);
                }
            }
        }
    }
    StrategyWorkload {
        strategy: StrategyKind::BlockSplit,
        m,
        r,
        map_output_records: map_output,
        reduce_comparisons: comparisons,
        reduce_input_records: inputs,
    }
}

fn analyze_pair_range(
    bdm: &BlockDistributionMatrix,
    r: usize,
    policy: RangePolicy,
) -> StrategyWorkload {
    let ranges = RangeIndexer::new(bdm.total_pairs(), r, policy);
    let comparisons: Vec<u64> = (0..r as u64).map(|t| ranges.range_size(t)).collect();

    // Per-entity range memberships. Dense shortcut: if every gap
    // between an entity's consecutive pair indexes is <= the minimum
    // range width, the hit ranges are the full interval
    // [range(first), range(last)]. The largest gap within a block of
    // size N is < N (row gaps N-k-2, row->column junction N-x-1,
    // column gaps 1), so N <= w_min makes the shortcut exact.
    let w_min = if r as u64 > 0 && bdm.total_pairs() > 0 {
        match policy {
            RangePolicy::CeilDiv => bdm.total_pairs().div_ceil(r as u64),
            RangePolicy::Proportional => bdm.total_pairs() / r as u64,
        }
    } else {
        0
    };
    let mut membership_diff = vec![0i64; r + 1];
    let mut map_output = 0u64;
    for k in 0..bdm.num_blocks() {
        let n = bdm.size(k);
        if n < 2 {
            continue;
        }
        if n <= w_min {
            for x in 0..n {
                let first = if x == 0 {
                    pair_index(bdm, k, 0, 1)
                } else {
                    pair_index(bdm, k, 0, x)
                };
                let last = if x + 1 < n {
                    pair_index(bdm, k, x, n - 1)
                } else {
                    pair_index(bdm, k, x.saturating_sub(1), n - 1)
                };
                let lo = ranges.range_of(first);
                let hi = ranges.range_of(last);
                membership_diff[lo as usize] += 1;
                membership_diff[hi as usize + 1] -= 1;
                map_output += hi - lo + 1;
            }
        } else {
            for x in 0..n {
                let hits = relevant_ranges(bdm, &ranges, k, x);
                map_output += hits.len() as u64;
                for t in hits {
                    membership_diff[t as usize] += 1;
                    membership_diff[t as usize + 1] -= 1;
                }
            }
        }
    }
    let mut inputs = Vec::with_capacity(r);
    let mut acc = 0i64;
    for d in membership_diff.iter().take(r) {
        acc += d;
        inputs.push(acc as u64);
    }
    StrategyWorkload {
        strategy: StrategyKind::PairRange,
        m: bdm.num_partitions(),
        r,
        map_output_records: map_output,
        reduce_comparisons: comparisons,
        reduce_input_records: inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdm::running_example_bdm;

    #[test]
    fn basic_keeps_blocks_whole() {
        let bdm = running_example_bdm();
        let w = analyze(&bdm, StrategyKind::Basic, 3, RangePolicy::CeilDiv);
        assert_eq!(w.total_comparisons(), 20);
        assert_eq!(w.map_output_records, 14);
        // Every bucket's load is a sum of whole-block pair counts
        // (subsets of {6, 1, 3, 10}).
        for &load in &w.reduce_comparisons {
            assert!(load <= 20);
        }
    }

    #[test]
    fn block_split_analysis_matches_figure5() {
        let bdm = running_example_bdm();
        let w = analyze(&bdm, StrategyKind::BlockSplit, 3, RangePolicy::CeilDiv);
        let mut loads = w.reduce_comparisons.clone();
        loads.sort_unstable();
        assert_eq!(loads, vec![6, 7, 7]);
        assert_eq!(w.map_output_records, 19, "paper: 19 KV pairs");
        assert_eq!(w.total_comparisons(), 20);
    }

    #[test]
    fn pair_range_analysis_matches_figure7() {
        let bdm = running_example_bdm();
        let w = analyze(&bdm, StrategyKind::PairRange, 3, RangePolicy::CeilDiv);
        assert_eq!(w.reduce_comparisons, vec![7, 7, 6]);
        assert_eq!(w.map_output_records, 18, "Figure 7 dataflow");
        // Range 0: blocks w+x (6 entities); range 1: y + all of z (8);
        // range 2: z without F (4).
        assert_eq!(w.reduce_input_records, vec![6, 8, 4]);
    }

    #[test]
    fn dense_and_exact_membership_paths_agree() {
        // Force both paths on the same BDM by sweeping r: small r
        // makes all blocks dense, large r forces the exact loop.
        let bdm = running_example_bdm();
        for r in 1..=25 {
            let w = analyze(&bdm, StrategyKind::PairRange, r, RangePolicy::CeilDiv);
            // Reference: brute-force memberships via relevant_ranges.
            let ranges = RangeIndexer::new(bdm.total_pairs(), r, RangePolicy::CeilDiv);
            let mut expect_output = 0u64;
            let mut expect_inputs = vec![0u64; r];
            for k in 0..bdm.num_blocks() {
                for x in 0..bdm.size(k) {
                    let hits = relevant_ranges(&bdm, &ranges, k, x);
                    expect_output += hits.len() as u64;
                    for t in hits {
                        expect_inputs[t as usize] += 1;
                    }
                }
            }
            assert_eq!(w.map_output_records, expect_output, "r={r}");
            assert_eq!(w.reduce_input_records, expect_inputs, "r={r}");
        }
    }

    #[test]
    fn all_strategies_conserve_pairs() {
        let bdm = running_example_bdm();
        for r in [1usize, 2, 3, 7, 19, 40] {
            for strategy in [
                StrategyKind::Basic,
                StrategyKind::BlockSplit,
                StrategyKind::PairRange,
            ] {
                let w = analyze(&bdm, strategy, r, RangePolicy::CeilDiv);
                assert_eq!(
                    w.total_comparisons(),
                    20,
                    "{strategy} with r={r} lost or duplicated pairs"
                );
            }
        }
    }

    #[test]
    fn pair_range_is_near_perfectly_balanced() {
        let bdm = running_example_bdm();
        for r in [2usize, 3, 4, 5] {
            let w = analyze(&bdm, StrategyKind::PairRange, r, RangePolicy::Proportional);
            let max = w.max_comparisons();
            let min = w.reduce_comparisons.iter().copied().min().unwrap();
            assert!(max - min <= 1, "r={r}: {:?}", w.reduce_comparisons);
        }
    }
}
