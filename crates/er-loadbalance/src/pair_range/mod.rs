//! PairRange — pair-based load balancing (paper Section V,
//! Algorithm 2).
//!
//! All comparison pairs are virtually enumerated (column-wise within a
//! block, blocks laid out consecutively via BDM offsets) and the index
//! space `0..P` is cut into `r` near-equal ranges; range `k` *is*
//! reduce task `k`. The map phase sends each entity to exactly the
//! ranges that contain at least one of its pairs; the reduce phase
//! regenerates pair indexes from the entity indexes travelling in the
//! composite keys and evaluates exactly the pairs of its own range.

pub mod enumeration;
pub mod mapper;
pub mod ranges;
pub mod reducer;

use std::sync::Arc;

use er_core::blocking::BlockKey;
use mr_engine::engine::Job;
use mr_engine::prelude::Partitions;

use crate::bdm::BlockDistributionMatrix;
use crate::compare::PairComparer;
use crate::keys::PairRangeKey;

pub use ranges::{RangeIndexer, RangePolicy};

/// Builds the PairRange matching job over the BDM job's annotated side
/// output.
pub fn pair_range_job(
    bdm: Arc<BlockDistributionMatrix>,
    comparer: PairComparer,
    policy: RangePolicy,
    reduce_tasks: usize,
    parallelism: usize,
) -> Job<mapper::PairRangeMapper, reducer::PairRangeReducer> {
    Job::builder(
        "er-pair-range",
        mapper::PairRangeMapper::new(Arc::clone(&bdm), policy),
        reducer::PairRangeReducer::new(bdm, comparer, policy),
    )
    .reduce_tasks(reduce_tasks)
    .parallelism(parallelism)
    .partitioner(PairRangeKey::partitioner())
    .group_by(PairRangeKey::group_cmp())
    .build()
}

/// Convenience used by tests and benches: run PairRange end to end on
/// already-annotated input.
pub fn run_pair_range(
    annotated: Partitions<BlockKey, crate::Keyed>,
    bdm: Arc<BlockDistributionMatrix>,
    comparer: PairComparer,
    policy: RangePolicy,
    reduce_tasks: usize,
    parallelism: usize,
) -> Result<
    mr_engine::engine::JobOutput<er_core::result::MatchPair, f64, ()>,
    mr_engine::error::MrError,
> {
    pair_range_job(bdm, comparer, policy, reduce_tasks, parallelism).run(annotated)
}
