//! PairRange reduce function (Algorithm 2, lines 27–42).
//!
//! One reduce group == all entities of one block relevant to this
//! task's range, sorted by entity index. Streaming entity `e2` with
//! index `x2`, the reducer pairs it against every buffered `e1` with
//! `x1 < x2`, computes the pair's range and evaluates it only when it
//! belongs to this task.
//!
//! The listing's early exit reads `else if k > r then return` —
//! aborting the whole group. That is correct only *per stream
//! element*: pair indexes grow monotonically in `x1` for fixed `x2`
//! (column-wise enumeration), so once a pair overshoots the range, all
//! later *buffer* entries overshoot too — but the **next** stream
//! element may still own in-range pairs in column 0 (e.g. range 0 of a
//! large block: pair (1, x2) overshoots while (0, x2+1) is still in
//! range). We therefore `break` the buffer scan instead of returning;
//! `tests/pair_range_semantics.rs` constructs the counterexample and
//! the equivalence suite verifies no pair is lost or duplicated.

use std::sync::Arc;

use er_core::result::MatchPair;
use er_core::MatcherCache;
use mr_engine::reducer::{Group, ReduceContext, Reducer};

use super::enumeration::pair_index;
use super::ranges::{RangeIndexer, RangePolicy};
use crate::bdm::BlockDistributionMatrix;
use crate::compare::{PairComparer, PreparedRef};
use crate::keys::{PairRangeKey, PairRangeValue};

/// The PairRange reducer.
#[derive(Clone)]
pub struct PairRangeReducer {
    bdm: Arc<BlockDistributionMatrix>,
    comparer: PairComparer,
    policy: RangePolicy,
    ranges: Option<RangeIndexer>,
    cache: MatcherCache,
}

impl PairRangeReducer {
    /// Creates the reducer over the shared BDM.
    pub fn new(
        bdm: Arc<BlockDistributionMatrix>,
        comparer: PairComparer,
        policy: RangePolicy,
    ) -> Self {
        let cache = comparer.new_cache();
        Self {
            bdm,
            comparer,
            policy,
            ranges: None,
            cache,
        }
    }
}

impl Reducer for PairRangeReducer {
    type KIn = PairRangeKey;
    type VIn = PairRangeValue;
    type KOut = MatchPair;
    type VOut = f64;

    fn setup(&mut self, info: &mr_engine::reducer::ReduceTaskInfo) {
        self.ranges = Some(RangeIndexer::new(
            self.bdm.total_pairs(),
            info.num_reduce_tasks,
            self.policy,
        ));
    }

    fn reduce(
        &mut self,
        group: Group<'_, PairRangeKey, PairRangeValue>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        let ranges = self.ranges.expect("setup ran");
        let key = *group.key();
        let block = key.block as usize;
        let my_range = key.range as u64;
        let block_key = group
            .values()
            .next()
            .expect("groups are non-empty")
            .keyed
            .key
            .clone();
        let mut buffer: Vec<(u64, PreparedRef<'_>)> = Vec::with_capacity(group.len());
        for e2 in group.values() {
            let prepared2 = self.comparer.prepare_cached(&mut self.cache, &e2.keyed);
            for (index1, e1) in &buffer {
                debug_assert!(*index1 < e2.index, "sorted by entity index");
                let k = ranges.range_of(pair_index(&self.bdm, block, *index1, e2.index));
                if k == my_range {
                    self.comparer
                        .compare_prepared(&self.cache, e1, &prepared2, &block_key, ctx);
                } else if k > my_range {
                    // Monotone in the buffer coordinate: nothing later
                    // in the buffer can still belong to this range.
                    break;
                }
            }
            buffer.push((e2.index, prepared2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::PairRangeValue;
    use crate::{Keyed, COMPARISONS};
    use er_core::blocking::BlockKey;
    use er_core::{Entity, Matcher, SourceId};
    use mr_engine::reducer::ReduceTaskInfo;

    fn entry(range: u32, block: u32, index: u64) -> (PairRangeKey, PairRangeValue) {
        (
            PairRangeKey {
                range,
                block,
                source: SourceId::R,
                index,
            },
            PairRangeValue {
                keyed: Keyed::single(
                    BlockKey::new("z"),
                    Arc::new(Entity::new(index, [("title", "t")])),
                ),
                index,
            },
        )
    }

    fn reducer() -> PairRangeReducer {
        PairRangeReducer::new(
            Arc::new(crate::bdm::running_example_bdm()),
            PairComparer::count_only(Arc::new(Matcher::paper_default())),
            RangePolicy::CeilDiv,
        )
    }

    fn ctx(task: usize) -> ReduceContext<MatchPair, f64> {
        ReduceContext::for_testing(ReduceTaskInfo {
            task_index: task,
            num_reduce_tasks: 3,
            num_map_tasks: 2,
        })
    }

    #[test]
    fn range1_of_block_z_computes_pairs_10_to_13() {
        // Range 1 = [7,13]; block z (index 3) holds pairs 10..19. The
        // group receives all five z entities; only pairs 10..13 are in
        // range: (0,1) (0,2) (0,3) (0,4).
        let entries: Vec<_> = (0..5).map(|i| entry(1, 3, i)).collect();
        let mut red = reducer();
        red.setup(&ReduceTaskInfo {
            task_index: 1,
            num_reduce_tasks: 3,
            num_map_tasks: 2,
        });
        let mut c = ctx(1);
        red.reduce(Group::for_testing(&entries), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 4);
    }

    #[test]
    fn range2_of_block_z_computes_pairs_14_to_19() {
        // Range 2 = [14,19]: pairs (1,2) (1,3) (1,4) (2,3) (2,4) (3,4)
        // — F (index 0) is absent from this group (paper Figure 7).
        let entries: Vec<_> = (1..5).map(|i| entry(2, 3, i)).collect();
        let mut red = reducer();
        red.setup(&ReduceTaskInfo {
            task_index: 2,
            num_reduce_tasks: 3,
            num_map_tasks: 2,
        });
        let mut c = ctx(2);
        red.reduce(Group::for_testing(&entries), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 6);
    }

    #[test]
    fn break_keeps_later_stream_entities_alive() {
        // Within one stream element the scan may stop early, but later
        // stream elements must still be processed: total over all three
        // ranges must equal the block's 10 pairs.
        let mut total = 0;
        for range in 0..3u32 {
            let members: Vec<u64> = (0..5)
                .filter(|&i| {
                    // Replicate the mapper's membership decision.
                    let bdm = crate::bdm::running_example_bdm();
                    let ranges = RangeIndexer::new(20, 3, RangePolicy::CeilDiv);
                    super::super::mapper::relevant_ranges(&bdm, &ranges, 3, i)
                        .contains(&(range as u64))
                })
                .collect();
            if members.len() < 2 {
                continue;
            }
            let entries: Vec<_> = members.iter().map(|&i| entry(range, 3, i)).collect();
            let mut red = reducer();
            red.setup(&ReduceTaskInfo {
                task_index: range as usize,
                num_reduce_tasks: 3,
                num_map_tasks: 2,
            });
            let mut c = ctx(range as usize);
            red.reduce(Group::for_testing(&entries), &mut c);
            total += c.counters().get(COMPARISONS);
        }
        assert_eq!(total, 10, "block z's pairs, each computed exactly once");
    }
}
