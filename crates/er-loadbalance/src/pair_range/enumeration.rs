//! Global entity and pair enumeration (paper Section V, Figure 6).
//!
//! Entity indexes: each map task enumerates the entities of its
//! partition per block; the BDM supplies the count of same-block
//! entities in *preceding* partitions as the starting offset, so local
//! enumeration yields globally consistent indexes without any
//! communication.
//!
//! Pair indexes: `p_i(x, y) = c(x, y, |Φ_i|) + o(i)` with the
//! column-wise triangle cell index `c` from [`er_core::pairs`] and the
//! block offset `o` from the BDM.

use er_core::pairs::triangle_cell_index;

use crate::bdm::BlockDistributionMatrix;

/// Per-map-task entity index tracker (Algorithm 2, lines 4–8 & 26).
#[derive(Debug, Clone)]
pub struct EntityIndexer {
    next_index: Vec<u64>,
}

impl EntityIndexer {
    /// Initializes the tracker for a map task reading `partition`:
    /// each block's counter starts at the number of its entities in
    /// earlier partitions.
    pub fn for_partition(bdm: &BlockDistributionMatrix, partition: usize) -> Self {
        let next_index = (0..bdm.num_blocks())
            .map(|k| bdm.entity_index_offset(k, partition))
            .collect();
        Self { next_index }
    }

    /// Claims the next entity index of block `k`.
    pub fn next(&mut self, k: usize) -> u64 {
        let idx = self.next_index[k];
        self.next_index[k] += 1;
        idx
    }

    /// Peeks without claiming (for tests).
    pub fn peek(&self, k: usize) -> u64 {
        self.next_index[k]
    }
}

/// The global pair index `p_i(x, y)` of entities with indexes `x < y`
/// in block `i`.
pub fn pair_index(bdm: &BlockDistributionMatrix, block: usize, x: u64, y: u64) -> u64 {
    triangle_cell_index(x, y, bdm.size(block)) + bdm.pair_offset(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdm::running_example_bdm;

    #[test]
    fn entity_m_gets_index_2() {
        // M is the first z-entity (block 3) of partition 1; two
        // z-entities live in partition 0 (paper: "M is the third
        // entity of Φ3 and is thus assigned entity index 2").
        let bdm = running_example_bdm();
        let mut indexer = EntityIndexer::for_partition(&bdm, 1);
        assert_eq!(indexer.next(3), 2); // M
        assert_eq!(indexer.next(3), 3); // N
        assert_eq!(indexer.next(3), 4); // O
    }

    #[test]
    fn partition_zero_starts_at_zero() {
        let bdm = running_example_bdm();
        let mut indexer = EntityIndexer::for_partition(&bdm, 0);
        for k in 0..4 {
            assert_eq!(indexer.peek(k), 0);
        }
        assert_eq!(indexer.next(0), 0); // A
        assert_eq!(indexer.next(0), 1); // B
    }

    #[test]
    fn figure6_pair_indexes() {
        let bdm = running_example_bdm();
        // Block Φ0 (w, size 4): "the index for pair (2,3) equals 5".
        assert_eq!(pair_index(&bdm, 0, 2, 3), 5);
        // Block Φ1 (x, size 2): its single pair is #6.
        assert_eq!(pair_index(&bdm, 1, 0, 1), 6);
        // Block Φ2 (y, size 3): pairs 7..=9.
        assert_eq!(pair_index(&bdm, 2, 0, 1), 7);
        assert_eq!(pair_index(&bdm, 2, 1, 2), 9);
        // Block Φ3 (z, size 5): M (index 2) takes part in pairs 11,
        // 14, 17, 18 (paper Section V).
        assert_eq!(pair_index(&bdm, 3, 0, 2), 11);
        assert_eq!(pair_index(&bdm, 3, 1, 2), 14);
        assert_eq!(pair_index(&bdm, 3, 2, 3), 17);
        assert_eq!(pair_index(&bdm, 3, 2, 4), 18);
        // pmin/pmax of M: 11 and 18 (paper).
    }

    #[test]
    fn pair_enumeration_is_a_bijection_over_all_blocks() {
        let bdm = running_example_bdm();
        let mut seen = vec![false; bdm.total_pairs() as usize];
        for k in 0..bdm.num_blocks() {
            let n = bdm.size(k);
            for x in 0..n {
                for y in (x + 1)..n {
                    let p = pair_index(&bdm, k, x, y) as usize;
                    assert!(!seen[p], "pair index {p} assigned twice");
                    seen[p] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "pair index space has gaps");
    }
}
