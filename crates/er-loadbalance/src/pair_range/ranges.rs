//! Pair ranges: mapping global pair indexes to reduce tasks.
//!
//! The paper states two subtly different formulas. Equation (2) says
//! `k = ⌊r·p/P⌋`; Algorithm 2's `rangeIndex` computes
//! `⌊p / ⌈P/r⌉⌋`, which matches the prose ("the first r−1 reduce
//! tasks process ⌈P/r⌉ pairs each") and the worked example. Both are
//! implemented; [`RangePolicy::CeilDiv`] (the listing's formula) is
//! the default, and an ablation bench quantifies the difference (the
//! proportional formula balances the tail better when `r ∤ P`).

/// Which of the paper's two range formulas to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangePolicy {
    /// Algorithm 2: `range(p) = ⌊p / ⌈P/r⌉⌋` — equal-width ranges,
    /// remainder absorbed by the last task.
    CeilDiv,
    /// Equation (2): `range(p) = ⌊r·p / P⌋` — proportional split, the
    /// imbalance never exceeds one pair.
    Proportional,
}

/// Maps pair indexes to range (== reduce task) indexes.
#[derive(Debug, Clone, Copy)]
pub struct RangeIndexer {
    total_pairs: u64,
    num_ranges: u64,
    policy: RangePolicy,
}

impl RangeIndexer {
    /// Creates the indexer for `P` pairs and `r` ranges.
    pub fn new(total_pairs: u64, num_ranges: usize, policy: RangePolicy) -> Self {
        assert!(num_ranges > 0, "need at least one range");
        Self {
            total_pairs,
            num_ranges: num_ranges as u64,
            policy,
        }
    }

    /// The range containing pair index `p` (`p < P`).
    pub fn range_of(&self, p: u64) -> u64 {
        debug_assert!(
            p < self.total_pairs,
            "pair index {p} out of range (P = {})",
            self.total_pairs
        );
        match self.policy {
            RangePolicy::CeilDiv => {
                let width = self.total_pairs.div_ceil(self.num_ranges).max(1);
                p / width
            }
            RangePolicy::Proportional => {
                ((p as u128 * self.num_ranges as u128) / self.total_pairs as u128) as u64
            }
        }
    }

    /// Number of pairs in range `k` (analytic, no enumeration).
    pub fn range_size(&self, k: u64) -> u64 {
        if self.total_pairs == 0 {
            return 0;
        }
        match self.policy {
            RangePolicy::CeilDiv => {
                let width = self.total_pairs.div_ceil(self.num_ranges).max(1);
                let start = k * width;
                if start >= self.total_pairs {
                    0
                } else {
                    width.min(self.total_pairs - start)
                }
            }
            RangePolicy::Proportional => self.range_start(k + 1) - self.range_start(k),
        }
    }

    /// First pair index belonging to range `k` (== total for `k = r`).
    pub fn range_start(&self, k: u64) -> u64 {
        if k >= self.num_ranges {
            return self.total_pairs;
        }
        match self.policy {
            RangePolicy::CeilDiv => {
                let width = self.total_pairs.div_ceil(self.num_ranges).max(1);
                (k * width).min(self.total_pairs)
            }
            RangePolicy::Proportional => {
                // Smallest p with ⌊r·p/P⌋ >= k  <=>  p >= ⌈k·P/r⌉.
                ((k as u128 * self.total_pairs as u128).div_ceil(self.num_ranges as u128)) as u64
            }
        }
    }

    /// Total pairs `P`.
    pub fn total_pairs(&self) -> u64 {
        self.total_pairs
    }

    /// Number of ranges `r`.
    pub fn num_ranges(&self) -> u64 {
        self.num_ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn running_example_ranges() {
        // P = 20, r = 3: ranges [0,6], [7,13], [14,19] (paper Fig. 6).
        let idx = RangeIndexer::new(20, 3, RangePolicy::CeilDiv);
        assert_eq!(idx.range_of(0), 0);
        assert_eq!(idx.range_of(6), 0);
        assert_eq!(idx.range_of(7), 1);
        assert_eq!(idx.range_of(13), 1);
        assert_eq!(idx.range_of(14), 2);
        assert_eq!(idx.range_of(19), 2);
        assert_eq!(idx.range_size(0), 7);
        assert_eq!(idx.range_size(1), 7);
        assert_eq!(idx.range_size(2), 6);
    }

    #[test]
    fn two_source_example_ranges() {
        // Appendix I: "the resulting 12 pairs are divided into three
        // ranges of size 4".
        let idx = RangeIndexer::new(12, 3, RangePolicy::CeilDiv);
        assert_eq!(idx.range_size(0), 4);
        assert_eq!(idx.range_size(1), 4);
        assert_eq!(idx.range_size(2), 4);
        assert_eq!(idx.range_of(6), 1);
        assert_eq!(idx.range_of(8), 2);
    }

    #[test]
    fn proportional_never_exceeds_one_pair_imbalance() {
        for (p, r) in [(20u64, 3usize), (10, 4), (7, 7), (100, 13), (5, 8)] {
            let idx = RangeIndexer::new(p, r, RangePolicy::Proportional);
            let sizes: Vec<u64> = (0..r as u64).map(|k| idx.range_size(k)).collect();
            assert_eq!(sizes.iter().sum::<u64>(), p);
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "P={p} r={r}: sizes {sizes:?}");
        }
    }

    #[test]
    fn ceil_div_can_starve_trailing_ranges() {
        // P=10, r=4: widths 3,3,3,1 — the listing's formula leaves the
        // tail under-filled (the ablation the benches quantify).
        let idx = RangeIndexer::new(10, 4, RangePolicy::CeilDiv);
        let sizes: Vec<u64> = (0..4).map(|k| idx.range_size(k)).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn more_ranges_than_pairs() {
        let idx = RangeIndexer::new(3, 10, RangePolicy::CeilDiv);
        let sizes: Vec<u64> = (0..10).map(|k| idx.range_size(k)).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 3);
        for p in 0..3 {
            assert!(idx.range_of(p) < 10);
        }
    }

    #[test]
    fn zero_pairs_is_fine() {
        let idx = RangeIndexer::new(0, 4, RangePolicy::CeilDiv);
        assert_eq!(idx.range_size(0), 0);
        assert_eq!(idx.range_start(4), 0);
    }

    proptest! {
        #[test]
        fn sizes_partition_the_index_space(
            p in 1u64..100_000,
            r in 1usize..200,
            policy in prop_oneof![Just(RangePolicy::CeilDiv), Just(RangePolicy::Proportional)],
        ) {
            let idx = RangeIndexer::new(p, r, policy);
            let total: u64 = (0..r as u64).map(|k| idx.range_size(k)).collect::<Vec<_>>().iter().sum();
            prop_assert_eq!(total, p);
        }

        #[test]
        fn range_of_is_consistent_with_starts(
            p in 1u64..50_000,
            r in 1usize..100,
            seed in 0u64..10_000,
            policy in prop_oneof![Just(RangePolicy::CeilDiv), Just(RangePolicy::Proportional)],
        ) {
            let idx = RangeIndexer::new(p, r, policy);
            let pair = seed % p;
            let k = idx.range_of(pair);
            prop_assert!(idx.range_start(k) <= pair);
            prop_assert!(pair < idx.range_start(k + 1));
        }

        #[test]
        fn range_of_is_monotone(
            p in 2u64..50_000,
            r in 1usize..100,
            seed in 0u64..10_000,
        ) {
            let idx = RangeIndexer::new(p, r, RangePolicy::CeilDiv);
            let a = seed % (p - 1);
            prop_assert!(idx.range_of(a) <= idx.range_of(a + 1));
        }
    }
}
