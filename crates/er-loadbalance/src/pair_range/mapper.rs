//! PairRange map function (Algorithm 2, lines 1–26).
//!
//! For each entity the mapper determines its global entity index `x`
//! and every range that contains at least one of its pairs:
//!
//! * the *column run* `(x, x+1) … (x, N−1)` is contiguous in the pair
//!   index space, so all ranges from `range(p(x, x+1))` through
//!   `range(p(x, N−1))` are relevant;
//! * the *row pairs* `(0, x) … (x−1, x)` are scattered (one per
//!   column); their range indexes are computed individually — the
//!   literal reading of the listing's line 19–20 loop (`ranges ∪ {k}`)
//!   would insert raw loop counters instead of range indexes, which
//!   contradicts both the prose and the worked example, so we compute
//!   `rangeIndex(k, x, N, i)` as intended.

use std::collections::BTreeSet;
use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::SourceId;
use mr_engine::mapper::{MapContext, MapTaskInfo, Mapper};

use super::enumeration::{pair_index, EntityIndexer};
use super::ranges::{RangeIndexer, RangePolicy};
use crate::bdm::BlockDistributionMatrix;
use crate::keys::{PairRangeKey, PairRangeValue};
use crate::Keyed;

/// The PairRange mapper.
#[derive(Clone)]
pub struct PairRangeMapper {
    bdm: Arc<BlockDistributionMatrix>,
    policy: RangePolicy,
    state: Option<MapState>,
}

#[derive(Clone)]
struct MapState {
    indexer: EntityIndexer,
    ranges: RangeIndexer,
}

impl PairRangeMapper {
    /// Creates the mapper over a computed BDM.
    pub fn new(bdm: Arc<BlockDistributionMatrix>, policy: RangePolicy) -> Self {
        Self {
            bdm,
            policy,
            state: None,
        }
    }
}

/// Computes the set of ranges relevant for the entity with index `x`
/// in `block` (shared by the mapper and the analytic workload model).
pub fn relevant_ranges(
    bdm: &BlockDistributionMatrix,
    ranges: &RangeIndexer,
    block: usize,
    x: u64,
) -> BTreeSet<u64> {
    let n = bdm.size(block);
    let mut out = BTreeSet::new();
    if n < 2 {
        return out;
    }
    // Row pairs (k, x) for k < x — scattered, one per column.
    for k in 0..x {
        out.insert(ranges.range_of(pair_index(bdm, block, k, x)));
    }
    // Column run (x, x+1) … (x, N−1) — contiguous.
    if x + 1 < n {
        let first = ranges.range_of(pair_index(bdm, block, x, x + 1));
        let last = ranges.range_of(pair_index(bdm, block, x, n - 1));
        out.extend(first..=last);
    }
    out
}

impl Mapper for PairRangeMapper {
    type KIn = BlockKey;
    type VIn = Keyed;
    type KOut = PairRangeKey;
    type VOut = PairRangeValue;
    type Side = ();

    fn setup(&mut self, info: &MapTaskInfo) {
        self.state = Some(MapState {
            indexer: EntityIndexer::for_partition(&self.bdm, info.task_index),
            ranges: RangeIndexer::new(self.bdm.total_pairs(), info.num_reduce_tasks, self.policy),
        });
    }

    fn map(
        &mut self,
        key: &BlockKey,
        keyed: &Keyed,
        ctx: &mut MapContext<PairRangeKey, PairRangeValue, ()>,
    ) {
        let state = self.state.as_mut().expect("setup ran");
        let Some(block) = self.bdm.block_index(key) else {
            panic!("blocking key {key} not present in the BDM");
        };
        let x = state.indexer.next(block);
        for range in relevant_ranges(&self.bdm, &state.ranges, block, x) {
            ctx.emit(
                PairRangeKey {
                    range: range as u32,
                    block: block as u32,
                    source: SourceId::R,
                    index: x,
                },
                PairRangeValue {
                    keyed: keyed.clone(),
                    index: x,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdm::running_example_bdm;
    use crate::running_example;

    fn run_partition(p: usize) -> Vec<(PairRangeKey, String)> {
        let bdm = Arc::new(running_example_bdm());
        let mut mapper = PairRangeMapper::new(bdm, RangePolicy::CeilDiv);
        let info = MapTaskInfo {
            task_index: p,
            num_map_tasks: 2,
            num_reduce_tasks: 3,
        };
        mapper.setup(&info);
        let mut out = Vec::new();
        let input = running_example::annotated_partitions();
        for (key, keyed) in &input[p] {
            let mut ctx = MapContext::for_testing(info);
            mapper.map(key, keyed, &mut ctx);
            for (k, v) in ctx.output() {
                out.push((*k, v.keyed.entity.get("name").unwrap().to_string()));
            }
        }
        out
    }

    #[test]
    fn entity_m_is_sent_to_ranges_1_and_2() {
        // Paper: "map therefore outputs two tuples (1.3.2, M) and
        // (2.3.2, M)".
        let outputs = run_partition(1);
        let m: Vec<&PairRangeKey> = outputs
            .iter()
            .filter(|(_, n)| n == "M")
            .map(|(k, _)| k)
            .collect();
        assert_eq!(m.len(), 2);
        assert!(m.iter().any(|k| (k.range, k.block, k.index) == (1, 3, 2)));
        assert!(m.iter().any(|k| (k.range, k.block, k.index) == (2, 3, 2)));
    }

    #[test]
    fn entity_f_is_only_in_range_1() {
        // F (block z, index 0) has pairs 10..13, all in range [7,13]
        // (paper: F "does not take part in any of the pairs with index
        // 14 through 19").
        let outputs = run_partition(0);
        let f: Vec<&PairRangeKey> = outputs
            .iter()
            .filter(|(_, n)| n == "F")
            .map(|(k, _)| k)
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].range, f[0].block, f[0].index), (1, 3, 0));
    }

    #[test]
    fn block_w_entities_go_to_range_0_only() {
        // Block w's pairs are 0..=5, all within range [0,6].
        let outputs = run_partition(0);
        for name in ["A", "B"] {
            let keys: Vec<&PairRangeKey> = outputs
                .iter()
                .filter(|(_, n)| n == name)
                .map(|(k, _)| k)
                .collect();
            assert_eq!(keys.len(), 1, "{name}");
            assert_eq!(keys[0].range, 0, "{name}");
        }
    }

    #[test]
    fn total_map_output_for_the_example() {
        // Figure 7's dataflow: range 0 receives blocks w (4 entities)
        // and x (2); range 1 receives y (3) and all of z (5); range 2
        // receives z except F (4). Total = 18 emitted pairs.
        let total = run_partition(0).len() + run_partition(1).len();
        assert_eq!(total, 18);
    }

    #[test]
    fn relevant_ranges_cover_every_pair_exactly_once_per_range() {
        // Union over entities of {entity} × relevant_ranges must cover
        // each range's pairs: for every pair (x, y), both x and y are
        // sent to the pair's range.
        let bdm = running_example_bdm();
        for r in [1usize, 2, 3, 5, 20] {
            let ranges = RangeIndexer::new(bdm.total_pairs(), r, RangePolicy::CeilDiv);
            for block in 0..bdm.num_blocks() {
                let n = bdm.size(block);
                for x in 0..n {
                    for y in (x + 1)..n {
                        let range = ranges.range_of(pair_index(&bdm, block, x, y));
                        let rx = relevant_ranges(&bdm, &ranges, block, x);
                        let ry = relevant_ranges(&bdm, &ranges, block, y);
                        assert!(rx.contains(&range), "x={x} y={y} r={r}");
                        assert!(ry.contains(&range), "x={x} y={y} r={r}");
                    }
                }
            }
        }
    }
}
