//! The paper's running example as shared test data.
//!
//! Figure 3: 14 entities A–O (letter I unused) in two input partitions
//! with blocking keys w, x, y, z:
//!
//! ```text
//! Π0: A:w  B:w  C:x  D:y  E:y  F:z  G:z
//! Π1: H:w  J:w  K:x  L:y  M:z  N:z  O:z
//! ```
//!
//! This induces the Figure 4 BDM (`w:[2,2] x:[1,1] y:[2,1] z:[2,3]`),
//! P = 20 pairs, the Figure 5 BlockSplit distribution and the
//! Figure 6/7 PairRange enumeration. Entity "titles" here are the
//! single-letter names; matching in the example tests usually runs in
//! count-only mode since the paper's example is about routing, not
//! similarity.

use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::Entity;
use mr_engine::input::Partitions;

use crate::{Ent, Keyed};

/// `(name, blocking key, partition)` for all 14 entities, in the
/// paper's order.
pub const LAYOUT: &[(&str, &str, usize)] = &[
    ("A", "w", 0),
    ("B", "w", 0),
    ("C", "x", 0),
    ("D", "y", 0),
    ("E", "y", 0),
    ("F", "z", 0),
    ("G", "z", 0),
    ("H", "w", 1),
    ("J", "w", 1),
    ("K", "x", 1),
    ("L", "y", 1),
    ("M", "z", 1),
    ("N", "z", 1),
    ("O", "z", 1),
];

/// Raw entity partitions (input of the BDM job). Each entity has a
/// `name` attribute (its letter) and a `title` equal to its blocking
/// key followed by the name, so `PrefixBlocking::new("title", 1)`
/// reproduces the paper's keys.
pub fn entity_partitions() -> Partitions<(), Ent> {
    let mut parts: Partitions<(), Ent> = vec![Vec::new(), Vec::new()];
    for (id, (name, key, partition)) in LAYOUT.iter().enumerate() {
        let title = format!("{key} {name}");
        let entity = Entity::new(id as u64, [("title", title.as_str()), ("name", name)]);
        parts[*partition].push(((), Arc::new(entity)));
    }
    parts
}

/// Blocking-key-annotated partitions (input of the matching job — what
/// the BDM job's side output produces for this data).
pub fn annotated_partitions() -> Partitions<BlockKey, Keyed> {
    entity_partitions()
        .into_iter()
        .map(|part| {
            part.into_iter()
                .map(|(_, entity)| {
                    let key = BlockKey::new(&entity.get("title").unwrap()[..1]);
                    (key.clone(), Keyed::single(key, entity))
                })
                .collect()
        })
        .collect()
}

/// The blocking function reproducing the example keys from titles.
pub fn blocking() -> Arc<dyn er_core::blocking::BlockingFunction> {
    Arc::new(er_core::blocking::PrefixBlocking::new("title", 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdm::running_example_bdm;
    use crate::bdm::BlockDistributionMatrix;

    #[test]
    fn layout_matches_figure3() {
        assert_eq!(LAYOUT.len(), 14);
        let parts = entity_partitions();
        assert_eq!(parts[0].len(), 7);
        assert_eq!(parts[1].len(), 7);
    }

    #[test]
    fn annotated_partitions_induce_the_figure4_bdm() {
        let annotated = annotated_partitions();
        let keys: Vec<Vec<BlockKey>> = annotated
            .iter()
            .map(|p| p.iter().map(|(k, _)| k.clone()).collect())
            .collect();
        let bdm = BlockDistributionMatrix::from_key_partitions(&keys);
        assert_eq!(bdm, running_example_bdm());
    }

    #[test]
    fn blocking_function_reproduces_keys() {
        let blocking = blocking();
        for part in entity_partitions().iter() {
            for (_, e) in part {
                let expected = &e.get("title").unwrap()[..1];
                assert_eq!(blocking.key(e).unwrap().as_str(), expected);
            }
        }
    }
}
