//! Multi-pass blocking (the paper's future-work extension, §VIII:
//! "we will extend our approaches to multi-pass blocking that assigns
//! multiple blocks per entity").
//!
//! With multiple blocking keys per entity, the same pair can share
//! several blocks and would naively be compared (and its match
//! emitted) once per shared block. The classic remedy — applied here —
//! is the *smallest common block* rule: a pair is evaluated only in
//! the lexicographically smallest block both entities belong to. The
//! rule needs each entity's full key set at comparison time, which is
//! why [`crate::Keyed`] carries `all_keys` end to end; the check lives
//! in [`crate::compare::PairComparer`] and therefore applies uniformly
//! to Basic, BlockSplit and PairRange (one- and two-source).
//!
//! Note the interplay with load balancing: the BDM counts an entity
//! once per key, so block sizes — and hence the planned workload —
//! include the pairs that the smallest-common-block rule later skips.
//! Skipped pairs are visible as the difference between planned
//! comparisons (BDM pair count) and the `er.comparisons` counter, and
//! are tracked explicitly under
//! [`crate::compare::MULTIPASS_SKIPPED`]. Folding the dedup rule into
//! the *planning* stage is an open problem the paper leaves to future
//! work; see `EXPERIMENTS.md` for the ablation quantifying the skew.

use std::sync::Arc;

use er_core::blocking::{BlockingFunction, MultiPassBlocking};

use crate::driver::ErConfig;
use crate::StrategyKind;

/// Builds a config whose blocking is the union of several passes.
pub fn multipass_config(
    strategy: StrategyKind,
    passes: Vec<Arc<dyn BlockingFunction>>,
) -> ErConfig {
    ErConfig::new(strategy).with_blocking(Arc::new(MultiPassBlocking::new(passes)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::MULTIPASS_SKIPPED;
    use crate::driver::{naive_reference, run_er};
    use crate::{Ent, COMPARISONS};
    use er_core::blocking::{AttributeBlocking, PrefixBlocking};
    use er_core::Entity;
    use mr_engine::input::partition_evenly;

    /// Products where title prefix and brand overlap heavily, so many
    /// pairs share both blocks.
    fn entities() -> Vec<Ent> {
        let mk = |id: u64, title: &str, brand: &str| {
            Arc::new(Entity::new(id, [("title", title), ("brand", brand)]))
        };
        vec![
            mk(0, "acme rocket skates xl", "acme"),
            mk(1, "acme rocket skates xk", "acme"),
            mk(2, "acme anvil deluxe 500", "acme"),
            mk(3, "beta widget pro", "beta"),
            mk(4, "beta widget prX", "beta"),
            mk(5, "acme tunnel paint kit", "zeta"),
            mk(6, "gamma unrelated thing", "acme"),
        ]
    }

    fn passes() -> Vec<Arc<dyn BlockingFunction>> {
        vec![
            Arc::new(PrefixBlocking::title3()),
            Arc::new(AttributeBlocking::new("brand")),
        ]
    }

    #[test]
    fn each_shared_pair_is_compared_once() {
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let cfg = multipass_config(strategy, passes())
                .with_reduce_tasks(3)
                .with_parallelism(1);
            let input = partition_evenly(entities().into_iter().map(|e| ((), e)).collect(), 2);
            let outcome = run_er(input, &cfg).unwrap();
            // Entities 0,1,2 share both the "acm" title block and the
            // "acme" brand block: their 3 pairs must be skipped in one
            // of the two (the non-smallest).
            let skipped = outcome.match_metrics.counters.get(MULTIPASS_SKIPPED);
            assert!(skipped >= 3, "{strategy}: skipped = {skipped}");
            // Comparisons + skips == total candidate pairs the blocks
            // generate.
            let compared = outcome.match_metrics.counters.get(COMPARISONS);
            let planned = outcome.bdm.as_ref().map(|b| b.total_pairs());
            if let Some(p) = planned {
                assert_eq!(compared + skipped, p, "{strategy}");
            }
        }
    }

    #[test]
    fn multipass_result_matches_naive_reference() {
        let cfg = multipass_config(StrategyKind::PairRange, passes())
            .with_reduce_tasks(4)
            .with_parallelism(1);
        let ents = entities();
        let input = partition_evenly(ents.iter().map(|e| ((), Arc::clone(e))).collect(), 3);
        let outcome = run_er(input, &cfg).unwrap();
        let reference = naive_reference(&ents, &cfg);
        assert_eq!(outcome.result.pair_set(), reference.pair_set());
    }

    #[test]
    fn multipass_finds_matches_single_pass_blocking_misses() {
        // Entities 3 and 4 match by title prefix; a brand-only single
        // pass would still find them, but a *title-prefix-only* pass
        // would miss a same-brand different-title duplicate. Construct
        // one: same brand, title differs in the first three letters.
        let mk = |id: u64, title: &str, brand: &str| {
            Arc::new(Entity::new(id, [("title", title), ("brand", brand)]))
        };
        let ents: Vec<Ent> = vec![
            mk(0, "xqj identical text", "acme"),
            mk(1, "zpw identical text", "acme"),
        ];
        let input = partition_evenly(ents.iter().map(|e| ((), Arc::clone(e))).collect(), 1);
        // Lower threshold: titles differ in 3 of 18 chars (sim 0.83).
        use er_core::matcher::{MatchRule, Matcher};
        use er_core::similarity::NormalizedLevenshtein;
        let matcher = Arc::new(Matcher::new(
            vec![MatchRule::new("title", Arc::new(NormalizedLevenshtein))],
            0.8,
        ));

        let single = ErConfig::new(StrategyKind::BlockSplit)
            .with_blocking(Arc::new(PrefixBlocking::title3()))
            .with_matcher(Arc::clone(&matcher))
            .with_reduce_tasks(2)
            .with_parallelism(1);
        let outcome_single = run_er(input.clone(), &single).unwrap();
        assert_eq!(outcome_single.result.len(), 0, "prefix blocking misses it");

        let multi = multipass_config(StrategyKind::BlockSplit, passes())
            .with_matcher(matcher)
            .with_reduce_tasks(2)
            .with_parallelism(1);
        let outcome_multi = run_er(input, &multi).unwrap();
        assert_eq!(outcome_multi.result.len(), 1, "brand pass recovers it");
    }
}
