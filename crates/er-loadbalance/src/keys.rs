//! Composite map-output keys and their partition/sort/group functions.
//!
//! Everything the paper achieves rests on composite keys routed by a
//! *component* (the partitioner sees only the reduce-task or range
//! index) while sorting and grouping see more of the key (Section
//! III-A). The key types here derive `Ord` so that the natural order
//! is exactly the paper's sort order.

use mr_engine::partitioner::FnPartitioner;

use er_core::SourceId;

use crate::{Ent, Keyed};

/// Map output key of BlockSplit: `reduce_task.block.i.j`
/// (`i == j == 0` encodes an unsplit block's single match task, which
/// the paper writes `k.*`; `i == j` a sub-block task `k.i`; `i > j`
/// the Cartesian task `k.i×j`).
///
/// `Ord` sorts by `(reduce_task, block, i, j)`; partitioning uses only
/// `reduce_task`; grouping uses the entire key (one reduce call per
/// match task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockSplitKey {
    /// Target reduce task, assigned by the greedy scheduler.
    pub reduce_task: u32,
    /// Block index in the BDM.
    pub block: u32,
    /// Larger sub-block coordinate (input partition index).
    pub i: u32,
    /// Smaller sub-block coordinate.
    pub j: u32,
}

impl BlockSplitKey {
    /// Partitioner: route on the reduce-task component only.
    pub fn partitioner() -> FnPartitioner<BlockSplitKey> {
        FnPartitioner::new(|key: &BlockSplitKey, r: usize| (key.reduce_task as usize) % r)
    }
}

impl std::fmt::Display for BlockSplitKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.i == self.j {
            write!(f, "{}.{}.{}", self.reduce_task, self.block, self.i)
        } else {
            write!(
                f,
                "{}.{}.{}x{}",
                self.reduce_task, self.block, self.i, self.j
            )
        }
    }
}

/// Map output value of BlockSplit: the annotated entity plus the input
/// partition it came from ("for split blocks we annotate entities with
/// the partition index for use in the reduce phase").
#[derive(Debug, Clone)]
pub struct BlockSplitValue {
    /// The blocking-key-annotated entity.
    pub keyed: Keyed,
    /// Input partition the entity was read from.
    pub partition: u32,
    /// Source side (R/S); only meaningful for two-source matching.
    pub source: SourceId,
}

impl BlockSplitValue {
    /// One-source value.
    pub fn new(keyed: Keyed, partition: usize) -> Self {
        Self {
            keyed,
            partition: partition as u32,
            source: SourceId::R,
        }
    }

    /// Two-source value with an explicit side.
    pub fn with_source(keyed: Keyed, partition: usize, source: SourceId) -> Self {
        Self {
            keyed,
            partition: partition as u32,
            source,
        }
    }

    /// The underlying entity.
    pub fn entity(&self) -> &Ent {
        &self.keyed.entity
    }
}

/// Map output key of PairRange: `range.block.source.entity_index`.
///
/// `Ord` gives the paper's sort order (sort by the entire key);
/// partitioning uses only `range`; grouping uses `(range, block)` so
/// one reduce call sees all entities of a block relevant to the range,
/// sorted by source then entity index. For one-source matching the
/// source component is constantly `R` and therefore inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairRangeKey {
    /// Target pair range == reduce task index.
    pub range: u32,
    /// Block index in the BDM.
    pub block: u32,
    /// Source side; `R` sorts before `S` so two-source reducers can
    /// buffer `R` and stream `S`.
    pub source: SourceId,
    /// Global entity index within the block (and source).
    pub index: u64,
}

impl PairRangeKey {
    /// Partitioner: route on the range component only.
    pub fn partitioner() -> FnPartitioner<PairRangeKey> {
        FnPartitioner::new(|key: &PairRangeKey, r: usize| (key.range as usize) % r)
    }

    /// Grouping comparator: `(range, block)` — coarser than the sort.
    pub fn group_cmp() -> mr_engine::comparator::KeyCmp<PairRangeKey> {
        mr_engine::comparator::by_projection(|k: &PairRangeKey| (k.range, k.block))
    }
}

impl std::fmt::Display for PairRangeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            self.range, self.block, self.source, self.index
        )
    }
}

/// Map output value of PairRange: the annotated entity plus its global
/// entity index ("map additionally annotates each entity with its
/// entity index so that the pair index can be easily computed").
#[derive(Debug, Clone)]
pub struct PairRangeValue {
    /// The blocking-key-annotated entity.
    pub keyed: Keyed,
    /// Global entity index within its block (and source).
    pub index: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_engine::partitioner::Partitioner;

    #[test]
    fn block_split_key_orders_like_the_paper() {
        let a = BlockSplitKey {
            reduce_task: 0,
            block: 3,
            i: 1,
            j: 0,
        };
        let b = BlockSplitKey {
            reduce_task: 0,
            block: 3,
            i: 1,
            j: 1,
        };
        let c = BlockSplitKey {
            reduce_task: 1,
            block: 0,
            i: 0,
            j: 0,
        };
        assert!(a < b, "same block: j orders");
        assert!(b < c, "reduce task dominates");
    }

    #[test]
    fn block_split_partitioner_uses_reduce_component() {
        let p = BlockSplitKey::partitioner();
        let key = BlockSplitKey {
            reduce_task: 2,
            block: 99,
            i: 7,
            j: 3,
        };
        assert_eq!(p.partition(&key, 3), 2);
        assert_eq!(p.partition(&key, 2), 0, "wraps when r shrank");
    }

    #[test]
    fn block_split_key_displays_match_task_notation() {
        let unsplit = BlockSplitKey {
            reduce_task: 0,
            block: 2,
            i: 0,
            j: 0,
        };
        let cross = BlockSplitKey {
            reduce_task: 1,
            block: 3,
            i: 1,
            j: 0,
        };
        assert_eq!(unsplit.to_string(), "0.2.0");
        assert_eq!(cross.to_string(), "1.3.1x0");
    }

    #[test]
    fn pair_range_key_sorts_range_block_source_index() {
        let mk = |range, block, source, index| PairRangeKey {
            range,
            block,
            source,
            index,
        };
        let mut keys = [
            mk(1, 3, SourceId::R, 2),
            mk(0, 0, SourceId::R, 5),
            mk(1, 2, SourceId::S, 0),
            mk(1, 2, SourceId::R, 9),
        ];
        keys.sort();
        assert_eq!(keys[0].range, 0);
        assert_eq!((keys[1].block, keys[1].source), (2, SourceId::R));
        assert_eq!((keys[2].block, keys[2].source), (2, SourceId::S));
        assert_eq!(keys[3].block, 3);
    }

    #[test]
    fn pair_range_grouping_is_by_range_and_block() {
        let cmp = PairRangeKey::group_cmp();
        let a = PairRangeKey {
            range: 1,
            block: 3,
            source: SourceId::R,
            index: 0,
        };
        let b = PairRangeKey {
            range: 1,
            block: 3,
            source: SourceId::S,
            index: 9,
        };
        let c = PairRangeKey {
            range: 1,
            block: 4,
            source: SourceId::R,
            index: 0,
        };
        assert_eq!(cmp(&a, &b), std::cmp::Ordering::Equal);
        assert_ne!(cmp(&a, &c), std::cmp::Ordering::Equal);
    }
}
