//! Shared pair-comparison context used by every strategy's reducer.

use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::result::MatchPair;
use er_core::Matcher;
use mr_engine::reducer::ReduceContext;

use crate::{Keyed, COMPARISONS};

/// Counter: pairs skipped by the multi-pass smallest-common-block rule
/// (never incremented under single-pass blocking).
pub const MULTIPASS_SKIPPED: &str = "er.multipass.skipped";

/// Evaluates entity pairs inside reduce functions: applies the
/// multi-pass dedup gate, counts comparisons, and (unless in
/// count-only mode) runs the matcher and emits matches.
#[derive(Clone)]
pub struct PairComparer {
    matcher: Arc<Matcher>,
    count_only: bool,
}

impl PairComparer {
    /// A comparer that evaluates similarity and emits matches.
    pub fn new(matcher: Arc<Matcher>) -> Self {
        Self {
            matcher,
            count_only: false,
        }
    }

    /// A comparer that only counts comparisons — used by the timing
    /// experiments, where the workload distribution matters but the
    /// match output does not.
    pub fn count_only(matcher: Arc<Matcher>) -> Self {
        Self {
            matcher,
            count_only: true,
        }
    }

    /// Whether this comparer skips similarity evaluation.
    pub fn is_count_only(&self) -> bool {
        self.count_only
    }

    /// Compares `a` and `b` within `current` block, emitting a match
    /// record if the pair reaches the matcher's threshold.
    pub fn compare(
        &self,
        a: &Keyed,
        b: &Keyed,
        current: &BlockKey,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        if !a.should_compare_in(b, current) {
            ctx.add_counter(MULTIPASS_SKIPPED, 1);
            return;
        }
        ctx.add_counter(COMPARISONS, 1);
        if self.count_only {
            return;
        }
        if let Some(score) = self.matcher.matches(&a.entity, &b.entity) {
            ctx.emit(
                MatchPair::new(a.entity.entity_ref(), b.entity.entity_ref()),
                score,
            );
        }
    }
}

impl std::fmt::Debug for PairComparer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairComparer")
            .field("count_only", &self.count_only)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::Entity;
    use mr_engine::reducer::ReduceTaskInfo;

    fn ctx() -> ReduceContext<MatchPair, f64> {
        ReduceContext::for_testing(ReduceTaskInfo {
            task_index: 0,
            num_reduce_tasks: 1,
            num_map_tasks: 1,
        })
    }

    fn keyed(id: u64, title: &str) -> Keyed {
        Keyed::single(
            BlockKey::new("blk"),
            Arc::new(Entity::new(id, [("title", title)])),
        )
    }

    #[test]
    fn matching_pair_is_emitted_with_score() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut c = ctx();
        comparer.compare(
            &keyed(1, "abcdefghij"),
            &keyed(2, "abcdefghiX"),
            &BlockKey::new("blk"),
            &mut c,
        );
        assert_eq!(c.info().task_index, 0);
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert_eq!(c.output().len(), 1);
        assert!((c.output()[0].1 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn non_matching_pair_is_counted_but_not_emitted() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut c = ctx();
        comparer.compare(
            &keyed(1, "abcdefghij"),
            &keyed(2, "zzzzzzzzzz"),
            &BlockKey::new("blk"),
            &mut c,
        );
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert!(c.output().is_empty());
    }

    #[test]
    fn count_only_skips_matching() {
        let comparer = PairComparer::count_only(Arc::new(Matcher::paper_default()));
        assert!(comparer.is_count_only());
        let mut c = ctx();
        comparer.compare(
            &keyed(1, "abcdefghij"),
            &keyed(2, "abcdefghij"),
            &BlockKey::new("blk"),
            &mut c,
        );
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert!(c.output().is_empty(), "count-only never emits");
    }

    #[test]
    fn multipass_gate_skips_non_smallest_common_block() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let all: Arc<[BlockKey]> = Arc::from(
            vec![BlockKey::new("aaa"), BlockKey::new("zzz")].into_boxed_slice(),
        );
        let a = Keyed::replica(
            BlockKey::new("zzz"),
            Arc::clone(&all),
            Arc::new(Entity::new(1, [("title", "same title")])),
        );
        let b = Keyed::replica(
            BlockKey::new("zzz"),
            all,
            Arc::new(Entity::new(2, [("title", "same title")])),
        );
        let mut c = ctx();
        comparer.compare(&a, &b, &BlockKey::new("zzz"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 0);
        assert_eq!(c.counters().get(MULTIPASS_SKIPPED), 1);
        assert!(c.output().is_empty());
    }
}
