//! Shared pair-comparison context used by every strategy's reducer.
//!
//! Reducers buffer a block's entities and evaluate all O(b²) pairs.
//! The prepared path keeps that quadratic loop allocation-free: each
//! entity is preprocessed **once** via [`PairComparer::prepare_cached`]
//! (backed by a per-task [`MatcherCache`], so even entities revisited
//! across groups — PairRange range replicas, multi-pass blocking — are
//! prepared a single time), and pairs are scored through
//! [`PairComparer::compare_prepared`] on the cached
//! [`PreparedHandle`]s. The default cache runs in arena mode, so the
//! handles are `Copy`-sized ids into contiguous slabs and the compare
//! loop allocates nothing after warm-up. In count-only mode
//! preparation is skipped entirely; the similarity measure never runs.

use std::collections::BTreeSet;
use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::result::MatchPair;
use er_core::{Matcher, MatcherCache, PreparedHandle};
use mr_engine::reducer::ReduceContext;

use crate::{Keyed, COMPARISONS};

/// Counter: pairs skipped by a multi-pass dedup gate — either the
/// smallest-common-block rule of multi-pass *blocking*, or the
/// already-compared-pair gate of multi-pass *Sorted Neighborhood*
/// ([`PairComparer::with_skip_pairs`]). Never incremented under
/// single-pass configurations.
pub const MULTIPASS_SKIPPED: &str = "er.multipass.skipped";

/// Counter: pairs skipped because both entities belong to the same
/// source under a cross-source-only comparer
/// ([`PairComparer::with_cross_source_only`]); two-source Sorted
/// Neighborhood interleaves R and S in one total order and must only
/// evaluate R × S window pairs.
pub const SAME_SOURCE_SKIPPED: &str = "er.two_source.same_source_skipped";

/// Whether a pair passes this comparer's gates or is skipped (and
/// under which counter).
enum Gate {
    Evaluate,
    SkipMultipass,
    SkipSameSource,
}

/// Evaluates entity pairs inside reduce functions: applies the
/// multi-pass dedup gate, counts comparisons, and (unless in
/// count-only mode) runs the matcher and emits matches.
#[derive(Clone)]
pub struct PairComparer {
    matcher: Arc<Matcher>,
    count_only: bool,
    /// Capacity bound for caches created by [`PairComparer::new_cache`]
    /// (`None` = unbounded, the paper-scale batch default).
    cache_capacity: Option<usize>,
    /// Pairs an earlier pass of a multi-pass workload already
    /// evaluated; skipped here (first pass wins — the total-order
    /// analogue of the smallest-common-block rule).
    skip_pairs: Option<Arc<BTreeSet<MatchPair>>>,
    /// Evaluate only pairs whose entities come from different sources
    /// (two-source R × S workloads over one interleaved order).
    cross_source_only: bool,
}

impl PairComparer {
    /// A comparer that evaluates similarity and emits matches.
    pub fn new(matcher: Arc<Matcher>) -> Self {
        Self {
            matcher,
            count_only: false,
            cache_capacity: None,
            skip_pairs: None,
            cross_source_only: false,
        }
    }

    /// A comparer that only counts comparisons — used by the timing
    /// experiments, where the workload distribution matters but the
    /// match output does not.
    pub fn count_only(matcher: Arc<Matcher>) -> Self {
        Self {
            matcher,
            count_only: true,
            cache_capacity: None,
            skip_pairs: None,
            cross_source_only: false,
        }
    }

    /// Skips (without counting as comparisons) every pair in `pairs` —
    /// the pair-level dedup gate of multi-pass Sorted Neighborhood:
    /// pairs an earlier pass already evaluated are counted under
    /// [`MULTIPASS_SKIPPED`] instead of being compared again, so each
    /// unioned window pair is evaluated exactly once globally.
    pub fn with_skip_pairs(mut self, pairs: Option<Arc<BTreeSet<MatchPair>>>) -> Self {
        self.skip_pairs = pairs;
        self
    }

    /// Restricts evaluation to cross-source pairs: same-source pairs
    /// are counted under [`SAME_SOURCE_SKIPPED`] and skipped. Used by
    /// two-source Sorted Neighborhood, whose total order interleaves
    /// both sources but whose output must contain only R × S pairs.
    pub fn with_cross_source_only(mut self, cross_source_only: bool) -> Self {
        self.cross_source_only = cross_source_only;
        self
    }

    /// Whether this comparer evaluates only cross-source pairs.
    pub fn is_cross_source_only(&self) -> bool {
        self.cross_source_only
    }

    /// Applies every gate in order: smallest-common-block (multi-pass
    /// blocking), cross-source-only, already-compared (multi-pass SN).
    fn gate(&self, a: &Keyed, b: &Keyed, current: &BlockKey) -> Gate {
        if !a.should_compare_in(b, current) {
            return Gate::SkipMultipass;
        }
        if self.cross_source_only && a.entity.source() == b.entity.source() {
            return Gate::SkipSameSource;
        }
        if let Some(skip) = &self.skip_pairs {
            if skip.contains(&MatchPair::new(
                a.entity.entity_ref(),
                b.entity.entity_ref(),
            )) {
                return Gate::SkipMultipass;
            }
        }
        Gate::Evaluate
    }

    /// Bounds every cache this comparer hands out (LRU eviction, see
    /// [`MatcherCache::with_capacity`]); `None` restores the unbounded
    /// default. Eviction only ever costs recompute, never correctness.
    ///
    /// # Panics
    /// If `capacity` is `Some(n)` with `n < 2` — comparing a pair
    /// needs both sides resident (checked here eagerly rather than
    /// when a reduce task first builds its cache).
    pub fn with_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        assert!(
            capacity.is_none_or(|n| n >= 2),
            "a bounded cache needs room for a pair"
        );
        self.cache_capacity = capacity;
        self
    }

    /// The cache bound applied by [`PairComparer::new_cache`], if any.
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    /// Whether this comparer skips similarity evaluation.
    pub fn is_count_only(&self) -> bool {
        self.count_only
    }

    /// Compares `a` and `b` within `current` block, emitting a match
    /// record if the pair reaches the matcher's threshold.
    ///
    /// One-shot entry point: both entities are preprocessed from
    /// scratch. Reducers evaluating whole blocks should use
    /// [`PairComparer::prepare_cached`] +
    /// [`PairComparer::compare_prepared`] instead.
    pub fn compare(
        &self,
        a: &Keyed,
        b: &Keyed,
        current: &BlockKey,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        match self.gate(a, b, current) {
            Gate::SkipMultipass => {
                ctx.add_counter(MULTIPASS_SKIPPED, 1);
                return;
            }
            Gate::SkipSameSource => {
                ctx.add_counter(SAME_SOURCE_SKIPPED, 1);
                return;
            }
            Gate::Evaluate => {}
        }
        ctx.add_counter(COMPARISONS, 1);
        if self.count_only {
            return;
        }
        if let Some(score) = self.matcher.matches(&a.entity, &b.entity) {
            ctx.emit(
                MatchPair::new(a.entity.entity_ref(), b.entity.entity_ref()),
                score,
            );
        }
    }

    /// A fresh per-reduce-task cache for
    /// [`PairComparer::prepare_cached`], honouring the configured
    /// capacity bound.
    pub fn new_cache(&self) -> MatcherCache {
        match self.cache_capacity {
            Some(capacity) => MatcherCache::with_capacity(Arc::clone(&self.matcher), capacity),
            None => MatcherCache::new(Arc::clone(&self.matcher)),
        }
    }

    /// Wraps `keyed` with its cached prepared form, computing it on
    /// first sight of the entity. Count-only comparers skip
    /// preparation — the matcher never runs, so the work would be
    /// wasted.
    pub fn prepare_cached<'a>(
        &self,
        cache: &mut MatcherCache,
        keyed: &'a Keyed,
    ) -> PreparedRef<'a> {
        PreparedRef {
            keyed,
            prepared: self.prepare_owned(cache, keyed),
        }
    }

    /// The owned half of [`PairComparer::prepare_cached`]: just the
    /// cached prepared handle (`None` exactly when count-only), for
    /// buffers that outlive a borrow scope — e.g. a sliding window
    /// carried across reduce groups. Reassemble a comparison handle
    /// with [`PreparedRef::from_parts`].
    pub fn prepare_owned(&self, cache: &mut MatcherCache, keyed: &Keyed) -> Option<PreparedHandle> {
        (!self.count_only).then(|| cache.handle(&keyed.entity))
    }

    /// [`PairComparer::compare`] over prepared handles: same gate,
    /// same counters, same emissions — but similarity runs on the
    /// cached representations (through `cache`, which must be the one
    /// that issued the handles), bit-exact with the string path.
    pub fn compare_prepared(
        &self,
        cache: &MatcherCache,
        a: &PreparedRef<'_>,
        b: &PreparedRef<'_>,
        current: &BlockKey,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        self.compare_prepared_into(cache, a, b, current, ctx, |ctx, pair, score| {
            ctx.emit(pair, score);
        });
    }

    /// [`PairComparer::compare_prepared`] generalized over the reduce
    /// output shape: gate, counters and matching are identical, but a
    /// found match is delivered to `sink` instead of being emitted
    /// directly — for reducers whose output type is not
    /// `(MatchPair, f64)` (er-sn's window reducer interleaves matches
    /// with boundary records).
    pub fn compare_prepared_into<KO, VO>(
        &self,
        cache: &MatcherCache,
        a: &PreparedRef<'_>,
        b: &PreparedRef<'_>,
        current: &BlockKey,
        ctx: &mut ReduceContext<KO, VO>,
        mut sink: impl FnMut(&mut ReduceContext<KO, VO>, MatchPair, f64),
    ) {
        match self.gate(a.keyed, b.keyed, current) {
            Gate::SkipMultipass => {
                ctx.add_counter(MULTIPASS_SKIPPED, 1);
                return;
            }
            Gate::SkipSameSource => {
                ctx.add_counter(SAME_SOURCE_SKIPPED, 1);
                return;
            }
            Gate::Evaluate => {}
        }
        ctx.add_counter(COMPARISONS, 1);
        if self.count_only {
            return;
        }
        let (pa, pb) = (
            a.prepared.as_ref().expect("prepared under !count_only"),
            b.prepared.as_ref().expect("prepared under !count_only"),
        );
        if let Some(score) = cache.matches_handles(pa, pb) {
            sink(
                ctx,
                MatchPair::new(a.keyed.entity.entity_ref(), b.keyed.entity.entity_ref()),
                score,
            );
        }
    }
}

/// A block entity paired with its cached prepared handle — what the
/// strategy reducers buffer instead of bare [`Keyed`] references.
/// `prepared` is `None` exactly when the comparer is count-only.
#[derive(Debug, Clone)]
pub struct PreparedRef<'a> {
    /// The annotated entity.
    pub keyed: &'a Keyed,
    prepared: Option<PreparedHandle>,
}

impl<'a> PreparedRef<'a> {
    /// Reassembles a comparison handle from parts produced by
    /// [`PairComparer::prepare_owned`]. `prepared` must be the handle
    /// that comparer's cache returned for this entity (`None` exactly
    /// for count-only comparers) — handing a non-count-only comparer a
    /// `None` panics inside the compare call.
    pub fn from_parts(keyed: &'a Keyed, prepared: Option<PreparedHandle>) -> Self {
        Self { keyed, prepared }
    }
}

impl std::fmt::Debug for PairComparer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairComparer")
            .field("count_only", &self.count_only)
            .field("cross_source_only", &self.cross_source_only)
            .field("skip_pairs", &self.skip_pairs.as_ref().map(|s| s.len()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::Entity;
    use mr_engine::reducer::ReduceTaskInfo;

    fn ctx() -> ReduceContext<MatchPair, f64> {
        ReduceContext::for_testing(ReduceTaskInfo {
            task_index: 0,
            num_reduce_tasks: 1,
            num_map_tasks: 1,
        })
    }

    fn keyed(id: u64, title: &str) -> Keyed {
        Keyed::single(
            BlockKey::new("blk"),
            Arc::new(Entity::new(id, [("title", title)])),
        )
    }

    #[test]
    fn matching_pair_is_emitted_with_score() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut c = ctx();
        comparer.compare(
            &keyed(1, "abcdefghij"),
            &keyed(2, "abcdefghiX"),
            &BlockKey::new("blk"),
            &mut c,
        );
        assert_eq!(c.info().task_index, 0);
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert_eq!(c.output().len(), 1);
        assert!((c.output()[0].1 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn non_matching_pair_is_counted_but_not_emitted() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut c = ctx();
        comparer.compare(
            &keyed(1, "abcdefghij"),
            &keyed(2, "zzzzzzzzzz"),
            &BlockKey::new("blk"),
            &mut c,
        );
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert!(c.output().is_empty());
    }

    #[test]
    fn count_only_skips_matching() {
        let comparer = PairComparer::count_only(Arc::new(Matcher::paper_default()));
        assert!(comparer.is_count_only());
        let mut c = ctx();
        comparer.compare(
            &keyed(1, "abcdefghij"),
            &keyed(2, "abcdefghij"),
            &BlockKey::new("blk"),
            &mut c,
        );
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert!(c.output().is_empty(), "count-only never emits");
    }

    #[test]
    fn prepared_path_matches_unprepared_path() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let block = BlockKey::new("blk");
        for (id, (ta, tb)) in [
            ("abcdefghij", "abcdefghiX"), // match at 0.9
            ("abcdefghij", "zzzzzzzzzz"), // counted, no match
        ]
        .into_iter()
        .enumerate()
        {
            // Distinct ids per case: the cache memoizes by entity ref.
            let (a, b) = (keyed(2 * id as u64, ta), keyed(2 * id as u64 + 1, tb));
            let mut direct = ctx();
            comparer.compare(&a, &b, &block, &mut direct);
            let mut prepared = ctx();
            let (pa, pb) = (
                comparer.prepare_cached(&mut cache, &a),
                comparer.prepare_cached(&mut cache, &b),
            );
            comparer.compare_prepared(&cache, &pa, &pb, &block, &mut prepared);
            assert_eq!(direct.output(), prepared.output());
            assert_eq!(
                direct.counters().get(COMPARISONS),
                prepared.counters().get(COMPARISONS)
            );
        }
    }

    #[test]
    fn cache_capacity_threads_into_new_cache() {
        let comparer =
            PairComparer::new(Arc::new(Matcher::paper_default())).with_cache_capacity(Some(4));
        assert_eq!(comparer.cache_capacity(), Some(4));
        assert_eq!(comparer.new_cache().capacity(), Some(4));
        let unbounded = comparer.with_cache_capacity(None);
        assert_eq!(unbounded.cache_capacity(), None);
        assert_eq!(unbounded.new_cache().capacity(), None);
    }

    #[test]
    fn compare_prepared_into_delivers_matches_to_the_sink() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let (a, b) = (keyed(1, "abcdefghij"), keyed(2, "abcdefghiX"));
        let (pa, pb) = (
            comparer.prepare_cached(&mut cache, &a),
            comparer.prepare_cached(&mut cache, &b),
        );
        // A reduce context whose output shape is NOT (MatchPair, f64).
        let mut ctx: ReduceContext<(), String> = ReduceContext::for_testing(ReduceTaskInfo {
            task_index: 0,
            num_reduce_tasks: 1,
            num_map_tasks: 1,
        });
        comparer.compare_prepared_into(
            &cache,
            &pa,
            &pb,
            &BlockKey::new("blk"),
            &mut ctx,
            |c, pair, s| {
                c.emit((), format!("{pair} @ {s:.1}"));
            },
        );
        assert_eq!(ctx.counters().get(COMPARISONS), 1);
        assert_eq!(ctx.output().len(), 1);
        assert!(ctx.output()[0].1.contains("0.9"));
    }

    #[test]
    fn count_only_skips_preparation() {
        let comparer = PairComparer::count_only(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let a = keyed(1, "abcdefghij");
        let pa = comparer.prepare_cached(&mut cache, &a);
        assert!(cache.is_empty(), "count-only must not prepare entities");
        let mut c = ctx();
        comparer.compare_prepared(&cache, &pa, &pa.clone(), &BlockKey::new("blk"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert!(c.output().is_empty());
    }

    #[test]
    fn prepared_cache_hits_across_groups() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let a = keyed(1, "abcdefghij");
        let _ = comparer.prepare_cached(&mut cache, &a);
        let _ = comparer.prepare_cached(&mut cache, &a);
        assert_eq!(cache.len(), 1, "same entity must be prepared once");
    }

    #[test]
    fn prepared_multipass_gate_skips_non_smallest_common_block() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let all: Arc<[BlockKey]> =
            Arc::from(vec![BlockKey::new("aaa"), BlockKey::new("zzz")].into_boxed_slice());
        let a = Keyed::replica(
            BlockKey::new("zzz"),
            Arc::clone(&all),
            Arc::new(Entity::new(1, [("title", "same title")])),
        );
        let b = Keyed::replica(
            BlockKey::new("zzz"),
            all,
            Arc::new(Entity::new(2, [("title", "same title")])),
        );
        let (pa, pb) = (
            comparer.prepare_cached(&mut cache, &a),
            comparer.prepare_cached(&mut cache, &b),
        );
        let mut c = ctx();
        comparer.compare_prepared(&cache, &pa, &pb, &BlockKey::new("zzz"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 0);
        assert_eq!(c.counters().get(MULTIPASS_SKIPPED), 1);
    }

    #[test]
    fn skip_pairs_gate_suppresses_already_compared_pairs() {
        let (a, b) = (keyed(1, "abcdefghij"), keyed(2, "abcdefghij"));
        let seen: BTreeSet<MatchPair> =
            [MatchPair::new(a.entity.entity_ref(), b.entity.entity_ref())].into();
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()))
            .with_skip_pairs(Some(Arc::new(seen)));
        let mut c = ctx();
        comparer.compare(&a, &b, &BlockKey::new("blk"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 0);
        assert_eq!(c.counters().get(MULTIPASS_SKIPPED), 1);
        assert!(c.output().is_empty(), "a gated pair is never re-emitted");
        // A pair outside the set still compares — through both paths.
        let fresh = keyed(3, "abcdefghij");
        comparer.compare(&a, &fresh, &BlockKey::new("blk"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 1);
        let mut cache = comparer.new_cache();
        let (pa, pb) = (
            comparer.prepare_cached(&mut cache, &a),
            comparer.prepare_cached(&mut cache, &b),
        );
        comparer.compare_prepared(&cache, &pa, &pb, &BlockKey::new("blk"), &mut c);
        assert_eq!(c.counters().get(MULTIPASS_SKIPPED), 2);
        assert_eq!(c.counters().get(COMPARISONS), 1);
    }

    #[test]
    fn cross_source_gate_skips_same_source_pairs() {
        use er_core::SourceId;
        let comparer =
            PairComparer::new(Arc::new(Matcher::paper_default())).with_cross_source_only(true);
        assert!(comparer.is_cross_source_only());
        let r1 = keyed(1, "abcdefghij");
        let r2 = keyed(2, "abcdefghij");
        let s1 = Keyed::single(
            BlockKey::new("blk"),
            Arc::new(Entity::with_source(
                SourceId::S,
                1,
                [("title", "abcdefghij")],
            )),
        );
        let mut c = ctx();
        comparer.compare(&r1, &r2, &BlockKey::new("blk"), &mut c);
        assert_eq!(c.counters().get(SAME_SOURCE_SKIPPED), 1);
        assert_eq!(c.counters().get(COMPARISONS), 0);
        assert!(c.output().is_empty());
        // Cross-source pairs pass both paths.
        comparer.compare(&r1, &s1, &BlockKey::new("blk"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 1);
        assert_eq!(c.output().len(), 1);
        let mut cache = comparer.new_cache();
        let (pr, ps) = (
            comparer.prepare_cached(&mut cache, &r2),
            comparer.prepare_cached(&mut cache, &s1),
        );
        comparer.compare_prepared(&cache, &pr, &ps, &BlockKey::new("blk"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 2);
    }

    #[test]
    fn multipass_gate_skips_non_smallest_common_block() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let all: Arc<[BlockKey]> =
            Arc::from(vec![BlockKey::new("aaa"), BlockKey::new("zzz")].into_boxed_slice());
        let a = Keyed::replica(
            BlockKey::new("zzz"),
            Arc::clone(&all),
            Arc::new(Entity::new(1, [("title", "same title")])),
        );
        let b = Keyed::replica(
            BlockKey::new("zzz"),
            all,
            Arc::new(Entity::new(2, [("title", "same title")])),
        );
        let mut c = ctx();
        comparer.compare(&a, &b, &BlockKey::new("zzz"), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 0);
        assert_eq!(c.counters().get(MULTIPASS_SKIPPED), 1);
        assert!(c.output().is_empty());
    }
}
