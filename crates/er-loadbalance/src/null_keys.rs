//! Entities without a valid blocking key (paper Section III and
//! Appendix I).
//!
//! One source: `match(R) = matchB(R−R∅) ∪ match⊥(R−R∅, R∅) ∪
//! allPairs(R∅)` — the last two terms together are the paper's
//! "Cartesian product of R×R∅".
//!
//! Two sources: `matchB(R,S) = matchB(R−R∅, S−S∅) ∪ match⊥(R, S∅) ∪
//! match⊥(R∅, S−S∅)`.
//!
//! The `⊥` sub-problems run the regular machinery under
//! [`ConstantBlocking`]: every entity lands in one block, which the
//! load-balancing strategies then split — so even the degenerate
//! Cartesian product is processed skew-free.

use std::sync::Arc;

use er_core::blocking::{BlockingFunction, ConstantBlocking};
use er_core::{MatchResult, SourceId};
use mr_engine::error::MrError;
use mr_engine::input::Partitions;

use crate::driver::{run_er, ErConfig};
use crate::two_source::run_linkage;
use crate::Ent;

/// Input split by blocking-key validity, preserving partition shape.
#[derive(Debug)]
pub struct NullKeySplit {
    /// Partitions of entities with at least one valid key.
    pub keyed: Partitions<(), Ent>,
    /// Partitions of entities without any key.
    pub null: Partitions<(), Ent>,
}

impl NullKeySplit {
    /// Total keyed entities.
    pub fn keyed_count(&self) -> usize {
        self.keyed.iter().map(Vec::len).sum()
    }

    /// Total keyless entities.
    pub fn null_count(&self) -> usize {
        self.null.iter().map(Vec::len).sum()
    }
}

/// Splits partitions by whether the blocking function yields a key.
pub fn split_by_key(input: &Partitions<(), Ent>, blocking: &dyn BlockingFunction) -> NullKeySplit {
    let mut keyed: Partitions<(), Ent> = Vec::with_capacity(input.len());
    let mut null: Partitions<(), Ent> = Vec::with_capacity(input.len());
    for partition in input {
        let mut k = Vec::new();
        let mut n = Vec::new();
        for ((), e) in partition {
            if blocking.keys(e).is_empty() {
                n.push(((), Arc::clone(e)));
            } else {
                k.push(((), Arc::clone(e)));
            }
        }
        keyed.push(k);
        null.push(n);
    }
    NullKeySplit { keyed, null }
}

/// Breakdown of a null-key-aware run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullKeyReport {
    /// Matches from regular blocking-based matching.
    pub blocked_matches: usize,
    /// Matches from the keyed × keyless Cartesian part(s).
    pub cartesian_matches: usize,
    /// Matches among keyless entities (one-source only).
    pub null_null_matches: usize,
}

/// Deduplicates one source including keyless entities.
pub fn deduplicate_with_null_keys(
    input: &Partitions<(), Ent>,
    config: &ErConfig,
) -> Result<(MatchResult, NullKeyReport), MrError> {
    let split = split_by_key(input, config.blocking.as_ref());
    let mut result = MatchResult::new();
    let mut report = NullKeyReport::default();

    // matchB(R − R∅)
    if split.keyed_count() > 0 {
        let outcome = run_er(split.keyed.clone(), config)?;
        report.blocked_matches = outcome.result.len();
        result.union(&outcome.result);
    }
    if split.null_count() > 0 {
        let bottom: Arc<dyn BlockingFunction> = Arc::new(ConstantBlocking);
        // match⊥(R − R∅, R∅): keyed partitions as side R, keyless as
        // side S of a constant-key linkage.
        if split.keyed_count() > 0 {
            let mut partitions = split.keyed.clone();
            partitions.extend(split.null.clone());
            let mut sources = vec![SourceId::R; split.keyed.len()];
            sources.extend(vec![SourceId::S; split.null.len()]);
            let cfg = config.clone().with_blocking(Arc::clone(&bottom));
            let outcome = run_linkage(partitions, sources, &cfg)?;
            report.cartesian_matches = outcome.result.len();
            result.union(&outcome.result);
        }
        // allPairs(R∅): one-source matching under the constant key.
        if split.null_count() > 1 {
            let cfg = config.clone().with_blocking(bottom);
            let outcome = run_er(split.null.clone(), &cfg)?;
            report.null_null_matches = outcome.result.len();
            result.union(&outcome.result);
        }
    }
    Ok((result, report))
}

/// Links two sources including keyless entities on either side.
pub fn link_with_null_keys(
    input: &Partitions<(), Ent>,
    sources: &[SourceId],
    config: &ErConfig,
) -> Result<(MatchResult, NullKeyReport), MrError> {
    assert_eq!(input.len(), sources.len());
    let split = split_by_key(input, config.blocking.as_ref());
    let mut result = MatchResult::new();
    let mut report = NullKeyReport::default();

    // matchB(R − R∅, S − S∅)
    if split.keyed_count() > 0 {
        let outcome = run_linkage(split.keyed.clone(), sources.to_vec(), config)?;
        report.blocked_matches = outcome.result.len();
        result.union(&outcome.result);
    }
    let bottom: Arc<dyn BlockingFunction> = Arc::new(ConstantBlocking);
    // match⊥(R, S∅): all of R (keyed + keyless) against keyless S.
    let r_all: Partitions<(), Ent> = input
        .iter()
        .zip(sources)
        .filter(|(_, &s)| s == SourceId::R)
        .map(|(p, _)| p.clone())
        .collect();
    let s_null: Partitions<(), Ent> = split
        .null
        .iter()
        .zip(sources)
        .filter(|(_, &s)| s == SourceId::S)
        .map(|(p, _)| p.clone())
        .collect();
    if !r_all.iter().all(Vec::is_empty) && !s_null.iter().all(Vec::is_empty) {
        let mut partitions = r_all.clone();
        partitions.extend(s_null.clone());
        let mut tags = vec![SourceId::R; r_all.len()];
        tags.extend(vec![SourceId::S; s_null.len()]);
        let cfg = config.clone().with_blocking(Arc::clone(&bottom));
        let outcome = run_linkage(partitions, tags, &cfg)?;
        report.cartesian_matches += outcome.result.len();
        result.union(&outcome.result);
    }
    // match⊥(R∅, S − S∅)
    let r_null: Partitions<(), Ent> = split
        .null
        .iter()
        .zip(sources)
        .filter(|(_, &s)| s == SourceId::R)
        .map(|(p, _)| p.clone())
        .collect();
    let s_keyed: Partitions<(), Ent> = split
        .keyed
        .iter()
        .zip(sources)
        .filter(|(_, &s)| s == SourceId::S)
        .map(|(p, _)| p.clone())
        .collect();
    if !r_null.iter().all(Vec::is_empty) && !s_keyed.iter().all(Vec::is_empty) {
        let mut partitions = r_null.clone();
        partitions.extend(s_keyed.clone());
        let mut tags = vec![SourceId::R; r_null.len()];
        tags.extend(vec![SourceId::S; s_keyed.len()]);
        let cfg = config.clone().with_blocking(bottom);
        let outcome = run_linkage(partitions, tags, &cfg)?;
        report.cartesian_matches += outcome.result.len();
        result.union(&outcome.result);
    }
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategyKind;
    use er_core::blocking::PrefixBlocking;
    use er_core::Entity;

    fn ent(id: u64, title: Option<&str>) -> ((), Ent) {
        match title {
            Some(t) => ((), Arc::new(Entity::new(id, [("title", t)]))),
            None => ((), Arc::new(Entity::new(id, [("brand", "keyless")]))),
        }
    }

    fn config(strategy: StrategyKind) -> ErConfig {
        ErConfig::new(strategy)
            .with_blocking(Arc::new(PrefixBlocking::new("title", 2)))
            .with_reduce_tasks(3)
            .with_parallelism(1)
    }

    #[test]
    fn split_preserves_partition_shape() {
        let input = vec![
            vec![ent(0, Some("aa x")), ent(1, None)],
            vec![ent(2, None), ent(3, Some("bb y"))],
        ];
        let split = split_by_key(&input, &PrefixBlocking::new("title", 2));
        assert_eq!(split.keyed.len(), 2);
        assert_eq!(split.null.len(), 2);
        assert_eq!(split.keyed_count(), 2);
        assert_eq!(split.null_count(), 2);
    }

    #[test]
    fn keyless_duplicates_are_found_via_cartesian_parts() {
        // Entity 1 (keyless) duplicates entity 0 (keyed) — only the
        // Cartesian part can find the pair. Entities 2 and 3 are
        // keyless duplicates of each other — only the null×null part
        // can find them.
        let input = vec![
            vec![
                (
                    (),
                    Arc::new(Entity::new(
                        0,
                        [("title", "aa same text here"), ("brand", "dupmark")],
                    )),
                ),
                // Keyless (no title): only the brand rule can link it
                // to entity 0.
                ((), Arc::new(Entity::new(1, [("brand", "dupmark")]))),
            ],
            vec![
                ((), Arc::new(Entity::new(2, [("brand", "zz unique text")]))),
                ((), Arc::new(Entity::new(3, [("brand", "zz unique text")]))),
            ],
        ];
        // Matcher on `brand`? The paper matcher uses `title`; give the
        // keyless entities no title so the matcher must use what it
        // can: here we simply match on brand via a custom matcher.
        use er_core::matcher::{MatchRule, Matcher};
        use er_core::similarity::NormalizedLevenshtein;
        let matcher = Arc::new(Matcher::new(
            vec![
                MatchRule::new("title", Arc::new(NormalizedLevenshtein)).with_weight(1.0),
                MatchRule::new("brand", Arc::new(NormalizedLevenshtein)).with_weight(1.0),
            ],
            0.4,
        ));
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let cfg = config(strategy).with_matcher(Arc::clone(&matcher));
            let (result, report) = deduplicate_with_null_keys(&input, &cfg).unwrap();
            assert!(
                report.cartesian_matches >= 1,
                "{strategy}: keyed x keyless duplicate missed: {report:?}"
            );
            assert!(
                report.null_null_matches >= 1,
                "{strategy}: keyless x keyless duplicate missed"
            );
            assert!(result.len() >= 2);
        }
    }

    #[test]
    fn no_null_keys_degenerates_to_plain_matching() {
        let input = vec![
            vec![
                ent(0, Some("aa same text here")),
                ent(1, Some("aa same text herX")),
            ],
            vec![ent(2, Some("bb other"))],
        ];
        let cfg = config(StrategyKind::BlockSplit);
        let (result, report) = deduplicate_with_null_keys(&input, &cfg).unwrap();
        let direct = run_er(input.clone(), &cfg).unwrap();
        assert_eq!(result.pair_set(), direct.result.pair_set());
        assert_eq!(report.cartesian_matches, 0);
        assert_eq!(report.null_null_matches, 0);
    }

    #[test]
    fn two_source_decomposition_covers_all_parts() {
        // R: one keyed + one keyless; S: one keyed + one keyless.
        let input = vec![
            vec![ent(0, Some("aa alpha beta")), ent(1, None)],
            vec![
                (
                    (),
                    Arc::new(Entity::with_source(
                        SourceId::S,
                        10,
                        [("title", "aa alpha beta")],
                    )),
                ),
                (
                    (),
                    Arc::new(Entity::with_source(SourceId::S, 11, [("brand", "keyless")])),
                ),
            ],
        ];
        let sources = vec![SourceId::R, SourceId::S];
        use er_core::matcher::{MatchRule, Matcher};
        use er_core::similarity::NormalizedLevenshtein;
        let matcher = Arc::new(Matcher::new(
            vec![
                MatchRule::new("title", Arc::new(NormalizedLevenshtein)).with_weight(1.0),
                MatchRule::new("brand", Arc::new(NormalizedLevenshtein)).with_weight(1.0),
            ],
            0.4,
        ));
        let cfg = config(StrategyKind::PairRange).with_matcher(matcher);
        let (result, report) = link_with_null_keys(&input, &sources, &cfg).unwrap();
        // Blocked: R#0 ~ S#10 (same title). Cartesian: R#1 ~ S#11
        // (same brand) via match⊥(R, S∅).
        assert!(report.blocked_matches >= 1, "{report:?}");
        assert!(report.cartesian_matches >= 1, "{report:?}");
        for (pair, _) in result.iter() {
            assert_ne!(pair.lo().source, pair.hi().source);
        }
    }
}
