//! Greedy match-task assignment (Algorithm 1, lines 22–27).
//!
//! Tasks are ordered by descending comparison count and each is placed
//! on the reduce task with the least load so far — longest-processing-
//! time-first (LPT) list scheduling. Ties in size break by `(block, i,
//! j)` and ties in load by the lower reduce index, making the
//! assignment fully deterministic (and reproducing the paper's
//! Figure 5 distribution).

use std::collections::BTreeMap;

use super::match_tasks::MatchTask;

/// The deterministic assignment of match tasks to reduce tasks.
#[derive(Debug, Clone)]
pub struct TaskAssignment {
    by_task: BTreeMap<(usize, usize, usize), (usize, u64)>,
    loads: Vec<u64>,
}

impl TaskAssignment {
    /// Runs the greedy assignment for `r` reduce tasks.
    pub fn greedy(mut tasks: Vec<MatchTask>, r: usize) -> Self {
        assert!(r > 0, "need at least one reduce task");
        // Descending by size; deterministic tie-break on identity.
        tasks.sort_by(|a, b| {
            b.comparisons
                .cmp(&a.comparisons)
                .then(a.block.cmp(&b.block))
                .then(a.i.cmp(&b.i))
                .then(a.j.cmp(&b.j))
        });
        let mut loads = vec![0u64; r];
        let mut by_task = BTreeMap::new();
        for task in tasks {
            let reduce_task = loads
                .iter()
                .enumerate()
                .min_by_key(|(idx, &load)| (load, *idx))
                .map(|(idx, _)| idx)
                .expect("r > 0");
            loads[reduce_task] += task.comparisons;
            by_task.insert(
                (task.block, task.i, task.j),
                (reduce_task, task.comparisons),
            );
        }
        Self { by_task, loads }
    }

    /// The reduce task responsible for match task `(block, i, j)`,
    /// `None` if that match task does not exist (e.g. an empty
    /// sub-block pairing — the paper's `reduceTask ≠ null` check).
    pub fn reduce_task_for(&self, block: usize, i: usize, j: usize) -> Option<usize> {
        self.by_task.get(&(block, i, j)).map(|&(rt, _)| rt)
    }

    /// Comparison load per reduce task.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Number of match tasks assigned.
    pub fn num_tasks(&self) -> usize {
        self.by_task.len()
    }

    /// Iterates `((block, i, j), (reduce_task, comparisons))`.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize, usize), &(usize, u64))> {
        self.by_task.iter()
    }

    /// Max/mean load ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.loads.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = self.loads.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max / (sum as f64 / self.loads.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdm::running_example_bdm;
    use crate::block_split::match_tasks::create_match_tasks;

    #[test]
    fn running_example_assignment_matches_figure5() {
        // Order by size: 0.* (6), 3.0×1 (6), 2.* (3), 3.1 (3), 1.* (1),
        // 3.0 (1) — the paper's ordering, then greedy placement:
        // R0 <- 0.*, R1 <- 3.0×1, R2 <- 2.*, R2 <- 3.1, R0 <- 1.*,
        // R1 <- 3.0. Loads: 7 / 7 / 6 ("between six and seven
        // comparisons").
        let tasks = create_match_tasks(&running_example_bdm(), 3);
        let assignment = TaskAssignment::greedy(tasks, 3);
        assert_eq!(assignment.loads(), &[7, 7, 6]);
        assert_eq!(assignment.reduce_task_for(0, 0, 0), Some(0));
        assert_eq!(assignment.reduce_task_for(3, 1, 0), Some(1));
        assert_eq!(assignment.reduce_task_for(2, 0, 0), Some(2));
        assert_eq!(assignment.reduce_task_for(3, 1, 1), Some(2));
        assert_eq!(assignment.reduce_task_for(1, 0, 0), Some(0));
        assert_eq!(assignment.reduce_task_for(3, 0, 0), Some(1));
        assert_eq!(assignment.num_tasks(), 6);
    }

    #[test]
    fn missing_match_task_is_none() {
        let tasks = create_match_tasks(&running_example_bdm(), 3);
        let assignment = TaskAssignment::greedy(tasks, 3);
        assert_eq!(assignment.reduce_task_for(3, 1, 1), Some(2));
        assert_eq!(assignment.reduce_task_for(9, 0, 0), None);
    }

    #[test]
    fn loads_sum_to_total_pairs() {
        for r in [1, 2, 3, 5, 8] {
            let tasks = create_match_tasks(&running_example_bdm(), r);
            let assignment = TaskAssignment::greedy(tasks, r);
            assert_eq!(assignment.loads().iter().sum::<u64>(), 20, "r={r}");
        }
    }

    #[test]
    fn lpt_is_within_4_thirds_of_optimal_lower_bound() {
        // Classic LPT bound: makespan <= 4/3 · OPT and OPT >= max(mean,
        // largest task). Spot-check with an adversarial task mix.
        let tasks: Vec<MatchTask> = [7u64, 7, 6, 5, 5, 4, 4, 4, 9, 2, 2]
            .iter()
            .enumerate()
            .map(|(idx, &c)| MatchTask {
                block: idx,
                i: 0,
                j: 0,
                comparisons: c,
            })
            .collect();
        let r = 3;
        let total: u64 = tasks.iter().map(|t| t.comparisons).sum();
        let largest = tasks.iter().map(|t| t.comparisons).max().unwrap();
        let assignment = TaskAssignment::greedy(tasks, r);
        let makespan = *assignment.loads().iter().max().unwrap() as f64;
        let lower = (total as f64 / r as f64).max(largest as f64);
        assert!(makespan <= lower * 4.0 / 3.0 + 1e-9);
    }

    #[test]
    fn imbalance_metric() {
        let tasks = vec![
            MatchTask {
                block: 0,
                i: 0,
                j: 0,
                comparisons: 8,
            },
            MatchTask {
                block: 1,
                i: 0,
                j: 0,
                comparisons: 8,
            },
        ];
        let assignment = TaskAssignment::greedy(tasks, 2);
        assert!((assignment.imbalance() - 1.0).abs() < 1e-12);
        let empty = TaskAssignment::greedy(vec![], 2);
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one reduce task")]
    fn zero_reduce_tasks_panics() {
        let _ = TaskAssignment::greedy(vec![], 0);
    }
}
