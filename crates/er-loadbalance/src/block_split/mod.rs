//! BlockSplit — block-based load balancing (paper Section IV,
//! Algorithm 1).
//!
//! Blocks whose comparison count fits the average reduce workload
//! `P/r` stay whole (one *match task* `k.*`). Larger blocks are split
//! by input partition into `m` sub-blocks, producing match tasks for
//! each sub-block (`k.i`) and each sub-block pair (`k.i×j`), so the
//! block's Cartesian product is preserved exactly. Match tasks are
//! then assigned to reduce tasks greedily in descending size — LPT
//! scheduling, which keeps the makespan within 4/3 of optimal.

pub mod assign;
pub mod mapper;
pub mod match_tasks;
pub mod reducer;

use std::sync::Arc;

use er_core::blocking::BlockKey;
use mr_engine::engine::Job;
use mr_engine::prelude::Partitions;

use crate::bdm::BlockDistributionMatrix;
use crate::compare::PairComparer;
use crate::keys::BlockSplitKey;

pub use assign::TaskAssignment;
pub use match_tasks::{create_match_tasks, create_match_tasks_with_policy, MatchTask, SplitPolicy};

/// Builds the BlockSplit matching job over the BDM job's annotated
/// side output.
pub fn block_split_job(
    bdm: Arc<BlockDistributionMatrix>,
    comparer: PairComparer,
    reduce_tasks: usize,
    parallelism: usize,
) -> Job<mapper::BlockSplitMapper, reducer::BlockSplitReducer> {
    block_split_job_with_policy(
        bdm,
        comparer,
        SplitPolicy::paper(),
        reduce_tasks,
        parallelism,
    )
}

/// [`block_split_job`] under an explicit [`SplitPolicy`] (e.g. a
/// memory cap forcing oversized blocks apart).
pub fn block_split_job_with_policy(
    bdm: Arc<BlockDistributionMatrix>,
    comparer: PairComparer,
    policy: SplitPolicy,
    reduce_tasks: usize,
    parallelism: usize,
) -> Job<mapper::BlockSplitMapper, reducer::BlockSplitReducer> {
    Job::builder(
        "er-block-split",
        mapper::BlockSplitMapper::with_policy(bdm, policy),
        reducer::BlockSplitReducer::new(comparer),
    )
    .reduce_tasks(reduce_tasks)
    .parallelism(parallelism)
    .partitioner(BlockSplitKey::partitioner())
    .build()
}

/// Convenience used by tests and benches: run BlockSplit end to end on
/// already-annotated input.
pub fn run_block_split(
    annotated: Partitions<BlockKey, crate::Keyed>,
    bdm: Arc<BlockDistributionMatrix>,
    comparer: PairComparer,
    reduce_tasks: usize,
    parallelism: usize,
) -> Result<
    mr_engine::engine::JobOutput<er_core::result::MatchPair, f64, ()>,
    mr_engine::error::MrError,
> {
    block_split_job(bdm, comparer, reduce_tasks, parallelism).run(annotated)
}
