//! BlockSplit map function (Algorithm 1, lines 1–44).

use std::sync::Arc;

use er_core::blocking::BlockKey;
use mr_engine::mapper::{MapContext, MapTaskInfo, Mapper};

use super::assign::TaskAssignment;
use super::match_tasks::{create_match_tasks_with_policy, SplitPolicy};
use crate::bdm::BlockDistributionMatrix;
use crate::keys::{BlockSplitKey, BlockSplitValue};
use crate::Keyed;

/// The BlockSplit mapper. Each map task re-derives the match-task
/// assignment from the (shared) BDM at `setup` time — mirroring the
/// paper's `map_configure`, where every map task independently reads
/// the BDM and computes the same deterministic assignment.
#[derive(Clone)]
pub struct BlockSplitMapper {
    bdm: Arc<BlockDistributionMatrix>,
    policy: SplitPolicy,
    state: Option<TaskState>,
}

#[derive(Clone)]
struct TaskState {
    assignment: Arc<TaskAssignment>,
    partition: usize,
    m: usize,
    r: usize,
}

impl BlockSplitMapper {
    /// Creates the mapper over a computed BDM (paper split policy).
    pub fn new(bdm: Arc<BlockDistributionMatrix>) -> Self {
        Self::with_policy(bdm, SplitPolicy::paper())
    }

    /// Creates the mapper with an explicit split policy.
    pub fn with_policy(bdm: Arc<BlockDistributionMatrix>, policy: SplitPolicy) -> Self {
        Self {
            bdm,
            policy,
            state: None,
        }
    }
}

impl Mapper for BlockSplitMapper {
    type KIn = BlockKey;
    type VIn = Keyed;
    type KOut = BlockSplitKey;
    type VOut = BlockSplitValue;
    type Side = ();

    fn setup(&mut self, info: &MapTaskInfo) {
        let tasks = create_match_tasks_with_policy(&self.bdm, info.num_reduce_tasks, self.policy);
        self.state = Some(TaskState {
            assignment: Arc::new(TaskAssignment::greedy(tasks, info.num_reduce_tasks)),
            partition: info.task_index,
            m: info.num_map_tasks,
            r: info.num_reduce_tasks,
        });
    }

    fn map(
        &mut self,
        key: &BlockKey,
        keyed: &Keyed,
        ctx: &mut MapContext<BlockSplitKey, BlockSplitValue, ()>,
    ) {
        let state = self.state.as_ref().expect("setup ran");
        let Some(k) = self.bdm.block_index(key) else {
            // A key absent from the BDM means the two jobs saw
            // different data — a pipeline bug worth failing loudly on.
            panic!("blocking key {key} not present in the BDM");
        };
        let comps = self.bdm.pairs_in_block(k);
        let split =
            self.policy
                .should_split(self.bdm.size(k), comps, self.bdm.total_pairs(), state.r);
        if !split {
            if comps > 0 {
                let rt = state
                    .assignment
                    .reduce_task_for(k, 0, 0)
                    .expect("unsplit task exists for non-empty block");
                ctx.emit(
                    BlockSplitKey {
                        reduce_task: rt as u32,
                        block: k as u32,
                        i: 0,
                        j: 0,
                    },
                    BlockSplitValue::new(keyed.clone(), state.partition),
                );
            }
        } else {
            // Split block: emit for the own sub-block and every
            // existing pairing with another partition's sub-block.
            for i in 0..state.m {
                let hi = state.partition.max(i);
                let lo = state.partition.min(i);
                if let Some(rt) = state.assignment.reduce_task_for(k, hi, lo) {
                    ctx.emit(
                        BlockSplitKey {
                            reduce_task: rt as u32,
                            block: k as u32,
                            i: hi as u32,
                            j: lo as u32,
                        },
                        BlockSplitValue::new(keyed.clone(), state.partition),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdm::running_example_bdm;
    use crate::running_example;
    use mr_engine::mapper::MapTaskInfo;

    fn run_partition(p: usize) -> Vec<(BlockSplitKey, String)> {
        let bdm = Arc::new(running_example_bdm());
        let mut mapper = BlockSplitMapper::new(bdm);
        let info = MapTaskInfo {
            task_index: p,
            num_map_tasks: 2,
            num_reduce_tasks: 3,
        };
        mapper.setup(&info);
        let mut out = Vec::new();
        let input = running_example::annotated_partitions();
        for (key, keyed) in &input[p] {
            let mut ctx = MapContext::for_testing(info);
            mapper.map(key, keyed, &mut ctx);
            for (k, v) in ctx.output() {
                out.push((*k, v.entity().get("name").unwrap().to_string()));
            }
        }
        out
    }

    #[test]
    fn replication_only_for_the_split_block() {
        // 14 entities; the 5 entities of block z are emitted twice
        // (m = 2) -> 19 key-value pairs total (paper: "The replication
        // of the five entities for the split block leads to 19
        // key-value pairs for the 14 input entities").
        let total = run_partition(0).len() + run_partition(1).len();
        assert_eq!(total, 19);
    }

    #[test]
    fn entity_m_goes_to_its_sub_block_and_the_cross_task() {
        // M (partition 1, block z=3): sub-block task 3.1 at reduce 2
        // and cross task 3.1x0 at reduce 1 (Figure 5).
        let outputs = run_partition(1);
        let m_keys: Vec<&BlockSplitKey> = outputs
            .iter()
            .filter(|(_, name)| name == "M")
            .map(|(k, _)| k)
            .collect();
        assert_eq!(m_keys.len(), 2);
        assert!(m_keys
            .iter()
            .any(|k| (k.reduce_task, k.block, k.i, k.j) == (2, 3, 1, 1)));
        assert!(m_keys
            .iter()
            .any(|k| (k.reduce_task, k.block, k.i, k.j) == (1, 3, 1, 0)));
    }

    #[test]
    fn unsplit_entities_emit_once_with_assigned_reduce_task() {
        // A (partition 0, block w=0) -> single emission to reduce 0.
        let outputs = run_partition(0);
        let a_keys: Vec<&BlockSplitKey> = outputs
            .iter()
            .filter(|(_, name)| name == "A")
            .map(|(k, _)| k)
            .collect();
        assert_eq!(a_keys.len(), 1);
        assert_eq!(
            (
                a_keys[0].reduce_task,
                a_keys[0].block,
                a_keys[0].i,
                a_keys[0].j
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    #[should_panic(expected = "not present in the BDM")]
    fn unknown_key_panics() {
        let bdm = Arc::new(running_example_bdm());
        let mut mapper = BlockSplitMapper::new(bdm);
        let info = MapTaskInfo {
            task_index: 0,
            num_map_tasks: 2,
            num_reduce_tasks: 3,
        };
        mapper.setup(&info);
        let keyed = Keyed::single(
            BlockKey::new("nope"),
            Arc::new(er_core::Entity::new(0, [("name", "X")])),
        );
        let mut ctx = MapContext::for_testing(info);
        mapper.map(&BlockKey::new("nope"), &keyed, &mut ctx);
    }
}
