//! BlockSplit reduce function (Algorithm 1, lines 48–65).
//!
//! One reduce group == one match task. For a sub-block task (`i == j`)
//! the reducer streams all pairs within the group. For a Cartesian
//! task (`i ≠ j`) the paper's listing buffers the first partition's
//! entities and streams the second's against the buffer, relying on
//! Hadoop's merge delivering one partition's values contiguously. Our
//! engine gives that guarantee (stable merge in map-task order), but
//! the reducer is nonetheless written to be order-robust: it buckets
//! values by their partition annotation and computes the cross
//! product, which is the same set of comparisons under *any*
//! interleaving.

use er_core::result::MatchPair;
use er_core::MatcherCache;
use mr_engine::reducer::{Group, ReduceContext, Reducer};

use crate::compare::{PairComparer, PreparedRef};
use crate::keys::{BlockSplitKey, BlockSplitValue};

/// The BlockSplit reducer.
#[derive(Clone)]
pub struct BlockSplitReducer {
    comparer: PairComparer,
    cache: MatcherCache,
}

impl BlockSplitReducer {
    /// Creates the reducer.
    pub fn new(comparer: PairComparer) -> Self {
        let cache = comparer.new_cache();
        Self { comparer, cache }
    }
}

impl Reducer for BlockSplitReducer {
    type KIn = BlockSplitKey;
    type VIn = BlockSplitValue;
    type KOut = MatchPair;
    type VOut = f64;

    fn reduce(
        &mut self,
        group: Group<'_, BlockSplitKey, BlockSplitValue>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        let key = *group.key();
        let block_key = group
            .values()
            .next()
            .expect("groups are non-empty")
            .keyed
            .key
            .clone();
        if key.i == key.j {
            // Match task k.* or k.i: all pairs within the group.
            let mut buffer: Vec<PreparedRef<'_>> = Vec::with_capacity(group.len());
            for e2 in group.values() {
                let e2 = self.comparer.prepare_cached(&mut self.cache, &e2.keyed);
                for e1 in &buffer {
                    self.comparer
                        .compare_prepared(&self.cache, e1, &e2, &block_key, ctx);
                }
                buffer.push(e2);
            }
        } else {
            // Match task k.i×j: Cartesian product of two sub-blocks.
            // Bucket by the partition annotation of the first value
            // seen (paper: `firstPartitionIndex`).
            let mut values = group.values();
            let first = values.next().expect("groups are non-empty");
            let first_partition = first.partition;
            let mut bucket_a: Vec<PreparedRef<'_>> =
                vec![self.comparer.prepare_cached(&mut self.cache, &first.keyed)];
            let mut bucket_b: Vec<PreparedRef<'_>> = Vec::new();
            for v in values {
                let prepared = self.comparer.prepare_cached(&mut self.cache, &v.keyed);
                if v.partition == first_partition {
                    bucket_a.push(prepared);
                } else {
                    bucket_b.push(prepared);
                }
            }
            for e1 in &bucket_a {
                for e2 in &bucket_b {
                    self.comparer
                        .compare_prepared(&self.cache, e1, e2, &block_key, ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Keyed, COMPARISONS};
    use er_core::blocking::BlockKey;
    use er_core::{Entity, Matcher};
    use mr_engine::reducer::ReduceTaskInfo;
    use std::sync::Arc;

    fn value(id: u64, title: &str, partition: usize) -> (BlockSplitKey, BlockSplitValue) {
        let key = BlockSplitKey {
            reduce_task: 0,
            block: 0,
            i: if partition == 0 { 0 } else { 1 },
            j: 0,
        };
        (
            key,
            BlockSplitValue::new(
                Keyed::single(
                    BlockKey::new("b"),
                    Arc::new(Entity::new(id, [("title", title)])),
                ),
                partition,
            ),
        )
    }

    fn ctx() -> ReduceContext<MatchPair, f64> {
        ReduceContext::for_testing(ReduceTaskInfo {
            task_index: 0,
            num_reduce_tasks: 1,
            num_map_tasks: 2,
        })
    }

    #[test]
    fn sub_block_task_compares_all_pairs() {
        let entries: Vec<(BlockSplitKey, BlockSplitValue)> = (0..4)
            .map(|i| {
                let (mut k, v) = value(i, "same title here", 0);
                k.i = 0;
                k.j = 0;
                (k, v)
            })
            .collect();
        let mut reducer =
            BlockSplitReducer::new(PairComparer::count_only(Arc::new(Matcher::paper_default())));
        let mut c = ctx();
        reducer.reduce(Group::for_testing(&entries), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 6, "C(4,2) pairs");
    }

    #[test]
    fn cartesian_task_compares_only_cross_pairs() {
        // 2 entities of partition 0, 3 of partition 1 -> 6 comparisons
        // (the paper's 3.0×1 match task).
        let mut entries = Vec::new();
        for i in 0..2 {
            let (mut k, v) = value(i, "t", 0);
            k.i = 1;
            k.j = 0;
            entries.push((k, v));
        }
        for i in 2..5 {
            let (mut k, v) = value(i, "t", 1);
            k.i = 1;
            k.j = 0;
            entries.push((k, v));
        }
        let mut reducer =
            BlockSplitReducer::new(PairComparer::count_only(Arc::new(Matcher::paper_default())));
        let mut c = ctx();
        reducer.reduce(Group::for_testing(&entries), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 6);
    }

    #[test]
    fn cartesian_task_is_order_robust() {
        // Interleave the two partitions adversarially; the comparison
        // count must not change (the paper's streaming listing would
        // miss pairs under this interleaving — see DESIGN.md).
        let mut entries = Vec::new();
        for (id, partition) in [(0, 0), (1, 1), (2, 0), (3, 1), (4, 1)] {
            let (mut k, v) = value(id, "t", partition);
            k.i = 1;
            k.j = 0;
            entries.push((k, v));
        }
        let mut reducer =
            BlockSplitReducer::new(PairComparer::count_only(Arc::new(Matcher::paper_default())));
        let mut c = ctx();
        reducer.reduce(Group::for_testing(&entries), &mut c);
        assert_eq!(c.counters().get(COMPARISONS), 6, "2 x 3 cross pairs");
    }

    #[test]
    fn matches_are_emitted_for_similar_cross_pairs() {
        let mut entries = Vec::new();
        let (mut k, v) = value(0, "abcdefghij", 0);
        k.i = 1;
        entries.push((k, v));
        let (mut k, v) = value(1, "abcdefghiX", 1);
        k.i = 1;
        entries.push((k, v));
        let mut reducer =
            BlockSplitReducer::new(PairComparer::new(Arc::new(Matcher::paper_default())));
        let mut c = ctx();
        reducer.reduce(Group::for_testing(&entries), &mut c);
        assert_eq!(c.output().len(), 1);
    }
}
