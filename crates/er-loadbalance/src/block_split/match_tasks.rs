//! Match-task creation (Algorithm 1, lines 6–21).

use er_core::pairs::triangle_pairs;

use crate::bdm::BlockDistributionMatrix;

/// One unit of reduce-side work: an unsplit block (`i == j == 0`,
/// written `k.*`), a sub-block matched against itself (`i == j`,
/// written `k.i`), or the Cartesian product of two sub-blocks
/// (`i > j`, written `k.i×j`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchTask {
    /// Block index in the BDM.
    pub block: usize,
    /// Larger coordinate (input partition); 0 for unsplit blocks.
    pub i: usize,
    /// Smaller coordinate; 0 for unsplit blocks.
    pub j: usize,
    /// Number of pair comparisons this task performs.
    pub comparisons: u64,
}

impl MatchTask {
    /// True for an unsplit block's single task (`k.*`).
    ///
    /// Note the encoding overlap with sub-block task `k.0` (both are
    /// `(k, 0, 0)`, exactly as in the paper's pseudo-code): a block is
    /// either split or unsplit, so the interpretation is always
    /// unambiguous within a block.
    pub fn is_unsplit(&self) -> bool {
        self.i == 0 && self.j == 0
    }
}

/// Is block `k` small enough to stay unsplit? Exact integer test of
/// the paper's `comps ≤ P/r` using cross-multiplication.
pub fn fits_average(comparisons: u64, total_pairs: u64, r: usize) -> bool {
    (comparisons as u128) * (r as u128) <= total_pairs as u128
}

/// Splitting policy: the paper's workload criterion, optionally
/// sharpened by a memory cap.
///
/// The paper motivates splitting with *two* problems — runtime skew
/// and memory ("a reduce task must store all entities passed to a
/// reduce call in main memory") — but Algorithm 1 only tests the
/// workload average. `max_block_entities` adds the missing memory
/// guard: blocks larger than the cap are split even when their pair
/// count fits the average reduce workload, bounding the number of
/// entities any single match task must buffer (given input partitions
/// of comparable block coverage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitPolicy {
    /// Split any block with more entities than this, regardless of
    /// its workload share. `None` reproduces Algorithm 1 exactly.
    pub max_block_entities: Option<u64>,
}

impl SplitPolicy {
    /// The paper's policy: split only on the workload criterion.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Adds the memory guard.
    pub fn with_memory_cap(cap: u64) -> Self {
        Self {
            max_block_entities: Some(cap),
        }
    }

    /// Should a block of `size` entities / `comparisons` pairs split?
    pub fn should_split(&self, size: u64, comparisons: u64, total_pairs: u64, r: usize) -> bool {
        if !fits_average(comparisons, total_pairs, r) {
            return true;
        }
        match self.max_block_entities {
            Some(cap) => size > cap,
            None => false,
        }
    }
}

/// Creates all match tasks for a one-source BDM (Algorithm 1 lines
/// 6–21): small blocks become one task, large blocks split into
/// sub-block tasks `k.i` and Cartesian tasks `k.i×j` over their
/// non-empty input partitions.
pub fn create_match_tasks(bdm: &BlockDistributionMatrix, r: usize) -> Vec<MatchTask> {
    create_match_tasks_with_policy(bdm, r, SplitPolicy::paper())
}

/// [`create_match_tasks`] under an explicit [`SplitPolicy`].
pub fn create_match_tasks_with_policy(
    bdm: &BlockDistributionMatrix,
    r: usize,
    policy: SplitPolicy,
) -> Vec<MatchTask> {
    let m = bdm.num_partitions();
    let total = bdm.total_pairs();
    let mut tasks = Vec::new();
    for k in 0..bdm.num_blocks() {
        let comps = bdm.pairs_in_block(k);
        if !policy.should_split(bdm.size(k), comps, total, r) {
            // Zero-pair blocks produce no work; the map phase drops
            // their entities (Algorithm 1 line 33 "if comps > 0").
            if comps > 0 {
                tasks.push(MatchTask {
                    block: k,
                    i: 0,
                    j: 0,
                    comparisons: comps,
                });
            }
        } else {
            for i in 0..m {
                let size_i = bdm.size_in(k, i);
                for j in 0..=i {
                    let size_j = bdm.size_in(k, j);
                    if size_i * size_j > 0 {
                        let comparisons = if i == j {
                            triangle_pairs(size_i)
                        } else {
                            size_i * size_j
                        };
                        tasks.push(MatchTask {
                            block: k,
                            i,
                            j,
                            comparisons,
                        });
                    }
                }
            }
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdm::running_example_bdm;

    #[test]
    fn running_example_splits_only_block_z() {
        // P = 20, r = 3 -> average 6.67. Only z (10 pairs) splits.
        let tasks = create_match_tasks(&running_example_bdm(), 3);
        // Blocks w, x, y stay whole: exactly one task each, carrying
        // the block's full pair count. (Task (k,0,0) alone does not
        // identify an unsplit block — a split block's sub-block 0 has
        // the same encoding, exactly as in the paper's pseudo-code.)
        let bdm = running_example_bdm();
        for k in [0usize, 1, 2] {
            let block_tasks: Vec<&MatchTask> = tasks.iter().filter(|t| t.block == k).collect();
            assert_eq!(block_tasks.len(), 1, "block {k} stays whole");
            assert!(block_tasks[0].is_unsplit());
            assert_eq!(block_tasks[0].comparisons, bdm.pairs_in_block(k));
        }
        let split: Vec<(usize, usize, usize, u64)> = tasks
            .iter()
            .filter(|t| t.block == 3)
            .map(|t| (t.block, t.i, t.j, t.comparisons))
            .collect();
        // Φ3.0 (2 entities -> 1 pair), Φ3.1 (3 -> 3), Φ3.0×1 (2·3 = 6).
        assert_eq!(split, vec![(3, 0, 0, 1), (3, 1, 0, 6), (3, 1, 1, 3)]);
    }

    #[test]
    fn running_example_task_sizes_match_figure5() {
        let tasks = create_match_tasks(&running_example_bdm(), 3);
        let total: u64 = tasks.iter().map(|t| t.comparisons).sum();
        assert_eq!(total, 20, "splitting preserves the pair count");
        let sizes: Vec<u64> = tasks.iter().map(|t| t.comparisons).collect();
        assert_eq!(sizes, vec![6, 1, 3, 1, 6, 3]); // w, x, y, 3.0, 3.0x1, 3.1
    }

    #[test]
    fn everything_fits_with_one_reduce_task() {
        let tasks = create_match_tasks(&running_example_bdm(), 1);
        assert!(tasks.iter().all(|t| t.is_unsplit()));
        assert_eq!(tasks.len(), 4);
    }

    #[test]
    fn huge_r_splits_every_multi_partition_block() {
        let tasks = create_match_tasks(&running_example_bdm(), 100);
        // All four blocks exceed P/r = 0.2 pairs, so all split into
        // multiple tasks (both partitions are populated everywhere).
        for k in 0..4 {
            assert!(
                tasks.iter().filter(|t| t.block == k).count() > 1,
                "block {k} must be split at r=100"
            );
        }
        // Block x has one entity per partition: sub-block tasks have
        // 0 comparisons but the cross task covers the single pair.
        let x_tasks: Vec<&MatchTask> = tasks.iter().filter(|t| t.block == 1).collect();
        let x_total: u64 = x_tasks.iter().map(|t| t.comparisons).sum();
        assert_eq!(x_total, 1);
        let total: u64 = tasks.iter().map(|t| t.comparisons).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn empty_partitions_produce_no_tasks() {
        use er_core::blocking::BlockKey;
        // Block confined to partition 1 of 3: splitting yields exactly
        // one sub-block task.
        let bdm =
            crate::bdm::BlockDistributionMatrix::from_counts(3, vec![(BlockKey::new("a"), 1, 5)]);
        let tasks = create_match_tasks(&bdm, 10);
        assert_eq!(tasks.len(), 1);
        assert_eq!((tasks[0].i, tasks[0].j, tasks[0].comparisons), (1, 1, 10));
    }

    #[test]
    fn memory_cap_splits_blocks_the_workload_criterion_keeps_whole() {
        // With r = 1 everything fits the average; a cap of 3 entities
        // still forces blocks w (4) and z (5) apart.
        let bdm = running_example_bdm();
        let tasks = create_match_tasks_with_policy(&bdm, 1, SplitPolicy::with_memory_cap(3));
        let blocks_with_multiple: Vec<usize> = (0..4)
            .filter(|&k| tasks.iter().filter(|t| t.block == k).count() > 1)
            .collect();
        assert_eq!(blocks_with_multiple, vec![0, 3], "w and z exceed the cap");
        let total: u64 = tasks.iter().map(|t| t.comparisons).sum();
        assert_eq!(total, 20, "splitting preserves pairs");
    }

    #[test]
    fn no_cap_reproduces_algorithm_1() {
        let bdm = running_example_bdm();
        assert_eq!(
            create_match_tasks(&bdm, 3),
            create_match_tasks_with_policy(&bdm, 3, SplitPolicy::paper())
        );
    }

    #[test]
    fn split_policy_logic() {
        let p = SplitPolicy::paper();
        assert!(p.should_split(5, 10, 20, 3), "workload criterion");
        assert!(!p.should_split(5, 6, 20, 3));
        let c = SplitPolicy::with_memory_cap(4);
        assert!(c.should_split(5, 6, 20, 3), "cap overrides");
        assert!(!c.should_split(4, 6, 20, 3));
    }

    #[test]
    fn fits_average_is_exact() {
        assert!(fits_average(6, 20, 3)); // 18 <= 20
        assert!(!fits_average(7, 20, 3)); // 21 > 20
        assert!(fits_average(0, 0, 5));
        assert!(fits_average(u64::MAX / 2, u64::MAX, 2));
    }
}
