//! MR Job 1: computing the BDM (paper Algorithm 3).
//!
//! * `map` derives the blocking key(s) of each entity, emits
//!   `((blocking key, partition index), 1)` and side-writes the
//!   annotated entity to the simulated DFS (`additionalOutput`);
//! * pairs are partitioned by the *blocking key* component so one block
//!   is counted by one reduce task;
//! * `reduce` sums the counts per `(blocking key, partition index)` —
//!   a row-wise enumeration of the non-zero BDM cells;
//! * an optional combiner pre-aggregates counts per map task (the
//!   optimization of the paper's footnote 2).

use std::sync::Arc;

use er_core::blocking::{BlockKey, BlockingFunction};
use mr_engine::combiner::sum_u64_combiner;
use mr_engine::prelude::*;

use crate::bdm::BlockDistributionMatrix;
use crate::{Ent, Keyed};

/// Counter: entities skipped because they had no valid blocking key
/// (`R_∅` — handled separately by [`crate::null_keys`]).
pub const NULL_KEY_ENTITIES: &str = "er.null_key.entities";

/// The count key: `(blocking key, partition index)`.
pub type BdmKey = (BlockKey, u32);

/// Mapper of Algorithm 3.
#[derive(Clone)]
pub struct BdmMapper {
    blocking: Arc<dyn BlockingFunction>,
    partition: Option<usize>,
}

impl BdmMapper {
    /// Creates the mapper with the given blocking function.
    pub fn new(blocking: Arc<dyn BlockingFunction>) -> Self {
        Self {
            blocking,
            partition: None,
        }
    }
}

impl Mapper for BdmMapper {
    type KIn = ();
    type VIn = Ent;
    type KOut = BdmKey;
    type VOut = u64;
    type Side = (BlockKey, Keyed);

    fn setup(&mut self, info: &MapTaskInfo) {
        self.partition = Some(info.task_index);
    }

    fn map(&mut self, _key: &(), entity: &Ent, ctx: &mut MapContext<BdmKey, u64, Self::Side>) {
        let partition = self.partition.expect("setup ran") as u32;
        let replicas = Keyed::derive_all(self.blocking.as_ref(), entity);
        if replicas.is_empty() {
            ctx.add_counter(NULL_KEY_ENTITIES, 1);
            return;
        }
        for keyed in replicas {
            ctx.emit((keyed.key.clone(), partition), 1);
            ctx.side_output((keyed.key.clone(), keyed));
        }
    }
}

/// Reducer of Algorithm 3: sums the 1s per `(blocking key, partition)`
/// — the generic count-sum reducer shared with er-sn's sort-key
/// distribution job.
pub type BdmReducer = mr_engine::reducer::SumReducer<BdmKey>;

/// Builds the BDM job. Partitioning is on the blocking-key component;
/// sorting and grouping use the entire `(key, partition)` pair.
pub fn bdm_job(
    blocking: Arc<dyn BlockingFunction>,
    reduce_tasks: usize,
    parallelism: usize,
    use_combiner: bool,
) -> Job<BdmMapper, BdmReducer> {
    bdm_job_named("bdm", blocking, reduce_tasks, parallelism, use_combiner)
}

/// [`bdm_job`] under a caller-chosen job name — for workflows that run
/// the distribution job more than once (e.g. er-lsh's adaptive rounds,
/// one signature job per `(bands, rows)` rung) and need the rounds
/// distinguishable in the stage metrics.
pub fn bdm_job_named(
    name: &str,
    blocking: Arc<dyn BlockingFunction>,
    reduce_tasks: usize,
    parallelism: usize,
    use_combiner: bool,
) -> Job<BdmMapper, BdmReducer> {
    let mut builder = Job::builder(name, BdmMapper::new(blocking), BdmReducer::default())
        .reduce_tasks(reduce_tasks)
        .parallelism(parallelism)
        .partitioner(FnPartitioner::new(|key: &BdmKey, r: usize| {
            HashPartitioner::bucket(&key.0, r)
        }));
    if use_combiner {
        builder = builder.combiner(sum_u64_combiner());
    }
    builder.build()
}

/// Products of a completed BDM job: the matrix, the annotated input
/// partitions `Π'_i` for Job 2, and the job metrics.
pub type BdmProducts = (
    BlockDistributionMatrix,
    Partitions<BlockKey, Keyed>,
    JobMetrics,
);

/// Runs the BDM job as a stage of `workflow` and assembles its
/// [`BdmProducts`]. The side outputs it returns are chained into the
/// matching job by the workflow layer, which enforces the identical-
/// partitioning invariant the BDM's partition indices rely on.
pub fn compute_bdm_in(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    blocking: Arc<dyn BlockingFunction>,
    reduce_tasks: usize,
    parallelism: usize,
    use_combiner: bool,
    spill_threshold: Option<usize>,
) -> Result<BdmProducts, MrError> {
    compute_bdm_named_in(
        workflow,
        "bdm",
        input,
        blocking,
        reduce_tasks,
        parallelism,
        use_combiner,
        spill_threshold,
    )
}

/// [`compute_bdm_in`] under a caller-chosen stage name (see
/// [`bdm_job_named`]).
#[allow(clippy::too_many_arguments)]
pub fn compute_bdm_named_in(
    workflow: &mut Workflow,
    name: &str,
    input: Partitions<(), Ent>,
    blocking: Arc<dyn BlockingFunction>,
    reduce_tasks: usize,
    parallelism: usize,
    use_combiner: bool,
    spill_threshold: Option<usize>,
) -> Result<BdmProducts, MrError> {
    let m = input.len();
    let job = bdm_job_named(name, blocking, reduce_tasks, parallelism, use_combiner)
        .with_spill_threshold(spill_threshold);
    let out = workflow.chained_stage(&job, input)?;
    let bdm = BlockDistributionMatrix::from_counts(
        m,
        out.reduce_outputs
            .into_iter()
            .flatten()
            .map(|((key, p), count)| (key, p as usize, count)),
    );
    Ok((bdm, out.side_outputs, out.metrics))
}

/// Runs the BDM job standalone (outside a larger workflow) and
/// assembles its [`BdmProducts`].
pub fn compute_bdm(
    input: Partitions<(), Ent>,
    blocking: Arc<dyn BlockingFunction>,
    reduce_tasks: usize,
    parallelism: usize,
    use_combiner: bool,
) -> Result<BdmProducts, MrError> {
    let mut workflow = Workflow::new("bdm");
    compute_bdm_in(
        &mut workflow,
        input,
        blocking,
        reduce_tasks,
        parallelism,
        use_combiner,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::blocking::PrefixBlocking;
    use er_core::Entity;

    fn entity(id: u64, title: &str) -> ((), Ent) {
        ((), Arc::new(Entity::new(id, [("title", title)])))
    }

    fn example_input() -> Partitions<(), Ent> {
        // Mirrors the paper's Figure 3 layout: keys w,w,x,y,y,z,z in
        // partition 0 and w,w,x,y,z,z,z in partition 1 (titles start
        // with the blocking key).
        vec![
            vec![
                entity(0, "w A"),
                entity(1, "w B"),
                entity(2, "x C"),
                entity(3, "y D"),
                entity(4, "y E"),
                entity(5, "z F"),
                entity(6, "z G"),
            ],
            vec![
                entity(7, "w H"),
                entity(8, "w J"),
                entity(9, "x K"),
                entity(10, "y L"),
                entity(11, "z M"),
                entity(12, "z N"),
                entity(13, "z O"),
            ],
        ]
    }

    fn blocking() -> Arc<dyn BlockingFunction> {
        Arc::new(PrefixBlocking::new("title", 1))
    }

    #[test]
    fn bdm_job_reproduces_figure4() {
        let (bdm, side, metrics) =
            compute_bdm(example_input(), blocking(), 3, 1, false).expect("job runs");
        assert_eq!(bdm, crate::bdm::running_example_bdm());
        // Side outputs: every entity annotated, partition-aligned.
        assert_eq!(side.len(), 2);
        assert_eq!(side[0].len(), 7);
        assert_eq!(side[1].len(), 7);
        assert_eq!(side[1][4].0.as_str(), "z", "M's annotation");
        assert_eq!(metrics.map_output_records(), 14);
    }

    #[test]
    fn combiner_preaggregates_but_preserves_the_bdm() {
        let (plain, _, m1) = compute_bdm(example_input(), blocking(), 3, 1, false).unwrap();
        let (combined, _, m2) = compute_bdm(example_input(), blocking(), 3, 1, true).unwrap();
        assert_eq!(plain, combined);
        // Partition 0 has keys w,w,x,y,y,z,z -> 4 distinct (key, part)
        // pairs; partition 1 likewise -> 8 total after combining vs 14.
        assert_eq!(m1.map_output_records(), 14);
        assert_eq!(m2.map_output_records(), 8);
    }

    #[test]
    fn entities_without_keys_are_counted_and_skipped() {
        let mut input = example_input();
        input[0].push(((), Arc::new(Entity::new(99, [("brand", "no title")]))));
        let job = bdm_job(blocking(), 2, 1, false);
        let out = job.run(input).unwrap();
        assert_eq!(out.metrics.counters.get(NULL_KEY_ENTITIES), 1);
        let total: u64 = out.records().map(|(_, c)| c).sum();
        assert_eq!(total, 14, "the keyless entity is not counted");
    }

    #[test]
    fn multipass_blocking_replicates_entities() {
        use er_core::blocking::{AttributeBlocking, MultiPassBlocking};
        let mp: Arc<dyn BlockingFunction> = Arc::new(MultiPassBlocking::new(vec![
            Arc::new(PrefixBlocking::new("title", 1)),
            Arc::new(AttributeBlocking::new("brand")),
        ]));
        let input = vec![vec![(
            (),
            Arc::new(Entity::new(0, [("title", "w thing"), ("brand", "acme")])),
        )]];
        let job = bdm_job(mp, 2, 1, false);
        let out = job.run(input).unwrap();
        // Two keys -> two count records and two side records.
        assert_eq!(out.num_records(), 2);
        assert_eq!(out.side_outputs[0].len(), 2);
        let keyed = &out.side_outputs[0][0].1;
        assert_eq!(keyed.all_keys.len(), 2);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let (a, _, _) = compute_bdm(example_input(), blocking(), 4, 1, false).unwrap();
        let (b, _, _) = compute_bdm(example_input(), blocking(), 4, 4, false).unwrap();
        assert_eq!(a, b);
    }
}
