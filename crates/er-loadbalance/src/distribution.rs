//! Key-distribution plumbing shared by the counting jobs.
//!
//! Two preprocessing jobs in this workspace measure a key
//! distribution before redistributing work: the BDM job
//! ([`crate::bdm_job`], Algorithm 3 — exact counts per
//! `(blocking key, partition)`) and er-sn's sort-key sampling job
//! (sampled counts per sort key, feeding a
//! [`er_core::sortkey::RangePartitioner`]). This module is their
//! common home: the deterministic sampler the map side uses and the
//! fold that turns count-job reduce outputs into a sorted histogram.
//! The reduce side itself is [`mr_engine::reducer::SumReducer`], the
//! engine-level count-sum reducer both jobs share.

use std::collections::BTreeMap;

/// Deterministic 1-in-`stride` systematic sampler.
///
/// Sampling for a range partitioner must be a pure function of the
/// input (not of thread scheduling or a shared RNG), or the
/// engine-wide determinism contract — identical output at every
/// parallelism — breaks at the first sampled boundary. Each map task
/// owns one `StrideSampler` and admits every `stride`-th record it is
/// offered, starting with the first; per-task record order is fixed by
/// the input partition, so the sample is reproducible by construction.
#[derive(Debug, Clone)]
pub struct StrideSampler {
    stride: usize,
    seen: usize,
}

impl StrideSampler {
    /// A sampler admitting every `stride`-th record.
    ///
    /// # Panics
    /// If `stride` is zero.
    pub fn every(stride: usize) -> Self {
        assert!(stride > 0, "a sampling stride must be positive");
        Self { stride, seen: 0 }
    }

    /// A sampler approximating the given admission `rate` in `(0, 1]`:
    /// the stride is `round(1/rate)`, clamped to at least 1.
    ///
    /// # Panics
    /// If `rate` is not within `(0, 1]`.
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sample rate must be in (0, 1], got {rate}"
        );
        Self::every(((1.0 / rate).round() as usize).max(1))
    }

    /// The stride between admitted records.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Offers one record; returns `true` when it is sampled.
    pub fn admit(&mut self) -> bool {
        let sampled = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        sampled
    }

    /// Records offered so far.
    pub fn offered(&self) -> usize {
        self.seen
    }
}

/// Folds count-job output records (`(key, count)` pairs scattered
/// across reduce tasks) into a single ascending histogram — the input
/// shape [`er_core::sortkey::RangePartitioner::from_counts`] expects.
/// Duplicate keys (possible when a count job runs without a final
/// aggregation, or when folding several jobs' outputs) are summed.
pub fn key_histogram<K: Ord>(records: impl IntoIterator<Item = (K, u64)>) -> Vec<(K, u64)> {
    let mut histogram: BTreeMap<K, u64> = BTreeMap::new();
    for (key, count) in records {
        *histogram.entry(key).or_insert(0) += count;
    }
    histogram.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_sampler_admits_every_nth_starting_with_the_first() {
        let mut s = StrideSampler::every(3);
        let admitted: Vec<bool> = (0..7).map(|_| s.admit()).collect();
        assert_eq!(admitted, vec![true, false, false, true, false, false, true]);
        assert_eq!(s.offered(), 7);
        assert_eq!(s.stride(), 3);
    }

    #[test]
    fn rate_one_admits_everything() {
        let mut s = StrideSampler::with_rate(1.0);
        assert_eq!(s.stride(), 1);
        assert!((0..5).all(|_| s.admit()));
    }

    #[test]
    fn rate_maps_to_rounded_stride() {
        assert_eq!(StrideSampler::with_rate(0.1).stride(), 10);
        assert_eq!(StrideSampler::with_rate(0.33).stride(), 3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_stride_rejected() {
        let _ = StrideSampler::every(0);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn out_of_range_rate_rejected() {
        let _ = StrideSampler::with_rate(1.5);
    }

    #[test]
    fn histogram_sorts_and_merges_duplicate_keys() {
        let histogram = key_histogram(vec![("b", 2u64), ("a", 1), ("b", 3), ("c", 4)]);
        assert_eq!(histogram, vec![("a", 1), ("b", 5), ("c", 4)]);
    }

    #[test]
    fn histogram_of_nothing_is_empty() {
        assert!(key_histogram(Vec::<(u32, u64)>::new()).is_empty());
    }
}
