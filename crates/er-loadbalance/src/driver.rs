//! The end-to-end ER workflow (paper Figure 2).
//!
//! Both the single-source [`run_er`] and the two-source
//! [`crate::two_source::run_linkage`] execute through the shared
//! [`mr_engine::workflow::Workflow`] layer: the BDM job's side outputs
//! are chained into the matching job with the identical-partitioning
//! invariant enforced by the layer (a violation is the typed
//! [`MrError::StageShapeMismatch`], not a debug assertion), and each
//! outcome carries the rolled-up [`WorkflowMetrics`] alongside the
//! per-job metrics.

use std::sync::Arc;

use er_core::blocking::{BlockingFunction, PrefixBlocking};
use er_core::{MatchResult, Matcher};
use mr_engine::error::MrError;
use mr_engine::fault::{FaultPlan, FaultPolicy};
use mr_engine::input::Partitions;
use mr_engine::metrics::JobMetrics;
use mr_engine::runtime::RuntimeConfig;
use mr_engine::workflow::{StageGraph, Workflow, WorkflowMetrics};

use crate::basic::basic_job;
use crate::bdm::BlockDistributionMatrix;
use crate::bdm_job::compute_bdm_in;
use crate::block_split::{block_split_job_with_policy, SplitPolicy};
use crate::compare::PairComparer;
use crate::pair_range::{pair_range_job, RangePolicy};
use crate::{Ent, StrategyKind};

/// Configuration of one ER run.
///
/// The execution knobs every scenario shares (`reduce_tasks`,
/// `parallelism`, `count_only`, `matcher_cache_capacity`) live in the
/// embedded [`RuntimeConfig`]; the `with_*` builders forward to it, so
/// call sites predating the extraction compile unchanged.
#[derive(Clone)]
pub struct ErConfig {
    /// Blocking function (paper default: first 3 letters of `title`).
    pub blocking: Arc<dyn BlockingFunction>,
    /// Match rule (paper default: edit distance ≥ 0.8 on `title`).
    pub matcher: Arc<Matcher>,
    /// Which strategy runs the matching job.
    pub strategy: StrategyKind,
    /// Range formula for PairRange.
    pub range_policy: RangePolicy,
    /// Pre-aggregate BDM counts per map task (paper footnote 2).
    pub use_combiner: bool,
    /// BlockSplit splitting policy (workload criterion + optional
    /// memory cap).
    pub split_policy: SplitPolicy,
    /// Shared execution knobs: reduce tasks `r` (both jobs), worker
    /// threads, count-only mode, prepared-entity cache bound.
    pub runtime: RuntimeConfig,
    /// Deterministic fault-injection schedule applied to every job of
    /// the run (empty by default — injection is a test/bench harness,
    /// never implied by a policy). See [`FaultPlan`].
    pub fault_plan: FaultPlan,
}

impl ErConfig {
    /// Paper-default configuration for a strategy.
    pub fn new(strategy: StrategyKind) -> Self {
        Self {
            blocking: Arc::new(PrefixBlocking::title3()),
            matcher: Arc::new(Matcher::paper_default()),
            strategy,
            range_policy: RangePolicy::CeilDiv,
            use_combiner: true,
            split_policy: SplitPolicy::paper(),
            runtime: RuntimeConfig::default(),
            fault_plan: FaultPlan::new(),
        }
    }

    /// Overrides the blocking function.
    pub fn with_blocking(mut self, blocking: Arc<dyn BlockingFunction>) -> Self {
        self.blocking = blocking;
        self
    }

    /// Overrides the matcher.
    pub fn with_matcher(mut self, matcher: Arc<Matcher>) -> Self {
        self.matcher = matcher;
        self
    }

    /// Overrides the strategy (the `Resolver` compiles one scenario
    /// template into each requested strategy through this).
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the whole shared-knob block (e.g. with a `Runtime`'s
    /// configuration).
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Overrides the number of reduce tasks (forwards to
    /// [`RuntimeConfig::reduce_tasks`]).
    pub fn with_reduce_tasks(mut self, r: usize) -> Self {
        self.runtime.reduce_tasks = r;
        self
    }

    /// Overrides the worker-thread count (forwards to
    /// [`RuntimeConfig::parallelism`]).
    pub fn with_parallelism(mut self, p: usize) -> Self {
        self.runtime.parallelism = p;
        self
    }

    /// Overrides the PairRange range formula.
    pub fn with_range_policy(mut self, policy: RangePolicy) -> Self {
        self.range_policy = policy;
        self
    }

    /// Switches comparison counting only (forwards to
    /// [`RuntimeConfig::count_only`]).
    pub fn with_count_only(mut self, count_only: bool) -> Self {
        self.runtime.count_only = count_only;
        self
    }

    /// Forces BlockSplit to split any block larger than `cap`
    /// entities, bounding reduce-side memory (see
    /// [`crate::block_split::SplitPolicy`]).
    pub fn with_memory_cap(mut self, cap: u64) -> Self {
        self.split_policy = SplitPolicy::with_memory_cap(cap);
        self
    }

    /// Seals map-side shuffle buckets into sorted runs every
    /// `threshold` open records, bounding map-phase resident memory
    /// (forwards to [`RuntimeConfig::spill_threshold`]); `None`
    /// restores the spill-free default. Outputs are byte-identical at
    /// any threshold.
    ///
    /// # Panics
    /// If `threshold` is `Some(0)`.
    pub fn with_spill_threshold(mut self, threshold: Option<usize>) -> Self {
        self.runtime = self.runtime.with_spill_threshold(threshold);
        self
    }

    /// Bounds every strategy reducer's prepared-entity cache (forwards
    /// to [`RuntimeConfig::matcher_cache_capacity`]); `None` restores
    /// the unbounded default.
    ///
    /// # Panics
    /// If `capacity` is `Some(n)` with `n < 2` — comparing a pair
    /// needs both sides resident.
    pub fn with_matcher_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.runtime = self.runtime.with_matcher_cache_capacity(capacity);
        self
    }

    /// Replaces the per-task fault-tolerance policy — retry budget and
    /// straggler deadline — every job of the run executes under
    /// (forwards to [`RuntimeConfig::fault_policy`]).
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.runtime = self.runtime.with_fault_policy(policy);
        self
    }

    /// Installs a deterministic fault-injection schedule (panics or
    /// delays at exact task coordinates) for every job of the run —
    /// the test/bench harness proving the retry path. An empty plan
    /// (the default) injects nothing.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The per-task fault-tolerance policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.runtime.fault_policy
    }

    /// The deterministic fault-injection schedule (empty = none).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Number of reduce tasks `r` (both jobs).
    pub fn reduce_tasks(&self) -> usize {
        self.runtime.reduce_tasks
    }

    /// Local worker threads.
    pub fn parallelism(&self) -> usize {
        self.runtime.parallelism
    }

    /// Whether similarity evaluation is skipped (comparisons are only
    /// counted).
    pub fn count_only(&self) -> bool {
        self.runtime.count_only
    }

    /// The prepared-entity cache bound (`None` = unbounded).
    pub fn matcher_cache_capacity(&self) -> Option<usize> {
        self.runtime.matcher_cache_capacity
    }

    /// The map-side spill threshold (`None` = never spill).
    pub fn spill_threshold(&self) -> Option<usize> {
        self.runtime.spill_threshold
    }

    pub(crate) fn comparer(&self) -> PairComparer {
        let comparer = if self.count_only() {
            PairComparer::count_only(Arc::clone(&self.matcher))
        } else {
            PairComparer::new(Arc::clone(&self.matcher))
        };
        comparer.with_cache_capacity(self.matcher_cache_capacity())
    }
}

impl std::fmt::Debug for ErConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErConfig")
            .field("strategy", &self.strategy)
            .field("range_policy", &self.range_policy)
            .field("use_combiner", &self.use_combiner)
            .field("split_policy", &self.split_policy)
            .field("runtime", &self.runtime)
            .field("fault_plan", &self.fault_plan)
            .finish()
    }
}

/// Everything a completed run produces.
#[derive(Debug)]
pub struct ErOutcome {
    /// The deduplicated match result.
    pub result: MatchResult,
    /// The BDM (absent for Basic, which runs without preprocessing).
    pub bdm: Option<Arc<BlockDistributionMatrix>>,
    /// Metrics of the BDM job (absent for Basic).
    pub bdm_metrics: Option<JobMetrics>,
    /// Metrics of the matching job.
    pub match_metrics: JobMetrics,
    /// Rolled-up metrics of the whole run: per-stage walls, end-to-end
    /// wall, merged counters, peak-memory gauges.
    pub workflow: WorkflowMetrics,
}

impl ErOutcome {
    /// Comparison counts per reduce task of the matching job — the
    /// distribution the paper's strategies balance.
    pub fn reduce_loads(&self) -> Vec<u64> {
        self.match_metrics.per_reduce_counter(crate::COMPARISONS)
    }

    /// Total comparisons across all reduce tasks.
    pub fn total_comparisons(&self) -> u64 {
        self.reduce_loads().iter().sum()
    }
}

/// Products of the ER stages executed inside a caller-owned
/// [`Workflow`] — what [`run_er_in`] produces and [`run_er`] (plus the
/// unified `Resolver` front end of the facade crate) wraps into an
/// outcome.
#[derive(Debug)]
pub struct ErStages {
    /// The deduplicated match result.
    pub result: MatchResult,
    /// The BDM (absent for Basic, which runs without preprocessing).
    pub bdm: Option<Arc<BlockDistributionMatrix>>,
    /// Metrics of the BDM job (absent for Basic).
    pub bdm_metrics: Option<JobMetrics>,
    /// Metrics of the matching job.
    pub match_metrics: JobMetrics,
}

/// Executes the ER scenario (paper Figure 2) as stages of `workflow` —
/// the scenario compiler both [`run_er`] and the facade crate's
/// `Resolver` drive. The workflow decides *where* stages run (its own
/// transient threads, or a shared persistent pool); the stages are the
/// same either way, so outputs are byte-identical.
///
/// The scenario compiles to a [`StageGraph`] instead of an eager
/// loop: Basic is a single `match` node; BlockSplit/PairRange is
/// `bdm → match`, where the matching node also seeds the job's
/// [`mr_engine::engine::Job::with_weight_hint`] from the BDM's exact
/// pair count so the pool's shortest-remaining-work policy can rank
/// the batch. Node bodies submit their task sets to the pool's
/// central ready-queue, letting stages of concurrently resolving
/// workflows interleave.
pub fn run_er_in(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    config: &ErConfig,
) -> Result<ErStages, MrError> {
    use std::cell::RefCell;
    let stages = RefCell::new(None);
    // Intermediate slot the `bdm` node fills and the `match` node
    // drains (used by the BDM-based strategies only); the dependency
    // edge orders the fill before the take. Declared before the graph
    // so the node closures' borrows outlive it.
    let products = RefCell::new(None);
    let mut graph: StageGraph<'_, MrError> = StageGraph::new();
    match config.strategy {
        StrategyKind::Basic => {
            graph.node("match", &[], |wf| {
                let job = basic_job(
                    Arc::clone(&config.blocking),
                    config.comparer(),
                    config.reduce_tasks(),
                    config.parallelism(),
                )
                .with_spill_threshold(config.spill_threshold());
                let out = wf.chained_stage(&job, input)?;
                let mut result = MatchResult::new();
                for (pair, score) in out.reduce_outputs.into_iter().flatten() {
                    result.insert(pair, score);
                }
                *stages.borrow_mut() = Some(ErStages {
                    result,
                    bdm: None,
                    bdm_metrics: None,
                    match_metrics: out.metrics,
                });
                Ok(())
            });
        }
        StrategyKind::BlockSplit | StrategyKind::PairRange => {
            let bdm_node = graph.node("bdm", &[], |wf| {
                let (bdm, annotated, bdm_metrics) = compute_bdm_in(
                    wf,
                    input,
                    Arc::clone(&config.blocking),
                    config.reduce_tasks(),
                    config.parallelism(),
                    config.use_combiner,
                    config.spill_threshold(),
                )?;
                *products.borrow_mut() = Some((Arc::new(bdm), annotated, bdm_metrics));
                Ok(())
            });
            graph.node("match", &[bdm_node], |wf| {
                let (bdm, annotated, bdm_metrics) = products
                    .borrow_mut()
                    .take()
                    .expect("bdm node ran before match");
                // The BDM's side outputs are chained into the matching
                // job by the workflow layer, which enforces the
                // identical-partitioning invariant Algorithms 1–3
                // require. The BDM's exact pair count doubles as the
                // job's scheduling weight.
                let out = match config.strategy {
                    StrategyKind::BlockSplit => {
                        let job = block_split_job_with_policy(
                            Arc::clone(&bdm),
                            config.comparer(),
                            config.split_policy,
                            config.reduce_tasks(),
                            config.parallelism(),
                        )
                        .with_spill_threshold(config.spill_threshold())
                        .with_weight_hint(bdm.total_pairs());
                        wf.chained_stage(&job, annotated)?
                    }
                    _ => {
                        let job = pair_range_job(
                            Arc::clone(&bdm),
                            config.comparer(),
                            config.range_policy,
                            config.reduce_tasks(),
                            config.parallelism(),
                        )
                        .with_spill_threshold(config.spill_threshold())
                        .with_weight_hint(bdm.total_pairs());
                        wf.chained_stage(&job, annotated)?
                    }
                };
                let mut result = MatchResult::new();
                for (pair, score) in out.reduce_outputs.into_iter().flatten() {
                    result.insert(pair, score);
                }
                *stages.borrow_mut() = Some(ErStages {
                    result,
                    bdm: Some(bdm),
                    bdm_metrics: Some(bdm_metrics),
                    match_metrics: out.metrics,
                });
                Ok(())
            });
        }
    }
    graph.run(workflow)?;
    Ok(stages
        .into_inner()
        .expect("match node populates the outcome"))
}

/// Runs entity resolution over pre-partitioned input (each inner `Vec`
/// is one input partition == one map task).
///
/// Entities without a valid blocking key are *skipped* (counted under
/// [`crate::bdm_job::NULL_KEY_ENTITIES`]); use
/// [`crate::null_keys::deduplicate_with_null_keys`] to include them
/// via the paper's Cartesian decomposition.
///
/// # Deprecation path
///
/// This is now a thin wrapper over [`run_er_in`] on a transient
/// per-run [`Workflow`], kept for compatibility. New code should go
/// through the facade crate's unified front door — `Runtime` +
/// `Resolver` with `Scenario::Dedup` — which runs the identical stages
/// on a persistent worker pool shared across runs.
pub fn run_er(input: Partitions<(), Ent>, config: &ErConfig) -> Result<ErOutcome, MrError> {
    let mut workflow = Workflow::new(format!("er-{}", config.strategy))
        .with_fault_policy(config.fault_policy())
        .with_fault_plan(config.fault_plan().clone());
    let stages = run_er_in(&mut workflow, input, config)?;
    Ok(ErOutcome {
        result: stages.result,
        bdm: stages.bdm,
        bdm_metrics: stages.bdm_metrics,
        match_metrics: stages.match_metrics,
        workflow: workflow.finish(),
    })
}

/// Reference implementation: per-block all-pairs matching with no
/// MapReduce — the ground truth every strategy must reproduce exactly.
pub fn naive_reference(entities: &[Ent], config: &ErConfig) -> MatchResult {
    use std::collections::BTreeMap;
    let mut blocks: BTreeMap<er_core::blocking::BlockKey, Vec<crate::Keyed>> = BTreeMap::new();
    for e in entities {
        for keyed in crate::Keyed::derive_all(config.blocking.as_ref(), e) {
            blocks.entry(keyed.key.clone()).or_default().push(keyed);
        }
    }
    let mut result = MatchResult::new();
    // Prepared once per entity across *all* of its blocks (multi-pass
    // blocking replicates entities), via the memoizing cache.
    let mut cache = er_core::MatcherCache::new(Arc::clone(&config.matcher));
    for (block_key, members) in &blocks {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (a, b) = (&members[i], &members[j]);
                if !a.should_compare_in(b, block_key) {
                    continue;
                }
                if let Some(score) = cache.matches(&a.entity, &b.entity) {
                    result.insert(
                        er_core::result::MatchPair::new(
                            a.entity.entity_ref(),
                            b.entity.entity_ref(),
                        ),
                        score,
                    );
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::running_example;

    fn example_config(strategy: StrategyKind) -> ErConfig {
        ErConfig::new(strategy)
            .with_blocking(running_example::blocking())
            .with_reduce_tasks(3)
            .with_parallelism(1)
            .with_count_only(true)
    }

    #[test]
    fn all_strategies_compute_exactly_20_comparisons_on_the_example() {
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let outcome = run_er(
                running_example::entity_partitions(),
                &example_config(strategy),
            )
            .unwrap();
            assert_eq!(
                outcome.total_comparisons(),
                20,
                "{strategy} must evaluate each of the 20 pairs exactly once"
            );
        }
    }

    #[test]
    fn block_split_loads_match_figure5() {
        let outcome = run_er(
            running_example::entity_partitions(),
            &example_config(StrategyKind::BlockSplit),
        )
        .unwrap();
        let mut loads = outcome.reduce_loads();
        loads.sort_unstable();
        assert_eq!(loads, vec![6, 7, 7]);
    }

    #[test]
    fn pair_range_loads_match_figure6() {
        let outcome = run_er(
            running_example::entity_partitions(),
            &example_config(StrategyKind::PairRange),
        )
        .unwrap();
        assert_eq!(outcome.reduce_loads(), vec![7, 7, 6]);
    }

    #[test]
    fn bounded_matcher_cache_reproduces_unbounded_results() {
        // Full matching (not count-only): a tiny capacity thrashes the
        // per-task caches, which must cost recompute only.
        for strategy in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let base = ErConfig::new(strategy)
                .with_blocking(running_example::blocking())
                .with_reduce_tasks(3)
                .with_parallelism(1);
            let unbounded = run_er(running_example::entity_partitions(), &base).unwrap();
            let bounded = run_er(
                running_example::entity_partitions(),
                &base.clone().with_matcher_cache_capacity(Some(2)),
            )
            .unwrap();
            assert_eq!(
                unbounded.result.pair_set(),
                bounded.result.pair_set(),
                "{strategy}: capacity bound changed the match output"
            );
        }
    }

    #[test]
    fn basic_has_no_bdm() {
        let outcome = run_er(
            running_example::entity_partitions(),
            &example_config(StrategyKind::Basic),
        )
        .unwrap();
        assert!(outcome.bdm.is_none());
        assert!(outcome.bdm_metrics.is_none());
    }

    #[test]
    fn load_balanced_strategies_expose_the_bdm() {
        let outcome = run_er(
            running_example::entity_partitions(),
            &example_config(StrategyKind::BlockSplit),
        )
        .unwrap();
        let bdm = outcome.bdm.expect("BDM computed");
        assert_eq!(bdm.total_pairs(), 20);
        assert!(outcome.bdm_metrics.is_some());
    }
}
