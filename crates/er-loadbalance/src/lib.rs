//! # er-loadbalance — BlockSplit & PairRange
//!
//! The primary contribution of *"Load Balancing for MapReduce-based
//! Entity Resolution"* (Kolb, Thor, Rahm; ICDE 2012): skew-resistant
//! redistribution of blocking-based entity resolution across MapReduce
//! reduce tasks.
//!
//! The workflow (paper Figure 2) runs two MR jobs on the same input
//! partitioning:
//!
//! 1. **BDM job** ([`bdm_job`], Algorithm 3): counts entities per
//!    (block, input partition) into the [`bdm::BlockDistributionMatrix`]
//!    and side-writes blocking-key-annotated entities `Π'_i`.
//! 2. **Matching job** with one of three strategies:
//!    * [`basic`] — hash blocking keys to reduce tasks (the skew-prone
//!      baseline),
//!    * [`block_split`] — Algorithm 1: split large blocks into
//!      sub-blocks by input partition, form match tasks, assign
//!      greedily by descending size,
//!    * [`pair_range`] — Algorithm 2: enumerate all comparison pairs
//!      globally and give each reduce task an equal range.
//!
//! [`two_source`] extends BlockSplit and PairRange to linkage between
//! two sources (Appendix I); [`null_keys`] composes matching for
//! entities without a valid blocking key; [`multipass`] implements the
//! paper's future-work multi-pass blocking; [`analysis`] computes exact
//! per-task workloads straight from the BDM (no execution) for the
//! paper-scale experiments; [`driver`] wires everything together.

pub mod analysis;
pub mod basic;
pub mod bdm;
pub mod bdm_job;
pub mod block_split;
pub mod compare;
pub mod distribution;
pub mod driver;
pub mod keys;
pub mod multipass;
pub mod null_keys;
pub mod pair_range;
pub mod running_example;
pub mod stats;
pub mod two_source;

use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::Entity;

pub use analysis::{analyze, StrategyWorkload};
pub use bdm::BlockDistributionMatrix;
pub use driver::{run_er, run_er_in, ErConfig, ErOutcome, ErStages};
pub use pair_range::ranges::RangePolicy;
pub use stats::WorkloadStats;
pub use two_source::{run_linkage, run_linkage_in};

/// Counter name used by every strategy's reducer for the number of
/// pair comparisons it performed — the workload unit the paper's load
/// balancing equalizes.
pub const COMPARISONS: &str = "er.comparisons";

/// Shared-ownership entity handle used as the MR value payload.
/// Replication (BlockSplit emits split-block entities `m` times) then
/// clones a pointer, not the record.
pub type Ent = Arc<Entity>;

/// An entity annotated with its blocking key(s) — the record format of
/// the BDM job's *additional output* `Π'_i`, i.e. the matching job's
/// input.
///
/// `all_keys` carries every blocking key of the entity (length 1 for
/// single-pass blocking). Multi-pass blocking replicates the entity
/// into several blocks; reducers then compare a pair only in its
/// lexicographically smallest common block so results stay duplicate
/// free (see [`multipass`]).
#[derive(Debug, Clone)]
pub struct Keyed {
    /// The blocking key of this replica (∈ `all_keys`).
    pub key: BlockKey,
    /// All blocking keys of the entity, sorted.
    pub all_keys: Arc<[BlockKey]>,
    /// The entity itself.
    pub entity: Ent,
}

impl Keyed {
    /// Annotates an entity with a single blocking key.
    pub fn single(key: BlockKey, entity: Ent) -> Self {
        Keyed {
            all_keys: Arc::from(vec![key.clone()].into_boxed_slice()),
            key,
            entity,
        }
    }

    /// Derives every blocking key of `entity` (sorted, deduplicated)
    /// and returns one annotated replica per key — the shared first
    /// step of the Basic mapper, the BDM mapper and the naive
    /// reference. Returns an empty vector for keyless entities, which
    /// callers must count (never drop silently).
    pub fn derive_all(
        blocking: &dyn er_core::blocking::BlockingFunction,
        entity: &Ent,
    ) -> Vec<Keyed> {
        let mut keys = blocking.keys(entity);
        keys.sort();
        keys.dedup();
        if keys.is_empty() {
            return Vec::new();
        }
        let all: Arc<[BlockKey]> = Arc::from(keys.into_boxed_slice());
        all.iter()
            .map(|key| Keyed::replica(key.clone(), Arc::clone(&all), Arc::clone(entity)))
            .collect()
    }

    /// Annotates one replica of a multi-pass-blocked entity.
    ///
    /// # Panics
    /// If `key` is not contained in `all_keys`.
    pub fn replica(key: BlockKey, all_keys: Arc<[BlockKey]>, entity: Ent) -> Self {
        assert!(
            all_keys.contains(&key),
            "replica key {key} missing from the entity's key set"
        );
        Keyed {
            key,
            all_keys,
            entity,
        }
    }

    /// True iff this pair should be compared in `current` block: the
    /// smallest common key of the two entities must be `current`
    /// (trivially true for single-pass blocking).
    pub fn should_compare_in(&self, other: &Keyed, current: &BlockKey) -> bool {
        let mut a = self.all_keys.iter();
        let mut b = other.all_keys.iter();
        // Both key lists are sorted: merge-walk to the first common key.
        let mut x = a.next();
        let mut y = b.next();
        while let (Some(ka), Some(kb)) = (x, y) {
            match ka.cmp(kb) {
                std::cmp::Ordering::Equal => return ka == current,
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
            }
        }
        // No common key: the pair met in a block neither claims — a
        // framework bug; never compare.
        false
    }
}

/// Which matching strategy the second MR job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Hash the blocking key (paper Section III, "Basic").
    Basic,
    /// Block-based load balancing (paper Section IV).
    BlockSplit,
    /// Pair-based load balancing (paper Section V).
    PairRange,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::Basic => write!(f, "Basic"),
            StrategyKind::BlockSplit => write!(f, "BlockSplit"),
            StrategyKind::PairRange => write!(f, "PairRange"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(keys: &[&str], replica: &str) -> Keyed {
        let all: Vec<BlockKey> = keys.iter().map(BlockKey::new).collect();
        Keyed::replica(
            BlockKey::new(replica),
            Arc::from(all.into_boxed_slice()),
            Arc::new(Entity::new(1, [("title", "t")])),
        )
    }

    #[test]
    fn single_key_always_compares_in_its_block() {
        let a = Keyed::single(BlockKey::new("abc"), Arc::new(Entity::new(1, [("t", "x")])));
        let b = Keyed::single(BlockKey::new("abc"), Arc::new(Entity::new(2, [("t", "y")])));
        assert!(a.should_compare_in(&b, &BlockKey::new("abc")));
    }

    #[test]
    fn multipass_compares_only_in_smallest_common_block() {
        let a = keyed(&["aaa", "mmm"], "mmm");
        let b = keyed(&["aaa", "mmm", "zzz"], "mmm");
        assert!(a.should_compare_in(&b, &BlockKey::new("aaa")));
        assert!(!a.should_compare_in(&b, &BlockKey::new("mmm")));
        assert!(!a.should_compare_in(&b, &BlockKey::new("zzz")));
    }

    #[test]
    fn disjoint_key_sets_never_compare() {
        let a = keyed(&["aaa"], "aaa");
        let b = keyed(&["bbb"], "bbb");
        assert!(!a.should_compare_in(&b, &BlockKey::new("aaa")));
    }

    #[test]
    #[should_panic(expected = "missing from the entity's key set")]
    fn replica_key_must_be_member() {
        let _ = keyed(&["aaa"], "zzz");
    }

    #[test]
    fn strategy_kind_display() {
        assert_eq!(StrategyKind::Basic.to_string(), "Basic");
        assert_eq!(StrategyKind::BlockSplit.to_string(), "BlockSplit");
        assert_eq!(StrategyKind::PairRange.to_string(), "PairRange");
    }
}
