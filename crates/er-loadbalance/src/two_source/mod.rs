//! Matching two sources R and S (paper Appendix I).
//!
//! Each input partition holds entities of exactly one source (the
//! paper ensures this via Hadoop's `MultipleInputs`; here the caller
//! passes a side tag per partition). The BDM job is unchanged — the
//! partition index identifies the source — and the strategies restrict
//! comparisons to cross-source pairs:
//!
//! * block pair count becomes `|Φ_k,R| · |Φ_k,S|`,
//! * BlockSplit's split tasks pair an R partition with an S partition,
//! * PairRange enumerates the full `|Φ_k,R| × |Φ_k,S|` rectangle with
//!   `c(x, y, N_S) = x·N_S + y` and `o(i) = Σ |Φ_k,R|·|Φ_k,S|` (the
//!   paper's extra "−1" in `o(i)` is a typo: it would give the first
//!   pair index −1 and contradicts the worked example — see the tests
//!   pinning entity C's ranges).

pub mod basic;
pub mod block_split;
pub mod pair_range;

use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::pairs::rect_cell_index;
use er_core::{MatchResult, SourceId};
use mr_engine::error::MrError;
use mr_engine::input::Partitions;

use mr_engine::workflow::{StageGraph, Workflow};

use crate::bdm::BlockDistributionMatrix;
use crate::bdm_job::compute_bdm_in;
use crate::driver::{ErConfig, ErOutcome};
use crate::{Ent, StrategyKind};

/// A BDM interpreted for two sources: per-partition counts plus the
/// partition→source mapping.
#[derive(Debug, Clone)]
pub struct TwoSourceBdm {
    bdm: Arc<BlockDistributionMatrix>,
    sources: Arc<Vec<SourceId>>,
    size_r: Vec<u64>,
    size_s: Vec<u64>,
    pair_offsets: Vec<u64>,
}

impl TwoSourceBdm {
    /// Wraps a BDM with the source tag of each input partition.
    ///
    /// # Panics
    /// If `sources.len()` differs from the BDM's partition count or a
    /// tag other than `R`/`S` appears.
    pub fn new(bdm: Arc<BlockDistributionMatrix>, sources: Vec<SourceId>) -> Self {
        assert_eq!(
            sources.len(),
            bdm.num_partitions(),
            "one source tag per input partition"
        );
        assert!(
            sources
                .iter()
                .all(|&s| s == SourceId::R || s == SourceId::S),
            "two-source matching knows only R and S"
        );
        let mut size_r = Vec::with_capacity(bdm.num_blocks());
        let mut size_s = Vec::with_capacity(bdm.num_blocks());
        for k in 0..bdm.num_blocks() {
            let mut nr = 0;
            let mut ns = 0;
            for (p, &src) in sources.iter().enumerate() {
                if src == SourceId::R {
                    nr += bdm.size_in(k, p);
                } else {
                    ns += bdm.size_in(k, p);
                }
            }
            size_r.push(nr);
            size_s.push(ns);
        }
        let mut pair_offsets = Vec::with_capacity(bdm.num_blocks() + 1);
        let mut acc = 0u64;
        for k in 0..bdm.num_blocks() {
            pair_offsets.push(acc);
            acc += size_r[k] * size_s[k];
        }
        pair_offsets.push(acc);
        Self {
            bdm,
            sources: Arc::new(sources),
            size_r,
            size_s,
            pair_offsets,
        }
    }

    /// The underlying one-source BDM.
    pub fn bdm(&self) -> &BlockDistributionMatrix {
        &self.bdm
    }

    /// Source of input partition `p`.
    pub fn source_of(&self, p: usize) -> SourceId {
        self.sources[p]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.bdm.num_blocks()
    }

    /// Number of input partitions `m`.
    pub fn num_partitions(&self) -> usize {
        self.bdm.num_partitions()
    }

    /// Block index lookup.
    pub fn block_index(&self, key: &BlockKey) -> Option<usize> {
        self.bdm.block_index(key)
    }

    /// |Φ_k,R|.
    pub fn size_r(&self, k: usize) -> u64 {
        self.size_r[k]
    }

    /// |Φ_k,S|.
    pub fn size_s(&self, k: usize) -> u64 {
        self.size_s[k]
    }

    /// Entities of block `k` in partition `p`.
    pub fn size_in(&self, k: usize, p: usize) -> u64 {
        self.bdm.size_in(k, p)
    }

    /// Cross-source comparisons of block `k`.
    pub fn pairs_in_block(&self, k: usize) -> u64 {
        self.size_r[k] * self.size_s[k]
    }

    /// o(k): cross-source pairs in earlier blocks.
    pub fn pair_offset(&self, k: usize) -> u64 {
        self.pair_offsets[k]
    }

    /// Total cross-source pairs P.
    pub fn total_pairs(&self) -> u64 {
        *self.pair_offsets.last().expect("never empty")
    }

    /// Global pair index of `(x ∈ R, y ∈ S)` in block `k`.
    pub fn pair_index(&self, k: usize, x: u64, y: u64) -> u64 {
        rect_cell_index(x, y, self.size_s[k]) + self.pair_offsets[k]
    }

    /// Entity-index offset: same-source entities of block `k` in
    /// partitions before `partition`.
    pub fn entity_index_offset(&self, k: usize, partition: usize) -> u64 {
        let src = self.sources[partition];
        (0..partition)
            .filter(|&q| self.sources[q] == src)
            .map(|q| self.bdm.size_in(k, q))
            .sum()
    }
}

/// Executes the two-source linkage scenario (paper Appendix I) as
/// stages of `workflow` — the scenario compiler both [`run_linkage`]
/// and the facade crate's `Resolver` (via `Scenario::Linkage`) drive.
///
/// `sources[p]` tags input partition `p` as belonging to `R` or `S`;
/// only cross-source pairs within shared blocks are compared.
pub fn run_linkage_in(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    sources: Vec<SourceId>,
    config: &ErConfig,
) -> Result<crate::driver::ErStages, MrError> {
    use crate::driver::ErStages;
    use std::cell::RefCell;
    assert_eq!(
        sources.len(),
        input.len(),
        "one source tag per input partition"
    );
    let comparer = config.comparer();
    // The scenario compiles to a stage graph (Basic: one `match`
    // node; BDM strategies: `bdm → match`) whose node bodies hand
    // their task batches to the pool's shared ready-queue — see
    // `run_er_in`, whose structure this mirrors for cross-source
    // matching.
    let stages = RefCell::new(None);
    let products = RefCell::new(None);
    let mut graph: StageGraph<'_, MrError> = StageGraph::new();
    if config.strategy == StrategyKind::Basic {
        graph.node("match", &[], |wf| {
            let job = basic::basic_two_source_job(
                Arc::clone(&config.blocking),
                Arc::new(sources),
                comparer,
                config.reduce_tasks(),
                config.parallelism(),
            )
            .with_spill_threshold(config.spill_threshold());
            let out = wf.chained_stage(&job, input)?;
            let mut result = MatchResult::new();
            for (pair, score) in out.reduce_outputs.into_iter().flatten() {
                result.insert(pair, score);
            }
            *stages.borrow_mut() = Some(ErStages {
                result,
                bdm: None,
                bdm_metrics: None,
                match_metrics: out.metrics,
            });
            Ok(())
        });
        graph.run(workflow)?;
        return Ok(stages
            .into_inner()
            .expect("match node populates the outcome"));
    }
    let bdm_node = graph.node("bdm", &[], |wf| {
        let (bdm, annotated, bdm_metrics) = compute_bdm_in(
            wf,
            input,
            Arc::clone(&config.blocking),
            config.reduce_tasks(),
            config.parallelism(),
            config.use_combiner,
            config.spill_threshold(),
        )?;
        *products.borrow_mut() = Some((Arc::new(bdm), annotated, bdm_metrics));
        Ok(())
    });
    graph.node("match", &[bdm_node], |wf| {
        let (bdm, annotated, bdm_metrics) = products
            .borrow_mut()
            .take()
            .expect("bdm node ran before match");
        let ts = Arc::new(TwoSourceBdm::new(Arc::clone(&bdm), sources));
        // The cross-source pair count is exact scheduling weight for
        // shortest-remaining-work, like the single-source driver.
        let weight = ts.total_pairs();
        let out = match config.strategy {
            StrategyKind::BlockSplit => {
                let job = block_split::block_split_two_source_job(
                    ts,
                    comparer,
                    config.reduce_tasks(),
                    config.parallelism(),
                )
                .with_spill_threshold(config.spill_threshold())
                .with_weight_hint(weight);
                wf.chained_stage(&job, annotated)?
            }
            StrategyKind::PairRange => {
                let job = pair_range::pair_range_two_source_job(
                    ts,
                    comparer,
                    config.range_policy,
                    config.reduce_tasks(),
                    config.parallelism(),
                )
                .with_spill_threshold(config.spill_threshold())
                .with_weight_hint(weight);
                wf.chained_stage(&job, annotated)?
            }
            StrategyKind::Basic => unreachable!("handled above"),
        };
        let mut result = MatchResult::new();
        for (pair, score) in out.reduce_outputs.into_iter().flatten() {
            result.insert(pair, score);
        }
        *stages.borrow_mut() = Some(ErStages {
            result,
            bdm: Some(bdm),
            bdm_metrics: Some(bdm_metrics),
            match_metrics: out.metrics,
        });
        Ok(())
    });
    graph.run(workflow)?;
    Ok(stages
        .into_inner()
        .expect("match node populates the outcome"))
}

/// Runs two-source entity resolution (record linkage): `sources[p]`
/// tags input partition `p` as belonging to `R` or `S`; only
/// cross-source pairs within shared blocks are compared.
///
/// # Deprecation path
///
/// A thin wrapper over [`run_linkage_in`] on a transient per-run
/// [`Workflow`], kept for compatibility; new code should use the
/// facade crate's `Runtime` + `Resolver` with `Scenario::Linkage`,
/// which runs the identical stages on a persistent worker pool.
pub fn run_linkage(
    input: Partitions<(), Ent>,
    sources: Vec<SourceId>,
    config: &ErConfig,
) -> Result<ErOutcome, MrError> {
    let mut workflow = Workflow::new(format!("linkage-{}", config.strategy))
        .with_fault_policy(config.fault_policy())
        .with_fault_plan(config.fault_plan().clone());
    let stages = run_linkage_in(&mut workflow, input, sources, config)?;
    Ok(ErOutcome {
        result: stages.result,
        bdm: stages.bdm,
        bdm_metrics: stages.bdm_metrics,
        match_metrics: stages.match_metrics,
        workflow: workflow.finish(),
    })
}

/// The appendix running example (Figure 15a): 13 entities A–N over
/// blocks w, x, y, z; source R in partition Π0, source S in Π1 and Π2.
///
/// Counts: w → R:2/S:2 (4 pairs), x → R:1/S:2 (2 pairs), y → R:1/S:0
/// (0 pairs), z → R:2/S:3 (6 pairs); 12 pairs total. With lexicographic
/// block order our indexes are w=0, x=1, y=2, z=3 (the paper's figure
/// orders x and y differently; the structure is identical).
pub mod appendix_example {
    use super::*;
    use er_core::Entity;
    use mr_engine::input::Partitions;

    use crate::{Ent, Keyed};

    /// `(name, blocking key, partition)`; partition 0 is R, 1–2 are S.
    pub const LAYOUT: &[(&str, &str, usize)] = &[
        ("A", "w", 0),
        ("B", "w", 0),
        ("C", "z", 0),
        ("D", "z", 0),
        ("E", "x", 0),
        ("F", "y", 0),
        ("G", "w", 1),
        ("H", "w", 1),
        ("J", "x", 1),
        ("K", "z", 1),
        ("L", "z", 1),
        ("M", "x", 2),
        ("N", "z", 2),
    ];

    /// Source tags per partition.
    pub fn partition_sources() -> Vec<SourceId> {
        vec![SourceId::R, SourceId::S, SourceId::S]
    }

    /// Raw entity partitions.
    pub fn entity_partitions() -> Partitions<(), Ent> {
        let sources = partition_sources();
        let mut parts: Partitions<(), Ent> = vec![Vec::new(), Vec::new(), Vec::new()];
        for (id, (name, key, partition)) in LAYOUT.iter().enumerate() {
            let title = format!("{key} {name}");
            let entity = Entity::with_source(
                sources[*partition],
                id as u64,
                [("title", title.as_str()), ("name", name)],
            );
            parts[*partition].push(((), Arc::new(entity)));
        }
        parts
    }

    /// Annotated partitions (what the BDM job's side output yields).
    pub fn annotated_partitions() -> Partitions<BlockKey, Keyed> {
        entity_partitions()
            .into_iter()
            .map(|part| {
                part.into_iter()
                    .map(|(_, entity)| {
                        let key = BlockKey::new(&entity.get("title").unwrap()[..1]);
                        (key.clone(), Keyed::single(key, entity))
                    })
                    .collect()
            })
            .collect()
    }

    /// The example's two-source BDM.
    pub fn bdm() -> TwoSourceBdm {
        let keys: Vec<Vec<BlockKey>> = annotated_partitions()
            .iter()
            .map(|p| p.iter().map(|(k, _)| k.clone()).collect())
            .collect();
        TwoSourceBdm::new(
            Arc::new(BlockDistributionMatrix::from_key_partitions(&keys)),
            partition_sources(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::appendix_example;
    use super::*;

    #[test]
    fn appendix_bdm_counts() {
        let ts = appendix_example::bdm();
        assert_eq!(ts.num_blocks(), 4);
        // w=0, x=1, y=2, z=3 lexicographically.
        assert_eq!((ts.size_r(0), ts.size_s(0)), (2, 2));
        assert_eq!((ts.size_r(1), ts.size_s(1)), (1, 2));
        assert_eq!((ts.size_r(2), ts.size_s(2)), (1, 0));
        assert_eq!((ts.size_r(3), ts.size_s(3)), (2, 3));
        assert_eq!(ts.total_pairs(), 12, "paper: 12 overall pairs");
        assert_eq!(ts.pairs_in_block(2), 0, "block y has no S entities");
    }

    #[test]
    fn pair_offsets_skip_empty_blocks() {
        let ts = appendix_example::bdm();
        assert_eq!(ts.pair_offset(0), 0);
        assert_eq!(ts.pair_offset(1), 4);
        assert_eq!(ts.pair_offset(2), 6);
        assert_eq!(ts.pair_offset(3), 6, "y contributes nothing");
    }

    #[test]
    fn entity_c_ranges_match_the_paper() {
        // C ∈ R is the first entity (x = 0) of block z; its pairs are
        // 6, 7, 8. With ranges of size 4 ([0,3], [4,7], [8,11]) it
        // belongs to ranges 1 and 2 — the paper's statement. (With the
        // paper's "−1" offset the pairs would be 5,6,7 -> ranges {1}
        // only, contradicting the example.)
        let ts = appendix_example::bdm();
        let pairs: Vec<u64> = (0..3).map(|y| ts.pair_index(3, 0, y)).collect();
        assert_eq!(pairs, vec![6, 7, 8]);
        let ranges = crate::pair_range::ranges::RangeIndexer::new(
            12,
            3,
            crate::pair_range::ranges::RangePolicy::CeilDiv,
        );
        let hit: std::collections::BTreeSet<u64> =
            pairs.iter().map(|&p| ranges.range_of(p)).collect();
        assert_eq!(hit.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn entity_index_offsets_respect_sources() {
        let ts = appendix_example::bdm();
        // K is the first z-entity of S (partition 1): offset 0 even
        // though R's partition 0 holds two z entities.
        assert_eq!(ts.entity_index_offset(3, 1), 0);
        // N (partition 2) is preceded by 2 z-entities of S in Π1.
        assert_eq!(ts.entity_index_offset(3, 2), 2);
    }

    #[test]
    #[should_panic(expected = "one source tag per input partition")]
    fn source_count_must_match_partitions() {
        let bdm = Arc::new(BlockDistributionMatrix::from_counts(2, vec![]));
        let _ = TwoSourceBdm::new(bdm, vec![SourceId::R]);
    }

    #[test]
    fn pair_enumeration_is_a_bijection() {
        let ts = appendix_example::bdm();
        let mut seen = vec![false; ts.total_pairs() as usize];
        for k in 0..ts.num_blocks() {
            for x in 0..ts.size_r(k) {
                for y in 0..ts.size_s(k) {
                    let p = ts.pair_index(k, x, y) as usize;
                    assert!(!seen[p]);
                    seen[p] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
