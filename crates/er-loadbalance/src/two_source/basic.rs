//! Basic strategy for two sources: hash the blocking key, compare
//! cross-source pairs within each block. Not described explicitly in
//! the paper (which only evaluates one-source Basic) but needed as the
//! baseline for linkage workloads and by the null-key decomposition.

use std::sync::Arc;

use er_core::blocking::{BlockKey, BlockingFunction};
use er_core::result::MatchPair;
use er_core::{MatcherCache, SourceId};
use mr_engine::prelude::*;

use crate::compare::{PairComparer, PreparedRef};
use crate::keys::BlockSplitValue;
use crate::{Ent, Keyed};

/// Two-source Basic mapper: annotates each entity with its partition's
/// source side.
#[derive(Clone)]
pub struct TwoSourceBasicMapper {
    blocking: Arc<dyn BlockingFunction>,
    sources: Arc<Vec<SourceId>>,
    state: Option<(usize, SourceId)>,
}

impl TwoSourceBasicMapper {
    /// Creates the mapper; `sources[p]` is partition `p`'s side.
    pub fn new(blocking: Arc<dyn BlockingFunction>, sources: Arc<Vec<SourceId>>) -> Self {
        Self {
            blocking,
            sources,
            state: None,
        }
    }
}

impl Mapper for TwoSourceBasicMapper {
    type KIn = ();
    type VIn = Ent;
    type KOut = BlockKey;
    type VOut = BlockSplitValue;
    type Side = ();

    fn setup(&mut self, info: &MapTaskInfo) {
        self.state = Some((info.task_index, self.sources[info.task_index]));
    }

    fn map(
        &mut self,
        _key: &(),
        entity: &Ent,
        ctx: &mut MapContext<BlockKey, BlockSplitValue, ()>,
    ) {
        let (partition, source) = self.state.expect("setup ran");
        let mut keys = self.blocking.keys(entity);
        keys.sort();
        keys.dedup();
        if keys.is_empty() {
            ctx.add_counter(crate::bdm_job::NULL_KEY_ENTITIES, 1);
            return;
        }
        let all: Arc<[BlockKey]> = Arc::from(keys.into_boxed_slice());
        for key in all.iter() {
            ctx.emit(
                key.clone(),
                BlockSplitValue::with_source(
                    Keyed::replica(key.clone(), Arc::clone(&all), Arc::clone(entity)),
                    partition,
                    source,
                ),
            );
        }
    }
}

/// Two-source Basic reducer: cross-source pairs of one block, each
/// side prepared once while bucketing.
#[derive(Clone)]
pub struct TwoSourceBasicReducer {
    comparer: PairComparer,
    cache: MatcherCache,
}

impl TwoSourceBasicReducer {
    /// Creates the reducer.
    pub fn new(comparer: PairComparer) -> Self {
        let cache = comparer.new_cache();
        Self { comparer, cache }
    }
}

impl Reducer for TwoSourceBasicReducer {
    type KIn = BlockKey;
    type VIn = BlockSplitValue;
    type KOut = MatchPair;
    type VOut = f64;

    fn reduce(
        &mut self,
        group: Group<'_, BlockKey, BlockSplitValue>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        let block = group.key().clone();
        let mut r_side: Vec<PreparedRef<'_>> = Vec::new();
        let mut s_side: Vec<PreparedRef<'_>> = Vec::new();
        for v in group.values() {
            let prepared = self.comparer.prepare_cached(&mut self.cache, &v.keyed);
            if v.source == SourceId::R {
                r_side.push(prepared);
            } else {
                s_side.push(prepared);
            }
        }
        for e1 in &r_side {
            for e2 in &s_side {
                self.comparer
                    .compare_prepared(&self.cache, e1, e2, &block, ctx);
            }
        }
    }
}

/// Builds the two-source Basic job.
pub fn basic_two_source_job(
    blocking: Arc<dyn BlockingFunction>,
    sources: Arc<Vec<SourceId>>,
    comparer: PairComparer,
    reduce_tasks: usize,
    parallelism: usize,
) -> Job<TwoSourceBasicMapper, TwoSourceBasicReducer> {
    Job::builder(
        "er-basic-2src",
        TwoSourceBasicMapper::new(blocking, sources),
        TwoSourceBasicReducer::new(comparer),
    )
    .reduce_tasks(reduce_tasks)
    .parallelism(parallelism)
    .partitioner(HashPartitioner)
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_source::appendix_example;
    use crate::COMPARISONS;
    use er_core::Matcher;

    #[test]
    fn computes_the_12_cross_pairs() {
        let job = basic_two_source_job(
            crate::running_example::blocking(),
            Arc::new(appendix_example::partition_sources()),
            PairComparer::count_only(Arc::new(Matcher::paper_default())),
            3,
            1,
        );
        let out = job.run(appendix_example::entity_partitions()).unwrap();
        assert_eq!(out.metrics.counters.get(COMPARISONS), 12);
    }

    #[test]
    fn blocks_stay_whole() {
        let job = basic_two_source_job(
            crate::running_example::blocking(),
            Arc::new(appendix_example::partition_sources()),
            PairComparer::count_only(Arc::new(Matcher::paper_default())),
            5,
            1,
        );
        let out = job.run(appendix_example::entity_partitions()).unwrap();
        // Per-task loads must be sums of whole-block pair counts
        // ({4, 2, 0, 6} here).
        for load in out.metrics.per_reduce_counter(COMPARISONS) {
            assert!(
                [0, 2, 4, 6, 8, 10, 12].contains(&load),
                "load {load} is not a sum of whole blocks"
            );
        }
    }
}
