//! BlockSplit for two sources (paper Appendix I-A).
//!
//! Identical scheme to the one-source case except that split tasks
//! `k.i×j` pair an R partition `i` with an S partition `j`, and the
//! reduce phase compares only cross-source pairs.

use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::result::MatchPair;
use er_core::SourceId;
use mr_engine::engine::Job;
use mr_engine::mapper::{MapContext, MapTaskInfo, Mapper};
use mr_engine::reducer::{Group, ReduceContext, Reducer};

use er_core::MatcherCache;

use super::TwoSourceBdm;
use crate::block_split::assign::TaskAssignment;
use crate::block_split::match_tasks::{fits_average, MatchTask};
use crate::compare::{PairComparer, PreparedRef};
use crate::keys::{BlockSplitKey, BlockSplitValue};
use crate::Keyed;

/// Creates the two-source match tasks: unsplit `k.*` when the block's
/// `|Φ_k,R|·|Φ_k,S|` fits the average, otherwise one task per
/// (R partition × S partition) pair with entities on both sides.
pub fn create_match_tasks_two_source(ts: &TwoSourceBdm, r: usize) -> Vec<MatchTask> {
    let total = ts.total_pairs();
    let m = ts.num_partitions();
    let mut tasks = Vec::new();
    for k in 0..ts.num_blocks() {
        let comps = ts.pairs_in_block(k);
        if fits_average(comps, total, r) {
            if comps > 0 {
                tasks.push(MatchTask {
                    block: k,
                    i: 0,
                    j: 0,
                    comparisons: comps,
                });
            }
        } else {
            for i in (0..m).filter(|&p| ts.source_of(p) == SourceId::R) {
                let size_i = ts.size_in(k, i);
                if size_i == 0 {
                    continue;
                }
                for j in (0..m).filter(|&p| ts.source_of(p) == SourceId::S) {
                    let size_j = ts.size_in(k, j);
                    if size_j == 0 {
                        continue;
                    }
                    tasks.push(MatchTask {
                        block: k,
                        i,
                        j,
                        comparisons: size_i * size_j,
                    });
                }
            }
        }
    }
    tasks
}

/// The two-source BlockSplit mapper.
#[derive(Clone)]
pub struct TwoSourceBlockSplitMapper {
    ts: Arc<TwoSourceBdm>,
    state: Option<State>,
}

#[derive(Clone)]
struct State {
    assignment: Arc<TaskAssignment>,
    partition: usize,
    source: SourceId,
    r: usize,
}

impl TwoSourceBlockSplitMapper {
    /// Creates the mapper.
    pub fn new(ts: Arc<TwoSourceBdm>) -> Self {
        Self { ts, state: None }
    }
}

impl Mapper for TwoSourceBlockSplitMapper {
    type KIn = BlockKey;
    type VIn = Keyed;
    type KOut = BlockSplitKey;
    type VOut = BlockSplitValue;
    type Side = ();

    fn setup(&mut self, info: &MapTaskInfo) {
        let tasks = create_match_tasks_two_source(&self.ts, info.num_reduce_tasks);
        self.state = Some(State {
            assignment: Arc::new(TaskAssignment::greedy(tasks, info.num_reduce_tasks)),
            partition: info.task_index,
            source: self.ts.source_of(info.task_index),
            r: info.num_reduce_tasks,
        });
    }

    fn map(
        &mut self,
        key: &BlockKey,
        keyed: &Keyed,
        ctx: &mut MapContext<BlockSplitKey, BlockSplitValue, ()>,
    ) {
        let state = self.state.as_ref().expect("setup ran");
        let Some(k) = self.ts.block_index(key) else {
            panic!("blocking key {key} not present in the BDM");
        };
        let comps = self.ts.pairs_in_block(k);
        if fits_average(comps, self.ts.total_pairs(), state.r) {
            if comps > 0 {
                let rt = state
                    .assignment
                    .reduce_task_for(k, 0, 0)
                    .expect("unsplit task exists");
                ctx.emit(
                    BlockSplitKey {
                        reduce_task: rt as u32,
                        block: k as u32,
                        i: 0,
                        j: 0,
                    },
                    BlockSplitValue::with_source(keyed.clone(), state.partition, state.source),
                );
            }
        } else {
            let m = self.ts.num_partitions();
            // R entities pair their partition with every S partition;
            // S entities symmetrically.
            for q in 0..m {
                let (i, j) = if state.source == SourceId::R {
                    (state.partition, q)
                } else {
                    (q, state.partition)
                };
                if let Some(rt) = state.assignment.reduce_task_for(k, i, j) {
                    ctx.emit(
                        BlockSplitKey {
                            reduce_task: rt as u32,
                            block: k as u32,
                            i: i as u32,
                            j: j as u32,
                        },
                        BlockSplitValue::with_source(keyed.clone(), state.partition, state.source),
                    );
                }
            }
        }
    }
}

/// The two-source BlockSplit reducer: buckets by source, compares only
/// cross-source pairs ("the reduce tasks read all entities of R and
/// compare each entity of S to all entities of R").
#[derive(Clone)]
pub struct TwoSourceBlockSplitReducer {
    comparer: PairComparer,
    cache: MatcherCache,
}

impl TwoSourceBlockSplitReducer {
    /// Creates the reducer.
    pub fn new(comparer: PairComparer) -> Self {
        let cache = comparer.new_cache();
        Self { comparer, cache }
    }
}

impl Reducer for TwoSourceBlockSplitReducer {
    type KIn = BlockSplitKey;
    type VIn = BlockSplitValue;
    type KOut = MatchPair;
    type VOut = f64;

    fn reduce(
        &mut self,
        group: Group<'_, BlockSplitKey, BlockSplitValue>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        let block_key = group
            .values()
            .next()
            .expect("groups are non-empty")
            .keyed
            .key
            .clone();
        let mut r_side: Vec<PreparedRef<'_>> = Vec::new();
        let mut s_side: Vec<PreparedRef<'_>> = Vec::new();
        for v in group.values() {
            let prepared = self.comparer.prepare_cached(&mut self.cache, &v.keyed);
            if v.source == SourceId::R {
                r_side.push(prepared);
            } else {
                s_side.push(prepared);
            }
        }
        for e1 in &r_side {
            for e2 in &s_side {
                self.comparer
                    .compare_prepared(&self.cache, e1, e2, &block_key, ctx);
            }
        }
    }
}

/// Builds the two-source BlockSplit job.
pub fn block_split_two_source_job(
    ts: Arc<TwoSourceBdm>,
    comparer: PairComparer,
    reduce_tasks: usize,
    parallelism: usize,
) -> Job<TwoSourceBlockSplitMapper, TwoSourceBlockSplitReducer> {
    Job::builder(
        "er-block-split-2src",
        TwoSourceBlockSplitMapper::new(ts),
        TwoSourceBlockSplitReducer::new(comparer),
    )
    .reduce_tasks(reduce_tasks)
    .parallelism(parallelism)
    .partitioner(BlockSplitKey::partitioner())
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_source::appendix_example;
    use crate::COMPARISONS;
    use er_core::Matcher;

    #[test]
    fn appendix_match_tasks() {
        // P = 12, r = 3 -> average 4. Block z (6 pairs) splits into
        // 3.0x1 (2*2 = 4) and 3.0x2 (2*1 = 2); w (4) and x (2) stay
        // whole; y has 0 pairs -> no task. (Paper: "0.* (4 pairs,
        // reduce0), 3.0×1 (4 pairs, reduce1), 2.* (2 pairs, reduce2),
        // 3.0×2 (2 pairs, reduce2)" — our x has block index 1.)
        let ts = appendix_example::bdm();
        let tasks = create_match_tasks_two_source(&ts, 3);
        let as_tuples: Vec<(usize, usize, usize, u64)> = tasks
            .iter()
            .map(|t| (t.block, t.i, t.j, t.comparisons))
            .collect();
        assert_eq!(
            as_tuples,
            vec![(0, 0, 0, 4), (1, 0, 0, 2), (3, 0, 1, 4), (3, 0, 2, 2)]
        );
        let assignment = TaskAssignment::greedy(tasks, 3);
        assert_eq!(assignment.reduce_task_for(0, 0, 0), Some(0));
        assert_eq!(assignment.reduce_task_for(3, 0, 1), Some(1));
        assert_eq!(assignment.reduce_task_for(1, 0, 0), Some(2));
        assert_eq!(assignment.reduce_task_for(3, 0, 2), Some(2));
        assert_eq!(assignment.loads(), &[4, 4, 4]);
    }

    #[test]
    fn job_computes_exactly_the_12_cross_pairs() {
        let ts = Arc::new(appendix_example::bdm());
        let job = block_split_two_source_job(
            Arc::clone(&ts),
            PairComparer::count_only(Arc::new(Matcher::paper_default())),
            3,
            1,
        );
        let out = job.run(appendix_example::annotated_partitions()).unwrap();
        assert_eq!(out.metrics.counters.get(COMPARISONS), 12);
        let loads = out.metrics.per_reduce_counter(COMPARISONS);
        assert_eq!(loads, vec![4, 4, 4]);
    }

    #[test]
    fn no_same_source_comparisons() {
        // Make every R title identical: same-source comparisons would
        // produce R-R matches; assert none appear.
        let ts = Arc::new(appendix_example::bdm());
        let job = block_split_two_source_job(
            Arc::clone(&ts),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            3,
            1,
        );
        let out = job.run(appendix_example::annotated_partitions()).unwrap();
        for (pair, _) in out.records() {
            assert_ne!(
                pair.lo().source,
                pair.hi().source,
                "two-source matching must only produce cross-source pairs"
            );
        }
    }
}
