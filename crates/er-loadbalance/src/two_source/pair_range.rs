//! PairRange for two sources (paper Appendix I-B).
//!
//! Entities are enumerated per block *and source*; the pair index of
//! `(x ∈ R, y ∈ S)` is `x·|Φ_i,S| + y + o(i)`. An R entity's pairs
//! form one contiguous run (its whole matrix row), an S entity's pairs
//! stride by `|Φ_i,S|` (its matrix column).

use std::collections::BTreeSet;
use std::sync::Arc;

use er_core::blocking::BlockKey;
use er_core::result::MatchPair;
use er_core::{MatcherCache, SourceId};
use mr_engine::engine::Job;
use mr_engine::mapper::{MapContext, MapTaskInfo, Mapper};
use mr_engine::reducer::{Group, ReduceContext, Reducer};

use super::TwoSourceBdm;
use crate::compare::{PairComparer, PreparedRef};
use crate::keys::{PairRangeKey, PairRangeValue};
use crate::pair_range::ranges::{RangeIndexer, RangePolicy};
use crate::Keyed;

/// Ranges relevant for an entity (shared with tests/benches).
pub fn relevant_ranges_two_source(
    ts: &TwoSourceBdm,
    ranges: &RangeIndexer,
    block: usize,
    source: SourceId,
    index: u64,
) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    let (nr, ns) = (ts.size_r(block), ts.size_s(block));
    if nr == 0 || ns == 0 {
        return out;
    }
    if source == SourceId::R {
        // Row: pairs (index, 0) .. (index, ns-1) — contiguous.
        let first = ranges.range_of(ts.pair_index(block, index, 0));
        let last = ranges.range_of(ts.pair_index(block, index, ns - 1));
        out.extend(first..=last);
    } else {
        // Column: pairs (0, index) .. (nr-1, index) — stride ns.
        for x in 0..nr {
            out.insert(ranges.range_of(ts.pair_index(block, x, index)));
        }
    }
    out
}

/// The two-source PairRange mapper.
#[derive(Clone)]
pub struct TwoSourcePairRangeMapper {
    ts: Arc<TwoSourceBdm>,
    policy: RangePolicy,
    state: Option<State>,
}

#[derive(Clone)]
struct State {
    next_index: Vec<u64>,
    ranges: RangeIndexer,
    source: SourceId,
}

impl TwoSourcePairRangeMapper {
    /// Creates the mapper.
    pub fn new(ts: Arc<TwoSourceBdm>, policy: RangePolicy) -> Self {
        Self {
            ts,
            policy,
            state: None,
        }
    }
}

impl Mapper for TwoSourcePairRangeMapper {
    type KIn = BlockKey;
    type VIn = Keyed;
    type KOut = PairRangeKey;
    type VOut = PairRangeValue;
    type Side = ();

    fn setup(&mut self, info: &MapTaskInfo) {
        let next_index = (0..self.ts.num_blocks())
            .map(|k| self.ts.entity_index_offset(k, info.task_index))
            .collect();
        self.state = Some(State {
            next_index,
            ranges: RangeIndexer::new(self.ts.total_pairs(), info.num_reduce_tasks, self.policy),
            source: self.ts.source_of(info.task_index),
        });
    }

    fn map(
        &mut self,
        key: &BlockKey,
        keyed: &Keyed,
        ctx: &mut MapContext<PairRangeKey, PairRangeValue, ()>,
    ) {
        let state = self.state.as_mut().expect("setup ran");
        let Some(block) = self.ts.block_index(key) else {
            panic!("blocking key {key} not present in the BDM");
        };
        let index = state.next_index[block];
        state.next_index[block] += 1;
        for range in relevant_ranges_two_source(&self.ts, &state.ranges, block, state.source, index)
        {
            ctx.emit(
                PairRangeKey {
                    range: range as u32,
                    block: block as u32,
                    source: state.source,
                    index,
                },
                PairRangeValue {
                    keyed: keyed.clone(),
                    index,
                },
            );
        }
    }
}

/// The two-source PairRange reducer: R entities arrive first (the key
/// sorts source `R` before `S`), get buffered, and every streamed S
/// entity is paired against them, keeping only this range's pairs.
#[derive(Clone)]
pub struct TwoSourcePairRangeReducer {
    ts: Arc<TwoSourceBdm>,
    comparer: PairComparer,
    policy: RangePolicy,
    ranges: Option<RangeIndexer>,
    cache: MatcherCache,
}

impl TwoSourcePairRangeReducer {
    /// Creates the reducer.
    pub fn new(ts: Arc<TwoSourceBdm>, comparer: PairComparer, policy: RangePolicy) -> Self {
        let cache = comparer.new_cache();
        Self {
            ts,
            comparer,
            policy,
            ranges: None,
            cache,
        }
    }
}

impl Reducer for TwoSourcePairRangeReducer {
    type KIn = PairRangeKey;
    type VIn = PairRangeValue;
    type KOut = MatchPair;
    type VOut = f64;

    fn setup(&mut self, info: &mr_engine::reducer::ReduceTaskInfo) {
        self.ranges = Some(RangeIndexer::new(
            self.ts.total_pairs(),
            info.num_reduce_tasks,
            self.policy,
        ));
    }

    fn reduce(
        &mut self,
        group: Group<'_, PairRangeKey, PairRangeValue>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        let ranges = self.ranges.expect("setup ran");
        let gk = *group.key();
        let block = gk.block as usize;
        let my_range = gk.range as u64;
        let block_key = group
            .values()
            .next()
            .expect("groups are non-empty")
            .keyed
            .key
            .clone();
        let mut r_buffer: Vec<(u64, PreparedRef<'_>)> = Vec::new();
        for (key, value) in group.iter() {
            if key.source == SourceId::R {
                let prepared = self.comparer.prepare_cached(&mut self.cache, &value.keyed);
                r_buffer.push((value.index, prepared));
            } else {
                let prepared_s = self.comparer.prepare_cached(&mut self.cache, &value.keyed);
                for (index1, e1) in &r_buffer {
                    let p = self.ts.pair_index(block, *index1, value.index);
                    let k = ranges.range_of(p);
                    if k == my_range {
                        self.comparer.compare_prepared(
                            &self.cache,
                            e1,
                            &prepared_s,
                            &block_key,
                            ctx,
                        );
                    } else if k > my_range {
                        // Pair index grows with the R index for a fixed
                        // S entity: nothing later in the buffer fits.
                        break;
                    }
                }
            }
        }
    }
}

/// Builds the two-source PairRange job.
pub fn pair_range_two_source_job(
    ts: Arc<TwoSourceBdm>,
    comparer: PairComparer,
    policy: RangePolicy,
    reduce_tasks: usize,
    parallelism: usize,
) -> Job<TwoSourcePairRangeMapper, TwoSourcePairRangeReducer> {
    Job::builder(
        "er-pair-range-2src",
        TwoSourcePairRangeMapper::new(Arc::clone(&ts), policy),
        TwoSourcePairRangeReducer::new(ts, comparer, policy),
    )
    .reduce_tasks(reduce_tasks)
    .parallelism(parallelism)
    .partitioner(PairRangeKey::partitioner())
    .group_by(PairRangeKey::group_cmp())
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_source::appendix_example;
    use crate::COMPARISONS;
    use er_core::Matcher;

    #[test]
    fn entity_c_is_sent_to_ranges_1_and_2() {
        // Paper: "map emits two keys (1.3.R.0) and (2.3.R.0)" for C.
        let ts = appendix_example::bdm();
        let ranges = RangeIndexer::new(12, 3, RangePolicy::CeilDiv);
        let hits = relevant_ranges_two_source(&ts, &ranges, 3, SourceId::R, 0);
        assert_eq!(hits.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn empty_side_blocks_emit_nothing() {
        // Block y (index 2) has no S entities: F must go nowhere.
        let ts = appendix_example::bdm();
        let ranges = RangeIndexer::new(12, 3, RangePolicy::CeilDiv);
        let hits = relevant_ranges_two_source(&ts, &ranges, 2, SourceId::R, 0);
        assert!(hits.is_empty());
    }

    #[test]
    fn job_computes_exactly_the_12_cross_pairs_evenly() {
        let ts = Arc::new(appendix_example::bdm());
        let job = pair_range_two_source_job(
            Arc::clone(&ts),
            PairComparer::count_only(Arc::new(Matcher::paper_default())),
            RangePolicy::CeilDiv,
            3,
            1,
        );
        let out = job.run(appendix_example::annotated_partitions()).unwrap();
        assert_eq!(out.metrics.counters.get(COMPARISONS), 12);
        assert_eq!(
            out.metrics.per_reduce_counter(COMPARISONS),
            vec![4, 4, 4],
            "paper: three ranges of size 4"
        );
    }

    #[test]
    fn results_are_cross_source_only() {
        let ts = Arc::new(appendix_example::bdm());
        let job = pair_range_two_source_job(
            Arc::clone(&ts),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            RangePolicy::CeilDiv,
            3,
            1,
        );
        let out = job.run(appendix_example::annotated_partitions()).unwrap();
        for (pair, _) in out.records() {
            assert_ne!(pair.lo().source, pair.hi().source);
        }
    }
}
