//! Composite map-output keys of the Sorted Neighborhood jobs.
//!
//! The same composite-key discipline as the load-balancing strategies
//! (partition on a *component*, sort on the whole key) applied to a
//! total order: the window job routes on the range-partition index and
//! sorts on `(partition, sort key)`, so that each reduce task receives
//! one contiguous, fully sorted slice of the global order and
//! concatenating reduce tasks in index order reproduces it. The stitch
//! job of JobSN routes on the boundary index and sorts candidates
//! left-side-first by distance from the boundary.

use er_core::blocking::BlockKey;
use er_core::sortkey::SortKey;
use er_loadbalance::{Ent, Keyed};
use mr_engine::comparator::{by_projection, KeyCmp};
use mr_engine::partitioner::FnPartitioner;

/// Map output key of the window job: `(partition, sort key)`.
///
/// `Ord` sorts by partition first, then key; partitioning uses only
/// the partition component; grouping uses the *full* key, so the
/// reduce-side merge streams one small group per distinct sort key
/// and the range is never materialized — the window reducers carry
/// their ring across groups instead. Ties between equal sort keys
/// resolve by the engine's stable `(map task, emission order)`
/// guarantee — independent of the partition count, which is what
/// makes the match output invariant under `r`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnKey {
    /// Range-partition index (== reduce task index).
    pub partition: u32,
    /// The entity's sort key.
    pub key: SortKey,
}

impl SnKey {
    /// Partitioner: route on the partition component only.
    pub fn partitioner() -> FnPartitioner<SnKey> {
        FnPartitioner::new(|key: &SnKey, r: usize| (key.partition as usize) % r)
    }
}

impl std::fmt::Display for SnKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.partition, self.key)
    }
}

/// Map output value of the window jobs: the entity plus its replica
/// flag (RepSN's in-map boundary replication; always `false` under
/// JobSN).
///
/// The entity is wrapped as a [`Keyed`] under the constant `⊥` block
/// key so the sliding window can reuse the prepared-entity comparison
/// path ([`er_loadbalance::compare::PairComparer`]) unchanged — under
/// a single constant key the multi-pass gate is trivially open.
#[derive(Debug, Clone)]
pub struct SnEntity {
    /// The `⊥`-annotated entity.
    pub keyed: Keyed,
    /// True for a RepSN boundary replica (window-primer only; replica
    /// × replica pairs are never compared — they belong to the
    /// predecessor partition).
    pub replica: bool,
}

impl SnEntity {
    /// Wraps an original (non-replicated) entity.
    pub fn original(entity: Ent) -> Self {
        Self {
            keyed: Keyed::single(BlockKey::bottom(), entity),
            replica: false,
        }
    }

    /// Wraps a RepSN boundary replica.
    pub fn replica(entity: Ent) -> Self {
        Self {
            keyed: Keyed::single(BlockKey::bottom(), entity),
            replica: true,
        }
    }

    /// The underlying entity.
    pub fn entity(&self) -> &Ent {
        &self.keyed.entity
    }
}

/// Which side of a partition boundary a JobSN stitch candidate lies
/// on. `Left < Right`, so a stitch reduce group buffers the (few)
/// left-side entities before streaming the right side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundarySide {
    /// Last entities of the partition directly before the boundary.
    Left,
    /// First entities of the global order after the boundary (may span
    /// several thin partitions).
    Right,
}

/// Map output key of the JobSN stitch job:
/// `(boundary, side, distance)`.
///
/// `boundary` is the index of the gap after partition `boundary`;
/// `dist` is the 1-based number of global sort positions between the
/// entity and the boundary. A left entity at distance `dl` and a right
/// entity at distance `dr` are `dl + dr - 1` positions apart, so the
/// window-`w` condition is `dl + dr ≤ w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoundaryKey {
    /// Boundary index (between partitions `boundary` and `boundary+1`).
    pub boundary: u32,
    /// Which side of the boundary.
    pub side: BoundarySide,
    /// 1-based distance from the boundary.
    pub dist: u32,
}

impl BoundaryKey {
    /// Partitioner: route on the boundary component only.
    pub fn partitioner() -> FnPartitioner<BoundaryKey> {
        FnPartitioner::new(|key: &BoundaryKey, r: usize| (key.boundary as usize) % r)
    }

    /// Grouping comparator: boundary only — one group per boundary.
    pub fn group_cmp() -> KeyCmp<BoundaryKey> {
        by_projection(|k: &BoundaryKey| k.boundary)
    }
}

impl std::fmt::Display for BoundaryKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let side = match self.side {
            BoundarySide::Left => "L",
            BoundarySide::Right => "R",
        };
        write!(f, "{}.{side}{}", self.boundary, self.dist)
    }
}

/// Wraps a bare entity under the constant block key (shared by tests
/// and the oracle).
pub fn bottom_keyed(entity: Ent) -> Keyed {
    Keyed::single(BlockKey::bottom(), entity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::Entity;
    use mr_engine::partitioner::Partitioner;
    use std::sync::Arc;

    fn ent(id: u64) -> Ent {
        Arc::new(Entity::new(id, [("title", "t")]))
    }

    #[test]
    fn sn_key_orders_partition_first_then_key() {
        let a = SnKey {
            partition: 0,
            key: SortKey::new("zzz"),
        };
        let b = SnKey {
            partition: 1,
            key: SortKey::new("aaa"),
        };
        let c = SnKey {
            partition: 1,
            key: SortKey::new("bbb"),
        };
        assert!(a < b, "partition dominates the key");
        assert!(b < c, "same partition: sort key orders");
        assert_eq!(a.to_string(), "0.zzz");
    }

    #[test]
    fn sn_partitioner_routes_on_partition_component() {
        let p = SnKey::partitioner();
        let key = SnKey {
            partition: 2,
            key: SortKey::new("anything"),
        };
        assert_eq!(p.partition(&key, 4), 2);
        assert_eq!(p.partition(&key, 2), 0, "wraps when r shrank");
    }

    #[test]
    fn sn_natural_order_groups_by_distinct_full_key() {
        // Grouping == sorting for the window jobs: equal full keys
        // share a group, anything else separates.
        let a = SnKey {
            partition: 1,
            key: SortKey::new("a"),
        };
        let b = SnKey {
            partition: 1,
            key: SortKey::new("z"),
        };
        assert_eq!(a.cmp(&a.clone()), std::cmp::Ordering::Equal);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn boundary_key_sorts_left_before_right_by_distance() {
        let mk = |boundary, side, dist| BoundaryKey {
            boundary,
            side,
            dist,
        };
        let mut keys = [
            mk(0, BoundarySide::Right, 1),
            mk(0, BoundarySide::Left, 2),
            mk(0, BoundarySide::Left, 1),
            mk(1, BoundarySide::Left, 1),
        ];
        keys.sort();
        assert_eq!(keys[0], mk(0, BoundarySide::Left, 1));
        assert_eq!(keys[1], mk(0, BoundarySide::Left, 2));
        assert_eq!(keys[2], mk(0, BoundarySide::Right, 1));
        assert_eq!(keys[3].boundary, 1);
        assert_eq!(keys[0].to_string(), "0.L1");
        assert_eq!(keys[2].to_string(), "0.R1");
    }

    #[test]
    fn boundary_partitioner_and_grouping() {
        let p = BoundaryKey::partitioner();
        let key = BoundaryKey {
            boundary: 5,
            side: BoundarySide::Right,
            dist: 3,
        };
        assert_eq!(p.partition(&key, 4), 1);
        let cmp = BoundaryKey::group_cmp();
        let other = BoundaryKey {
            boundary: 5,
            side: BoundarySide::Left,
            dist: 1,
        };
        assert_eq!(cmp(&key, &other), std::cmp::Ordering::Equal);
    }

    #[test]
    fn sn_entity_wraps_under_the_bottom_key() {
        let original = SnEntity::original(ent(1));
        let replica = SnEntity::replica(ent(2));
        assert!(!original.replica);
        assert!(replica.replica);
        assert_eq!(original.keyed.key, BlockKey::bottom());
        assert_eq!(original.entity().id().0, 1);
        // The bottom-keyed wrap keeps the multi-pass gate open.
        assert!(original
            .keyed
            .should_compare_in(&replica.keyed, &BlockKey::bottom()));
    }
}
