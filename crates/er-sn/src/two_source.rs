//! Two-source (R × S) Sorted Neighborhood: one interleaved sort
//! order, cross-source window pairs only.
//!
//! The SN paper's record-linkage variant, mirroring
//! [`er_loadbalance::two_source`]: both sources are annotated with the
//! *same* sort-key function and interleaved into one total order by
//! the regular distribution + window workflow — nothing about routing
//! or boundary handling changes, because window membership is purely
//! positional. The only difference is the comparison gate: entities of
//! the same source occupy window slots (they separate genuine R × S
//! neighbours exactly as in the sequential algorithm) but their pairs
//! are never evaluated
//! ([`er_loadbalance::compare::PairComparer::with_cross_source_only`],
//! counted under
//! [`er_loadbalance::compare::SAME_SOURCE_SKIPPED`]), so the output —
//! and the `er.comparisons` workload the strategies balance — contains
//! cross-source pairs only.
//!
//! Both boundary strategies work unchanged: JobSN's stitch job and
//! RepSN's replication operate on positions, and the driver threads
//! the gated comparer through every stage of the shared workflow.

use std::sync::Arc;

use er_core::{MatchResult, MatcherCache, SourceId};
use er_loadbalance::Ent;
use mr_engine::input::Partitions;
use mr_engine::workflow::Workflow;

use crate::driver::{run_sn_stages, SnStages};
use crate::sample::resolve_sort_key;
use crate::{SnConfig, SnError, SnOutcome};

/// Executes two-source Sorted Neighborhood linkage as stages of
/// `workflow` — the scenario compiler both [`run_two_source_sn`] and
/// the facade crate's `Resolver` (via `Scenario::TwoSourceSn`) drive.
///
/// `sources[p]` tags input partition `p` as belonging to `R` or `S`
/// (every entity in the partition must carry that source); only
/// cross-source pairs within the window over the interleaved order are
/// compared.
///
/// # Panics
/// If `sources` and `input` lengths differ, a tag other than `R`/`S`
/// appears, or an entity's own source disagrees with its partition's
/// tag.
pub fn run_two_source_sn_in(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    sources: Vec<SourceId>,
    config: &SnConfig,
) -> Result<SnStages, SnError> {
    assert_eq!(
        sources.len(),
        input.len(),
        "one source tag per input partition"
    );
    assert!(
        sources
            .iter()
            .all(|&s| s == SourceId::R || s == SourceId::S),
        "two-source matching knows only R and S"
    );
    for (partition, records) in input.iter().enumerate() {
        assert!(
            records
                .iter()
                .all(|((), e)| e.source() == sources[partition]),
            "partition {partition} holds entities of a different source than its tag"
        );
    }
    let comparer = config.comparer().with_cross_source_only(true);
    run_sn_stages(workflow, input, config, comparer)
}

/// Runs two-source Sorted Neighborhood linkage: `sources[p]` tags
/// input partition `p` as belonging to `R` or `S` (every entity in
/// the partition must carry that source); only cross-source pairs
/// within the window over the interleaved order are compared.
///
/// # Deprecation path
///
/// A thin wrapper over [`run_two_source_sn_in`] on a transient per-run
/// [`Workflow`], kept for compatibility; new code should use the
/// facade crate's `Runtime` + `Resolver` with `Scenario::TwoSourceSn`,
/// which runs the identical stages on a persistent worker pool.
///
/// # Panics
/// If `sources` and `input` lengths differ, a tag other than `R`/`S`
/// appears, or an entity's own source disagrees with its partition's
/// tag.
pub fn run_two_source_sn(
    input: Partitions<(), Ent>,
    sources: Vec<SourceId>,
    config: &SnConfig,
) -> Result<SnOutcome, SnError> {
    let mut workflow = Workflow::new(format!("sn-two-source-{}", config.strategy))
        .with_fault_policy(config.fault_policy())
        .with_fault_plan(config.fault_plan().clone());
    let stages = run_two_source_sn_in(&mut workflow, input, sources, config)?;
    Ok(SnOutcome {
        result: stages.result,
        partitioner: stages.partitioner,
        sample_metrics: stages.sample_metrics,
        match_metrics: stages.match_metrics,
        stitch_metrics: stages.stitch_metrics,
        workflow: workflow.finish(),
    })
}

/// Convenience: packages two already-tagged entity sets into input
/// partitions plus the matching source-tag vector (each source split
/// over `partitions_per_source` map tasks — the `MultipleInputs`
/// layout where every input partition holds one source).
///
/// # Panics
/// If `partitions_per_source` is zero or an entity's source disagrees
/// with the set it was passed in.
pub fn two_source_input(
    r: Vec<Ent>,
    s: Vec<Ent>,
    partitions_per_source: usize,
) -> (Partitions<(), Ent>, Vec<SourceId>) {
    assert!(
        partitions_per_source > 0,
        "at least one partition per source"
    );
    let mut partitions: Partitions<(), Ent> = Vec::new();
    let mut sources = Vec::new();
    for (entities, source) in [(r, SourceId::R), (s, SourceId::S)] {
        assert!(
            entities.iter().all(|e| e.source() == source),
            "every entity must carry the source of its set"
        );
        let chunk = entities.len().div_ceil(partitions_per_source).max(1);
        let mut iter = entities.into_iter().peekable();
        for _ in 0..partitions_per_source {
            let part: Vec<((), Ent)> = iter.by_ref().take(chunk).map(|e| ((), e)).collect();
            partitions.push(part);
            sources.push(source);
        }
    }
    (partitions, sources)
}

/// Reference implementation: the single-machine sliding window over
/// the interleaved order, evaluating cross-source pairs only — the
/// ground truth [`run_two_source_sn`] must reproduce exactly at every
/// partition count and parallelism.
pub fn two_source_sn_oracle(input: &Partitions<(), Ent>, config: &SnConfig) -> MatchResult {
    let mut result = MatchResult::new();
    let mut cache = MatcherCache::new(Arc::clone(&config.matcher));
    for (a, b) in cross_source_window_pairs(input, config) {
        if let Some(score) = cache.matches(&a, &b) {
            result.insert(
                er_core::result::MatchPair::new(a.entity_ref(), b.entity_ref()),
                score,
            );
        }
    }
    result
}

/// The number of cross-source window pairs — the exact comparison
/// count [`run_two_source_sn`] must report (same-source window slots
/// are skipped, not evaluated).
pub fn two_source_oracle_comparisons(input: &Partitions<(), Ent>, config: &SnConfig) -> u64 {
    cross_source_window_pairs(input, config).len() as u64
}

/// Enumerates the cross-source pairs within the window over the
/// interleaved global order (stable ties in input order, mirroring
/// the engine's shuffle).
fn cross_source_window_pairs(input: &Partitions<(), Ent>, config: &SnConfig) -> Vec<(Ent, Ent)> {
    let mut keyed: Vec<(er_core::sortkey::SortKey, Ent)> = Vec::new();
    for partition in input {
        for ((), entity) in partition {
            if let Some(key) =
                resolve_sort_key(config.sort_key.as_ref(), config.null_key_policy, entity)
                    .routing_key()
            {
                keyed.push((key, Arc::clone(entity)));
            }
        }
    }
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    let mut pairs = Vec::new();
    for j in 0..keyed.len() {
        for i in j.saturating_sub(config.window - 1)..j {
            if keyed[i].1.source() != keyed[j].1.source() {
                pairs.push((Arc::clone(&keyed[i].1), Arc::clone(&keyed[j].1)));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnStrategy;
    use er_core::Entity;
    use er_loadbalance::compare::SAME_SOURCE_SKIPPED;

    fn src_ent(source: SourceId, id: u64, title: &str) -> Ent {
        Arc::new(Entity::with_source(source, id, [("title", title)]))
    }

    fn catalogs() -> (Vec<Ent>, Vec<Ent>) {
        let r = vec![
            src_ent(SourceId::R, 0, "canon eos 5d mark iii"),
            src_ent(SourceId::R, 1, "nikon d800 body only"),
            src_ent(SourceId::R, 2, "sony alpha a7 ii kit"),
        ];
        let s = vec![
            src_ent(SourceId::S, 0, "canon eos 5d mark iri"),
            src_ent(SourceId::S, 1, "nikon d800 body onlx"),
            src_ent(SourceId::S, 2, "pentax k-1 mark ii"),
        ];
        (r, s)
    }

    #[test]
    fn emits_only_cross_source_pairs_and_matches_the_oracle() {
        let (r, s) = catalogs();
        let (input, sources) = two_source_input(r, s, 1);
        for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
            let config = SnConfig::new(strategy)
                .with_window(3)
                .with_partitions(2)
                .with_parallelism(1);
            let outcome = run_two_source_sn(input.clone(), sources.clone(), &config).unwrap();
            assert!(
                outcome
                    .result
                    .iter()
                    .all(|(pair, _)| pair.lo().source != pair.hi().source),
                "{strategy}: a same-source pair leaked into the linkage output"
            );
            assert_eq!(
                outcome.result.pair_set(),
                two_source_sn_oracle(&input, &config).pair_set(),
                "{strategy} diverged from the cross-source oracle"
            );
            assert_eq!(
                outcome.total_comparisons(),
                two_source_oracle_comparisons(&input, &config),
                "{strategy}: cross-source pairs must be evaluated exactly once"
            );
            assert!(
                outcome.match_metrics.counters.get(SAME_SOURCE_SKIPPED) > 0,
                "{strategy}: interleaved same-source neighbours must be gated"
            );
            assert!(!outcome.result.is_empty(), "near-duplicates must link");
        }
    }

    #[test]
    fn two_source_input_shapes_partitions_per_source() {
        let (r, s) = catalogs();
        let (input, sources) = two_source_input(r, s, 2);
        assert_eq!(input.len(), 4);
        assert_eq!(
            sources,
            vec![SourceId::R, SourceId::R, SourceId::S, SourceId::S]
        );
        assert_eq!(input.iter().map(Vec::len).sum::<usize>(), 6);
    }

    #[test]
    #[should_panic(expected = "different source than its tag")]
    fn mistagged_partition_rejected() {
        let (r, _) = catalogs();
        let input = vec![r.into_iter().map(|e| ((), e)).collect()];
        let _ = run_two_source_sn(
            input,
            vec![SourceId::S],
            &SnConfig::new(SnStrategy::JobSn).with_parallelism(1),
        );
    }

    #[test]
    #[should_panic(expected = "one source tag per input partition")]
    fn source_count_must_match_partitions() {
        let _ = run_two_source_sn(
            vec![vec![]],
            vec![SourceId::R, SourceId::S],
            &SnConfig::new(SnStrategy::JobSn),
        );
    }
}
