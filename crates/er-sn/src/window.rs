//! The sliding-window kernel shared by every SN reducer.
//!
//! A [`WindowBuffer`] holds the `w − 1` immediate predecessors (in
//! global sort order) of the next entity, as *owned* `(Keyed,
//! prepared form)` pairs — owned so the buffer can live in reducer
//! state and slide **across** reduce groups: the window jobs group by
//! the full `(partition, key)`, so a reduce task streams one small
//! group per distinct sort key out of the engine's heap merge and
//! never materializes its whole range; only the ring (and the current
//! key run) is resident.
//!
//! [`WindowBuffer::advance`] compares the next entity against every
//! buffered predecessor — exactly the pairs at distance `≤ w − 1` —
//! then admits it, evicting the oldest. RepSN's reducers additionally
//! [`WindowBuffer::prime`] the buffer with boundary replicas so
//! cross-partition pairs are covered *without* comparing replica ×
//! replica (those pairs belong to the predecessor partition).

use std::collections::VecDeque;

use er_core::blocking::BlockKey;
use er_core::result::MatchPair;
use er_core::{MatcherCache, PreparedHandle};
use er_loadbalance::compare::{PairComparer, PreparedRef};
use er_loadbalance::Keyed;
use mr_engine::reducer::ReduceContext;

/// Ring buffer of the `w − 1` most recent entities with their
/// prepared handles (cheap to hold: arena ids or `Arc`s all the way
/// down).
#[derive(Debug, Clone)]
pub struct WindowBuffer {
    ring: VecDeque<(Keyed, Option<PreparedHandle>)>,
    capacity: usize,
    /// The constant `⊥` block key all SN comparisons run under.
    block: BlockKey,
}

impl WindowBuffer {
    /// A buffer for window size `window`.
    ///
    /// # Panics
    /// If `window < 2` — a window of one compares nothing.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "a sliding window must span at least 2 slots");
        Self {
            ring: VecDeque::with_capacity(window - 1),
            capacity: window - 1,
            block: BlockKey::bottom(),
        }
    }

    /// Admits `keyed` without comparing it against the buffer — used
    /// to pre-load RepSN boundary replicas (keeping only the last
    /// `w − 1` primed entries, like any admission).
    pub fn prime(&mut self, comparer: &PairComparer, cache: &mut MatcherCache, keyed: &Keyed) {
        let prepared = comparer.prepare_owned(cache, keyed);
        self.push(keyed.clone(), prepared);
    }

    /// Compares `keyed` against every buffered predecessor (counting
    /// comparisons and delivering matches to `sink`), then admits it.
    pub fn advance<KO, VO>(
        &mut self,
        comparer: &PairComparer,
        cache: &mut MatcherCache,
        keyed: &Keyed,
        ctx: &mut ReduceContext<KO, VO>,
        mut sink: impl FnMut(&mut ReduceContext<KO, VO>, MatchPair, f64),
    ) {
        let prepared = comparer.prepare_owned(cache, keyed);
        let next = PreparedRef::from_parts(keyed, prepared.clone());
        for (prev_keyed, prev_prepared) in &self.ring {
            let prev = PreparedRef::from_parts(prev_keyed, prev_prepared.clone());
            comparer.compare_prepared_into(cache, &prev, &next, &self.block, ctx, &mut sink);
        }
        self.push(keyed.clone(), prepared);
    }

    fn push(&mut self, keyed: Keyed, prepared: Option<PreparedHandle>) {
        self.ring.push_back((keyed, prepared));
        if self.ring.len() > self.capacity {
            self.ring.pop_front();
        }
    }

    /// The buffered entities, oldest first — i.e. the last
    /// `min(w − 1, admitted)` entities in admission order. JobSN reads
    /// this at task end to publish the partition's tail candidates.
    pub fn entries(&self) -> impl Iterator<Item = &Keyed> + '_ {
        self.ring.iter().map(|(keyed, _)| keyed)
    }

    /// Number of buffered predecessors.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True before anything was admitted.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Drops all buffered entries (the capacity stays).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::bottom_keyed;
    use er_core::{Entity, Matcher};
    use er_loadbalance::COMPARISONS;
    use mr_engine::reducer::ReduceTaskInfo;
    use std::sync::Arc;

    fn ctx() -> ReduceContext<MatchPair, f64> {
        ReduceContext::for_testing(ReduceTaskInfo {
            task_index: 0,
            num_reduce_tasks: 1,
            num_map_tasks: 1,
        })
    }

    fn keyed(id: u64, title: &str) -> Keyed {
        bottom_keyed(Arc::new(Entity::new(id, [("title", title)])))
    }

    #[test]
    fn advance_compares_each_entity_to_its_w_minus_1_predecessors() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let entities: Vec<Keyed> = (0..5).map(|i| keyed(i, "distinct title x")).collect();
        let mut c = ctx();
        let mut window = WindowBuffer::new(3);
        for e in &entities {
            window.advance(&comparer, &mut cache, e, &mut c, |c, pair, score| {
                c.emit(pair, score)
            });
        }
        // n = 5, w = 3: pairs = 1 + 2 + 2 + 2 = 7.
        assert_eq!(c.counters().get(COMPARISONS), 7);
        assert_eq!(window.len(), 2, "ring never exceeds w - 1");
        // The ring holds the last two entities, oldest first.
        let ids: Vec<u64> = window.entries().map(|k| k.entity.id().0).collect();
        assert_eq!(ids, vec![3, 4]);
        window.clear();
        assert!(window.is_empty());
    }

    #[test]
    fn primed_entries_compare_against_newcomers_but_not_each_other() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let replicas: Vec<Keyed> = (0..2).map(|i| keyed(i, "aaa")).collect();
        let originals: Vec<Keyed> = (10..12).map(|i| keyed(i, "aaa")).collect();
        let mut c = ctx();
        let mut window = WindowBuffer::new(3);
        assert!(window.is_empty());
        for r in &replicas {
            window.prime(&comparer, &mut cache, r);
        }
        assert_eq!(
            c.counters().get(COMPARISONS),
            0,
            "priming must not compare replica x replica"
        );
        for o in &originals {
            window.advance(&comparer, &mut cache, o, &mut c, |c, pair, score| {
                c.emit(pair, score)
            });
        }
        // Original 10: vs both replicas (2). Original 11: vs replica 1
        // and original 10 (2) — replica 0 was evicted.
        assert_eq!(c.counters().get(COMPARISONS), 4);
        assert_eq!(c.output().len(), 4, "identical titles all match");
    }

    #[test]
    fn priming_beyond_capacity_keeps_only_the_last_w_minus_1() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let mut window = WindowBuffer::new(3);
        for i in 0..5 {
            window.prime(&comparer, &mut cache, &keyed(i, "aaa"));
        }
        let ids: Vec<u64> = window.entries().map(|k| k.entity.id().0).collect();
        assert_eq!(ids, vec![3, 4], "only the freshest replicas stay");
    }

    #[test]
    fn matches_flow_through_the_sink() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut cache = comparer.new_cache();
        let a = keyed(1, "abcdefghij");
        let b = keyed(2, "abcdefghiX"); // sim 0.9 -> match
        let z = keyed(3, "zzzzzzzzzz"); // no match
        let mut c = ctx();
        let mut window = WindowBuffer::new(4);
        for e in [&a, &b, &z] {
            window.advance(&comparer, &mut cache, e, &mut c, |c, pair, score| {
                c.emit(pair, score)
            });
        }
        assert_eq!(c.counters().get(COMPARISONS), 3);
        assert_eq!(c.output().len(), 1);
        assert!((c.output()[0].1 - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn window_of_one_is_rejected() {
        let _ = WindowBuffer::new(1);
    }
}
