//! RepSN: boundary handling via in-map replication.
//!
//! Strategy 2 of *Parallel Sorted Neighborhood Blocking with
//! MapReduce*: each map task — which knows the range partitioning —
//! additionally sends its last `w − 1` entities *per key range* to the
//! successor range, tagged as replicas. The reduce task of range `p`
//! then sees (sorted strictly before its own entities) a superset of
//! the global last `w − 1` entities of range `p − 1`; it primes the
//! sliding window with the greatest `w − 1` replicas and slides into
//! its own entities. Replica × replica pairs are never compared — they
//! were already compared inside the predecessor range — so matches
//! stay duplicate-free by construction. One job, no stitching; the
//! cost is `(w − 1) · m` replicated entities per boundary.
//!
//! # Precondition
//!
//! Replication reaches exactly one range ahead, so no window pair may
//! span two range boundaries: every *interior* range (strictly
//! between the first and last non-empty ones) must hold at least
//! `w − 1` entities — the outer ranges may be arbitrarily thin. The
//! driver verifies this *before* launching the matching job — fill
//! levels are a pure function of the annotated input and the
//! deterministic partitioner — and reports
//! [`crate::driver::SnError::ThinPartition`] instead of a silently
//! incomplete result (use JobSN for workloads whose sampled ranges
//! can run that thin — degenerate key distributions, tiny inputs).

use std::sync::Arc;

use er_core::result::MatchPair;
use er_core::sortkey::{RangePartitioner, SortKey};
use er_core::MatcherCache;
use er_loadbalance::compare::PairComparer;
use er_loadbalance::Ent;
use mr_engine::prelude::*;

use crate::keys::{SnEntity, SnKey};
use crate::window::WindowBuffer;
use crate::{PARTITION_ENTITIES, REPLICAS};

/// Map phase: route each entity to its range and replicate per-range
/// tails to the successor range.
#[derive(Clone)]
pub struct RepSnMapper {
    partitioner: Arc<RangePartitioner<SortKey>>,
    window: usize,
    /// Per destination range: this task's last `w − 1` entities, kept
    /// sorted ascending by `(key, arrival)` — the same tie order the
    /// shuffle produces, so the replica stream is a faithful slice of
    /// the global order.
    tails: Vec<Vec<(SortKey, Ent)>>,
}

impl RepSnMapper {
    /// Creates the mapper.
    pub fn new(partitioner: Arc<RangePartitioner<SortKey>>, window: usize) -> Self {
        Self {
            partitioner,
            window,
            tails: Vec::new(),
        }
    }
}

impl Mapper for RepSnMapper {
    type KIn = SortKey;
    type VIn = Ent;
    type KOut = SnKey;
    type VOut = SnEntity;
    type Side = ();

    fn setup(&mut self, _info: &MapTaskInfo) {
        self.tails = vec![Vec::new(); self.partitioner.num_partitions()];
    }

    fn map(&mut self, key: &SortKey, entity: &Ent, ctx: &mut MapContext<SnKey, SnEntity, ()>) {
        let partition = self.partitioner.partition_of(key);
        ctx.emit(
            SnKey {
                partition: partition as u32,
                key: key.clone(),
            },
            SnEntity::original(Arc::clone(entity)),
        );
        if partition + 1 >= self.tails.len() {
            return; // the last range has no successor
        }
        let tail = &mut self.tails[partition];
        // Insert after the run of equal keys (stable by arrival), cap
        // at the last w − 1.
        let pos = tail.partition_point(|(k, _)| k <= key);
        tail.insert(pos, (key.clone(), Arc::clone(entity)));
        if tail.len() > self.window - 1 {
            tail.remove(0);
        }
    }

    fn finish(&mut self, ctx: &mut MapContext<SnKey, SnEntity, ()>) {
        for (partition, tail) in self.tails.iter_mut().enumerate() {
            for (key, entity) in tail.drain(..) {
                ctx.add_counter(REPLICAS, 1);
                ctx.emit(
                    SnKey {
                        partition: (partition + 1) as u32,
                        key,
                    },
                    SnEntity::replica(entity),
                );
            }
        }
    }
}

/// Reduce phase. A reduce task owns one range, streamed as one small
/// group per distinct sort key (grouping == sorting, so the range is
/// never materialized): first the replica groups — their keys are
/// strictly smaller than every original key of this range, so they
/// arrive first — priming the window ([`WindowBuffer`] in reducer
/// state; priming keeps only the last `w − 1`, which is exactly the
/// predecessor range's global tail), then the originals sliding over
/// it.
#[derive(Clone)]
pub struct RepSnReducer {
    comparer: PairComparer,
    cache: MatcherCache,
    buffer: WindowBuffer,
    /// Original entities streamed so far.
    originals: u64,
    /// Guards the replicas-before-originals ordering invariant.
    saw_original: bool,
}

impl RepSnReducer {
    /// Creates the reducer.
    pub fn new(comparer: PairComparer, window: usize) -> Self {
        let cache = comparer.new_cache();
        let buffer = WindowBuffer::new(window);
        Self {
            comparer,
            cache,
            buffer,
            originals: 0,
            saw_original: false,
        }
    }
}

impl Reducer for RepSnReducer {
    type KIn = SnKey;
    type VIn = SnEntity;
    type KOut = MatchPair;
    type VOut = f64;

    fn setup(&mut self, _info: &ReduceTaskInfo) {
        self.buffer.clear();
        self.originals = 0;
        self.saw_original = false;
    }

    fn reduce(
        &mut self,
        group: Group<'_, SnKey, SnEntity>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        for value in group.values() {
            if value.replica {
                debug_assert!(
                    !self.saw_original,
                    "replicas must sort strictly before originals"
                );
                self.buffer
                    .prime(&self.comparer, &mut self.cache, &value.keyed);
            } else {
                self.saw_original = true;
                self.originals += 1;
                self.buffer.advance(
                    &self.comparer,
                    &mut self.cache,
                    &value.keyed,
                    ctx,
                    |ctx, pair, score| {
                        ctx.emit(pair, score);
                    },
                );
            }
        }
    }

    fn finish(&mut self, ctx: &mut ReduceContext<MatchPair, f64>) {
        ctx.add_counter(PARTITION_ENTITIES, self.originals);
    }
}

/// Builds the RepSN job.
pub fn repsn_job(
    partitioner: Arc<RangePartitioner<SortKey>>,
    comparer: PairComparer,
    window: usize,
    partitions: usize,
    parallelism: usize,
) -> Job<RepSnMapper, RepSnReducer> {
    Job::builder(
        "sn-repsn",
        RepSnMapper::new(partitioner, window),
        RepSnReducer::new(comparer, window),
    )
    .reduce_tasks(partitions)
    .parallelism(parallelism)
    .partitioner(SnKey::partitioner())
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{Entity, Matcher};
    use er_loadbalance::COMPARISONS;

    fn annotated(titles: &[&str]) -> Partitions<SortKey, Ent> {
        vec![titles
            .iter()
            .enumerate()
            .map(|(i, title)| {
                (
                    SortKey::new(title),
                    Arc::new(Entity::new(i as u64, [("title", *title)])),
                )
            })
            .collect()]
    }

    fn two_range_partitioner() -> Arc<RangePartitioner<SortKey>> {
        Arc::new(RangePartitioner::from_sample(
            vec![
                SortKey::new("a"),
                SortKey::new("b"),
                SortKey::new("c"),
                SortKey::new("d"),
            ],
            2,
        ))
    }

    #[test]
    fn mapper_replicates_per_range_tails_to_the_successor() {
        let job = repsn_job(
            two_range_partitioner(),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            3,
            2,
            1,
        );
        let out = job.run(annotated(&["a", "b", "c", "d"])).unwrap();
        // Ranges: {a, b} and {c, d}; w - 1 = 2 replicas cross.
        assert_eq!(out.metrics.counters.get(REPLICAS), 2);
        assert_eq!(out.metrics.map_output_records(), 6, "4 originals + 2");
        let loads = out.metrics.per_reduce_counter(PARTITION_ENTITIES);
        assert_eq!(loads, vec![2, 2], "originals per range");
        // w = 3 over the global order a,b,c,d: pairs (a,b), (a,c),
        // (b,c), (b,d), (c,d).
        assert_eq!(out.metrics.counters.get(COMPARISONS), 5);
    }

    #[test]
    fn replica_replica_pairs_are_never_compared() {
        // One map task, w = 4 over 2 ranges: range 0's entities cross
        // as replicas, but the total comparison count must equal the
        // single-machine window count — no replica x replica extras,
        // no misses.
        let job = repsn_job(
            two_range_partitioner(),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            4,
            2,
            1,
        );
        let out = job.run(annotated(&["a", "b", "c", "d", "e"])).unwrap();
        // Global window pairs for n = 5, w = 4: 3 + 3 + 2 + 1 = 9.
        assert_eq!(out.metrics.counters.get(COMPARISONS), 9);
    }

    #[test]
    fn multi_task_replicas_reconstruct_the_global_tail() {
        // Two map tasks interleave keys of range 0; the successor
        // range must see the true global tail regardless.
        let input: Partitions<SortKey, Ent> = vec![
            vec![
                (
                    SortKey::new("a"),
                    Arc::new(Entity::new(0, [("title", "a")])),
                ),
                (
                    SortKey::new("c"),
                    Arc::new(Entity::new(1, [("title", "c")])),
                ),
            ],
            vec![
                (
                    SortKey::new("b"),
                    Arc::new(Entity::new(2, [("title", "b")])),
                ),
                (
                    SortKey::new("d"),
                    Arc::new(Entity::new(3, [("title", "d")])),
                ),
                (
                    SortKey::new("e"),
                    Arc::new(Entity::new(4, [("title", "e")])),
                ),
            ],
        ];
        let job = repsn_job(
            two_range_partitioner(),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            3,
            2,
            1,
        );
        let out = job.run(input).unwrap();
        // Ranges: {a, b} | {c, d, e}. Global window pairs for w = 3:
        // (a,b),(a,c),(b,c),(b,d),(c,d),(c,e),(d,e) = 7.
        assert_eq!(out.metrics.counters.get(COMPARISONS), 7);
        // Each task replicates its own per-range tail (task 0: a;
        // task 1: b); the reducer primes the window with their union.
        assert_eq!(out.metrics.counters.get(REPLICAS), 2);
    }

    #[test]
    fn identical_output_across_parallelism() {
        let mk_input = || annotated(&["ab", "aa", "ba", "bb", "ac", "bc"]);
        let reference = repsn_job(
            two_range_partitioner(),
            PairComparer::new(Arc::new(Matcher::paper_default())),
            3,
            2,
            1,
        )
        .run(mk_input())
        .unwrap()
        .reduce_outputs;
        for parallelism in [2, 4, 8] {
            let out = repsn_job(
                two_range_partitioner(),
                PairComparer::new(Arc::new(Matcher::paper_default())),
                3,
                2,
                parallelism,
            )
            .run(mk_input())
            .unwrap();
            assert_eq!(out.reduce_outputs, reference);
        }
    }
}
