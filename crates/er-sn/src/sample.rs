//! MR Job 1 of the SN workflow: the sort-key distribution job.
//!
//! The analogue of the load-balancing paper's BDM job (Algorithm 3),
//! specialized to a total order: the map side derives every entity's
//! *sort key*, side-writes the annotated entity to the simulated DFS
//! (so the matching job reads the same partitioning, annotation
//! included), and emits a **sampled** `(sort key, 1)` stream; the
//! reduce side is the shared [`SumReducer`]. The resulting histogram
//! feeds [`RangePartitioner::from_counts`], yielding the
//! order-preserving partition boundaries both JobSN and RepSN route
//! by.
//!
//! Sampling uses the deterministic
//! [`er_loadbalance::distribution::StrideSampler`] — one per map task,
//! admitting every k-th keyed entity — so the boundaries (and with
//! them the entire match output) are a pure function of the input, at
//! any parallelism.
//!
//! # Null sort keys
//!
//! Entities whose sort key cannot be derived are **never dropped
//! silently**: they are counted under [`crate::NULL_SORT_KEYS`] and
//! routed by the configured [`NullKeyPolicy`] — by default collated at
//! the very front of the global order under [`SortKey::empty`].

use std::sync::Arc;

use er_core::sortkey::{RangePartitioner, SortKey, SortKeyFunction};
use er_core::Entity;
use er_loadbalance::distribution::{key_histogram, StrideSampler};
use er_loadbalance::Ent;
use mr_engine::combiner::sum_u64_combiner;
use mr_engine::prelude::*;
use mr_engine::reducer::SumReducer;

use crate::{NullKeyPolicy, NULL_SORT_KEYS};

/// How an entity's sort key resolved under the null-key policy. The
/// mapper and the brute-force oracle share this one function, so the
/// routing of keyless entities can never drift between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedKey {
    /// A derived sort key.
    Key(SortKey),
    /// No key; routed under [`SortKey::empty`] (policy `SortFirst`) —
    /// collated at the front of the global order.
    RoutedFirst,
    /// No key; excluded from matching (policy `Skip`).
    Skipped,
}

impl ResolvedKey {
    /// The key the entity is routed under, or `None` when skipped.
    pub fn routing_key(self) -> Option<SortKey> {
        match self {
            ResolvedKey::Key(key) => Some(key),
            ResolvedKey::RoutedFirst => Some(SortKey::empty()),
            ResolvedKey::Skipped => None,
        }
    }

    /// True when the entity had no derivable sort key.
    pub fn is_null(&self) -> bool {
        !matches!(self, ResolvedKey::Key(_))
    }
}

/// Applies the null-key policy to the derived key of `entity`.
pub fn resolve_sort_key(
    function: &dyn SortKeyFunction,
    policy: NullKeyPolicy,
    entity: &Entity,
) -> ResolvedKey {
    match function.sort_key(entity) {
        Some(key) => ResolvedKey::Key(key),
        None => match policy {
            NullKeyPolicy::SortFirst => ResolvedKey::RoutedFirst,
            NullKeyPolicy::Skip => ResolvedKey::Skipped,
        },
    }
}

/// Mapper of the distribution job: annotate + sample.
#[derive(Clone)]
pub struct SampleMapper {
    sort_key: Arc<dyn SortKeyFunction>,
    policy: NullKeyPolicy,
    sampler: StrideSampler,
}

impl SampleMapper {
    /// Creates the mapper; `sample_rate ∈ (0, 1]` controls the
    /// admission stride.
    pub fn new(
        sort_key: Arc<dyn SortKeyFunction>,
        policy: NullKeyPolicy,
        sample_rate: f64,
    ) -> Self {
        Self {
            sort_key,
            policy,
            sampler: StrideSampler::with_rate(sample_rate),
        }
    }
}

impl Mapper for SampleMapper {
    type KIn = ();
    type VIn = Ent;
    type KOut = SortKey;
    type VOut = u64;
    type Side = (SortKey, Ent);

    fn map(&mut self, _key: &(), entity: &Ent, ctx: &mut MapContext<SortKey, u64, Self::Side>) {
        let resolved = resolve_sort_key(self.sort_key.as_ref(), self.policy, entity);
        if resolved.is_null() {
            ctx.add_counter(NULL_SORT_KEYS, 1);
        }
        let Some(key) = resolved.routing_key() else {
            return;
        };
        ctx.side_output((key.clone(), Arc::clone(entity)));
        if self.sampler.admit() {
            ctx.emit(key, 1);
        }
    }
}

/// Builds the distribution job.
pub fn sample_job(
    sort_key: Arc<dyn SortKeyFunction>,
    policy: NullKeyPolicy,
    sample_rate: f64,
    reduce_tasks: usize,
    parallelism: usize,
    use_combiner: bool,
) -> Job<SampleMapper, SumReducer<SortKey>> {
    let mut builder = Job::builder(
        "sn-sample",
        SampleMapper::new(sort_key, policy, sample_rate),
        SumReducer::default(),
    )
    .reduce_tasks(reduce_tasks)
    .parallelism(parallelism);
    if use_combiner {
        builder = builder.combiner(sum_u64_combiner());
    }
    builder.build()
}

/// Products of a completed distribution job: the range partitioner
/// over the requested number of contiguous key ranges, the annotated
/// input partitions for the matching job, and the job metrics.
pub type SampleProducts = (
    RangePartitioner<SortKey>,
    Partitions<SortKey, Ent>,
    JobMetrics,
);

/// Runs the distribution job as a stage of `workflow` and assembles
/// its [`SampleProducts`]. The annotated side outputs it returns are
/// chained into the window job by the workflow layer, which enforces
/// the identical-partitioning invariant.
#[allow(clippy::too_many_arguments)]
pub fn sample_distribution_in(
    workflow: &mut mr_engine::workflow::Workflow,
    input: Partitions<(), Ent>,
    sort_key: Arc<dyn SortKeyFunction>,
    policy: NullKeyPolicy,
    sample_rate: f64,
    partitions: usize,
    parallelism: usize,
    use_combiner: bool,
    spill_threshold: Option<usize>,
) -> Result<SampleProducts, MrError> {
    let job = sample_job(
        sort_key,
        policy,
        sample_rate,
        partitions,
        parallelism,
        use_combiner,
    )
    .with_spill_threshold(spill_threshold);
    let out = workflow.chained_stage(&job, input)?;
    let histogram = key_histogram(out.reduce_outputs.into_iter().flatten());
    let partitioner = RangePartitioner::from_counts(histogram, partitions);
    Ok((partitioner, out.side_outputs, out.metrics))
}

/// Runs the distribution job standalone (outside a larger workflow)
/// and assembles its [`SampleProducts`].
#[allow(clippy::too_many_arguments)]
pub fn sample_distribution(
    input: Partitions<(), Ent>,
    sort_key: Arc<dyn SortKeyFunction>,
    policy: NullKeyPolicy,
    sample_rate: f64,
    partitions: usize,
    parallelism: usize,
    use_combiner: bool,
) -> Result<SampleProducts, MrError> {
    let mut workflow = mr_engine::workflow::Workflow::new("sn-sample");
    sample_distribution_in(
        &mut workflow,
        input,
        sort_key,
        policy,
        sample_rate,
        partitions,
        parallelism,
        use_combiner,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::sortkey::AttributeSortKey;

    fn ent(id: u64, title: Option<&str>) -> ((), Ent) {
        match title {
            Some(t) => ((), Arc::new(Entity::new(id, [("title", t)]))),
            None => ((), Arc::new(Entity::new(id, [("brand", "keyless")]))),
        }
    }

    fn titles(ts: &[&str]) -> Partitions<(), Ent> {
        vec![ts
            .iter()
            .enumerate()
            .map(|(i, t)| ent(i as u64, Some(t)))
            .collect()]
    }

    fn sort_key() -> Arc<dyn SortKeyFunction> {
        Arc::new(AttributeSortKey::title())
    }

    #[test]
    fn full_sampling_builds_even_boundaries_and_annotates_everything() {
        let input = titles(&["dd", "aa", "cc", "bb"]);
        let (partitioner, annotated, metrics) = sample_distribution(
            input,
            sort_key(),
            NullKeyPolicy::SortFirst,
            1.0,
            2,
            1,
            false,
        )
        .unwrap();
        assert_eq!(partitioner.num_partitions(), 2);
        assert_eq!(annotated.len(), 1, "partition shape preserved");
        assert_eq!(annotated[0].len(), 4, "every entity annotated");
        assert_eq!(metrics.map_output_records(), 4, "rate 1.0 samples all");
        // Keys aa,bb route left of cc,dd.
        let p = |s: &str| partitioner.partition_of(&SortKey::new(s));
        assert!(p("aa") < p("cc"));
        assert_eq!(p("aa"), p("bb"));
    }

    #[test]
    fn stride_sampling_thins_the_histogram_but_not_the_annotation() {
        let ts: Vec<String> = (0..30).map(|i| format!("t{i:02}")).collect();
        let refs: Vec<&str> = ts.iter().map(String::as_str).collect();
        let (_, annotated, metrics) = sample_distribution(
            titles(&refs),
            sort_key(),
            NullKeyPolicy::SortFirst,
            0.1,
            4,
            1,
            false,
        )
        .unwrap();
        assert_eq!(annotated[0].len(), 30);
        assert_eq!(metrics.map_output_records(), 3, "1 in 10 sampled");
    }

    #[test]
    fn combiner_preaggregates_duplicate_keys() {
        let input = titles(&["aa", "aa", "aa", "bb"]);
        let plain = sample_job(sort_key(), NullKeyPolicy::SortFirst, 1.0, 2, 1, false)
            .run(input.clone())
            .unwrap();
        let combined = sample_job(sort_key(), NullKeyPolicy::SortFirst, 1.0, 2, 1, true)
            .run(input)
            .unwrap();
        assert_eq!(plain.metrics.map_output_records(), 4);
        assert_eq!(combined.metrics.map_output_records(), 2);
        assert_eq!(
            key_histogram(plain.reduce_outputs.into_iter().flatten()),
            key_histogram(combined.reduce_outputs.into_iter().flatten())
        );
    }

    #[test]
    fn sort_first_policy_routes_keyless_entities_to_the_front() {
        let input = vec![vec![ent(0, Some("mm title")), ent(1, None), ent(2, None)]];
        let (partitioner, annotated, metrics) = sample_distribution(
            input,
            sort_key(),
            NullKeyPolicy::SortFirst,
            1.0,
            2,
            1,
            false,
        )
        .unwrap();
        assert_eq!(metrics.counters.get(NULL_SORT_KEYS), 2);
        assert_eq!(annotated[0].len(), 3, "keyless entities stay routed");
        let keyless: Vec<&SortKey> = annotated[0]
            .iter()
            .filter(|(k, _)| k.is_empty())
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keyless.len(), 2);
        assert_eq!(partitioner.partition_of(&SortKey::empty()), 0);
    }

    #[test]
    fn skip_policy_counts_and_excludes_keyless_entities() {
        let input = vec![vec![ent(0, Some("mm title")), ent(1, None)]];
        let (_, annotated, metrics) =
            sample_distribution(input, sort_key(), NullKeyPolicy::Skip, 1.0, 2, 1, false).unwrap();
        assert_eq!(metrics.counters.get(NULL_SORT_KEYS), 1);
        assert_eq!(annotated[0].len(), 1, "skipped entities leave the flow");
    }

    #[test]
    fn resolve_sort_key_reports_policy_outcomes() {
        let keyless = Entity::new(9, [("brand", "x")]);
        let first = resolve_sort_key(
            &AttributeSortKey::title(),
            NullKeyPolicy::SortFirst,
            &keyless,
        );
        assert_eq!(first, ResolvedKey::RoutedFirst);
        assert!(first.is_null());
        assert_eq!(first.routing_key(), Some(SortKey::empty()));
        let skipped = resolve_sort_key(&AttributeSortKey::title(), NullKeyPolicy::Skip, &keyless);
        assert_eq!(skipped.clone().routing_key(), None);
        let keyed = Entity::new(1, [("title", "Abc")]);
        let resolved = resolve_sort_key(&AttributeSortKey::title(), NullKeyPolicy::Skip, &keyed);
        assert!(!resolved.is_null());
        assert_eq!(resolved.routing_key(), Some(SortKey::new("abc")));
    }
}
