//! The end-to-end Sorted Neighborhood workflow.
//!
//! Both strategies share the same two-phase shape as the
//! load-balancing workflow: a preprocessing job measuring a key
//! distribution ([`crate::sample`]) whose side output — sort-key
//! annotated entities, identically partitioned — feeds the matching
//! job ([`crate::jobsn`] or [`crate::repsn`]).
//!
//! # Determinism contract
//!
//! The match output is a pure function of `(input, SnConfig)`:
//! byte-identical at every `parallelism`, identical as a pair set at
//! every `partitions` count and across the two strategies, and equal
//! to the single-machine sliding-window oracle [`sn_oracle`]. Ties
//! between equal sort keys resolve by `(input partition, record
//! order)` — the engine's stable shuffle order — which the oracle
//! reproduces with a stable sort over the concatenated input.

use std::sync::Arc;

use er_core::sortkey::{AttributeSortKey, RangePartitioner, SortKey, SortKeyFunction};
use er_core::{MatchResult, Matcher, MatcherCache};
use er_loadbalance::compare::PairComparer;
use er_loadbalance::Ent;
use mr_engine::error::MrError;
use mr_engine::fault::{FaultPlan, FaultPolicy};
use mr_engine::input::Partitions;
use mr_engine::metrics::JobMetrics;
use mr_engine::runtime::RuntimeConfig;
use mr_engine::workflow::{StageGraph, Workflow, WorkflowMetrics};

use crate::jobsn::{assemble_boundary_input, split_window_output, stitch_job, window_job};
use crate::repsn::repsn_job;
use crate::sample::{resolve_sort_key, sample_distribution_in};
use crate::{PARTITION_ENTITIES, REPLICAS};

/// Which boundary-handling strategy runs the matching job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnStrategy {
    /// Second MR job stitches boundary candidates (robust to thin and
    /// empty ranges; costs an extra job).
    JobSn,
    /// In-map replication of per-range tails to the successor range
    /// (single job; requires every *interior* range to hold at least
    /// `w − 1` entities).
    RepSn,
}

impl std::fmt::Display for SnStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnStrategy::JobSn => write!(f, "JobSN"),
            SnStrategy::RepSn => write!(f, "RepSN"),
        }
    }
}

/// Routing policy for entities without a derivable sort key.
///
/// Either way the decision is deterministic and counted under
/// [`crate::NULL_SORT_KEYS`]; keyless entities are never dropped
/// silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NullKeyPolicy {
    /// Route under [`SortKey::empty`]: keyless entities collate at the
    /// very front of the global order, where the window compares them
    /// against each other and the lowest-keyed entities (the default —
    /// no entity is excluded from matching).
    #[default]
    SortFirst,
    /// Exclude keyless entities from SN matching (counted; compose a
    /// separate pass — e.g. the Cartesian decomposition of
    /// `er_loadbalance::null_keys` — to cover them).
    Skip,
}

/// Configuration of one Sorted Neighborhood run.
///
/// The execution knobs every scenario shares live in the embedded
/// [`RuntimeConfig`]: `parallelism`, `matcher_cache_capacity`,
/// `count_only`, and — because SN's key ranges *are* the reduce tasks
/// of its matching job — the partition count, stored as
/// [`RuntimeConfig::reduce_tasks`]. The `with_*` builders forward to
/// it, so call sites predating the extraction compile unchanged.
#[derive(Clone)]
pub struct SnConfig {
    /// Sort-key derivation (default: full normalized `title`).
    pub sort_key: Arc<dyn SortKeyFunction>,
    /// Match rule (default: the paper's edit distance ≥ 0.8 on
    /// `title`).
    pub matcher: Arc<Matcher>,
    /// Boundary-handling strategy.
    pub strategy: SnStrategy,
    /// Window size `w ≥ 2`: every pair within `w − 1` sort positions
    /// is compared.
    pub window: usize,
    /// Fraction of keyed entities sampled into the key histogram the
    /// range boundaries are computed from, in `(0, 1]`.
    pub sample_rate: f64,
    /// Pre-aggregate sampled key counts per map task.
    pub use_combiner: bool,
    /// Routing of entities without a sort key.
    pub null_key_policy: NullKeyPolicy,
    /// Shared execution knobs; `runtime.reduce_tasks` is the number of
    /// key ranges (== reduce tasks of the matching job).
    pub runtime: RuntimeConfig,
    /// Deterministic fault-injection schedule applied to every job of
    /// the run (empty by default — injection is a test/bench harness,
    /// never implied by a policy). See [`FaultPlan`].
    pub fault_plan: FaultPlan,
}

impl SnConfig {
    /// Defaults: window 4, 4 partitions, exact (rate-1.0) sampling.
    pub fn new(strategy: SnStrategy) -> Self {
        Self {
            sort_key: Arc::new(AttributeSortKey::title()),
            matcher: Arc::new(Matcher::paper_default()),
            strategy,
            window: 4,
            sample_rate: 1.0,
            use_combiner: true,
            null_key_policy: NullKeyPolicy::default(),
            runtime: RuntimeConfig::default(),
            fault_plan: FaultPlan::new(),
        }
    }

    /// Overrides the sort-key function.
    pub fn with_sort_key(mut self, sort_key: Arc<dyn SortKeyFunction>) -> Self {
        self.sort_key = sort_key;
        self
    }

    /// Overrides the matcher.
    pub fn with_matcher(mut self, matcher: Arc<Matcher>) -> Self {
        self.matcher = matcher;
        self
    }

    /// Overrides the boundary strategy (the `Resolver` compiles one
    /// scenario template into each requested strategy through this).
    pub fn with_strategy(mut self, strategy: SnStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the whole shared-knob block (e.g. with a `Runtime`'s
    /// configuration).
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Overrides the window size.
    ///
    /// # Panics
    /// If `window < 2` — a window of one compares nothing.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 2, "a sliding window must span at least 2 slots");
        self.window = window;
        self
    }

    /// Overrides the number of key ranges (forwards to
    /// [`RuntimeConfig::reduce_tasks`] — the ranges are the reduce
    /// tasks of the matching job).
    ///
    /// # Panics
    /// If `partitions` is zero.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        assert!(partitions > 0, "at least one partition is required");
        self.runtime.reduce_tasks = partitions;
        self
    }

    /// Overrides the sampling rate.
    ///
    /// # Panics
    /// If `rate` is outside `(0, 1]`.
    pub fn with_sample_rate(mut self, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sample rate must be in (0, 1], got {rate}"
        );
        self.sample_rate = rate;
        self
    }

    /// Overrides the worker-thread count (forwards to
    /// [`RuntimeConfig::parallelism`]).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.runtime.parallelism = parallelism;
        self
    }

    /// Overrides the null-sort-key policy.
    pub fn with_null_key_policy(mut self, policy: NullKeyPolicy) -> Self {
        self.null_key_policy = policy;
        self
    }

    /// Switches comparison counting only (forwards to
    /// [`RuntimeConfig::count_only`]): window pairs are counted but
    /// never scored, and the match result stays empty — the timing-run
    /// mode `ErConfig` always had, now available to SN workloads.
    pub fn with_count_only(mut self, count_only: bool) -> Self {
        self.runtime.count_only = count_only;
        self
    }

    /// Bounds the reducers' prepared-entity caches (forwards to
    /// [`RuntimeConfig::matcher_cache_capacity`]); `None` restores the
    /// unbounded default.
    ///
    /// # Panics
    /// If `capacity` is `Some(n)` with `n < 2` — comparing a pair
    /// needs both sides resident.
    pub fn with_matcher_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.runtime = self.runtime.with_matcher_cache_capacity(capacity);
        self
    }

    /// Seals map-side shuffle buckets into sorted runs every
    /// `threshold` open records, bounding map-phase resident memory
    /// (forwards to [`RuntimeConfig::spill_threshold`]); `None`
    /// restores the spill-free default. Outputs are byte-identical at
    /// any threshold.
    ///
    /// # Panics
    /// If `threshold` is `Some(0)`.
    pub fn with_spill_threshold(mut self, threshold: Option<usize>) -> Self {
        self.runtime = self.runtime.with_spill_threshold(threshold);
        self
    }

    /// Replaces the per-task fault-tolerance policy — retry budget and
    /// straggler deadline — every job of the run executes under
    /// (forwards to [`RuntimeConfig::fault_policy`]).
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.runtime = self.runtime.with_fault_policy(policy);
        self
    }

    /// Installs a deterministic fault-injection schedule (panics or
    /// delays at exact task coordinates) for every job of the run —
    /// the test/bench harness proving the retry path. An empty plan
    /// (the default) injects nothing.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The per-task fault-tolerance policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.runtime.fault_policy
    }

    /// The deterministic fault-injection schedule (empty = none).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Number of key ranges == reduce tasks of the matching job.
    pub fn partitions(&self) -> usize {
        self.runtime.reduce_tasks
    }

    /// Local worker threads.
    pub fn parallelism(&self) -> usize {
        self.runtime.parallelism
    }

    /// Whether similarity evaluation is skipped (comparisons are only
    /// counted).
    pub fn count_only(&self) -> bool {
        self.runtime.count_only
    }

    /// The prepared-entity cache bound (`None` = unbounded).
    pub fn matcher_cache_capacity(&self) -> Option<usize> {
        self.runtime.matcher_cache_capacity
    }

    /// The map-side spill threshold (`None` = never spill).
    pub fn spill_threshold(&self) -> Option<usize> {
        self.runtime.spill_threshold
    }

    pub(crate) fn comparer(&self) -> PairComparer {
        let comparer = if self.count_only() {
            PairComparer::count_only(Arc::clone(&self.matcher))
        } else {
            PairComparer::new(Arc::clone(&self.matcher))
        };
        comparer.with_cache_capacity(self.matcher_cache_capacity())
    }
}

impl std::fmt::Debug for SnConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnConfig")
            .field("strategy", &self.strategy)
            .field("window", &self.window)
            .field("partitions", &self.partitions())
            .field("sample_rate", &self.sample_rate)
            .field("use_combiner", &self.use_combiner)
            .field("null_key_policy", &self.null_key_policy)
            .field("runtime", &self.runtime)
            .field("fault_plan", &self.fault_plan)
            .finish()
    }
}

/// Errors of an SN run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnError {
    /// The MapReduce engine failed.
    Mr(MrError),
    /// RepSN precondition violated: an *interior* key range (strictly
    /// between the first and last non-empty ranges) holds fewer than
    /// `window − 1` entities, so window pairs between its neighbours
    /// would span more than one boundary and replication cannot cover
    /// them. Re-run with JobSN, a smaller window, or fewer
    /// partitions.
    ThinPartition {
        /// The offending range.
        partition: usize,
        /// Entities it holds.
        entities: u64,
        /// The configured window.
        window: usize,
    },
}

impl std::fmt::Display for SnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnError::Mr(e) => write!(f, "MapReduce error: {e}"),
            SnError::ThinPartition {
                partition,
                entities,
                window,
            } => write!(
                f,
                "RepSN requires every interior range to hold at least w-1 = {} entities, \
                 but range {partition} holds {entities}; use JobSN for this workload",
                window - 1
            ),
        }
    }
}

impl std::error::Error for SnError {}

impl From<MrError> for SnError {
    fn from(e: MrError) -> Self {
        SnError::Mr(e)
    }
}

/// Everything a completed SN run produces.
#[derive(Debug)]
pub struct SnOutcome {
    /// The deduplicated match result.
    pub result: MatchResult,
    /// The sampled range partitioner the run routed by.
    pub partitioner: RangePartitioner<SortKey>,
    /// Metrics of the sort-key distribution job.
    pub sample_metrics: JobMetrics,
    /// Metrics of the window/matching job.
    pub match_metrics: JobMetrics,
    /// Metrics of JobSN's stitch job (absent for RepSN, and for JobSN
    /// runs whose boundaries had no candidate pairs).
    pub stitch_metrics: Option<JobMetrics>,
    /// Rolled-up metrics of the whole run: per-stage walls, end-to-end
    /// wall, merged counters, peak-memory gauges.
    pub workflow: WorkflowMetrics,
}

impl SnOutcome {
    /// Comparison counts per reduce task of the matching job.
    pub fn reduce_loads(&self) -> Vec<u64> {
        self.match_metrics
            .per_reduce_counter(er_loadbalance::COMPARISONS)
    }

    /// Total comparisons across the matching and stitch jobs.
    pub fn total_comparisons(&self) -> u64 {
        let stitch: u64 = self
            .stitch_metrics
            .as_ref()
            .map(|m| m.counters.get(er_loadbalance::COMPARISONS))
            .unwrap_or(0);
        self.match_metrics.counters.get(er_loadbalance::COMPARISONS) + stitch
    }

    /// Entities per key range (originals only).
    pub fn partition_sizes(&self) -> Vec<u64> {
        self.match_metrics.per_reduce_counter(PARTITION_ENTITIES)
    }

    /// Boundary replicas RepSN shipped (zero for JobSN).
    pub fn replicas(&self) -> u64 {
        self.match_metrics.counters.get(REPLICAS)
    }
}

/// Runs Sorted Neighborhood blocking over pre-partitioned input (each
/// inner `Vec` is one input partition == one map task).
///
/// # Deprecation path
///
/// A thin wrapper over [`run_sn_stages`] on a transient per-run
/// [`Workflow`], kept for compatibility; new code should use the
/// facade crate's `Runtime` + `Resolver` with
/// `Scenario::SortedNeighborhood`, which runs the identical stages on
/// a persistent worker pool.
pub fn run_sorted_neighborhood(
    input: Partitions<(), Ent>,
    config: &SnConfig,
) -> Result<SnOutcome, SnError> {
    let mut workflow = Workflow::new(format!("sn-{}", config.strategy))
        .with_fault_policy(config.fault_policy())
        .with_fault_plan(config.fault_plan().clone());
    let stages = run_sorted_neighborhood_in(&mut workflow, input, config)?;
    Ok(SnOutcome {
        result: stages.result,
        partitioner: stages.partitioner,
        sample_metrics: stages.sample_metrics,
        match_metrics: stages.match_metrics,
        stitch_metrics: stages.stitch_metrics,
        workflow: workflow.finish(),
    })
}

/// Products of one SN pass executed inside a caller-owned workflow —
/// what [`run_sn_stages`] returns to [`run_sorted_neighborhood`], to
/// the multi-pass / two-source drivers, and to the facade crate's
/// `Resolver`.
#[derive(Debug)]
pub struct SnStages {
    /// The deduplicated match result of this pass.
    pub result: MatchResult,
    /// The sampled range partitioner the pass routed by.
    pub partitioner: RangePartitioner<SortKey>,
    /// Metrics of the sort-key distribution job.
    pub sample_metrics: JobMetrics,
    /// Metrics of the window/matching job.
    pub match_metrics: JobMetrics,
    /// Metrics of JobSN's stitch job (absent for RepSN and for
    /// boundary-free JobSN runs).
    pub stitch_metrics: Option<JobMetrics>,
}

/// Executes one plain (single-source, single-pass) SN pass as stages
/// of `workflow` with the config's own comparer — the scenario
/// compiler both [`run_sorted_neighborhood`] and the facade crate's
/// `Resolver` (via single-key `Scenario::SortedNeighborhood`) drive.
pub fn run_sorted_neighborhood_in(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    config: &SnConfig,
) -> Result<SnStages, SnError> {
    run_sn_stages(workflow, input, config, config.comparer())
}

/// Executes one full SN pass (distribution job → window job → optional
/// stitch job) as stages of `workflow`, evaluating pairs through the
/// given `comparer` — the hook by which multi-pass SN installs its
/// pair-level dedup gate and two-source SN its cross-source-only gate.
///
/// The pass compiles to a [`StageGraph`] — `sample → match` (RepSN)
/// or `sample → match → stitch` (JobSN, where the stitch node no-ops
/// when no window crosses a range boundary) — whose node bodies
/// submit their task batches to the pool's shared ready-queue, so
/// passes of concurrently resolving workflows interleave at stage
/// granularity. The window job's scheduling weight is the sliding
/// window's pair-count estimate `n · (w − 1)`.
pub fn run_sn_stages(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    config: &SnConfig,
    comparer: PairComparer,
) -> Result<SnStages, SnError> {
    use std::cell::RefCell;
    assert!(
        config.window >= 2,
        "a sliding window must span at least 2 slots"
    );
    assert!(
        config.partitions() > 0,
        "at least one partition is required"
    );
    let stages = RefCell::new(None);
    let sampled = RefCell::new(None);
    let windowed = RefCell::new(None);
    let mut graph: StageGraph<'_, SnError> = StageGraph::new();
    let sample_node = graph.node("sample", &[], |wf| {
        let products = sample_distribution_in(
            wf,
            input,
            Arc::clone(&config.sort_key),
            config.null_key_policy,
            config.sample_rate,
            config.partitions(),
            config.parallelism(),
            config.use_combiner,
            config.spill_threshold(),
        )?;
        *sampled.borrow_mut() = Some(products);
        Ok(())
    });
    match config.strategy {
        SnStrategy::JobSn => {
            let comparer_stitch = comparer.clone();
            let match_node = graph.node("match", &[sample_node], |wf| {
                let (partitioner, annotated, sample_metrics) = sampled
                    .borrow_mut()
                    .take()
                    .expect("sample node ran before match");
                let entities: usize = annotated.iter().map(Vec::len).sum();
                let job = window_job(
                    Arc::new(partitioner.clone()),
                    comparer.clone(),
                    config.window,
                    config.partitions(),
                    config.parallelism(),
                )
                .with_spill_threshold(config.spill_threshold())
                .with_weight_hint(entities as u64 * (config.window as u64 - 1));
                let out = wf.chained_stage(&job, annotated)?;
                let lens = out.metrics.per_reduce_counter(PARTITION_ENTITIES);
                let match_metrics = out.metrics;
                let (result, candidates) =
                    split_window_output(out.reduce_outputs, config.partitions(), lens);
                let boundary_input = assemble_boundary_input(&candidates, config.window);
                *windowed.borrow_mut() = Some((
                    result,
                    boundary_input,
                    partitioner,
                    sample_metrics,
                    match_metrics,
                ));
                Ok(())
            });
            graph.node("stitch", &[match_node], |wf| {
                let (mut result, boundary_input, partitioner, sample_metrics, match_metrics) =
                    windowed
                        .borrow_mut()
                        .take()
                        .expect("match node ran before stitch");
                let stitch_metrics = if boundary_input.is_empty() {
                    None
                } else {
                    // The stitch input is deliberately re-partitioned
                    // (one partition per boundary), so it runs outside
                    // the chained-shape invariant.
                    let boundaries = boundary_input.len();
                    let job = stitch_job(
                        comparer_stitch,
                        config.window,
                        boundaries,
                        config.parallelism(),
                    )
                    .with_spill_threshold(config.spill_threshold());
                    let out = wf.repartitioned_stage(&job, boundary_input)?;
                    for (pair, score) in out.reduce_outputs.into_iter().flatten() {
                        result.insert(pair, score);
                    }
                    Some(out.metrics)
                };
                *stages.borrow_mut() = Some(SnStages {
                    result,
                    partitioner,
                    sample_metrics,
                    match_metrics,
                    stitch_metrics,
                });
                Ok(())
            });
        }
        SnStrategy::RepSn => {
            graph.node("match", &[sample_node], |wf| {
                let (partitioner, annotated, sample_metrics) = sampled
                    .borrow_mut()
                    .take()
                    .expect("sample node ran before match");
                // Precondition, checked BEFORE spending the matching
                // work: replication reaches one range ahead, so no window
                // pair may span two boundaries. Only *interior* ranges —
                // strictly between the first and last non-empty ones —
                // can cause that: a thinner-than-`w − 1` (or empty)
                // interior range lets its neighbours' entities sit within
                // one window of each other. The first non-empty range is
                // exempt (all pairs leaving it cross exactly its own
                // boundary, and its tail replicates regardless of size),
                // as is the last. Fill levels are a pure function of the
                // annotated input and the (deterministic) partitioner, so
                // this O(n) pass sees exactly what the reducers would
                // count.
                let mut lens = vec![0u64; config.partitions()];
                for (key, _) in annotated.iter().flatten() {
                    lens[partitioner.partition_of(key)] += 1;
                }
                let first_nonempty = lens.iter().position(|&n| n > 0);
                let last_nonempty = lens.iter().rposition(|&n| n > 0);
                if let (Some(first), Some(last)) = (first_nonempty, last_nonempty) {
                    for (partition, &entities) in lens.iter().enumerate().take(last).skip(first + 1)
                    {
                        if entities < (config.window - 1) as u64 {
                            return Err(SnError::ThinPartition {
                                partition,
                                entities,
                                window: config.window,
                            });
                        }
                    }
                }
                let entities: u64 = lens.iter().sum();
                let job = repsn_job(
                    Arc::new(partitioner.clone()),
                    comparer,
                    config.window,
                    config.partitions(),
                    config.parallelism(),
                )
                .with_spill_threshold(config.spill_threshold())
                .with_weight_hint(entities * (config.window as u64 - 1));
                let out = wf.chained_stage(&job, annotated)?;
                let mut result = MatchResult::new();
                for (pair, score) in out.reduce_outputs.into_iter().flatten() {
                    result.insert(pair, score);
                }
                *stages.borrow_mut() = Some(SnStages {
                    result,
                    partitioner,
                    sample_metrics,
                    match_metrics: out.metrics,
                    stitch_metrics: None,
                });
                Ok(())
            });
        }
    }
    graph.run(workflow)?;
    Ok(stages
        .into_inner()
        .expect("the match/stitch tail populates the outcome"))
}

/// Reference implementation: single-machine sliding window over the
/// globally sorted input — the ground truth both strategies must
/// reproduce exactly, at every partition count and parallelism.
///
/// Entities are enumerated in `(input partition, record order)` and
/// stable-sorted by sort key, mirroring the engine's shuffle tie
/// order; the null-key policy is applied through the same
/// [`resolve_sort_key`] the mapper uses.
pub fn sn_oracle(input: &Partitions<(), Ent>, config: &SnConfig) -> MatchResult {
    let mut keyed: Vec<(SortKey, Ent)> = Vec::new();
    for partition in input {
        for ((), entity) in partition {
            if let Some(key) =
                resolve_sort_key(config.sort_key.as_ref(), config.null_key_policy, entity)
                    .routing_key()
            {
                keyed.push((key, Arc::clone(entity)));
            }
        }
    }
    keyed.sort_by(|a, b| a.0.cmp(&b.0)); // stable: ties keep input order
    let mut result = MatchResult::new();
    let mut cache = MatcherCache::new(Arc::clone(&config.matcher));
    for j in 0..keyed.len() {
        for i in j.saturating_sub(config.window - 1)..j {
            if let Some(score) = cache.matches(&keyed[i].1, &keyed[j].1) {
                result.insert(
                    er_core::result::MatchPair::new(
                        keyed[i].1.entity_ref(),
                        keyed[j].1.entity_ref(),
                    ),
                    score,
                );
            }
        }
    }
    result
}

/// The number of window comparisons the oracle performs for `n` sorted
/// entities under window `w` — the count both strategies must hit
/// exactly (each pair compared once, no replica × replica extras).
pub fn oracle_comparisons(n: usize, window: usize) -> u64 {
    (0..n).map(|j| j.min(window - 1) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::Entity;

    fn ent(id: u64, title: &str) -> ((), Ent) {
        ((), Arc::new(Entity::new(id, [("title", title)])))
    }

    fn input(titles: &[&str]) -> Partitions<(), Ent> {
        vec![titles
            .iter()
            .enumerate()
            .map(|(i, t)| ent(i as u64, t))
            .collect()]
    }

    fn config(strategy: SnStrategy) -> SnConfig {
        SnConfig::new(strategy)
            .with_window(3)
            .with_partitions(2)
            .with_parallelism(1)
    }

    #[test]
    fn both_strategies_match_the_oracle_on_a_small_input() {
        let titles = [
            "canon eos 5d mark iii",
            "canon eos 5d mark iri",
            "canon eos 7d body",
            "nikon d800 body only",
            "nikon d800 body onlx",
            "sony alpha a7 ii kit",
        ];
        for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
            let cfg = config(strategy);
            let outcome = run_sorted_neighborhood(input(&titles), &cfg).unwrap();
            let oracle = sn_oracle(&input(&titles), &cfg);
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{strategy} diverged from the oracle"
            );
            assert_eq!(
                outcome.total_comparisons(),
                oracle_comparisons(titles.len(), cfg.window),
                "{strategy} must compare each window pair exactly once"
            );
            assert!(!outcome.result.is_empty(), "near-duplicates must match");
        }
    }

    #[test]
    fn repsn_reports_thin_interior_partitions_instead_of_missing_pairs() {
        // Three 1-entity ranges with w = 4: the interior range holds
        // fewer than w - 1 = 3 entities, so pairs between its
        // neighbours would span two boundaries.
        let cfg = SnConfig::new(SnStrategy::RepSn)
            .with_window(4)
            .with_partitions(3)
            .with_parallelism(1);
        let err = run_sorted_neighborhood(input(&["aa", "bb", "cc"]), &cfg).unwrap_err();
        match err {
            SnError::ThinPartition {
                partition,
                entities,
                window,
            } => {
                assert_eq!(window, 4);
                assert_eq!(partition, 1, "only the interior range is checked");
                assert!(entities < 3);
            }
            other => panic!("expected ThinPartition, got {other:?}"),
        }
        // JobSN handles the identical configuration exactly.
        let cfg = SnConfig {
            strategy: SnStrategy::JobSn,
            ..cfg
        };
        let outcome = run_sorted_neighborhood(input(&["aa", "bb", "cc"]), &cfg).unwrap();
        let oracle = sn_oracle(&input(&["aa", "bb", "cc"]), &cfg);
        assert_eq!(outcome.result.pair_set(), oracle.pair_set());
        assert_eq!(outcome.total_comparisons(), oracle_comparisons(3, 4));
    }

    #[test]
    fn repsn_accepts_thin_outer_ranges() {
        // Thin FIRST and LAST ranges are safe: every pair leaving
        // either crosses exactly one boundary, and the first range's
        // whole content replicates forward regardless of its size.
        let cfg = SnConfig::new(SnStrategy::RepSn)
            .with_window(4)
            .with_partitions(2)
            .with_parallelism(1);
        let titles = ["aa", "bb", "cc", "zz"];
        let outcome = run_sorted_neighborhood(input(&titles), &cfg).unwrap();
        let oracle = sn_oracle(&input(&titles), &cfg);
        assert_eq!(outcome.result.pair_set(), oracle.pair_set());
        assert_eq!(outcome.total_comparisons(), oracle_comparisons(4, 4));
    }

    #[test]
    fn single_partition_degenerates_to_a_plain_window() {
        for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
            let cfg = SnConfig::new(strategy)
                .with_window(3)
                .with_partitions(1)
                .with_parallelism(1);
            let outcome = run_sorted_neighborhood(input(&["b", "a", "c"]), &cfg).unwrap();
            assert_eq!(outcome.total_comparisons(), oracle_comparisons(3, 3));
            assert!(outcome.stitch_metrics.is_none());
            assert_eq!(outcome.replicas(), 0);
        }
    }

    #[test]
    fn outcome_exposes_loads_sizes_and_sampling() {
        let cfg = config(SnStrategy::RepSn);
        let outcome =
            run_sorted_neighborhood(input(&["aa", "ab", "ac", "ba", "bb", "bc"]), &cfg).unwrap();
        assert_eq!(outcome.partition_sizes().iter().sum::<u64>(), 6);
        assert_eq!(outcome.reduce_loads().len(), 2);
        assert_eq!(outcome.replicas(), 2, "w - 1 tails cross the boundary");
        assert_eq!(outcome.partitioner.num_partitions(), 2);
        assert_eq!(outcome.sample_metrics.map_input_records(), 6);
    }

    #[test]
    fn oracle_comparisons_counts_the_triangle_head() {
        assert_eq!(oracle_comparisons(0, 4), 0);
        assert_eq!(oracle_comparisons(1, 4), 0);
        assert_eq!(oracle_comparisons(5, 4), 1 + 2 + 3 + 3);
        assert_eq!(oracle_comparisons(3, 2), 2);
    }

    #[test]
    fn config_debug_and_display() {
        let cfg = config(SnStrategy::JobSn);
        let dbg = format!("{cfg:?}");
        assert!(dbg.contains("window: 3"));
        assert_eq!(SnStrategy::JobSn.to_string(), "JobSN");
        assert_eq!(SnStrategy::RepSn.to_string(), "RepSN");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn window_below_two_rejected() {
        let _ = SnConfig::new(SnStrategy::JobSn).with_window(1);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = SnConfig::new(SnStrategy::JobSn).with_partitions(0);
    }

    #[test]
    fn error_display_names_the_remedy() {
        let e = SnError::ThinPartition {
            partition: 1,
            entities: 0,
            window: 4,
        };
        assert!(e.to_string().contains("JobSN"));
        let wrapped: SnError = MrError::NoMapTasks.into();
        assert!(wrapped.to_string().contains("MapReduce error"));
    }
}
