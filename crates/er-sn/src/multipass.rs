//! Multi-pass Sorted Neighborhood: several sort keys, one union of
//! window pair sets, each pair compared exactly once globally.
//!
//! A single sort key collates records by prefix: near-duplicates
//! differing early in the key (first-word typo, reordered tokens)
//! sort far apart and never meet in a window — the classic SN recall
//! ceiling. The standard remedy (*Data Partitioning for Parallel
//! Entity Matching*) is multi-pass SN: run the window workflow once
//! per sort key (e.g. title and reversed title) and union the pair
//! sets.
//!
//! The naive union would compare a pair once per pass whose windows
//! contain it. Mirroring multi-pass *blocking*'s smallest-common-block
//! rule ([`er_loadbalance::multipass`]), a pair is evaluated only in
//! the **first** pass whose window covers it: before pass `i` runs,
//! the driver derives the window pair sets of passes `0..i` from the
//! annotated sort orders (a pure function of the input — the same
//! enumeration [`crate::sn_oracle`] uses) and installs them as a
//! pair-level dedup gate
//! ([`er_loadbalance::compare::PairComparer::with_skip_pairs`]) on the
//! pass's comparer; gated pairs are counted under
//! [`er_loadbalance::compare::MULTIPASS_SKIPPED`], never re-scored.
//! Every pass runs as chained stages of **one** [`Workflow`], so the
//! whole multi-pass run reports a single rolled-up
//! [`WorkflowMetrics`].

use std::collections::BTreeSet;
use std::sync::Arc;

use er_core::result::MatchPair;
use er_core::sortkey::SortKeyFunction;
use er_core::MatchResult;
use er_loadbalance::compare::MULTIPASS_SKIPPED;
use er_loadbalance::{Ent, COMPARISONS};
use mr_engine::input::Partitions;
use mr_engine::metrics::JobMetrics;
use mr_engine::workflow::{StageGraph, Workflow, WorkflowMetrics};

use crate::driver::{run_sn_stages, sn_oracle};
use crate::sample::resolve_sort_key;
use crate::{NullKeyPolicy, SnConfig, SnError};

/// Everything a completed multi-pass SN run produces.
#[derive(Debug)]
pub struct MultiPassSnOutcome {
    /// The union of all passes' match results (deduplicated).
    pub result: MatchResult,
    /// Per-pass reports, in pass order.
    pub passes: Vec<SnPassReport>,
    /// Rolled-up metrics of the whole run — every pass's stages under
    /// one workflow.
    pub workflow: WorkflowMetrics,
}

impl MultiPassSnOutcome {
    /// Total pair evaluations across all passes — equals the size of
    /// the union of per-pass window pair sets (each unioned pair is
    /// compared exactly once globally).
    pub fn total_comparisons(&self) -> u64 {
        self.passes.iter().map(|p| p.comparisons).sum()
    }

    /// Total pairs the dedup gate suppressed (already compared by an
    /// earlier pass).
    pub fn total_skipped(&self) -> u64 {
        self.passes.iter().map(|p| p.skipped).sum()
    }
}

/// What one pass of a multi-pass run contributed.
#[derive(Debug)]
pub struct SnPassReport {
    /// Pairs this pass evaluated (its window pairs minus those an
    /// earlier pass already covered).
    pub comparisons: u64,
    /// Pairs the dedup gate suppressed in this pass.
    pub skipped: u64,
    /// Matches this pass added to the union.
    pub new_matches: u64,
    /// Metrics of the pass's distribution job.
    pub sample_metrics: JobMetrics,
    /// Metrics of the pass's window/matching job.
    pub match_metrics: JobMetrics,
    /// Metrics of the pass's stitch job (JobSN only, when boundaries
    /// had candidates).
    pub stitch_metrics: Option<JobMetrics>,
}

/// Products of the multi-pass stages executed inside a caller-owned
/// workflow — what [`run_multipass_sn_in`] produces and
/// [`run_multipass_sn`] (plus the facade crate's `Resolver`) wraps
/// into an outcome.
#[derive(Debug)]
pub struct MultiPassSnStages {
    /// The union of all passes' match results (deduplicated).
    pub result: MatchResult,
    /// Per-pass reports, in pass order.
    pub passes: Vec<SnPassReport>,
}

/// Executes multi-pass Sorted Neighborhood as stages of `workflow`:
/// one window workflow per sort key in `passes`, unioned with the
/// first-pass-wins dedup gate. `config.sort_key` is ignored — each
/// pass routes by its own key function; everything else (strategy,
/// window, partitions, matcher, null-key policy) applies to every
/// pass.
///
/// # Panics
/// If `passes` is empty.
pub fn run_multipass_sn_in(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    config: &SnConfig,
    passes: &[Arc<dyn SortKeyFunction>],
) -> Result<MultiPassSnStages, SnError> {
    use std::cell::RefCell;
    assert!(!passes.is_empty(), "multi-pass SN needs at least one pass");
    // Pass state threaded through the graph: the first-pass-wins
    // dedup gate's seen set, the unioned result, and the per-pass
    // reports. Each pass node reads and extends it; the sequential
    // dependency edges order the accesses.
    let state = RefCell::new((
        BTreeSet::<MatchPair>::new(),
        MatchResult::new(),
        Vec::with_capacity(passes.len()),
    ));
    // Every pass is its own `sample → match (→ stitch)` subgraph (see
    // `run_sn_stages`); the passes chain into one graph node each
    // because pass `i + 1`'s dedup gate needs pass `i`'s window pair
    // set — a true data dependency, expressed as a graph edge.
    let mut graph: StageGraph<'_, SnError> = StageGraph::new();
    let mut prev = None;
    for (i, sort_key) in passes.iter().enumerate() {
        let deps: Vec<_> = prev.into_iter().collect();
        let input = &input;
        let state = &state;
        prev = Some(graph.node(format!("pass-{i}"), &deps, move |wf| {
            let (seen, result, reports) = &mut *state.borrow_mut();
            let pass_config = config.clone().with_sort_key(Arc::clone(sort_key));
            let comparer = pass_config
                .comparer()
                .with_skip_pairs((!seen.is_empty()).then(|| Arc::new(seen.clone())));
            let stages = run_sn_stages(wf, input.clone(), &pass_config, comparer)?;
            let stitch_counter = |name: &str| {
                stages
                    .stitch_metrics
                    .as_ref()
                    .map(|m| m.counters.get(name))
                    .unwrap_or(0)
            };
            let comparisons =
                stages.match_metrics.counters.get(COMPARISONS) + stitch_counter(COMPARISONS);
            let skipped = stages.match_metrics.counters.get(MULTIPASS_SKIPPED)
                + stitch_counter(MULTIPASS_SKIPPED);
            let before = result.len();
            result.union(&stages.result);
            reports.push(SnPassReport {
                comparisons,
                skipped,
                new_matches: (result.len() - before) as u64,
                sample_metrics: stages.sample_metrics,
                match_metrics: stages.match_metrics,
                stitch_metrics: stages.stitch_metrics,
            });
            seen.extend(window_pair_set(
                input,
                sort_key.as_ref(),
                config.null_key_policy,
                config.window,
            ));
            Ok(())
        }));
    }
    graph.run(workflow)?;
    let (_, result, reports) = state.into_inner();
    Ok(MultiPassSnStages {
        result,
        passes: reports,
    })
}

/// Runs multi-pass Sorted Neighborhood: one window workflow per sort
/// key in `passes`, unioned with the first-pass-wins dedup gate.
///
/// # Deprecation path
///
/// A thin wrapper over [`run_multipass_sn_in`] on a transient per-run
/// [`Workflow`], kept for compatibility; new code should use the
/// facade crate's `Runtime` + `Resolver` with
/// `Scenario::SortedNeighborhood { passes, .. }`, which runs the
/// identical stages on a persistent worker pool.
///
/// # Panics
/// If `passes` is empty.
pub fn run_multipass_sn(
    input: Partitions<(), Ent>,
    config: &SnConfig,
    passes: &[Arc<dyn SortKeyFunction>],
) -> Result<MultiPassSnOutcome, SnError> {
    let mut workflow = Workflow::new(format!("sn-multipass-{}", config.strategy))
        .with_fault_policy(config.fault_policy())
        .with_fault_plan(config.fault_plan().clone());
    let stages = run_multipass_sn_in(&mut workflow, input, config, passes)?;
    Ok(MultiPassSnOutcome {
        result: stages.result,
        passes: stages.passes,
        workflow: workflow.finish(),
    })
}

/// The window pair set of one pass: every unordered pair within
/// `window − 1` positions of the pass's global sort order (stable
/// ties in `(input partition, record order)` — the same enumeration
/// the MR jobs and [`sn_oracle`] realize). This is what the dedup
/// gate of later passes is built from; it involves no similarity
/// evaluation.
pub fn window_pair_set(
    input: &Partitions<(), Ent>,
    sort_key: &dyn SortKeyFunction,
    policy: NullKeyPolicy,
    window: usize,
) -> BTreeSet<MatchPair> {
    let mut keyed: Vec<(er_core::sortkey::SortKey, &Ent)> = Vec::new();
    for partition in input {
        for ((), entity) in partition {
            if let Some(key) = resolve_sort_key(sort_key, policy, entity).routing_key() {
                keyed.push((key, entity));
            }
        }
    }
    keyed.sort_by(|a, b| a.0.cmp(&b.0)); // stable: ties keep input order
    let mut pairs = BTreeSet::new();
    for j in 0..keyed.len() {
        for i in j.saturating_sub(window - 1)..j {
            pairs.insert(MatchPair::new(
                keyed[i].1.entity_ref(),
                keyed[j].1.entity_ref(),
            ));
        }
    }
    pairs
}

/// Reference implementation: the union of the single-machine sliding
/// window oracle over every pass — the ground truth
/// [`run_multipass_sn`] must reproduce exactly.
pub fn multipass_sn_oracle(
    input: &Partitions<(), Ent>,
    config: &SnConfig,
    passes: &[Arc<dyn SortKeyFunction>],
) -> MatchResult {
    let mut result = MatchResult::new();
    for sort_key in passes {
        result.union(&sn_oracle(
            input,
            &config.clone().with_sort_key(Arc::clone(sort_key)),
        ));
    }
    result
}

/// The number of comparisons a multi-pass run must perform: the size
/// of the union of the per-pass window pair sets.
pub fn multipass_oracle_comparisons(
    input: &Partitions<(), Ent>,
    config: &SnConfig,
    passes: &[Arc<dyn SortKeyFunction>],
) -> u64 {
    let mut union = BTreeSet::new();
    for sort_key in passes {
        union.extend(window_pair_set(
            input,
            sort_key.as_ref(),
            config.null_key_policy,
            config.window,
        ));
    }
    union.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnStrategy;
    use er_core::sortkey::{AttributeSortKey, ReversedSortKey};
    use er_core::Entity;

    fn ent(id: u64, title: &str) -> ((), Ent) {
        ((), Arc::new(Entity::new(id, [("title", title)])))
    }

    fn passes() -> Vec<Arc<dyn SortKeyFunction>> {
        vec![
            Arc::new(AttributeSortKey::title()),
            Arc::new(ReversedSortKey::title()),
        ]
    }

    #[test]
    fn second_pass_recovers_a_prefix_divergent_duplicate() {
        // "xq..." and "zp..." share a long suffix: adjacent under the
        // reversed key, far apart under the forward key (w = 2 and the
        // interleaving non-duplicates keep them out of one window).
        let input = vec![vec![
            ent(0, "xq rocket skates xl"),
            ent(1, "zp rocket skates xl"),
            ent(2, "yy unrelated item aa"),
            ent(3, "ya other product bb"),
        ]];
        let config = SnConfig::new(SnStrategy::JobSn)
            .with_window(2)
            .with_partitions(2)
            .with_parallelism(1);
        let single = crate::run_sorted_neighborhood(
            input.clone(),
            &config
                .clone()
                .with_sort_key(Arc::new(AttributeSortKey::title())),
        )
        .unwrap();
        let pair = MatchPair::new(
            Entity::new(0, [("t", "")]).entity_ref(),
            Entity::new(1, [("t", "")]).entity_ref(),
        );
        assert!(
            !single.result.contains(&pair),
            "the forward pass alone must miss the suffix duplicate"
        );
        let multi = run_multipass_sn(input.clone(), &config, &passes()).unwrap();
        assert!(
            multi.result.contains(&pair),
            "the reversed pass must recover it"
        );
        assert_eq!(
            multi.result.pair_set(),
            multipass_sn_oracle(&input, &config, &passes()).pair_set()
        );
    }

    #[test]
    fn every_unioned_window_pair_is_compared_exactly_once() {
        let input = vec![vec![
            ent(0, "aa same thing"),
            ent(1, "ab same thing"),
            ent(2, "ba other thing"),
            ent(3, "bb other thing"),
            ent(4, "ca third thing"),
        ]];
        for strategy in [SnStrategy::JobSn, SnStrategy::RepSn] {
            let config = SnConfig::new(strategy)
                .with_window(3)
                .with_partitions(2)
                .with_parallelism(1);
            let outcome = run_multipass_sn(input.clone(), &config, &passes()).unwrap();
            assert_eq!(
                outcome.total_comparisons(),
                multipass_oracle_comparisons(&input, &config, &passes()),
                "{strategy}: union size"
            );
            // Overlapping window pairs exist (both passes cover the
            // adjacent same-suffix runs) and must be gated, not
            // re-evaluated.
            assert!(outcome.total_skipped() > 0, "{strategy}: gate engaged");
            assert_eq!(outcome.passes.len(), 2);
        }
    }

    #[test]
    fn one_pass_degenerates_to_plain_sorted_neighborhood() {
        let input = vec![vec![
            ent(0, "canon eos 5d mark iii"),
            ent(1, "canon eos 5d mark iri"),
            ent(2, "nikon d800 body only"),
        ]];
        let config = SnConfig::new(SnStrategy::RepSn)
            .with_window(2)
            .with_partitions(1)
            .with_parallelism(1);
        let single_key: Vec<Arc<dyn SortKeyFunction>> = vec![Arc::new(AttributeSortKey::title())];
        let multi = run_multipass_sn(input.clone(), &config, &single_key).unwrap();
        let plain = crate::run_sorted_neighborhood(input, &config).unwrap();
        assert_eq!(multi.result.pair_set(), plain.result.pair_set());
        assert_eq!(multi.total_comparisons(), plain.total_comparisons());
        assert_eq!(multi.total_skipped(), 0, "nothing to gate in one pass");
        assert_eq!(multi.passes[0].new_matches, multi.result.len() as u64);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let _ = run_multipass_sn(
            vec![vec![ent(0, "x")]],
            &SnConfig::new(SnStrategy::JobSn),
            &[],
        );
    }
}
