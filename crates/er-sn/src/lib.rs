//! # er-sn — Sorted Neighborhood blocking on MapReduce
//!
//! The second major ER workload class, alongside the disjoint-block
//! strategies of er-loadbalance: *Sorted Neighborhood* (Hernández &
//! Stolfo) derives a **sort key** per entity, totally orders the
//! dataset by it, and compares every pair within a sliding window of
//! size `w`. Mapped onto MapReduce following Kolb, Thor & Rahm's
//! *Parallel Sorted Neighborhood Blocking with MapReduce*:
//!
//! 1. **Distribution job** ([`sample`]) — derives and side-writes each
//!    entity's sort key (the annotated input of the matching job,
//!    mirroring the BDM job's `Π'ᵢ` pattern) and emits a *sampled*
//!    key histogram, from which the driver builds an order-preserving
//!    [`er_core::sortkey::RangePartitioner`].
//! 2. **Window job** — a composite-key mapper emits
//!    `(partition, sort key)` so each reduce task owns one contiguous
//!    key range, streamed by the engine's heap merge as one small
//!    group per distinct sort key (grouping == sorting — the range is
//!    never materialized); the reducer carries a `w`-sized ring
//!    buffer ([`window::WindowBuffer`]) *across* groups, so only
//!    `w − 1` entities plus the current key run are resident, scoring
//!    pairs through the prepared-entity path
//!    (`PairComparer` / `MatcherCache`).
//! 3. **Boundary handling**, one of two strategies
//!    ([`SnStrategy`]):
//!    * [`jobsn`] — **JobSN**: the window job publishes each range's
//!      first/last `w − 1` entities; a second, tiny MR job compares
//!      the pairs straddling range boundaries. Exact even for thin and
//!      empty ranges.
//!    * [`repsn`] — **RepSN**: the mapper replicates per-range tails
//!      to the successor range; the reducer primes its window with
//!      them and never compares replica × replica, keeping the output
//!      duplicate-free. One job, `(w − 1)·m` replicas per boundary,
//!      and a fill-level precondition the driver enforces.
//!
//! All drivers execute their stages through the shared
//! [`mr_engine::workflow::Workflow`] layer (identical-partitioning
//! invariant enforced, per-stage metrics rolled into a
//! `WorkflowMetrics`), and two scenario variants compose the same
//! stages: [`multipass`] — several sort keys (e.g. title and reversed
//! title), union of window pair sets, each pair compared exactly once
//! globally via a first-pass-wins dedup gate — and [`two_source`] —
//! R × S linkage over one interleaved order, evaluating cross-source
//! window pairs only.
//!
//! The determinism contract matches the rest of the workspace: the
//! match output is byte-identical at every parallelism and equal — as
//! a pair set, with exactly one comparison per window pair — to the
//! single-machine oracle [`driver::sn_oracle`], at every partition
//! count and under both strategies.

pub mod driver;
pub mod jobsn;
pub mod keys;
pub mod multipass;
pub mod repsn;
pub mod sample;
pub mod two_source;
pub mod window;

pub use driver::{
    oracle_comparisons, run_sn_stages, run_sorted_neighborhood, run_sorted_neighborhood_in,
    sn_oracle, NullKeyPolicy, SnConfig, SnError, SnOutcome, SnStages, SnStrategy,
};
pub use keys::{BoundaryKey, BoundarySide, SnEntity, SnKey};
pub use multipass::{
    multipass_oracle_comparisons, multipass_sn_oracle, run_multipass_sn, run_multipass_sn_in,
    window_pair_set, MultiPassSnOutcome, MultiPassSnStages, SnPassReport,
};
pub use sample::{resolve_sort_key, ResolvedKey};
pub use two_source::{
    run_two_source_sn, run_two_source_sn_in, two_source_input, two_source_oracle_comparisons,
    two_source_sn_oracle,
};
pub use window::WindowBuffer;

/// Counter: entities without a derivable sort key (routed by the
/// [`NullKeyPolicy`], never dropped silently).
pub const NULL_SORT_KEYS: &str = "er.sn.null_sort_keys";

/// Counter: boundary replicas shipped by RepSN's map phase.
pub const REPLICAS: &str = "er.sn.replicas";

/// Counter: original (non-replica) entities per key range, recorded by
/// the matching reducers — the fill levels RepSN's precondition and
/// the balance stats read.
pub const PARTITION_ENTITIES: &str = "er.sn.partition_entities";
