//! JobSN: boundary stitching via a second MR job.
//!
//! Strategy 1 of *Parallel Sorted Neighborhood Blocking with
//! MapReduce*: the window job slides the window inside each range
//! partition and additionally publishes each partition's first and
//! last `w − 1` entities as *boundary candidates*; a second, tiny MR
//! job then compares the candidate pairs that straddle partition
//! boundaries. No entity is replicated during the main job — the cost
//! is an extra (small) job.
//!
//! # Exactness with thin and empty partitions
//!
//! The paper assumes every partition holds at least `w` entities. This
//! implementation is exact without that assumption: a partition with
//! fewer than `w − 1` entities publishes *all* of them as both head
//! and tail candidates, and the driver assembles each boundary group
//! by walking right across as many partitions as the window reaches
//! ([`assemble_boundary_input`]). The left side of boundary `b` is
//! always the tail of partition `b` itself; a cross pair is compared
//! exactly at the boundary directly after its left entity's partition,
//! so no pair is compared twice even when a window spans several thin
//! partitions.

use std::sync::Arc;

use er_core::result::MatchPair;
use er_core::sortkey::{RangePartitioner, SortKey};
use er_core::MatcherCache;
use er_loadbalance::compare::{PairComparer, PreparedRef};
use er_loadbalance::Ent;
use mr_engine::prelude::*;

use crate::keys::{BoundaryKey, BoundarySide, SnEntity, SnKey};
use crate::window::WindowBuffer;
use crate::PARTITION_ENTITIES;

/// Map phase of the window job (shared verbatim with nothing — RepSN
/// has its own replicating mapper): route each annotated entity to its
/// key range.
#[derive(Clone)]
pub struct SnMapper {
    partitioner: Arc<RangePartitioner<SortKey>>,
}

impl SnMapper {
    /// Creates the mapper over sampled range boundaries.
    pub fn new(partitioner: Arc<RangePartitioner<SortKey>>) -> Self {
        Self { partitioner }
    }
}

impl Mapper for SnMapper {
    type KIn = SortKey;
    type VIn = Ent;
    type KOut = SnKey;
    type VOut = SnEntity;
    type Side = ();

    fn map(&mut self, key: &SortKey, entity: &Ent, ctx: &mut MapContext<SnKey, SnEntity, ()>) {
        let partition = self.partitioner.partition_of(key) as u32;
        ctx.emit(
            SnKey {
                partition,
                key: key.clone(),
            },
            SnEntity::original(Arc::clone(entity)),
        );
    }
}

/// One record of the window job's reduce output: either a found match
/// or a boundary candidate for the stitch job.
#[derive(Debug, Clone)]
pub enum WindowOut {
    /// A matched pair with its score.
    Match(MatchPair, f64),
    /// One of the first `min(w − 1, n)` entities of the partition,
    /// `dist` positions from its start (1-based).
    Head {
        /// The partition publishing the candidate.
        partition: u32,
        /// 1-based distance from the partition start.
        dist: u32,
        /// The candidate entity.
        entity: Ent,
    },
    /// One of the last `min(w − 1, n)` entities of the partition,
    /// `dist` positions from its end (1-based).
    Tail {
        /// The partition publishing the candidate.
        partition: u32,
        /// 1-based distance from the partition end.
        dist: u32,
        /// The candidate entity.
        entity: Ent,
    },
}

/// Reduce phase of the window job. A reduce task owns one range, but
/// grouping uses the full `(partition, key)` — the engine streams one
/// small group per distinct sort key out of the heap merge, so the
/// range is never materialized; the window ([`WindowBuffer`], held in
/// reducer state) slides *across* groups and only `w − 1` entities
/// plus the current key run are resident. Heads are published as the
/// first `w − 1` entities stream by; tails are read off the ring at
/// task end ([`Reducer::finish`]).
#[derive(Clone)]
pub struct WindowReducer {
    comparer: PairComparer,
    cache: MatcherCache,
    window: usize,
    /// Whether to publish head/tail candidates (false when the job
    /// runs with a single partition — there are no boundaries).
    emit_boundaries: bool,
    buffer: WindowBuffer,
    /// The range this task owns (learned from the first group).
    partition: Option<u32>,
    /// Entities streamed so far.
    seen: u64,
    /// Whether this task owns the first / last range — their heads /
    /// tails face no boundary and are never consumed, so they are not
    /// published.
    is_first: bool,
    is_last: bool,
}

impl WindowReducer {
    /// Creates the reducer.
    pub fn new(comparer: PairComparer, window: usize, emit_boundaries: bool) -> Self {
        let cache = comparer.new_cache();
        let buffer = WindowBuffer::new(window);
        Self {
            comparer,
            cache,
            window,
            emit_boundaries,
            buffer,
            partition: None,
            seen: 0,
            is_first: false,
            is_last: false,
        }
    }
}

impl Reducer for WindowReducer {
    type KIn = SnKey;
    type VIn = SnEntity;
    type KOut = ();
    type VOut = WindowOut;

    fn setup(&mut self, info: &ReduceTaskInfo) {
        // Tasks clone a fresh reducer from the prototype; the explicit
        // reset just makes the streaming state impossible to misuse.
        self.buffer.clear();
        self.partition = None;
        self.seen = 0;
        // Task index == partition index (the partitioner is `p % r`
        // with p < r).
        self.is_first = info.task_index == 0;
        self.is_last = info.task_index + 1 == info.num_reduce_tasks;
    }

    fn reduce(
        &mut self,
        group: Group<'_, SnKey, SnEntity>,
        ctx: &mut ReduceContext<(), WindowOut>,
    ) {
        let partition = group.key().partition;
        debug_assert!(
            self.partition.is_none_or(|p| p == partition),
            "a reduce task owns exactly one range"
        );
        self.partition = Some(partition);
        let fringe = (self.window - 1) as u64;
        for value in group.values() {
            debug_assert!(!value.replica, "JobSN never replicates");
            // Heads face the boundary to the *left*, which the first
            // range does not have.
            if self.emit_boundaries && !self.is_first && self.seen < fringe {
                ctx.emit(
                    (),
                    WindowOut::Head {
                        partition,
                        dist: (self.seen + 1) as u32,
                        entity: Arc::clone(value.entity()),
                    },
                );
            }
            self.seen += 1;
            self.buffer.advance(
                &self.comparer,
                &mut self.cache,
                &value.keyed,
                ctx,
                |ctx, pair, score| {
                    ctx.emit((), WindowOut::Match(pair, score));
                },
            );
        }
    }

    fn finish(&mut self, ctx: &mut ReduceContext<(), WindowOut>) {
        let Some(partition) = self.partition else {
            return; // the range was empty
        };
        ctx.add_counter(PARTITION_ENTITIES, self.seen);
        // Tails face the boundary to the *right*, which the last
        // range does not have.
        if !self.emit_boundaries || self.is_last {
            return;
        }
        // The ring holds exactly the last min(w − 1, n) entities,
        // oldest first.
        let tail_len = self.buffer.len() as u32;
        for (i, keyed) in self.buffer.entries().enumerate() {
            ctx.emit(
                (),
                WindowOut::Tail {
                    partition,
                    dist: tail_len - i as u32,
                    entity: Arc::clone(&keyed.entity),
                },
            );
        }
    }
}

/// Builds the JobSN window job (`r` = number of range partitions).
/// Sorting *and grouping* use the full `(partition, key)`: the
/// reduce-side merge then streams per-key groups while the reducer
/// carries the window across them.
pub fn window_job(
    partitioner: Arc<RangePartitioner<SortKey>>,
    comparer: PairComparer,
    window: usize,
    partitions: usize,
    parallelism: usize,
) -> Job<SnMapper, WindowReducer> {
    let emit_boundaries = partitions > 1;
    Job::builder(
        "sn-jobsn-window",
        SnMapper::new(partitioner),
        WindowReducer::new(comparer, window, emit_boundaries),
    )
    .reduce_tasks(partitions)
    .parallelism(parallelism)
    .partitioner(SnKey::partitioner())
    .build()
}

/// Head/tail candidates and sizes of every partition, split out of the
/// window job's output by [`split_window_output`].
#[derive(Debug, Default)]
pub struct BoundaryCandidates {
    /// Per partition: `(dist-from-start, entity)`, ascending by dist.
    pub heads: Vec<Vec<(u32, Ent)>>,
    /// Per partition: `(dist-from-end, entity)`, ascending by dist.
    pub tails: Vec<Vec<(u32, Ent)>>,
    /// Per partition: number of entities it holds.
    pub lens: Vec<u64>,
}

/// Splits the window job's reduce outputs into the match result and
/// the per-partition boundary candidates.
pub fn split_window_output(
    reduce_outputs: Vec<Vec<((), WindowOut)>>,
    partitions: usize,
    lens: Vec<u64>,
) -> (er_core::MatchResult, BoundaryCandidates) {
    let mut result = er_core::MatchResult::new();
    let mut candidates = BoundaryCandidates {
        heads: vec![Vec::new(); partitions],
        tails: vec![Vec::new(); partitions],
        lens,
    };
    for record in reduce_outputs.into_iter().flatten() {
        match record.1 {
            WindowOut::Match(pair, score) => {
                result.insert(pair, score);
            }
            WindowOut::Head {
                partition,
                dist,
                entity,
            } => candidates.heads[partition as usize].push((dist, entity)),
            WindowOut::Tail {
                partition,
                dist,
                entity,
            } => candidates.tails[partition as usize].push((dist, entity)),
        }
    }
    for side in candidates
        .heads
        .iter_mut()
        .chain(candidates.tails.iter_mut())
    {
        side.sort_by_key(|(dist, _)| *dist);
    }
    (result, candidates)
}

/// Assembles the stitch job's input: one input partition per boundary
/// that has candidates on both sides.
///
/// For boundary `b` (the gap after partition `b`) the left side is the
/// tail of partition `b`; the right side walks partitions `b+1, b+2,
/// …` accumulating heads until the window range `w − 1` is exhausted —
/// which is what keeps the stitch exact across thin and empty
/// partitions.
pub fn assemble_boundary_input(
    candidates: &BoundaryCandidates,
    window: usize,
) -> Partitions<BoundaryKey, SnEntity> {
    let partitions = candidates.lens.len();
    let reach = (window - 1) as u64;
    let mut input = Vec::new();
    for b in 0..partitions.saturating_sub(1) {
        let mut records: Vec<(BoundaryKey, SnEntity)> = Vec::new();
        for &(dist, ref entity) in &candidates.tails[b] {
            debug_assert!(u64::from(dist) <= reach);
            records.push((
                BoundaryKey {
                    boundary: b as u32,
                    side: BoundarySide::Left,
                    dist,
                },
                SnEntity::original(Arc::clone(entity)),
            ));
        }
        if records.is_empty() {
            continue;
        }
        let mut rights = 0usize;
        let mut base = 0u64; // entities between boundary b and partition q
        for q in (b + 1)..partitions {
            for &(dist, ref entity) in &candidates.heads[q] {
                let global = base + u64::from(dist);
                if global > reach {
                    break;
                }
                records.push((
                    BoundaryKey {
                        boundary: b as u32,
                        side: BoundarySide::Right,
                        dist: global as u32,
                    },
                    SnEntity::original(Arc::clone(entity)),
                ));
                rights += 1;
            }
            base += candidates.lens[q];
            if base >= reach {
                break;
            }
        }
        if rights > 0 {
            input.push(records);
        }
    }
    input
}

/// Reduce phase of the stitch job: one group per boundary; buffer the
/// left side (sorted ascending by distance), stream the right side and
/// compare every pair within `dl + dr ≤ w`.
#[derive(Clone)]
pub struct StitchReducer {
    comparer: PairComparer,
    cache: MatcherCache,
    window: usize,
}

impl StitchReducer {
    /// Creates the reducer.
    pub fn new(comparer: PairComparer, window: usize) -> Self {
        let cache = comparer.new_cache();
        Self {
            comparer,
            cache,
            window,
        }
    }
}

impl Reducer for StitchReducer {
    type KIn = BoundaryKey;
    type VIn = SnEntity;
    type KOut = MatchPair;
    type VOut = f64;

    fn reduce(
        &mut self,
        group: Group<'_, BoundaryKey, SnEntity>,
        ctx: &mut ReduceContext<MatchPair, f64>,
    ) {
        let w = self.window as u32;
        let mut lefts: Vec<(u32, PreparedRef<'_>)> = Vec::new();
        for (key, value) in group.iter() {
            let prepared = self.comparer.prepare_cached(&mut self.cache, &value.keyed);
            match key.side {
                BoundarySide::Left => lefts.push((key.dist, prepared)),
                BoundarySide::Right => {
                    // Lefts arrive ascending by dist, so the window
                    // condition fails monotonically.
                    for (dl, left) in &lefts {
                        if dl + key.dist > w {
                            break;
                        }
                        self.comparer.compare_prepared(
                            &self.cache,
                            left,
                            &prepared,
                            &er_core::blocking::BlockKey::bottom(),
                            ctx,
                        );
                    }
                }
            }
        }
    }
}

/// Pass-through mapper of the stitch job (the driver pre-assembles the
/// candidate records; the job exists to shuffle them per boundary).
#[derive(Clone, Default)]
pub struct BoundaryMapper;

impl Mapper for BoundaryMapper {
    type KIn = BoundaryKey;
    type VIn = SnEntity;
    type KOut = BoundaryKey;
    type VOut = SnEntity;
    type Side = ();

    fn map(
        &mut self,
        key: &BoundaryKey,
        value: &SnEntity,
        ctx: &mut MapContext<BoundaryKey, SnEntity, ()>,
    ) {
        ctx.emit(*key, value.clone());
    }
}

/// Builds the stitch job over `boundaries` reduce tasks.
pub fn stitch_job(
    comparer: PairComparer,
    window: usize,
    boundaries: usize,
    parallelism: usize,
) -> Job<BoundaryMapper, StitchReducer> {
    Job::builder(
        "sn-jobsn-stitch",
        BoundaryMapper,
        StitchReducer::new(comparer, window),
    )
    .reduce_tasks(boundaries.max(1))
    .parallelism(parallelism)
    .partitioner(BoundaryKey::partitioner())
    .group_by(BoundaryKey::group_cmp())
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{Entity, Matcher};

    fn ent(id: u64, title: &str) -> Ent {
        Arc::new(Entity::new(id, [("title", title)]))
    }

    fn candidates(lens: &[u64], window: usize) -> BoundaryCandidates {
        // Synthesizes heads/tails for partitions of the given sizes
        // with entity ids encoding (partition, position).
        let fringe = window - 1;
        let mut c = BoundaryCandidates {
            heads: vec![Vec::new(); lens.len()],
            tails: vec![Vec::new(); lens.len()],
            lens: lens.to_vec(),
        };
        for (p, &len) in lens.iter().enumerate() {
            let take = fringe.min(len as usize);
            for d in 1..=take {
                let head_id = (p * 100 + d - 1) as u64;
                let tail_id = (p * 100 + len as usize - d) as u64;
                c.heads[p].push((d as u32, ent(head_id, "t")));
                c.tails[p].push((d as u32, ent(tail_id, "t")));
            }
        }
        c
    }

    #[test]
    fn assembly_pairs_tails_with_next_partition_heads() {
        let c = candidates(&[5, 5], 3);
        let input = assemble_boundary_input(&c, 3);
        assert_eq!(input.len(), 1, "one boundary");
        let keys: Vec<String> = input[0].iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["0.L1", "0.L2", "0.R1", "0.R2"]);
    }

    #[test]
    fn assembly_walks_across_thin_partitions() {
        // Partition 1 holds a single entity; with w = 4 the right side
        // of boundary 0 must reach into partition 2.
        let c = candidates(&[5, 1, 5], 4);
        let input = assemble_boundary_input(&c, 4);
        assert_eq!(input.len(), 2);
        let right_keys: Vec<String> = input[0]
            .iter()
            .filter(|(k, _)| k.side == BoundarySide::Right)
            .map(|(k, _)| k.to_string())
            .collect();
        // Partition 1 contributes dist 1; partition 2's heads land at
        // global dists 2 and 3.
        assert_eq!(right_keys, vec!["0.R1", "0.R2", "0.R3"]);
    }

    #[test]
    fn assembly_skips_boundaries_without_both_sides() {
        // Trailing empty partition: boundary 1 has no right side.
        let c = candidates(&[3, 3, 0], 3);
        let input = assemble_boundary_input(&c, 3);
        assert_eq!(input.len(), 1);
        assert_eq!(input[0][0].0.boundary, 0);
    }

    #[test]
    fn assembly_crosses_empty_interior_partitions() {
        // Middle partition empty: boundary 0's right side comes from
        // partition 2 at unchanged global distances; boundary 1 has no
        // left side (empty tail) and is skipped — its pairs are
        // boundary 0's.
        let c = candidates(&[4, 0, 4], 3);
        let input = assemble_boundary_input(&c, 3);
        assert_eq!(input.len(), 1);
        let keys: Vec<String> = input[0].iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["0.L1", "0.L2", "0.R1", "0.R2"]);
    }

    #[test]
    fn stitch_reducer_compares_only_within_the_window() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut reducer = StitchReducer::new(comparer, 3);
        let entries = vec![
            (
                BoundaryKey {
                    boundary: 0,
                    side: BoundarySide::Left,
                    dist: 1,
                },
                SnEntity::original(ent(1, "abcdefghij")),
            ),
            (
                BoundaryKey {
                    boundary: 0,
                    side: BoundarySide::Left,
                    dist: 2,
                },
                SnEntity::original(ent(2, "abcdefghij")),
            ),
            (
                BoundaryKey {
                    boundary: 0,
                    side: BoundarySide::Right,
                    dist: 1,
                },
                SnEntity::original(ent(3, "abcdefghij")),
            ),
            (
                BoundaryKey {
                    boundary: 0,
                    side: BoundarySide::Right,
                    dist: 2,
                },
                SnEntity::original(ent(4, "abcdefghij")),
            ),
        ];
        let mut ctx = ReduceContext::for_testing(ReduceTaskInfo {
            task_index: 0,
            num_reduce_tasks: 1,
            num_map_tasks: 1,
        });
        reducer.reduce(Group::for_testing(&entries), &mut ctx);
        // w = 3: pairs (L1,R1), (L1,R2), (L2,R1) qualify; (L2,R2) has
        // dl + dr = 4 > 3.
        assert_eq!(ctx.counters().get(er_loadbalance::COMPARISONS), 3);
        assert_eq!(ctx.output().len(), 3, "identical titles all match");
    }

    #[test]
    fn outer_partitions_publish_no_unconsumed_candidates() {
        // The first range has no left boundary (no heads), the last
        // no right boundary (no tails) — those candidates would never
        // be consumed by assemble_boundary_input.
        for (task_index, expect_heads, expect_tails) in [(0usize, 0usize, 2usize), (1, 2, 0)] {
            let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
            let mut reducer = WindowReducer::new(comparer, 4, true);
            let info = ReduceTaskInfo {
                task_index,
                num_reduce_tasks: 2,
                num_map_tasks: 1,
            };
            let mut ctx = ReduceContext::for_testing(info);
            reducer.setup(&info);
            let entries = vec![(
                SnKey {
                    partition: task_index as u32,
                    key: SortKey::new("a"),
                },
                SnEntity::original(ent(1, "aa")),
            )];
            let more = vec![(
                SnKey {
                    partition: task_index as u32,
                    key: SortKey::new("b"),
                },
                SnEntity::original(ent(2, "bb")),
            )];
            reducer.reduce(Group::for_testing(&entries), &mut ctx);
            reducer.reduce(Group::for_testing(&more), &mut ctx);
            reducer.finish(&mut ctx);
            let heads = ctx
                .output()
                .iter()
                .filter(|(_, v)| matches!(v, WindowOut::Head { .. }))
                .count();
            let tails = ctx
                .output()
                .iter()
                .filter(|(_, v)| matches!(v, WindowOut::Tail { .. }))
                .count();
            assert_eq!(heads, expect_heads, "task {task_index} heads");
            assert_eq!(tails, expect_tails, "task {task_index} tails");
        }
    }

    #[test]
    fn window_reducer_streams_per_key_groups_and_publishes_thin_partitions() {
        let comparer = PairComparer::new(Arc::new(Matcher::paper_default()));
        let mut reducer = WindowReducer::new(comparer, 4, true);
        let key = |k: &str| SnKey {
            partition: 2,
            key: SortKey::new(k),
        };
        let info = ReduceTaskInfo {
            task_index: 2,
            num_reduce_tasks: 4,
            num_map_tasks: 1,
        };
        let mut ctx = ReduceContext::for_testing(info);
        reducer.setup(&info);
        // The engine delivers one group per distinct sort key; the
        // window must carry across them.
        let first = vec![(key("a"), SnEntity::original(ent(1, "same title")))];
        let second = vec![(key("b"), SnEntity::original(ent(2, "same title")))];
        reducer.reduce(Group::for_testing(&first), &mut ctx);
        reducer.reduce(Group::for_testing(&second), &mut ctx);
        reducer.finish(&mut ctx);
        let matches = ctx
            .output()
            .iter()
            .filter(|(_, v)| matches!(v, WindowOut::Match { .. }))
            .count();
        let heads = ctx
            .output()
            .iter()
            .filter(|(_, v)| matches!(v, WindowOut::Head { .. }))
            .count();
        let tails = ctx
            .output()
            .iter()
            .filter(|(_, v)| matches!(v, WindowOut::Tail { .. }))
            .count();
        assert_eq!(matches, 1, "the cross-group pair is compared");
        assert_eq!(heads, 2, "n < w - 1: every entity is a head");
        assert_eq!(tails, 2, "and a tail");
        assert_eq!(ctx.counters().get(PARTITION_ENTITIES), 2);
    }
}
