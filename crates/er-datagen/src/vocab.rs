//! Embedded vocabulary for plausible-looking synthetic records.
//!
//! Block identity is controlled by deterministic 3-letter prefixes
//! ([`block_prefix`]); vocabulary words only fill out the rest of the
//! titles so that similarity computation operates on realistic string
//! lengths and alphabets.

/// Product category nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "camera",
    "lens",
    "printer",
    "laptop",
    "monitor",
    "keyboard",
    "router",
    "speaker",
    "headphones",
    "tablet",
    "charger",
    "battery",
    "tripod",
    "flash",
    "projector",
    "scanner",
    "microphone",
    "webcam",
    "dock",
    "adapter",
    "enclosure",
    "drive",
    "memory",
    "case",
    "backpack",
    "mouse",
    "display",
    "receiver",
    "amplifier",
    "turntable",
    "console",
    "drone",
];

/// Product qualifier words.
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "pro", "max", "ultra", "mini", "plus", "lite", "air", "neo", "prime", "elite", "sport",
    "studio", "compact", "wireless", "digital", "smart", "portable", "classic", "advanced",
    "premium",
];

/// Academic title words for publication records.
pub const ACADEMIC_WORDS: &[&str] = &[
    "analysis",
    "approach",
    "algorithm",
    "adaptive",
    "framework",
    "distributed",
    "parallel",
    "efficient",
    "scalable",
    "query",
    "processing",
    "optimization",
    "learning",
    "model",
    "system",
    "network",
    "database",
    "index",
    "storage",
    "memory",
    "cache",
    "transaction",
    "stream",
    "graph",
    "cluster",
    "partition",
    "schema",
    "integration",
    "resolution",
    "entity",
    "matching",
    "similarity",
    "join",
    "aggregation",
    "sampling",
    "estimation",
    "evaluation",
    "benchmark",
    "workload",
    "skew",
    "balancing",
    "mapreduce",
    "cloud",
    "replication",
    "consistency",
    "recovery",
    "concurrency",
    "locking",
    "logging",
    "compression",
];

/// Publication venue names.
pub const VENUES: &[&str] = &[
    "ICDE", "SIGMOD", "VLDB", "EDBT", "CIKM", "KDD", "ICDM", "WWW", "SOCC", "OSDI", "NSDI",
    "EuroSys", "ATC", "CIDR", "DASFAA",
];

/// Author surnames.
pub const SURNAMES: &[&str] = &[
    "Smith", "Mueller", "Chen", "Kumar", "Garcia", "Kim", "Olsen", "Rossi", "Novak", "Silva",
    "Tanaka", "Ivanov", "Kowalski", "Andersen", "Dubois", "Haas", "Weber", "Schmidt", "Lang",
    "Becker", "Vogel", "Koch", "Wolf", "Krause", "Peters",
];

const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "q", "r", "s", "t", "v", "w", "x",
    "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "y"];

/// Deterministic, pairwise-distinct, plausible 3-letter block prefix
/// for block index `k` (consonant-vowel-consonant, e.g. "bab", "bac").
///
/// Capacity: 20 · 6 · 20 = 2 400 distinct prefixes; beyond that a
/// numeric suffix keeps prefixes distinct but 4+ letters long (still a
/// valid blocking key, just not colliding with the CVC space).
pub fn block_prefix(k: usize) -> String {
    let capacity = ONSETS.len() * VOWELS.len() * ONSETS.len();
    if k < capacity {
        let onset = ONSETS[k / (VOWELS.len() * ONSETS.len())];
        let vowel = VOWELS[(k / ONSETS.len()) % VOWELS.len()];
        let coda = ONSETS[k % ONSETS.len()];
        format!("{onset}{vowel}{coda}")
    } else {
        format!("zz{}", k - capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn prefixes_are_distinct() {
        let n = 3000;
        let set: HashSet<String> = (0..n).map(block_prefix).collect();
        assert_eq!(set.len(), n);
    }

    #[test]
    fn cvc_prefixes_are_three_letters() {
        for k in 0..2400 {
            let p = block_prefix(k);
            assert_eq!(p.chars().count(), 3, "prefix {p} for k={k}");
            assert!(p.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn prefix_is_deterministic() {
        assert_eq!(block_prefix(17), block_prefix(17));
        assert_ne!(block_prefix(17), block_prefix(18));
    }

    #[test]
    fn vocab_lists_are_nonempty_and_lowercase_where_expected() {
        assert!(PRODUCT_NOUNS.len() >= 30);
        assert!(ACADEMIC_WORDS.len() >= 40);
        assert!(PRODUCT_NOUNS
            .iter()
            .all(|w| w.chars().all(|c| c.is_ascii_lowercase())));
    }
}
