//! Duplicate injection: edit-perturbed copies plus the code machinery
//! that keeps *non*-duplicates reliably below the match threshold.
//!
//! ## Why titles carry a Reed-Solomon codeword
//!
//! The evaluation matcher is normalized edit distance with threshold
//! 0.8. For the gold standard to be trustworthy, two *distinct*
//! originals must never accidentally land above the threshold, while a
//! perturbed duplicate must stay above it. We make that a property of
//! the generator, not luck: every original title embeds a codeword of
//! a Reed-Solomon code over GF(29) with minimum Hamming distance
//! `n − k + 1`. Any two distinct originals then differ in at least
//! `d_min` positions, and with titles capped at 29 characters and
//! substitution-only (length-preserving) duplicate perturbation, the
//! verified Levenshtein floor of 8 keeps every non-duplicate pair at
//! similarity ≤ ~0.79 — strictly below the 0.8 threshold — while a
//! one-edit duplicate stays at ≥ 0.95. Property tests verify the
//! realized Levenshtein margins (edit distance can undercut Hamming
//! distance via shifts; the tests confirm the margin holds for the
//! generated code).

use rand::rngs::SmallRng;
use rand::Rng;

/// Alphabet for code symbols: 29 characters (26 letters + 3 digits
/// that cannot be confused with letters).
const SYMBOLS: &[u8; 29] = b"abcdefghijklmnopqrstuvwxyz234";

/// Code length (positions) and message length (symbols).
pub const CODE_N: usize = 13;
/// Message symbols; capacity = 29^4 = 707 281 codewords.
pub const CODE_K: usize = 4;
/// Minimum pairwise Hamming distance: `n − k + 1`.
pub const CODE_DISTANCE: usize = CODE_N - CODE_K + 1;

/// Maximum index encodable by the code.
pub fn code_capacity() -> usize {
    29usize.pow(CODE_K as u32)
}

/// Per-position salt: breaks *shift self-similarity*. A plain RS code
/// guarantees Hamming distance, but low-degree codewords are smooth
/// sequences (e.g. message `(1,1,0,0)` encodes to `b c d e …`), and a
/// one-symbol shift of a smooth sequence aligns almost perfectly —
/// Levenshtein distance 2 despite Hamming distance 12. Adding a fixed
/// pseudo-random offset per position destroys that smoothness; the
/// index is additionally passed through a multiplicative bijection so
/// consecutive ordinals map to unrelated messages. The realized
/// Levenshtein margins are verified exhaustively over adjacent indexes
/// in the tests below and by dataset-level brute-force tests.
const POSITION_SALT: [u64; CODE_N] = [7, 1, 19, 4, 25, 11, 0, 16, 9, 22, 13, 5, 27];

/// Multiplier coprime to 29⁴ (mixing bijection on the index space).
const INDEX_MIX: u64 = 654_323;

/// Salted Reed-Solomon codeword for `index`: the (mixed) message
/// digits are the coefficients of a degree-<k polynomial over GF(29),
/// evaluated at points 0..n, plus a per-position salt.
///
/// # Panics
/// If `index >= code_capacity()`.
pub fn rs_code(index: usize) -> String {
    let capacity = code_capacity() as u64;
    assert!(
        (index as u64) < capacity,
        "index {index} exceeds code capacity {capacity}"
    );
    let mixed = (index as u64).wrapping_mul(INDEX_MIX) % capacity;
    let mut digits = [0u64; CODE_K];
    let mut rest = mixed;
    for d in digits.iter_mut() {
        *d = rest % 29;
        rest /= 29;
    }
    let mut out = String::with_capacity(CODE_N);
    for (i, &salt) in POSITION_SALT.iter().enumerate() {
        // Horner evaluation of m(x) at x = i, mod 29.
        let mut acc = 0u64;
        for &d in digits.iter().rev() {
            acc = (acc * i as u64 + d) % 29;
        }
        out.push(SYMBOLS[((acc + salt) % 29) as usize] as char);
    }
    out
}

/// Which edit operations a perturbation may apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOps {
    /// Substitutions only — length-preserving. The dataset builders
    /// use this: keeping duplicate titles at the original length is
    /// part of the similarity-margin argument (a longer title dilutes
    /// the normalized distance of *other* pairs toward the threshold).
    SubstituteOnly,
    /// Substitutions, deletions and insertions.
    All,
}

/// Applies up to `max_edits` random character edits to `title`, never
/// touching the first `protected_prefix` characters so the perturbed
/// copy keeps its blocking key.
///
/// Returns the perturbed string and the number of edits applied
/// (at least 1 whenever the unprotected part is non-empty).
pub fn perturb_title(
    rng: &mut SmallRng,
    title: &str,
    max_edits: usize,
    protected_prefix: usize,
    ops: EditOps,
) -> (String, usize) {
    let mut chars: Vec<char> = title.chars().collect();
    if chars.len() <= protected_prefix || max_edits == 0 {
        return (title.to_string(), 0);
    }
    let edits = rng.gen_range(1..=max_edits);
    let mut applied = 0;
    for _ in 0..edits {
        if chars.len() <= protected_prefix {
            break;
        }
        let pos = rng.gen_range(protected_prefix..chars.len());
        let op = match ops {
            EditOps::SubstituteOnly => 0u8,
            EditOps::All => rng.gen_range(0..3u8),
        };
        match op {
            0 => {
                // Substitution with a different letter.
                let old = chars[pos];
                let mut new = SYMBOLS[rng.gen_range(0..29)] as char;
                if new == old {
                    new = if old == 'q' { 'j' } else { 'q' };
                }
                chars[pos] = new;
            }
            1 => {
                chars.remove(pos);
            }
            _ => {
                let c = SYMBOLS[rng.gen_range(0..29)] as char;
                chars.insert(pos, c);
            }
        }
        applied += 1;
    }
    (chars.into_iter().collect(), applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;
    use er_core::similarity::levenshtein_distance;
    use proptest::prelude::*;

    #[test]
    fn codewords_have_fixed_length_and_alphabet() {
        for idx in [0usize, 1, 28, 29, 1000, code_capacity() - 1] {
            let c = rs_code(idx);
            assert_eq!(c.len(), CODE_N);
            assert!(c.bytes().all(|b| SYMBOLS.contains(&b)));
        }
    }

    #[test]
    fn distinct_indexes_give_distinct_codewords() {
        let a = rs_code(123);
        let b = rs_code(124);
        assert_ne!(a, b);
        assert_eq!(rs_code(123), rs_code(123));
    }

    #[test]
    fn hamming_distance_meets_design_minimum() {
        // Exhaustive over a structured sample: consecutive indexes,
        // same-digit variations, random pairs. The mixing bijection
        // and salt shift symbols but never reduce Hamming distance
        // (both are applied identically per position).
        let idxs: Vec<usize> = (0..200)
            .chain((0..200).map(|i| i * 29))
            .chain((0..200).map(|i| i * 997 % code_capacity()))
            .collect();
        for (i, &a) in idxs.iter().enumerate() {
            for &b in &idxs[i + 1..] {
                if a == b {
                    continue;
                }
                let ca: Vec<u8> = rs_code(a).into_bytes();
                let cb: Vec<u8> = rs_code(b).into_bytes();
                let hamming = ca.iter().zip(&cb).filter(|(x, y)| x != y).count();
                assert!(
                    hamming >= CODE_DISTANCE,
                    "codewords {a},{b} at Hamming distance {hamming}"
                );
            }
        }
    }

    #[test]
    fn levenshtein_margin_holds_for_adjacent_indexes() {
        // The regression that motivated the salt: before salting,
        // indexes 30 and 31 encoded to "bcdefghijklm"/"cdefghijklmn" —
        // Levenshtein distance 2. Adjacent ordinals are exactly what
        // blocks contain, so check a dense run exhaustively.
        let mut min_seen = usize::MAX;
        let codes: Vec<String> = (0..600).map(rs_code).collect();
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                min_seen = min_seen.min(levenshtein_distance(a, b));
            }
        }
        assert!(
            min_seen >= CODE_DISTANCE - 2,
            "observed Levenshtein minimum {min_seen} over adjacent indexes"
        );
    }

    #[test]
    fn levenshtein_margin_holds_for_scattered_indexes() {
        let idxs: Vec<usize> = (0..150).map(|i| i * 7919 % code_capacity()).collect();
        let mut min_seen = usize::MAX;
        for (i, &a) in idxs.iter().enumerate() {
            for &b in &idxs[i + 1..] {
                if a == b {
                    continue;
                }
                min_seen = min_seen.min(levenshtein_distance(&rs_code(a), &rs_code(b)));
            }
        }
        assert!(
            min_seen >= CODE_DISTANCE - 2,
            "observed Levenshtein minimum {min_seen}"
        );
    }

    #[test]
    fn perturbation_respects_protected_prefix() {
        let mut r = rng(7);
        for _ in 0..200 {
            let (p, edits) = perturb_title(&mut r, "abc defghijklm", 2, 3, EditOps::All);
            assert_eq!(&p[..3], "abc", "prefix must survive perturbation");
            assert!((1..=2).contains(&edits));
        }
    }

    #[test]
    fn perturbation_of_protected_only_string_is_identity() {
        let mut r = rng(7);
        let (p, edits) = perturb_title(&mut r, "abc", 2, 3, EditOps::All);
        assert_eq!(p, "abc");
        assert_eq!(edits, 0);
    }

    proptest! {
        #[test]
        fn perturbation_stays_within_edit_budget(seed in 0u64..1000, max_edits in 1usize..4) {
            let mut r = rng(seed);
            let title = "xyz 0123456789abcdefgh";
            let (p, applied) = perturb_title(&mut r, title, max_edits, 3, EditOps::All);
            let d = levenshtein_distance(title, &p);
            prop_assert!(d <= applied, "distance {} exceeds applied edits {}", d, applied);
            prop_assert!(applied <= max_edits);
        }
    }

    #[test]
    fn substitute_only_preserves_length() {
        let mut r = rng(3);
        for _ in 0..100 {
            let title = "xyz 0123456789abcdefgh";
            let (p, _) = perturb_title(&mut r, title, 2, 3, EditOps::SubstituteOnly);
            assert_eq!(p.chars().count(), title.chars().count());
        }
    }

    #[test]
    #[should_panic(expected = "exceeds code capacity")]
    fn over_capacity_index_panics() {
        let _ = rs_code(code_capacity());
    }
}
