//! # er-datagen — deterministic synthetic ER workloads
//!
//! The paper evaluates on two real-world datasets we cannot ship:
//! DS1 (~114 000 product descriptions) and DS2 (~1.4 M CiteSeerX
//! publication records), blocked on the first three letters of the
//! title. Load-balancing behaviour depends only on the *block size
//! distribution* (and entity count), so this crate generates datasets
//! that reproduce the distributional facts the paper reports:
//!
//! * DS1-like: the largest block carries **more than 70 % of all
//!   pairs** (paper §VI-B);
//! * DS2-like: an order of magnitude more entities, with a total pair
//!   count ~2 000× DS1's (paper §VI-C compares average comparisons per
//!   reduce task);
//! * §VI-A robustness workloads: `b = 100` blocks whose sizes follow
//!   `|Φ_k| ∝ e^(−s·k)` for a skew factor `s ≥ 0`.
//!
//! Generators also inject known duplicates (edit-perturbed copies) so
//! match quality can be evaluated against a [`er_core::GoldStandard`].
//! Everything is seeded and reproducible.

pub mod dataset;
pub mod duplicates;
pub mod io;
pub mod products;
pub mod publications;
pub mod rng;
pub mod skew;
pub mod vocab;

pub use dataset::{BlockStats, Dataset};
pub use products::{ds1_spec, generate_products};
pub use publications::{ds2_spec, generate_publications};
pub use skew::{exponential_block_sizes, exponential_dataset, zipf_block_sizes};

/// Parameters for the skew-shaped dataset generators.
///
/// The block layout is: one *dominant* block holding
/// `dominant_share · n_entities` entities, with the remaining entities
/// spread over `n_blocks − 1` tail blocks whose sizes follow a Zipf
/// law with exponent `zipf_exponent`. A `dup_rate` fraction of each
/// block's entities are injected duplicates of other entities in the
/// same block (recorded in the gold standard).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Total number of entities to generate.
    pub n_entities: usize,
    /// Number of distinct blocks (3-letter prefixes).
    pub n_blocks: usize,
    /// Fraction of entities in the single largest block.
    pub dominant_share: f64,
    /// Zipf exponent shaping the tail blocks.
    pub zipf_exponent: f64,
    /// Fraction of entities that are injected duplicates.
    pub dup_rate: f64,
    /// RNG seed; equal specs generate identical datasets.
    pub seed: u64,
}

impl DatasetSpec {
    /// Scales the entity count by `factor` (shape-preserving); used to
    /// run paper-shaped experiments at laptop scale.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.n_entities = ((self.n_entities as f64 * factor).round() as usize).max(4);
        // Keep at least a handful of blocks; shrink the block count
        // sub-linearly so per-block sizes stay meaningful.
        let block_factor = factor.sqrt();
        self.n_blocks = ((self.n_blocks as f64 * block_factor).round() as usize).max(4);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_preserves_shape_parameters() {
        let spec = ds1_spec(42).scaled(0.1);
        assert_eq!(spec.n_entities, 11_400);
        assert!(spec.n_blocks >= 4);
        assert_eq!(spec.dominant_share, ds1_spec(42).dominant_share);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ds1_spec(1).scaled(0.0);
    }
}
