//! DS1-like generator: product descriptions.
//!
//! The paper's DS1 holds ~114 000 product descriptions blocked on the
//! first three title letters, with the largest block contributing more
//! than 70 % of all comparison pairs (§VI-B). The default spec below
//! reproduces those facts (verified by tests and `fig08_datasets`).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dataset::{build_skewed, Dataset, RecordStyle};
use crate::vocab::{PRODUCT_NOUNS, PRODUCT_QUALIFIERS};
use crate::DatasetSpec;

/// The DS1-like default: 114 000 products, one dominant 3-letter
/// prefix holding 9 % of the entities — which, over the flat Zipf-0.5
/// tail, contributes >90 % of all pairs at full scale and >70 % at
/// every bench scale (the paper reports >70 % for DS1) — plus 5 %
/// injected duplicates.
pub fn ds1_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        n_entities: 114_000,
        n_blocks: 3_000,
        dominant_share: 0.09,
        zipf_exponent: 0.5,
        dup_rate: 0.05,
        seed,
    }
}

struct ProductStyle;

impl RecordStyle for ProductStyle {
    fn title(&self, prefix: &str, code: &str, ordinal: usize) -> String {
        // Short pools only: the 29-character title cap keeps the
        // duplicate/non-duplicate similarity margins provable.
        let quals: Vec<&str> = PRODUCT_QUALIFIERS
            .iter()
            .copied()
            .filter(|q| q.len() <= 5)
            .collect();
        let nouns: Vec<&str> = PRODUCT_NOUNS
            .iter()
            .copied()
            .filter(|n| n.len() <= 6)
            .collect();
        let q = quals[ordinal % quals.len()];
        let n = nouns[(ordinal / quals.len()) % nouns.len()];
        format!("{prefix}{q} {code} {n}")
    }

    fn extra_attributes(&self, rng: &mut SmallRng) -> Vec<(String, String)> {
        vec![
            (
                "price".to_string(),
                format!("{}.99", rng.gen_range(5..2000)),
            ),
            (
                "sku".to_string(),
                format!("SKU-{:07}", rng.gen_range(0..10_000_000)),
            ),
        ]
    }
}

/// Generates a DS1-like product dataset.
pub fn generate_products(spec: &DatasetSpec) -> Dataset {
    build_skewed(spec, "DS1-like products", &ProductStyle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::BlockStats;
    use er_core::blocking::PrefixBlocking;
    use er_core::Matcher;

    #[test]
    fn scaled_ds1_reproduces_figure8_facts() {
        // 5% scale keeps the test fast; shares are scale-invariant.
        let ds = generate_products(&ds1_spec(3).scaled(0.05));
        let stats = BlockStats::compute(&ds.entities, &PrefixBlocking::title3());
        assert!(
            stats.largest_pair_share() > 0.70,
            "paper: largest block >70% of pairs; got {:.3}",
            stats.largest_pair_share()
        );
        assert!(stats.n_blocks > 50);
        assert_eq!(stats.n_null_key, 0);
    }

    #[test]
    fn titles_satisfy_length_cap() {
        let ds = generate_products(&ds1_spec(3).scaled(0.01));
        for e in &ds.entities {
            let t = e.get("title").unwrap();
            assert!(
                t.chars().count() <= 29,
                "title exceeds margin cap: {t:?} ({})",
                t.chars().count()
            );
        }
    }

    #[test]
    fn gold_pairs_share_a_block_and_match() {
        let ds = generate_products(&ds1_spec(5).scaled(0.01));
        let blocking = PrefixBlocking::title3();
        let matcher = Matcher::paper_default();
        use er_core::blocking::BlockingFunction;
        let by_ref: std::collections::BTreeMap<_, _> =
            ds.entities.iter().map(|e| (e.entity_ref(), e)).collect();
        for pair in ds.gold.iter() {
            let a = by_ref[&pair.lo()];
            let b = by_ref[&pair.hi()];
            assert_eq!(
                blocking.key(a),
                blocking.key(b),
                "duplicates must stay in one block (prefix-protected perturbation)"
            );
            assert!(
                matcher.matches(a, b).is_some(),
                "gold pair must pass the 0.8 threshold: {:?} vs {:?}",
                a.get("title"),
                b.get("title")
            );
        }
    }

    #[test]
    fn matcher_finds_exactly_the_gold_pairs_within_blocks() {
        // The distance-margin design guarantees zero false positives:
        // brute-force every within-block pair of a small dataset.
        let ds = generate_products(&ds1_spec(7).scaled(0.004));
        let blocking = PrefixBlocking::title3();
        let matcher = Matcher::paper_default();
        use er_core::blocking::BlockingFunction;
        let mut blocks: std::collections::BTreeMap<_, Vec<&er_core::Entity>> = Default::default();
        for e in &ds.entities {
            blocks.entry(blocking.key(e).unwrap()).or_default().push(e);
        }
        let mut found = Vec::new();
        for members in blocks.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if matcher.matches(members[i], members[j]).is_some() {
                        found.push(er_core::result::MatchPair::new(
                            members[i].entity_ref(),
                            members[j].entity_ref(),
                        ));
                    }
                }
            }
        }
        let found_set: std::collections::BTreeSet<_> = found.into_iter().collect();
        let gold_set: std::collections::BTreeSet<_> = ds.gold.iter().collect();
        assert_eq!(
            found_set, gold_set,
            "matches within blocks must be exactly the injected duplicates"
        );
    }
}
