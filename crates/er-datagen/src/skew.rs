//! Block size distributions: the paper's §VI-A exponential family and
//! a Zipf family for tails and ablations.

use er_core::{Entity, GoldStandard};
use rand::seq::SliceRandom;

use crate::dataset::Dataset;
use crate::duplicates::rs_code;
use crate::rng::stream_rng;
use crate::vocab::block_prefix;

/// Apportions `total` into `weights.len()` integer parts proportional
/// to `weights` (largest-remainder method). Parts may be zero; the
/// result always sums to `total`.
pub fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one weight");
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must sum to a positive value");
    let mut sizes: Vec<usize> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, w) in weights.iter().enumerate() {
        let exact = total as f64 * w / wsum;
        let floor = exact.floor() as usize;
        sizes.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    // Distribute the residue to the largest remainders (ties broken by
    // index for determinism).
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take(total - assigned) {
        sizes[i] += 1;
    }
    sizes
}

/// §VI-A block sizes: `|Φ_k| ∝ e^(−s·k)` for `k = 0..b`, summing to
/// `n_entities`. `s = 0` gives the uniform distribution; larger `s`
/// concentrates entities in the first blocks.
pub fn exponential_block_sizes(n_entities: usize, b: usize, s: f64) -> Vec<usize> {
    assert!(b > 0, "need at least one block");
    assert!(s >= 0.0, "skew factor must be non-negative");
    let weights: Vec<f64> = (0..b).map(|k| (-s * k as f64).exp()).collect();
    apportion(n_entities, &weights)
}

/// Zipf block sizes: `|Φ_k| ∝ (k+1)^(−e)`.
pub fn zipf_block_sizes(n_entities: usize, b: usize, exponent: f64) -> Vec<usize> {
    assert!(b > 0, "need at least one block");
    let weights: Vec<f64> = (0..b).map(|k| ((k + 1) as f64).powf(-exponent)).collect();
    apportion(n_entities, &weights)
}

/// Generates the §VI-A robustness dataset: `n_entities` entities over
/// `b` blocks with exponential skew `s`, shuffled into arbitrary
/// order. No duplicates are injected (the robustness experiment
/// measures *time per pair*, not match quality), so every title embeds
/// a distinct codeword.
pub fn exponential_dataset(n_entities: usize, b: usize, s: f64, seed: u64) -> Dataset {
    let sizes = exponential_block_sizes(n_entities, b, s);
    let mut entities: Vec<Entity> = Vec::with_capacity(n_entities);
    let mut id = 0u64;
    for (k, &size) in sizes.iter().enumerate() {
        let prefix = block_prefix(k);
        for j in 0..size {
            let title = format!(
                "{prefix} {}",
                rs_code(j % crate::duplicates::code_capacity())
            );
            entities.push(Entity::new(id, [("title", title.as_str())]));
            id += 1;
        }
    }
    let mut order_rng = stream_rng(seed, 0xE0);
    entities.shuffle(&mut order_rng);
    Dataset {
        name: format!("exp(b={b}, s={s})"),
        entities,
        gold: GoldStandard::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::blocking::{BlockingFunction, PrefixBlocking};

    #[test]
    fn apportion_sums_to_total() {
        for total in [0usize, 1, 7, 100, 12345] {
            let sizes = apportion(total, &[3.0, 1.0, 1.0, 0.5]);
            assert_eq!(sizes.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn apportion_is_proportional() {
        let sizes = apportion(100, &[3.0, 1.0, 1.0]);
        assert_eq!(sizes, vec![60, 20, 20]);
    }

    #[test]
    fn uniform_when_s_zero() {
        let sizes = exponential_block_sizes(1000, 100, 0.0);
        assert!(sizes.iter().all(|&s| s == 10));
    }

    #[test]
    fn skew_concentrates_in_first_block() {
        let sizes = exponential_block_sizes(10_000, 100, 1.0);
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
        // With s=1, block 0 holds (1 - e^-1) ≈ 63% of the mass.
        assert!(sizes[0] > 6_000 && sizes[0] < 6_700, "got {}", sizes[0]);
        assert!(sizes[0] > sizes[1]);
        assert!(sizes[1] > sizes[2]);
    }

    #[test]
    fn skew_increases_pair_count() {
        // The paper's example: 25+25 entities -> 600 pairs; 45+5 ->
        // 1000 pairs. Generally more skew at fixed n means more pairs.
        let pairs = |sizes: &[usize]| -> u64 {
            sizes
                .iter()
                .map(|&s| er_core::pairs::triangle_pairs(s as u64))
                .sum()
        };
        let p0 = pairs(&exponential_block_sizes(5_000, 100, 0.0));
        let p05 = pairs(&exponential_block_sizes(5_000, 100, 0.5));
        let p1 = pairs(&exponential_block_sizes(5_000, 100, 1.0));
        assert!(p0 < p05 && p05 < p1, "{p0} {p05} {p1}");
    }

    #[test]
    fn dataset_blocks_match_requested_sizes() {
        let ds = exponential_dataset(500, 10, 0.8, 42);
        assert_eq!(ds.entities.len(), 500);
        let blocking = PrefixBlocking::title3();
        let mut counts = std::collections::BTreeMap::new();
        for e in &ds.entities {
            let k = blocking.key(e).expect("all entities have keys");
            *counts.entry(k.as_str().to_string()).or_insert(0usize) += 1;
        }
        let expected = exponential_block_sizes(500, 10, 0.8);
        for (k, &size) in expected.iter().enumerate() {
            if size == 0 {
                continue;
            }
            assert_eq!(counts.get(&block_prefix(k)).copied().unwrap_or(0), size);
        }
    }

    #[test]
    fn dataset_is_deterministic_per_seed() {
        let a = exponential_dataset(200, 20, 0.5, 7);
        let b = exponential_dataset(200, 20, 0.5, 7);
        let c = exponential_dataset(200, 20, 0.5, 8);
        assert_eq!(a.entities, b.entities);
        assert_ne!(a.entities, c.entities, "different seed, different order");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_skew_rejected() {
        let _ = exponential_block_sizes(10, 5, -1.0);
    }
}
