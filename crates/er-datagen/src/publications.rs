//! DS2-like generator: publication records.
//!
//! The paper's DS2 holds ~1.4 M CiteSeerX publication records — an
//! order of magnitude more entities than DS1 and, crucially for the
//! scalability experiment, a total comparison count ~2 000× DS1's
//! ("the average number of comparisons [per reduce task] is more than
//! 2,000 times higher than for DS1", §VI-C). A dominant share of 28 %
//! on 1.4 M entities yields ≈ 7.7·10¹⁰ dominant-block pairs versus
//! DS1's ≈ 5.3·10⁷ total — landing the ratio in the right regime.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dataset::{build_skewed, Dataset, RecordStyle};
use crate::vocab::{ACADEMIC_WORDS, SURNAMES, VENUES};
use crate::DatasetSpec;

/// The DS2-like default: 1.4 M publications, dominant prefix with 28 %
/// of the entities, flat Zipf tail over 9 000 blocks.
pub fn ds2_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        n_entities: 1_400_000,
        n_blocks: 9_000,
        dominant_share: 0.28,
        zipf_exponent: 0.5,
        dup_rate: 0.05,
        seed,
    }
}

struct PublicationStyle;

impl RecordStyle for PublicationStyle {
    fn title(&self, prefix: &str, code: &str, ordinal: usize) -> String {
        let words: Vec<&str> = ACADEMIC_WORDS
            .iter()
            .copied()
            .filter(|w| w.len() <= 5)
            .collect();
        let w = words[ordinal % words.len()];
        format!("{prefix}{w} {code} study")
    }

    fn extra_attributes(&self, rng: &mut SmallRng) -> Vec<(String, String)> {
        let a1 = SURNAMES[rng.gen_range(0..SURNAMES.len())];
        let a2 = SURNAMES[rng.gen_range(0..SURNAMES.len())];
        vec![
            ("authors".to_string(), format!("{a1}, {a2}")),
            (
                "venue".to_string(),
                VENUES[rng.gen_range(0..VENUES.len())].to_string(),
            ),
            ("year".to_string(), format!("{}", rng.gen_range(1995..2012))),
        ]
    }
}

/// Generates a DS2-like publication dataset.
pub fn generate_publications(spec: &DatasetSpec) -> Dataset {
    build_skewed(spec, "DS2-like publications", &PublicationStyle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{block_sizes, BlockStats};
    use er_core::blocking::PrefixBlocking;
    use er_core::pairs::triangle_pairs;

    #[test]
    fn scaled_ds2_has_publication_attributes() {
        let ds = generate_publications(&ds2_spec(1).scaled(0.001));
        let e = &ds.entities[0];
        assert!(e.get("title").is_some());
        assert!(e.get("authors").is_some());
        assert!(e.get("venue").is_some());
        assert!(e.get("year").is_some());
    }

    #[test]
    fn titles_satisfy_length_cap() {
        let ds = generate_publications(&ds2_spec(1).scaled(0.001));
        for e in &ds.entities {
            let t = e.get("title").unwrap();
            assert!(t.chars().count() <= 29, "title too long: {t:?}");
        }
    }

    #[test]
    fn full_scale_pair_ratio_lands_near_2000x() {
        // Computed from block sizes alone — no entity materialization.
        let pair_total = |spec: &DatasetSpec| -> f64 {
            block_sizes(spec)
                .iter()
                .map(|&s| triangle_pairs(s as u64) as f64)
                .sum()
        };
        let p1 = pair_total(&crate::products::ds1_spec(0));
        let p2 = pair_total(&ds2_spec(0));
        let ratio = p2 / p1;
        assert!(
            (500.0..10_000.0).contains(&ratio),
            "DS2/DS1 pair ratio {ratio:.0} outside the paper's ~2000x regime"
        );
    }

    #[test]
    fn scaled_ds2_block_distribution_is_skewed() {
        let ds = generate_publications(&ds2_spec(2).scaled(0.002));
        let stats = BlockStats::compute(&ds.entities, &PrefixBlocking::title3());
        assert!(stats.largest_entity_share() > 0.2);
        assert!(stats.largest_pair_share() > 0.7);
    }
}
