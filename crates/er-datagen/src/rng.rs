//! Seeded RNG plumbing.
//!
//! Every generator takes a `u64` seed and derives independent streams
//! with [`derive()`], so adding a new random decision to one generator
//! never perturbs the others (a property the regression tests rely on).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives an independent stream seed from a base seed and a stream
/// tag (splitmix64 finalizer — full-period, well mixed).
pub fn derive(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seeded RNG for dataset generation.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// RNG for a derived stream.
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    rng(derive(seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive(1, 2), derive(1, 2));
        assert_ne!(derive(1, 2), derive(1, 3));
        assert_ne!(derive(1, 2), derive(2, 2));
    }

    #[test]
    fn rngs_reproduce_sequences() {
        let a: Vec<u32> = (0..8)
            .map({
                let mut r = rng(99);
                move |_| r.gen()
            })
            .collect();
        let b: Vec<u32> = (0..8)
            .map({
                let mut r = rng(99);
                move |_| r.gen()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ() {
        let mut r1 = stream_rng(5, 0);
        let mut r2 = stream_rng(5, 1);
        let v1: u64 = r1.gen();
        let v2: u64 = r2.gen();
        assert_ne!(v1, v2);
    }
}
