//! Datasets, the shared skew-shaped builder, and block statistics.

use std::collections::BTreeMap;

use er_core::blocking::{BlockKey, BlockingFunction};
use er_core::pairs::triangle_pairs;
use er_core::result::{GoldStandard, MatchPair};
use er_core::Entity;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::duplicates::{code_capacity, perturb_title, rs_code, EditOps};
use crate::rng::stream_rng;
use crate::skew::zipf_block_sizes;
use crate::vocab::block_prefix;
use crate::DatasetSpec;

/// A generated dataset: entities (in arbitrary order) plus the gold
/// standard of injected duplicates.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name for reports.
    pub name: String,
    /// Entities in generation-shuffled ("arbitrary") order.
    pub entities: Vec<Entity>,
    /// True duplicate pairs.
    pub gold: GoldStandard,
}

impl Dataset {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// A copy whose entities are sorted by an attribute — the paper's
    /// Figure 11 "sorted by title" adversarial input for BlockSplit.
    pub fn sorted_by_attribute(&self, attribute: &str) -> Dataset {
        let mut entities = self.entities.clone();
        entities.sort_by(|a, b| {
            a.get(attribute)
                .unwrap_or("")
                .cmp(b.get(attribute).unwrap_or(""))
        });
        Dataset {
            name: format!("{} [sorted by {attribute}]", self.name),
            entities,
            gold: self.gold.clone(),
        }
    }
}

/// How titles (and extra attributes) are rendered; the distribution
/// machinery is shared between the product and publication generators.
pub(crate) trait RecordStyle {
    /// Renders the title for an original entity. `prefix` is the
    /// 3-letter blocking prefix, `code` the distance-guaranteeing
    /// codeword, `ordinal` the original's index within its block.
    fn title(&self, prefix: &str, code: &str, ordinal: usize) -> String;

    /// Extra (non-matched) attributes for flavour.
    fn extra_attributes(&self, rng: &mut rand::rngs::SmallRng) -> Vec<(String, String)>;
}

/// Maximum edits applied to a duplicate's title. One edit keeps a
/// provable margin between duplicates (similarity ≥ ~0.96) and
/// distinct originals (≤ ~0.79 given the code distance and the ≤29
/// character title cap enforced by [`build_skewed`]).
pub(crate) const DUP_MAX_EDITS: usize = 1;

/// Builds a dataset from a [`DatasetSpec`]: one dominant block plus a
/// Zipf tail, duplicates injected per block, order shuffled.
pub(crate) fn build_skewed(spec: &DatasetSpec, name: &str, style: &dyn RecordStyle) -> Dataset {
    let sizes = block_sizes(spec);
    let mut entities: Vec<Entity> = Vec::with_capacity(spec.n_entities);
    let mut gold_pairs: Vec<MatchPair> = Vec::new();
    let mut title_rng = stream_rng(spec.seed, 0xA11);
    let mut attr_rng = stream_rng(spec.seed, 0xA22);
    let mut id = 0u64;
    for (k, &size) in sizes.iter().enumerate() {
        if size == 0 {
            continue;
        }
        let prefix = block_prefix(k);
        let dups = ((size as f64) * spec.dup_rate).floor() as usize;
        let dups = dups.min(size.saturating_sub(1));
        let originals = size - dups;
        // Originals: code index == ordinal within the block.
        let mut original_slots: Vec<(u64, String)> = Vec::with_capacity(originals);
        for j in 0..originals {
            let code = rs_code(j % code_capacity());
            let title = style.title(&prefix, &code, j);
            debug_assert!(
                title.chars().count() <= 29,
                "title too long for the distance guarantee: {title:?}"
            );
            let mut attrs = vec![("title".to_string(), title.clone())];
            attrs.extend(style.extra_attributes(&mut attr_rng));
            entities.push(Entity::new(
                id,
                attrs.iter().map(|(k, v)| (k.as_str(), v.as_str())),
            ));
            original_slots.push((id, title));
            id += 1;
        }
        // Duplicates: perturbed copies of a random original of this
        // block; gold closure covers dup-original and dup-dup pairs.
        let mut dups_of: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for _ in 0..dups {
            let target = title_rng.gen_range(0..original_slots.len());
            let (orig_id, orig_title) = &original_slots[target];
            let (dup_title, _) = perturb_title(
                &mut title_rng,
                orig_title,
                DUP_MAX_EDITS,
                3,
                EditOps::SubstituteOnly,
            );
            let mut attrs = vec![("title".to_string(), dup_title)];
            attrs.extend(style.extra_attributes(&mut attr_rng));
            entities.push(Entity::new(
                id,
                attrs.iter().map(|(k, v)| (k.as_str(), v.as_str())),
            ));
            let dup_ref = entities.last().unwrap().entity_ref();
            let orig_ref = entities[*orig_id as usize].entity_ref();
            gold_pairs.push(MatchPair::new(dup_ref, orig_ref));
            let siblings = dups_of.entry(target).or_default();
            for &sib in siblings.iter() {
                let sib_ref = entities[sib as usize].entity_ref();
                gold_pairs.push(MatchPair::new(dup_ref, sib_ref));
            }
            siblings.push(id);
            id += 1;
        }
    }
    let mut order_rng = stream_rng(spec.seed, 0xA33);
    entities.shuffle(&mut order_rng);
    Dataset {
        name: name.to_string(),
        entities,
        gold: GoldStandard::from_pairs(gold_pairs),
    }
}

/// The block sizes a spec induces: dominant block first, Zipf tail.
pub fn block_sizes(spec: &DatasetSpec) -> Vec<usize> {
    assert!(spec.n_blocks >= 1);
    assert!((0.0..1.0).contains(&spec.dominant_share));
    let dominant = ((spec.n_entities as f64) * spec.dominant_share).round() as usize;
    let dominant = dominant.min(spec.n_entities);
    if spec.n_blocks == 1 {
        return vec![spec.n_entities];
    }
    let tail = zipf_block_sizes(
        spec.n_entities - dominant,
        spec.n_blocks - 1,
        spec.zipf_exponent,
    );
    let mut sizes = Vec::with_capacity(spec.n_blocks);
    sizes.push(dominant);
    sizes.extend(tail);
    sizes
}

/// The blocking-key sequence a spec induces, in the same (shuffled)
/// order as the full dataset — but without materializing titles or
/// entities. This powers paper-scale workload analysis (1.4 M keys
/// instead of 1.4 M entities).
pub fn key_sequence(spec: &DatasetSpec) -> Vec<BlockKey> {
    let sizes = block_sizes(spec);
    let mut keys: Vec<BlockKey> = Vec::with_capacity(spec.n_entities);
    for (k, &size) in sizes.iter().enumerate() {
        if size == 0 {
            continue;
        }
        let key = BlockKey::new(block_prefix(k));
        keys.extend(std::iter::repeat_with(|| key.clone()).take(size));
    }
    let mut order_rng = stream_rng(spec.seed, 0xA33);
    keys.shuffle(&mut order_rng);
    keys
}

/// Block-distribution statistics of a dataset under a blocking
/// function (the numbers of the paper's Figure 8).
#[derive(Debug, Clone)]
pub struct BlockStats {
    /// Entities with a valid blocking key.
    pub n_entities: usize,
    /// Entities without a blocking key.
    pub n_null_key: usize,
    /// Number of distinct blocks.
    pub n_blocks: usize,
    /// Entities in the largest block.
    pub largest_block: usize,
    /// Comparison pairs in the largest block.
    pub largest_block_pairs: u64,
    /// Total comparison pairs over all blocks.
    pub total_pairs: u64,
}

impl BlockStats {
    /// Computes stats for `entities` under `blocking`.
    pub fn compute(entities: &[Entity], blocking: &dyn BlockingFunction) -> Self {
        let mut counts: BTreeMap<BlockKey, usize> = BTreeMap::new();
        let mut null_key = 0usize;
        for e in entities {
            match blocking.key(e) {
                Some(k) => *counts.entry(k).or_insert(0) += 1,
                None => null_key += 1,
            }
        }
        let largest = counts.values().copied().max().unwrap_or(0);
        let total_pairs: u64 = counts.values().map(|&c| triangle_pairs(c as u64)).sum();
        BlockStats {
            n_entities: entities.len() - null_key,
            n_null_key: null_key,
            n_blocks: counts.len(),
            largest_block: largest,
            largest_block_pairs: triangle_pairs(largest as u64),
            total_pairs,
        }
    }

    /// Share of entities in the largest block.
    pub fn largest_entity_share(&self) -> f64 {
        if self.n_entities == 0 {
            0.0
        } else {
            self.largest_block as f64 / self.n_entities as f64
        }
    }

    /// Share of comparison pairs contributed by the largest block —
    /// the paper reports >70 % for DS1.
    pub fn largest_pair_share(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.largest_block_pairs as f64 / self.total_pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::blocking::PrefixBlocking;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            n_entities: 400,
            n_blocks: 12,
            dominant_share: 0.3,
            zipf_exponent: 1.0,
            dup_rate: 0.1,
            seed: 11,
        }
    }

    struct PlainStyle;
    impl RecordStyle for PlainStyle {
        fn title(&self, prefix: &str, code: &str, _ordinal: usize) -> String {
            format!("{prefix} {code}")
        }
        fn extra_attributes(&self, _rng: &mut rand::rngs::SmallRng) -> Vec<(String, String)> {
            vec![]
        }
    }

    #[test]
    fn builder_produces_requested_count_and_gold() {
        let ds = build_skewed(&tiny_spec(), "tiny", &PlainStyle);
        assert_eq!(ds.len(), 400);
        assert!(!ds.gold.is_empty(), "dup_rate 0.1 must inject duplicates");
    }

    #[test]
    fn builder_is_deterministic() {
        let a = build_skewed(&tiny_spec(), "tiny", &PlainStyle);
        let b = build_skewed(&tiny_spec(), "tiny", &PlainStyle);
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.gold.len(), b.gold.len());
    }

    #[test]
    fn key_sequence_matches_full_dataset_layout() {
        let spec = tiny_spec();
        let ds = build_skewed(&spec, "tiny", &PlainStyle);
        let keys = key_sequence(&spec);
        assert_eq!(keys.len(), ds.len());
        let blocking = PrefixBlocking::title3();
        for (e, k) in ds.entities.iter().zip(keys.iter()) {
            assert_eq!(
                blocking.key(e).unwrap(),
                *k,
                "key sequence must mirror the dataset's shuffled layout"
            );
        }
    }

    #[test]
    fn block_stats_of_dominant_layout() {
        let spec = tiny_spec();
        let ds = build_skewed(&spec, "tiny", &PlainStyle);
        let stats = BlockStats::compute(&ds.entities, &PrefixBlocking::title3());
        assert_eq!(stats.n_entities, 400);
        assert_eq!(stats.n_null_key, 0);
        assert_eq!(stats.largest_block, 120, "dominant share 0.3 of 400");
        assert!(stats.largest_pair_share() > 0.5);
        assert!(stats.n_blocks <= spec.n_blocks);
    }

    #[test]
    fn sorted_copy_orders_by_title() {
        let ds = build_skewed(&tiny_spec(), "tiny", &PlainStyle);
        let sorted = ds.sorted_by_attribute("title");
        assert_eq!(sorted.len(), ds.len());
        let titles: Vec<&str> = sorted
            .entities
            .iter()
            .map(|e| e.get("title").unwrap())
            .collect();
        let mut expected = titles.clone();
        expected.sort();
        assert_eq!(titles, expected);
        assert!(sorted.name.contains("sorted"));
    }

    #[test]
    fn stats_handle_null_keys() {
        let mut entities = vec![Entity::new(0, [("title", "abc thing")])];
        entities.push(Entity::new(1, [("brand", "no title")]));
        let stats = BlockStats::compute(&entities, &PrefixBlocking::title3());
        assert_eq!(stats.n_entities, 1);
        assert_eq!(stats.n_null_key, 1);
        assert_eq!(stats.total_pairs, 0);
        assert_eq!(stats.largest_pair_share(), 0.0);
    }
}
