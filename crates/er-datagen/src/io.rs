//! Dataset persistence: entities via `er_core::io` TSV plus a gold
//! standard sidecar, so generated workloads can be saved once and
//! reused across runs (or swapped for real data with known truth).

use std::io::{self, BufRead, Write};

use er_core::entity::{EntityId, EntityRef, SourceId};
use er_core::result::{GoldStandard, MatchPair};

use crate::dataset::Dataset;

/// Writes a dataset: the entity TSV followed by a `#GOLD` section of
/// `source,id,source,id` match pairs.
pub fn write_dataset<W: Write>(mut w: W, dataset: &Dataset) -> io::Result<()> {
    writeln!(w, "#NAME\t{}", dataset.name.replace(['\t', '\n'], " "))?;
    er_core::io::write_entities(&mut w, &dataset.entities)?;
    writeln!(w, "#GOLD")?;
    for pair in dataset.gold.iter() {
        writeln!(
            w,
            "{}\t{}\t{}\t{}",
            pair.lo().source.0,
            pair.lo().id.0,
            pair.hi().source.0,
            pair.hi().id.0
        )?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset`].
pub fn read_dataset<R: BufRead>(r: R) -> io::Result<Dataset> {
    let mut lines = r.lines();
    let name_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty dataset file"))??;
    let name = name_line
        .strip_prefix("#NAME\t")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing #NAME header"))?
        .to_string();
    // Split remaining lines at the #GOLD marker.
    let mut entity_lines: Vec<String> = Vec::new();
    let mut gold_lines: Vec<String> = Vec::new();
    let mut in_gold = false;
    for line in lines {
        let line = line?;
        if line == "#GOLD" {
            in_gold = true;
            continue;
        }
        if in_gold {
            gold_lines.push(line);
        } else {
            entity_lines.push(line);
        }
    }
    if !in_gold {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "missing #GOLD section",
        ));
    }
    let entity_blob = entity_lines.join("\n");
    let entities = er_core::io::read_entities(io::BufReader::new(entity_blob.as_bytes()))?;
    let mut gold_pairs = Vec::new();
    for (i, line) in gold_lines.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("gold line {}: expected 4 fields", i + 1),
            ));
        }
        let parse = |s: &str| -> io::Result<u64> {
            s.parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad gold id"))
        };
        let lo = EntityRef {
            source: SourceId(parse(fields[0])? as u8),
            id: EntityId(parse(fields[1])?),
        };
        let hi = EntityRef {
            source: SourceId(parse(fields[2])? as u8),
            id: EntityId(parse(fields[3])?),
        };
        gold_pairs.push(MatchPair::new(lo, hi));
    }
    Ok(Dataset {
        name,
        entities,
        gold: GoldStandard::from_pairs(gold_pairs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ds1_spec, generate_products};

    #[test]
    fn dataset_round_trip_preserves_everything_relevant() {
        let ds = generate_products(&ds1_spec(17).scaled(0.003));
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds).unwrap();
        let back = read_dataset(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.len(), ds.len());
        // Gold pairs identical.
        let a: Vec<MatchPair> = ds.gold.iter().collect();
        let b: Vec<MatchPair> = back.gold.iter().collect();
        assert_eq!(a, b);
        // Titles (the matched attribute) survive byte-exactly in order.
        for (x, y) in ds.entities.iter().zip(&back.entities) {
            assert_eq!(x.entity_ref(), y.entity_ref());
            assert_eq!(x.get("title"), y.get("title"));
        }
    }

    #[test]
    fn missing_gold_section_is_an_error() {
        let err = read_dataset(io::BufReader::new(&b"#NAME\tx\nsource\tid\n"[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_name_is_an_error() {
        let err = read_dataset(io::BufReader::new(&b"source\tid\n#GOLD\n"[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_gold_is_fine() {
        let ds = crate::skew::exponential_dataset(20, 4, 0.5, 3);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds).unwrap();
        let back = read_dataset(io::BufReader::new(&buf[..])).unwrap();
        assert!(back.gold.is_empty());
        assert_eq!(back.len(), 20);
    }
}
