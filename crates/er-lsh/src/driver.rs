//! The adaptive LSH workflow: signature/BDM rounds over a
//! `(bands, rows)` ladder, then one load-balanced candidate job.
//!
//! Each round runs only the *signature job* — the BDM job under
//! [`LshBlocking`] — which is cheap (linear in the input) and yields
//! the exact enumerated candidate workload of that rung's banded key
//! space: `Σ_buckets C(|bucket|, 2)` for dedup,
//! `Σ_buckets |R| · |S|` for linkage. The first rung whose workload
//! fits the candidate budget is accepted (every rung also reports the
//! banding S-curve estimate of its recall at the target similarity);
//! with no budget the widest rung wins immediately, and if no rung
//! fits, the tightest runs as best effort. Only the accepted rung
//! pays for the matching job.
//!
//! The candidate job is the paper's load-balanced matching job over
//! the accepted BDM: BlockSplit splits oversized band buckets into
//! balanced sub-tasks, PairRange ranges over the global pair
//! enumeration, Basic hashes bucket keys. In every case the comparers'
//! smallest-common-block gate makes cross-band dedup exact — a pair
//! sharing several buckets is evaluated in its smallest shared band
//! key only.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;

use er_core::result::MatchPair;
use er_core::{MatchResult, Matcher, MatcherCache, SourceId};
use er_loadbalance::basic::basic_job;
use er_loadbalance::bdm_job::compute_bdm_named_in;
use er_loadbalance::block_split::{block_split_job_with_policy, SplitPolicy};
use er_loadbalance::compare::PairComparer;
use er_loadbalance::pair_range::pair_range_job;
use er_loadbalance::two_source::{
    basic::basic_two_source_job, block_split::block_split_two_source_job,
    pair_range::pair_range_two_source_job, TwoSourceBdm,
};
use er_loadbalance::{BlockDistributionMatrix, Ent, RangePolicy, StrategyKind};
use mr_engine::error::MrError;
use mr_engine::fault::{FaultPlan, FaultPolicy};
use mr_engine::input::Partitions;
use mr_engine::metrics::JobMetrics;
use mr_engine::runtime::RuntimeConfig;
use mr_engine::workflow::{StageGraph, Workflow, WorkflowMetrics};

use crate::{LshBlocking, LshParams, DEFAULT_LSH_SEED};

use er_core::minhash::ShingleScheme;

/// Configuration of one LSH run — the adaptive ladder, the shingle
/// and seed choices, and the balancing strategy applied to the banded
/// key space. Shared execution knobs live in the embedded
/// [`RuntimeConfig`], mirroring `ErConfig`/`SnConfig`.
#[derive(Clone)]
pub struct LshConfig {
    /// Attribute signatures are computed over.
    pub attribute: String,
    /// Shingle scheme (default: character trigrams).
    pub scheme: ShingleScheme,
    /// MinHash family seed.
    pub seed: u64,
    /// The adaptive ladder, widest (most bands / highest recall /
    /// most candidates) first. A fixed-parameter run is a one-rung
    /// ladder.
    pub ladder: Vec<LshParams>,
    /// Accept the first rung whose enumerated candidate workload is
    /// at most this (`None`: the widest rung is accepted
    /// immediately).
    pub candidate_budget: Option<u64>,
    /// Estimated-recall floor each round is scored against (at
    /// [`LshConfig::target_similarity`]); rounds below it are
    /// flagged in their [`LshRound`].
    pub recall_floor: f64,
    /// The Jaccard similarity the recall estimate is evaluated at —
    /// the collision probability of a pair right at the match
    /// boundary.
    pub target_similarity: f64,
    /// How the candidate job balances the banded key space.
    pub balance: StrategyKind,
    /// Range formula for `balance = PairRange`.
    pub range_policy: RangePolicy,
    /// BlockSplit splitting policy for oversized band buckets.
    pub split_policy: SplitPolicy,
    /// Pre-aggregate signature-job counts per map task.
    pub use_combiner: bool,
    /// Match rule candidates are evaluated under.
    pub matcher: Arc<Matcher>,
    /// Shared execution knobs: reduce tasks, worker threads,
    /// count-only mode, cache bound, spill threshold, fault policy.
    pub runtime: RuntimeConfig,
    /// Deterministic fault-injection schedule (empty = none).
    pub fault_plan: FaultPlan,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl LshConfig {
    /// The workspace default: trigrams of `title`, a 16×2 → 8×4 → 4×8
    /// ladder (constant 32-slot signature), no budget, BlockSplit
    /// balancing, the paper matcher.
    pub fn new() -> Self {
        Self {
            attribute: "title".to_string(),
            scheme: ShingleScheme::CharGrams(3),
            seed: DEFAULT_LSH_SEED,
            ladder: vec![
                LshParams::new(16, 2),
                LshParams::new(8, 4),
                LshParams::new(4, 8),
            ],
            candidate_budget: None,
            recall_floor: 0.8,
            target_similarity: 0.8,
            balance: StrategyKind::BlockSplit,
            range_policy: RangePolicy::CeilDiv,
            split_policy: SplitPolicy::paper(),
            use_combiner: true,
            matcher: Arc::new(Matcher::paper_default()),
            runtime: RuntimeConfig::default(),
            fault_plan: FaultPlan::new(),
        }
    }

    /// Fixes the banding to a one-rung ladder (no adaptation).
    pub fn with_params(mut self, params: LshParams) -> Self {
        self.ladder = vec![params];
        self
    }

    /// Replaces the adaptive ladder (widest rung first).
    ///
    /// # Panics
    /// If `ladder` is empty.
    pub fn with_ladder(mut self, ladder: Vec<LshParams>) -> Self {
        assert!(!ladder.is_empty(), "the ladder needs at least one rung");
        self.ladder = ladder;
        self
    }

    /// Sets the candidate budget the adaptive rounds tighten towards.
    pub fn with_candidate_budget(mut self, budget: Option<u64>) -> Self {
        self.candidate_budget = budget;
        self
    }

    /// Sets the estimated-recall floor rounds are scored against.
    pub fn with_recall_floor(mut self, floor: f64) -> Self {
        self.recall_floor = floor;
        self
    }

    /// Sets the similarity level the recall estimate is evaluated at.
    pub fn with_target_similarity(mut self, s: f64) -> Self {
        self.target_similarity = s;
        self
    }

    /// Overrides the shingle scheme.
    pub fn with_scheme(mut self, scheme: ShingleScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Overrides the MinHash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the signed attribute.
    pub fn with_attribute(mut self, attribute: impl Into<String>) -> Self {
        self.attribute = attribute.into();
        self
    }

    /// Overrides how the candidate job balances the banded key space.
    pub fn with_balance(mut self, balance: StrategyKind) -> Self {
        self.balance = balance;
        self
    }

    /// Overrides the PairRange range formula.
    pub fn with_range_policy(mut self, policy: RangePolicy) -> Self {
        self.range_policy = policy;
        self
    }

    /// Overrides the matcher.
    pub fn with_matcher(mut self, matcher: Arc<Matcher>) -> Self {
        self.matcher = matcher;
        self
    }

    /// Replaces the whole shared-knob block (e.g. with a `Runtime`'s
    /// configuration).
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Overrides the number of reduce tasks (both jobs).
    pub fn with_reduce_tasks(mut self, r: usize) -> Self {
        self.runtime.reduce_tasks = r;
        self
    }

    /// Overrides the worker-thread count.
    pub fn with_parallelism(mut self, p: usize) -> Self {
        self.runtime.parallelism = p;
        self
    }

    /// Switches comparison counting only (no similarity evaluation).
    pub fn with_count_only(mut self, count_only: bool) -> Self {
        self.runtime.count_only = count_only;
        self
    }

    /// Bounds the prepared-entity caches.
    pub fn with_matcher_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.runtime = self.runtime.with_matcher_cache_capacity(capacity);
        self
    }

    /// Sets the map-side spill threshold.
    pub fn with_spill_threshold(mut self, threshold: Option<usize>) -> Self {
        self.runtime = self.runtime.with_spill_threshold(threshold);
        self
    }

    /// Replaces the per-task fault-tolerance policy.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.runtime = self.runtime.with_fault_policy(policy);
        self
    }

    /// Installs a deterministic fault-injection schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The per-task fault-tolerance policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.runtime.fault_policy
    }

    /// The deterministic fault-injection schedule (empty = none).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Number of reduce tasks `r` (both jobs).
    pub fn reduce_tasks(&self) -> usize {
        self.runtime.reduce_tasks
    }

    /// Local worker threads.
    pub fn parallelism(&self) -> usize {
        self.runtime.parallelism
    }

    /// Whether similarity evaluation is skipped.
    pub fn count_only(&self) -> bool {
        self.runtime.count_only
    }

    /// The prepared-entity cache bound (`None` = unbounded).
    pub fn matcher_cache_capacity(&self) -> Option<usize> {
        self.runtime.matcher_cache_capacity
    }

    /// The map-side spill threshold (`None` = never spill).
    pub fn spill_threshold(&self) -> Option<usize> {
        self.runtime.spill_threshold
    }

    /// The blocking function of one ladder rung.
    pub fn blocking_for(&self, params: LshParams) -> LshBlocking {
        LshBlocking::new(params, self.scheme, self.attribute.clone(), self.seed)
    }

    fn comparer(&self) -> PairComparer {
        let comparer = if self.count_only() {
            PairComparer::count_only(Arc::clone(&self.matcher))
        } else {
            PairComparer::new(Arc::clone(&self.matcher))
        };
        comparer.with_cache_capacity(self.matcher_cache_capacity())
    }
}

impl std::fmt::Debug for LshConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LshConfig")
            .field("attribute", &self.attribute)
            .field("scheme", &self.scheme)
            .field("seed", &self.seed)
            .field("ladder", &self.ladder)
            .field("candidate_budget", &self.candidate_budget)
            .field("recall_floor", &self.recall_floor)
            .field("balance", &self.balance)
            .field("runtime", &self.runtime)
            .finish_non_exhaustive()
    }
}

/// What one adaptive round measured and decided.
#[derive(Debug, Clone)]
pub struct LshRound {
    /// The rung's banding.
    pub params: LshParams,
    /// Enumerated candidate workload of the rung's banded key space:
    /// `Σ_buckets C(n, 2)` for dedup, `Σ_buckets |R|·|S|` for linkage
    /// — what the reducers iterate (the smallest-band gate then
    /// evaluates each distinct pair once).
    pub candidate_pairs: u64,
    /// The banding S-curve estimate of recall at the target
    /// similarity.
    pub est_recall: f64,
    /// Whether the workload fit the candidate budget.
    pub within_budget: bool,
    /// Whether the recall estimate reached the floor.
    pub meets_floor: bool,
    /// Whether this rung was accepted (rounds after an accepted rung
    /// never run).
    pub accepted: bool,
}

/// Products of the LSH stages executed inside a caller-owned
/// [`Workflow`] — what [`run_lsh_in`] produces and [`run_lsh`] (plus
/// the facade `Resolver` under `Scenario::Lsh`) wraps into an outcome.
#[derive(Debug)]
pub struct LshStages {
    /// The deduplicated match result.
    pub result: MatchResult,
    /// The accepted banding.
    pub params: LshParams,
    /// One report per executed adaptive round, in ladder order.
    pub rounds: Vec<LshRound>,
    /// The accepted rung's band-bucket distribution matrix.
    pub bdm: Arc<BlockDistributionMatrix>,
    /// Metrics of the accepted signature job.
    pub bdm_metrics: JobMetrics,
    /// Metrics of the candidate/matching job.
    pub match_metrics: JobMetrics,
}

/// Everything a completed [`run_lsh`] produces.
#[derive(Debug)]
pub struct LshOutcome {
    /// The deduplicated match result.
    pub result: MatchResult,
    /// The accepted banding.
    pub params: LshParams,
    /// One report per executed adaptive round.
    pub rounds: Vec<LshRound>,
    /// The accepted rung's band-bucket distribution matrix.
    pub bdm: Arc<BlockDistributionMatrix>,
    /// Metrics of the accepted signature job.
    pub bdm_metrics: JobMetrics,
    /// Metrics of the candidate/matching job.
    pub match_metrics: JobMetrics,
    /// Rolled-up metrics of the whole run (every signature round plus
    /// the matching job under one workflow).
    pub workflow: WorkflowMetrics,
}

impl LshOutcome {
    /// Comparison counts per reduce task of the candidate job.
    pub fn reduce_loads(&self) -> Vec<u64> {
        self.match_metrics
            .per_reduce_counter(er_loadbalance::COMPARISONS)
    }

    /// Total pair comparisons (each distinct candidate pair exactly
    /// once, across all shared bands).
    pub fn total_comparisons(&self) -> u64 {
        self.reduce_loads().iter().sum()
    }
}

/// The products the accepted signature round hands to the match node.
struct Accepted {
    params: LshParams,
    bdm: Arc<BlockDistributionMatrix>,
    annotated: Partitions<er_core::blocking::BlockKey, er_loadbalance::Keyed>,
    bdm_metrics: JobMetrics,
}

/// Executes the LSH scenario as stages of `workflow` — the scenario
/// compiler both [`run_lsh`] and the facade crate's `Resolver` (via
/// `Scenario::Lsh`) drive.
///
/// `sources` selects the workload: `None` deduplicates one source;
/// `Some(tags)` links two (`tags[p]` labels input partition `p` as
/// `R` or `S`; only cross-source pairs within shared buckets are
/// compared).
///
/// The scenario compiles to a sequential [`StageGraph`]: one
/// `lsh-sig-…` node per ladder rung (later rungs no-op once a rung is
/// accepted — acceptance is a data dependency, expressed as graph
/// edges), then one `match` node running the balanced candidate job
/// with the accepted BDM's exact pair count as its scheduling weight.
pub fn run_lsh_in(
    workflow: &mut Workflow,
    input: Partitions<(), Ent>,
    sources: Option<Vec<SourceId>>,
    config: &LshConfig,
) -> Result<LshStages, MrError> {
    assert!(
        !config.ladder.is_empty(),
        "the ladder needs at least one rung"
    );
    if let Some(tags) = &sources {
        assert_eq!(
            tags.len(),
            input.len(),
            "one source tag per input partition"
        );
    }
    let rounds: RefCell<Vec<LshRound>> = RefCell::new(Vec::new());
    let accepted: RefCell<Option<Accepted>> = RefCell::new(None);
    let stages = RefCell::new(None);
    let input = &input;
    let sources = &sources;
    let rounds_ref = &rounds;
    let accepted_ref = &accepted;
    let mut graph: StageGraph<'_, MrError> = StageGraph::new();
    let last_rung = config.ladder.len() - 1;
    let mut prev = None;
    for (i, &params) in config.ladder.iter().enumerate() {
        let deps: Vec<_> = prev.into_iter().collect();
        let name = format!("lsh-sig-{params}");
        prev = Some(graph.node(name.clone(), &deps, move |wf| {
            if accepted_ref.borrow().is_some() {
                // An earlier rung fit the budget: this rung never
                // runs (its node is a no-op, not a skipped stage).
                return Ok(());
            }
            let blocking = Arc::new(config.blocking_for(params));
            let (bdm, annotated, bdm_metrics) = compute_bdm_named_in(
                wf,
                &name,
                input.clone(),
                blocking,
                config.reduce_tasks(),
                config.parallelism(),
                config.use_combiner,
                config.spill_threshold(),
            )?;
            let bdm = Arc::new(bdm);
            let candidate_pairs = match sources {
                None => bdm.total_pairs(),
                Some(tags) => TwoSourceBdm::new(Arc::clone(&bdm), tags.clone()).total_pairs(),
            };
            let within_budget = config
                .candidate_budget
                .is_none_or(|budget| candidate_pairs <= budget);
            let est_recall = params.collision_probability(config.target_similarity);
            let accept = within_budget || i == last_rung;
            rounds_ref.borrow_mut().push(LshRound {
                params,
                candidate_pairs,
                est_recall,
                within_budget,
                meets_floor: est_recall >= config.recall_floor,
                accepted: accept,
            });
            if accept {
                *accepted_ref.borrow_mut() = Some(Accepted {
                    params,
                    bdm,
                    annotated,
                    bdm_metrics,
                });
            }
            Ok(())
        }));
    }
    let sig_node = prev.expect("at least one rung");
    graph.node("match", &[sig_node], |wf| {
        let Accepted {
            params,
            bdm,
            annotated,
            bdm_metrics,
        } = accepted_ref
            .borrow_mut()
            .take()
            .expect("a signature round accepted a rung");
        let comparer = config.comparer();
        let r = config.reduce_tasks();
        let p = config.parallelism();
        let spill = config.spill_threshold();
        let out = match sources {
            None => match config.balance {
                StrategyKind::Basic => {
                    let job = basic_job(Arc::new(config.blocking_for(params)), comparer, r, p)
                        .with_spill_threshold(spill)
                        .with_weight_hint(bdm.total_pairs());
                    wf.chained_stage(&job, input.clone())?
                }
                StrategyKind::BlockSplit => {
                    let job = block_split_job_with_policy(
                        Arc::clone(&bdm),
                        comparer,
                        config.split_policy,
                        r,
                        p,
                    )
                    .with_spill_threshold(spill)
                    .with_weight_hint(bdm.total_pairs());
                    wf.chained_stage(&job, annotated)?
                }
                StrategyKind::PairRange => {
                    let job = pair_range_job(Arc::clone(&bdm), comparer, config.range_policy, r, p)
                        .with_spill_threshold(spill)
                        .with_weight_hint(bdm.total_pairs());
                    wf.chained_stage(&job, annotated)?
                }
            },
            Some(tags) => {
                let ts = Arc::new(TwoSourceBdm::new(Arc::clone(&bdm), tags.clone()));
                let weight = ts.total_pairs();
                match config.balance {
                    StrategyKind::Basic => {
                        let job = basic_two_source_job(
                            Arc::new(config.blocking_for(params)),
                            Arc::new(tags.clone()),
                            comparer,
                            r,
                            p,
                        )
                        .with_spill_threshold(spill)
                        .with_weight_hint(weight);
                        wf.chained_stage(&job, input.clone())?
                    }
                    StrategyKind::BlockSplit => {
                        let job = block_split_two_source_job(ts, comparer, r, p)
                            .with_spill_threshold(spill)
                            .with_weight_hint(weight);
                        wf.chained_stage(&job, annotated)?
                    }
                    StrategyKind::PairRange => {
                        let job =
                            pair_range_two_source_job(ts, comparer, config.range_policy, r, p)
                                .with_spill_threshold(spill)
                                .with_weight_hint(weight);
                        wf.chained_stage(&job, annotated)?
                    }
                }
            }
        };
        let mut result = MatchResult::new();
        for (pair, score) in out.reduce_outputs.into_iter().flatten() {
            result.insert(pair, score);
        }
        *stages.borrow_mut() = Some(LshStages {
            result,
            params,
            rounds: Vec::new(),
            bdm,
            bdm_metrics,
            match_metrics: out.metrics,
        });
        Ok(())
    });
    graph.run(workflow)?;
    let mut out = stages
        .into_inner()
        .expect("match node populates the outcome");
    out.rounds = rounds.into_inner();
    Ok(out)
}

/// Runs banded-MinHash entity resolution over pre-partitioned input.
///
/// A thin wrapper over [`run_lsh_in`] on a transient per-run
/// [`Workflow`]; new code should use the facade crate's `Runtime` +
/// `Resolver` with `Scenario::Lsh`, which runs the identical stages
/// on a persistent worker pool.
pub fn run_lsh(
    input: Partitions<(), Ent>,
    sources: Option<Vec<SourceId>>,
    config: &LshConfig,
) -> Result<LshOutcome, MrError> {
    let name = if sources.is_some() {
        "lsh-linkage"
    } else {
        "lsh"
    };
    let mut workflow = Workflow::new(name)
        .with_fault_policy(config.fault_policy())
        .with_fault_plan(config.fault_plan().clone());
    let stages = run_lsh_in(&mut workflow, input, sources, config)?;
    Ok(LshOutcome {
        result: stages.result,
        params: stages.params,
        rounds: stages.rounds,
        bdm: stages.bdm,
        bdm_metrics: stages.bdm_metrics,
        match_metrics: stages.match_metrics,
        workflow: workflow.finish(),
    })
}

/// Brute-force banded candidate enumeration — the oracle the MR
/// candidate set is proven against. A pair is a candidate iff the two
/// entities share at least one band bucket (and, when
/// `cross_source_only`, come from different sources). Quadratic in
/// the input; test/bench scale only.
pub fn lsh_candidate_pairs(
    entities: &[Ent],
    blocking: &LshBlocking,
    cross_source_only: bool,
) -> BTreeSet<MatchPair> {
    let keys: Vec<Option<Vec<er_core::blocking::BlockKey>>> = entities
        .iter()
        .map(|e| blocking.signature(e).map(|sig| blocking.band_keys_of(&sig)))
        .collect();
    let mut candidates = BTreeSet::new();
    for i in 0..entities.len() {
        let Some(a) = &keys[i] else { continue };
        for j in (i + 1)..entities.len() {
            let Some(b) = &keys[j] else { continue };
            if cross_source_only && entities[i].source() == entities[j].source() {
                continue;
            }
            if a.iter().zip(b).any(|(ka, kb)| ka == kb) {
                candidates.insert(MatchPair::new(
                    entities[i].entity_ref(),
                    entities[j].entity_ref(),
                ));
            }
        }
    }
    candidates
}

/// Reference implementation: evaluates the matcher on every
/// brute-force banded candidate — the ground truth the MR workflow
/// must reproduce exactly (same pairs, same scores, each candidate
/// evaluated once).
pub fn lsh_oracle(
    entities: &[Ent],
    config: &LshConfig,
    params: LshParams,
    cross_source_only: bool,
) -> MatchResult {
    let blocking = config.blocking_for(params);
    let by_ref: std::collections::BTreeMap<_, _> =
        entities.iter().map(|e| (e.entity_ref(), e)).collect();
    let mut cache = MatcherCache::new(Arc::clone(&config.matcher));
    let mut result = MatchResult::new();
    for pair in lsh_candidate_pairs(entities, &blocking, cross_source_only) {
        let a = by_ref[&pair.lo()];
        let b = by_ref[&pair.hi()];
        if let Some(score) = cache.matches(a, b) {
            result.insert(pair, score);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::Entity;
    use mr_engine::input::partition_evenly;

    fn corpus() -> Vec<Ent> {
        // Three near-duplicate clusters plus singletons; titles are
        // long enough that one edit keeps trigram Jaccard high.
        [
            "canon eos five d mark three body",
            "canon eos five d mark three bodi",
            "nikon d eight hundred body only kit",
            "nikon d eight hundred body only kit",
            "olympus om d e m five mark two",
            "olympus om d e m five mark two",
            "sony alpha seven r four mirrorless",
            "fujifilm x t four mirrorless camera",
        ]
        .iter()
        .enumerate()
        .map(|(id, t)| Arc::new(Entity::new(id as u64, [("title", *t)])) as Ent)
        .collect()
    }

    fn input(m: usize) -> Partitions<(), Ent> {
        partition_evenly(corpus().into_iter().map(|e| ((), e)).collect(), m)
    }

    fn config() -> LshConfig {
        LshConfig::new()
            .with_params(LshParams::new(8, 2))
            .with_reduce_tasks(3)
            .with_parallelism(1)
    }

    #[test]
    fn matches_the_brute_force_oracle_under_every_balance_strategy() {
        let entities = corpus();
        for balance in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let config = config().with_balance(balance);
            let outcome = run_lsh(input(2), None, &config).unwrap();
            let oracle = lsh_oracle(&entities, &config, LshParams::new(8, 2), false);
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{balance}: match set must equal the banded oracle"
            );
            let blocking = config.blocking_for(LshParams::new(8, 2));
            let candidates = lsh_candidate_pairs(&entities, &blocking, false);
            assert_eq!(
                outcome.total_comparisons(),
                candidates.len() as u64,
                "{balance}: every distinct candidate pair exactly once"
            );
        }
    }

    #[test]
    fn cross_band_dedup_is_exact() {
        // Identical titles collide in *every* band; the smallest-band
        // gate must still evaluate the pair exactly once, so skipped +
        // compared = enumerated.
        let config = config();
        let outcome = run_lsh(input(2), None, &config).unwrap();
        let skipped = outcome
            .workflow
            .counters
            .get(er_loadbalance::compare::MULTIPASS_SKIPPED);
        assert_eq!(
            outcome.total_comparisons() + skipped,
            outcome.bdm.total_pairs(),
            "every enumerated bucket pair is either compared once or gated"
        );
        assert!(skipped > 0, "duplicate clusters must share several bands");
    }

    #[test]
    fn adaptive_ladder_tightens_to_the_budget() {
        let entities = corpus();
        let wide = LshParams::new(16, 2);
        let tight = LshParams::new(4, 8);
        let wide_candidates =
            lsh_candidate_pairs(&entities, &config().blocking_for(wide), false).len() as u64;
        // A budget below the wide rung's enumerated workload forces
        // the driver down the ladder.
        let config = config()
            .with_ladder(vec![wide, tight])
            .with_candidate_budget(Some(wide_candidates.saturating_sub(1).max(1)));
        let outcome = run_lsh(input(2), None, &config).unwrap();
        assert_eq!(outcome.rounds.len(), 2, "both rounds measured");
        assert!(!outcome.rounds[0].accepted);
        assert!(outcome.rounds[1].accepted);
        assert_eq!(outcome.params, tight);
        assert!(
            outcome.rounds[0].est_recall > outcome.rounds[1].est_recall,
            "tightening trades estimated recall for candidates"
        );
    }

    #[test]
    fn no_budget_accepts_the_widest_rung_immediately() {
        let config = config().with_ladder(vec![LshParams::new(16, 2), LshParams::new(4, 8)]);
        let outcome = run_lsh(input(2), None, &config).unwrap();
        assert_eq!(outcome.rounds.len(), 1, "later rungs never run");
        assert!(outcome.rounds[0].accepted);
        assert_eq!(outcome.params, LshParams::new(16, 2));
    }

    #[test]
    fn linkage_compares_cross_source_candidates_only() {
        let entities = corpus();
        let half = entities.len() / 2;
        let tagged: Vec<Ent> = entities
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let source = if i < half { SourceId::R } else { SourceId::S };
                Arc::new(Entity::with_source(
                    source,
                    e.id().0,
                    [("title", e.get("title").unwrap())],
                )) as Ent
            })
            .collect();
        let partitions: Partitions<(), Ent> = vec![
            tagged[..half].iter().map(|e| ((), Arc::clone(e))).collect(),
            tagged[half..].iter().map(|e| ((), Arc::clone(e))).collect(),
        ];
        let sources = vec![SourceId::R, SourceId::S];
        for balance in [
            StrategyKind::Basic,
            StrategyKind::BlockSplit,
            StrategyKind::PairRange,
        ] {
            let config = config().with_balance(balance);
            let outcome = run_lsh(partitions.clone(), Some(sources.clone()), &config).unwrap();
            let oracle = lsh_oracle(&tagged, &config, LshParams::new(8, 2), true);
            assert_eq!(
                outcome.result.pair_set(),
                oracle.pair_set(),
                "{balance}: linkage must equal the cross-source banded oracle"
            );
            let blocking = config.blocking_for(LshParams::new(8, 2));
            let candidates = lsh_candidate_pairs(&tagged, &blocking, true);
            assert_eq!(outcome.total_comparisons(), candidates.len() as u64);
        }
    }

    #[test]
    fn count_only_counts_without_emitting() {
        let config = config().with_count_only(true);
        let outcome = run_lsh(input(2), None, &config).unwrap();
        assert!(outcome.result.is_empty());
        assert!(outcome.total_comparisons() > 0);
    }
}
