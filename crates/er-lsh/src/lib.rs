//! # er-lsh — banded-MinHash blocking as a MapReduce workload
//!
//! The engine's third blocking family, next to disjoint key blocking
//! (er-loadbalance) and Sorted Neighborhood (er-sn): entities are
//! shingled and MinHash-signed ([`er_core::minhash`]), the signature
//! is cut into `bands × rows`, and each band's digest becomes a
//! *blocking key* `b<band>:<digest>` — so the whole banded key space
//! rides the existing machinery:
//!
//! * the **signature job** is the block-distribution-matrix job run
//!   under [`LshBlocking`]: it emits one `(band key, partition)` count
//!   per band replica and side-writes the band-annotated entities,
//!   yielding the exact per-bucket pair counts of the banded key
//!   space;
//! * the **candidate job** is BlockSplit/PairRange over that BDM:
//!   oversized buckets (near-duplicate clusters that collide in many
//!   bands) are split into balanced sub-tasks exactly as the paper
//!   splits skewed blocks;
//! * **cross-band dedup is free**: every replica carries all of its
//!   entity's band keys, and the reducers' smallest-common-block gate
//!   ([`er_loadbalance::Keyed::should_compare_in`]) evaluates a pair
//!   only in its lexicographically smallest shared band — the
//!   smallest-band-wins analogue of multi-pass blocking, counted
//!   under [`er_loadbalance::compare::MULTIPASS_SKIPPED`];
//! * the **adaptive driver** ([`driver::run_lsh_in`]) walks a ladder
//!   of `(bands, rows)` rungs from widest (highest recall, most
//!   candidates) to tightest, running only the cheap signature job
//!   per rung, until the enumerated candidate workload fits the
//!   configured budget — each round reported in the workflow metrics.
//!
//! Both single-source dedup and two-source R×S linkage are supported;
//! the facade crate serves them as `Scenario::Lsh`.

pub mod driver;

use er_core::blocking::{BlockKey, BlockingFunction};
use er_core::minhash::{band_hash, banding_probability, shingle_hashes, MinHasher, ShingleScheme};
use er_core::Entity;

pub use driver::{
    lsh_candidate_pairs, lsh_oracle, run_lsh, run_lsh_in, LshConfig, LshOutcome, LshRound,
    LshStages,
};

/// Default seed of the MinHash family (stable across the workspace so
/// signatures, tests and benches agree).
pub const DEFAULT_LSH_SEED: u64 = 0x1CDE_2012;

/// One banding configuration: `bands` bands of `rows` signature rows
/// each (signature length `bands · rows`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Number of bands — each a chance to collide.
    pub bands: usize,
    /// Rows per band — agreement demanded per chance.
    pub rows: usize,
}

impl LshParams {
    /// A `bands × rows` banding.
    ///
    /// # Panics
    /// If either dimension is zero.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands >= 1 && rows >= 1, "need at least one band and row");
        Self { bands, rows }
    }

    /// The signature length this banding consumes.
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows
    }

    /// The probability two entities of Jaccard similarity `s` share at
    /// least one bucket — the banding S-curve
    /// ([`er_core::minhash::banding_probability`]). This is the
    /// *estimated recall at similarity `s`* the adaptive driver
    /// reports per round.
    pub fn collision_probability(&self, s: f64) -> f64 {
        banding_probability(s, self.bands, self.rows)
    }
}

impl std::fmt::Display for LshParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.bands, self.rows)
    }
}

/// Banded-MinHash blocking: an entity's blocking keys are the digests
/// of its signature bands, rendered as `b<band>:<digest hex>`. Plugged
/// into [`er_loadbalance::Keyed::derive_all`], this replicates each
/// entity into every band bucket it occupies — multi-pass blocking
/// over the banded key space — and the smallest-common-block rule
/// turns into *smallest-band-wins* exactly-once candidate dedup.
#[derive(Debug, Clone)]
pub struct LshBlocking {
    params: LshParams,
    hasher: MinHasher,
    scheme: ShingleScheme,
    attribute: String,
}

impl LshBlocking {
    /// Banded blocking over `attribute` with the given shingle scheme
    /// and MinHash seed.
    pub fn new(
        params: LshParams,
        scheme: ShingleScheme,
        attribute: impl Into<String>,
        seed: u64,
    ) -> Self {
        Self {
            params,
            hasher: MinHasher::new(params.signature_len(), seed),
            scheme,
            attribute: attribute.into(),
        }
    }

    /// The workspace default: character trigrams of `title` under
    /// [`DEFAULT_LSH_SEED`].
    pub fn title_trigrams(params: LshParams) -> Self {
        Self::new(
            params,
            ShingleScheme::CharGrams(3),
            "title",
            DEFAULT_LSH_SEED,
        )
    }

    /// The banding configuration.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The shingle scheme.
    pub fn scheme(&self) -> ShingleScheme {
        self.scheme
    }

    /// The attribute signatures are computed over.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The entity's MinHash signature, or `None` when the attribute is
    /// missing or shingles to the empty set (such entities carry no
    /// band keys and are counted under
    /// [`er_loadbalance::bdm_job::NULL_KEY_ENTITIES`]).
    pub fn signature(&self, entity: &Entity) -> Option<Vec<u64>> {
        let text = entity.get(&self.attribute)?;
        let shingles = shingle_hashes(text, self.scheme);
        if shingles.is_empty() {
            return None;
        }
        Some(self.hasher.signature(&shingles))
    }

    /// The band keys of a signature: one per band, zero-padded so the
    /// lexicographic key order groups by band index first.
    pub fn band_keys_of(&self, signature: &[u64]) -> Vec<BlockKey> {
        (0..self.params.bands)
            .map(|band| {
                let digest = band_hash(signature, band, self.params.rows);
                BlockKey::new(format!("b{band:03}:{digest:016x}"))
            })
            .collect()
    }
}

impl BlockingFunction for LshBlocking {
    fn key(&self, entity: &Entity) -> Option<BlockKey> {
        self.keys(entity).into_iter().next()
    }

    fn keys(&self, entity: &Entity) -> Vec<BlockKey> {
        match self.signature(entity) {
            Some(sig) => self.band_keys_of(&sig),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: u64, title: &str) -> Entity {
        Entity::new(id, [("title", title)])
    }

    #[test]
    fn params_expose_signature_length_and_s_curve() {
        let p = LshParams::new(16, 2);
        assert_eq!(p.signature_len(), 32);
        assert_eq!(p.to_string(), "16x2");
        assert!(p.collision_probability(0.9) > p.collision_probability(0.3));
        assert_eq!(p.collision_probability(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn zero_bands_rejected() {
        let _ = LshParams::new(0, 2);
    }

    #[test]
    fn one_band_key_per_band_grouped_by_band_index() {
        let blocking = LshBlocking::title_trigrams(LshParams::new(8, 4));
        let keys = blocking.keys(&entity(1, "canon eos 5d mark iii"));
        assert_eq!(keys.len(), 8);
        for (band, key) in keys.iter().enumerate() {
            assert!(
                key.as_str().starts_with(&format!("b{band:03}:")),
                "key {key} must carry its band index"
            );
        }
    }

    #[test]
    fn identical_titles_share_every_band_distinct_titles_rarely_any() {
        let blocking = LshBlocking::title_trigrams(LshParams::new(16, 2));
        let a = blocking.keys(&entity(1, "canon eos 5d mark iii"));
        let b = blocking.keys(&entity(2, "canon eos 5d mark iii"));
        assert_eq!(a, b, "equal text, equal buckets in every band");
        let c = blocking.keys(&entity(3, "completely unrelated product"));
        assert!(
            a.iter().filter(|k| c.contains(k)).count() < a.len() / 2,
            "unrelated text must not collide broadly"
        );
    }

    #[test]
    fn missing_or_empty_attribute_yields_no_keys() {
        let blocking = LshBlocking::title_trigrams(LshParams::new(4, 2));
        assert!(blocking.keys(&Entity::new(1, [("name", "x")])).is_empty());
        assert!(blocking.keys(&entity(2, "   ")).is_empty());
        assert!(blocking.key(&entity(3, "")).is_none());
    }

    #[test]
    fn keys_are_deterministic_across_instances() {
        let e = entity(7, "nikon d800 body only");
        let a = LshBlocking::title_trigrams(LshParams::new(8, 2)).keys(&e);
        let b = LshBlocking::title_trigrams(LshParams::new(8, 2)).keys(&e);
        assert_eq!(a, b);
    }
}
