//! Offline shim for the subset of the `criterion` API this workspace
//! uses: `Criterion` with `sample_size` / `measurement_time` /
//! `warm_up_time`, benchmark groups, `Bencher::iter` /
//! `Bencher::iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: after a warm-up phase, each benchmark collects
//! `sample_size` samples; every sample times a fixed iteration batch
//! sized so the whole run approximately fills `measurement_time`. The
//! report prints min / median / mean / max per-iteration times. No
//! HTML reports, no statistical regression analysis — numbers print to
//! stdout, which is all the repo's bench harness needs offline.
//! Passing `--test` (as `cargo test` does for bench targets) runs each
//! benchmark exactly once for a smoke check.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times each batch
/// individually regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; many routine calls per batch.
    SmallInput,
    /// Large setup output; one routine call per batch.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timing harness handed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, called `iters` times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.samples.push(total / self.iters.max(1) as u32);
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / self.iters.max(1) as u32);
    }
}

/// Benchmark configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target duration of the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Target duration of the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies CLI flags (`--test` puts every bench in smoke mode).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Whether this run is a `--test` smoke check (one iteration per
    /// bench). Report-style targets read this to shrink their own
    /// workloads instead of re-parsing the CLI.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_bench(self, None, &id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Criterion calls this at the end of `criterion_main!`; a no-op
    /// here (results were already printed).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let group = self.name.clone();
        run_bench(self.criterion, Some(&group), &id.to_string(), f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_bench<F>(config: &Criterion, group: Option<&str>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut samples: Vec<Duration> = Vec::new();

    if config.test_mode {
        let mut b = Bencher {
            iters: 1,
            samples: &mut samples,
        };
        f(&mut b);
        println!("{label}: smoke-tested (1 iteration)");
        return;
    }

    // Warm-up: keep running single iterations until the budget is
    // spent; the last warm-up sample calibrates the batch size. Only
    // one sample is retained per pass so fast routines don't
    // accumulate millions of warm-up durations.
    let warm_start = Instant::now();
    let per_iter;
    loop {
        samples.clear();
        let mut b = Bencher {
            iters: 1,
            samples: &mut samples,
        };
        f(&mut b);
        if warm_start.elapsed() >= config.warm_up_time {
            per_iter = *samples.last().expect("sample recorded");
            break;
        }
    }
    samples.clear();

    let budget_per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters = (budget_per_sample / per_iter.as_secs_f64().max(1e-9)).clamp(1.0, 1e7) as u64;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            samples: &mut samples,
        };
        f(&mut b);
    }

    samples.sort_unstable();
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<44} time: [{} {} {}]  mean: {}  ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        fmt_duration(mean),
        samples.len(),
        iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            iters: 10,
            samples: &mut samples,
        };
        b.iter(|| black_box(3u64.pow(7)));
        assert_eq!(samples.len(), 1);

        let mut b = Bencher {
            iters: 4,
            samples: &mut samples,
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn quick_bench_runs_end_to_end() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
