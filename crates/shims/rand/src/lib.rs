//! Offline shim for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — full 2^64 period, excellent mixing,
//! and (unlike the real `SmallRng`) a *stable* stream across versions,
//! which the workspace's regression tests rely on. Not cryptographic.
//! Build the workspace against the real crate by pointing the
//! `rand` entry of the root `Cargo.toml` at crates.io.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from `seed`. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly sampleable from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo`.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi >= lo`. Widens internally, so
    /// `lo..=T::MAX` is handled correctly.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(hi > lo, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire-style widening multiply avoids modulo bias for
                // spans far below 2^64 (all spans in this workspace).
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(hi >= lo, "gen_range: empty range");
                // The +1 happens in u128, so hi == T::MAX cannot
                // saturate the span.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`u32`, `u64`, `f64`, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small fast deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so nearby seeds diverge instantly.
            let mut rng = SmallRng { state: seed };
            let scrambled = rng.next_u64();
            SmallRng { state: scrambled }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..2000);
            assert!((5..2000).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((3000..4000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
