//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe producing random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice over type-erased alternatives ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start.wrapping_add(off)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo.wrapping_add(off)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "strategy range is empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// ---- Regex-lite string strategies ---------------------------------------

/// One generatable unit of a regex-lite pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// A literal character.
    Literal(char),
    /// A set of candidate characters (`[a-z 0-9]`, `\PC`).
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Strategy for strings matching a regex-lite pattern: literals,
/// `[..]` classes with ranges, `\PC`, and `{m,n}` / `{n}` repetition.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    pieces: Vec<Piece>,
}

/// Printable characters `\PC` draws from: the full ASCII printable
/// range plus a sprinkle of multi-byte scalars so Unicode handling is
/// exercised too.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (' '..='~').collect();
    pool.extend(['é', 'ß', 'λ', '日', '本', '€', 'Ω', 'ü', 'ñ', '中']);
    pool
}

impl RegexStrategy {
    /// Parses `pattern`, panicking on constructs outside the supported
    /// subset (fail-fast beats silently wrong generation).
    pub fn parse(pattern: &str) -> Self {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    // Only `\PC` (printable char) is supported.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Atom::Class(printable_pool())
                    } else {
                        panic!("regex-lite: unsupported escape in {pattern:?}");
                    }
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("regex-lite: unclosed class in {pattern:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            assert!(lo <= hi, "regex-lite: bad range in {pattern:?}");
                            set.extend(lo..=hi);
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "regex-lite: empty class in {pattern:?}");
                    i = close + 1;
                    Atom::Class(set)
                }
                c if c == '{' || c == '}' || c == '*' || c == '+' || c == '?' || c == '|' => {
                    panic!("regex-lite: unsupported operator {c:?} in {pattern:?}")
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional {m,n} / {n} quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("regex-lite: unclosed quantifier in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(max >= min, "regex-lite: inverted quantifier in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        Self { pieces }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

/// String literals are regex-lite patterns (mirrors real proptest,
/// where `&str` is a regex strategy).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per call keeps the impl allocation-free at rest;
        // test-time cost is irrelevant at these pattern sizes.
        RegexStrategy::parse(self).generate(rng)
    }
}
