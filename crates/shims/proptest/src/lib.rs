//! Offline shim for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range / regex-lite / [`strategy::Just`] / tuple / [`collection::vec`] /
//! [`prop_oneof!`] strategies, `prop_map`, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (every
//!   generated argument is printed on failure) but is not minimized.
//! * **Deterministic seeding.** Each test derives its seed from the
//!   test function name, so failures reproduce exactly across runs;
//!   set `PROPTEST_SEED` to explore a different stream.
//! * **Regex-lite patterns.** String strategies support the pattern
//!   subset used here: literals, `[a-z 0-9]` classes with ranges,
//!   `\PC` (any printable char), and `{m,n}` / `{n}` repetition.

pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration.

    /// Per-test configuration accepted by
    /// `#![proptest_config(ProptestConfig { .. })]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Error type a property body may `return Err(..)` with; the
    /// `prop_assert*` macros construct it internally.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        pub fn new(seed: u64) -> Self {
            let mut rng = TestRng { state: seed };
            let scrambled = rng.next_u64();
            TestRng { state: scrambled }
        }

        /// Seed derived from the test name plus `PROPTEST_SEED` (if
        /// set), so each property gets an independent, reproducible
        /// stream.
        pub fn for_test(name: &str) -> Self {
            let base: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_CAFE);
            let mut h = base;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            Self::new(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `range`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `vec(element, lo..hi)`: vectors of `lo..hi` elements.
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(range.end > range.start, "collection::vec: empty range");
        VecStrategy {
            element,
            min: range.start,
            max: range.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-lite string strategies.

    use super::strategy::{RegexStrategy, Strategy};

    /// Error for unsupported patterns.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// Strategy for strings matching `pattern` (see crate docs for the
    /// supported subset).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        Ok(RegexStrategy::parse(pattern))
    }

    #[allow(unused_imports)]
    use Strategy as _;
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts `cond`, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts `left == right`, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Asserts `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice between the listed strategies (all must share one
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $arg = $arg.clone();)+
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })()
                };
                if let Err(e) = result {
                    panic!(
                        "property {} failed at case {case}/{}:\n{}\ninputs:\n{}",
                        stringify!($name),
                        config.cases,
                        e,
                        [$(format!("  {} = {:?}", stringify!($arg), $arg)),+].join("\n"),
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_lite_shapes() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let s = "[a-c]{0,4}".generate(&mut rng);
            assert!(s.len() <= 4 && s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "ab".generate(&mut rng);
            assert_eq!(t, "ab");
            let p = "\\PC{1,3}".generate(&mut rng);
            let n = p.chars().count();
            assert!((1..=3).contains(&n), "{p:?}");
        }
    }

    #[test]
    fn oneof_and_vec_and_map() {
        let mut rng = TestRng::new(3);
        let strat =
            crate::collection::vec(prop_oneof![Just(1u8), Just(2)], 2..5).prop_map(|v| v.len());
        for _ in 0..200 {
            let n = strat.generate(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(a in 0u64..100, s in "[xy]{1,3}") {
            prop_assert!(a < 100);
            prop_assert_eq!(s.is_empty(), false);
            if a > 1000 {
                return Ok(()); // early exit is allowed
            }
        }
    }
}
