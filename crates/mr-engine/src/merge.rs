//! K-way merge kernels for the reduce-side shuffle.
//!
//! Two implementations of the same contract live here:
//!
//! * [`GroupStream`] — the production path: a binary-heap (tournament)
//!   merge over the map-side sorted runs — one per map task without a
//!   spill threshold, `m × (seals per task)` with one (the spiller
//!   flattens them in (map task, seal) order) — that yields reduce
//!   *groups* incrementally. Only the current group (one maximal run
//!   of keys equal under the grouping comparator) is buffered and the
//!   merged run as a whole is never materialized, eliminating the
//!   second `O(task input)` copy the old materialize-then-scan path
//!   allocated: the merge machinery itself holds only
//!   `O(largest group + m)` records. (The input runs' inline tuple
//!   storage stays owned by the stream's iterators until the task
//!   ends, but heap payloads — strings, `Arc`s — are moved out and
//!   released group by group.)
//! * [`merge_sorted_runs`] — the reference path: materializes the
//!   fully merged run with a left-biased binary merge tree. It is kept
//!   (and exported) purely as the equivalence oracle for tests and
//!   benches; the engine no longer calls it.
//!
//! # Determinism contract
//!
//! Both paths are byte-identical to concatenating the runs in input
//! order and stable-sorting: within a run, emission order is
//! preserved, and ties between runs break toward the lower run index.
//! With runs handed over in (map task, seal order) — the engine's
//! shuffle layout — that left bias composes to (map task, seal,
//! emission-within-seal), which equals plain (map task, emission)
//! order because a seal contains only records emitted before the next
//! seal's. The heap orders run heads by `(sort key, run index)`, so
//! after a pop the same run wins again while its head stays equal —
//! exactly the drain order of a stable sort.

use std::cmp::Ordering;

use crate::comparator::KeyCmp;

/// Run source of a [`GroupStream`] built over *borrowed* runs: each
/// record is cloned lazily as the merge delivers it.
pub type ClonedRunIter<'r, K, V> = std::iter::Cloned<std::slice::Iter<'r, (K, V)>>;

/// Streaming k-way merge that yields one reduce group at a time.
///
/// [`GroupStream::new`] moves the runs into per-run iterators; records
/// are moved out as they are consumed, so heap-allocated key/value
/// payloads (strings, `Arc`s) are released group by group rather than
/// living for the whole task. [`GroupStream::over`] instead borrows
/// the runs and clones each record lazily on delivery — for callers
/// (like a retryable reduce attempt) that must leave the runs intact
/// without paying for a second full copy up front.
pub struct GroupStream<'c, K, V, I = std::vec::IntoIter<(K, V)>>
where
    I: Iterator<Item = (K, V)>,
{
    sort_cmp: &'c KeyCmp<K>,
    iters: Vec<I>,
    /// Head element of each not-yet-exhausted run (`None` once drained).
    heads: Vec<Option<(K, V)>>,
    /// Min-heap of run indices, ordered by `(head key, run index)`.
    heap: Vec<usize>,
    /// High-water mark of (caller's group buffer + buffered heads),
    /// sampled after every record move inside [`GroupStream::next_group`]
    /// — mid-group states included, so runs exhausting while a group
    /// is assembled cannot hide a transient peak.
    peak_resident: usize,
}

impl<'c, K, V> GroupStream<'c, K, V> {
    /// Builds the stream over owned `runs`, each already sorted under
    /// `sort_cmp`; records are moved out as they are consumed.
    pub fn new(runs: Vec<Vec<(K, V)>>, sort_cmp: &'c KeyCmp<K>) -> Self {
        Self::from_iters(runs.into_iter().map(Vec::into_iter).collect(), sort_cmp)
    }
}

impl<'c, 'r, K: Clone, V: Clone> GroupStream<'c, K, V, ClonedRunIter<'r, K, V>> {
    /// Builds the stream over *borrowed* `runs`, cloning each record
    /// lazily as the merge delivers it. The runs stay intact for a
    /// later re-execution; the stream's own residency stays
    /// `O(largest group + runs)` cloned records, never a second full
    /// copy.
    pub fn over(runs: &'r [Vec<(K, V)>], sort_cmp: &'c KeyCmp<K>) -> Self {
        Self::from_iters(
            runs.iter().map(|run| run.iter().cloned()).collect(),
            sort_cmp,
        )
    }
}

impl<'c, K, V, I> GroupStream<'c, K, V, I>
where
    I: Iterator<Item = (K, V)>,
{
    fn from_iters(mut iters: Vec<I>, sort_cmp: &'c KeyCmp<K>) -> Self {
        let heads: Vec<Option<(K, V)>> = iters.iter_mut().map(Iterator::next).collect();
        let heap: Vec<usize> = (0..heads.len()).filter(|&i| heads[i].is_some()).collect();
        let mut stream = Self {
            sort_cmp,
            iters,
            heads,
            heap,
            peak_resident: 0,
        };
        if stream.heap.len() > 1 {
            for pos in (0..stream.heap.len() / 2).rev() {
                stream.sift_down(pos);
            }
        }
        stream
    }

    /// True iff run `a`'s head must be delivered before run `b`'s:
    /// strictly smaller key, or equal keys with the lower run index
    /// (the left bias that keeps the merge stable).
    fn wins(&self, a: usize, b: usize) -> bool {
        let ka = &self.heads[a].as_ref().expect("heap entry has a head").0;
        let kb = &self.heads[b].as_ref().expect("heap entry has a head").0;
        match (self.sort_cmp)(ka, kb) {
            Ordering::Less => true,
            Ordering::Equal => a < b,
            Ordering::Greater => false,
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                return;
            }
            let right = left + 1;
            let mut best = left;
            if right < self.heap.len() && self.wins(self.heap[right], self.heap[left]) {
                best = right;
            }
            if self.wins(self.heap[best], self.heap[pos]) {
                self.heap.swap(pos, best);
                pos = best;
            } else {
                return;
            }
        }
    }

    /// Removes and returns the globally next record, refilling the
    /// winning run's head from its iterator.
    fn pop(&mut self) -> Option<(K, V)> {
        let &run = self.heap.first()?;
        let item = self.heads[run].take().expect("heap entry has a head");
        self.heads[run] = self.iters[run].next();
        if self.heads[run].is_some() {
            self.sift_down(0);
        } else {
            self.heap.swap_remove(0);
            if !self.heap.is_empty() {
                self.sift_down(0);
            }
        }
        Some(item)
    }

    /// Key of the next record to be delivered, if any.
    fn peek_key(&self) -> Option<&K> {
        let &run = self.heap.first()?;
        Some(&self.heads[run].as_ref().expect("heap entry has a head").0)
    }

    /// Fills `buf` with the next reduce group — the maximal run of
    /// records whose keys compare `Equal` to the group's *first* key
    /// under `group_cmp` — reusing `buf`'s allocation. Returns `false`
    /// when the merge is exhausted (`buf` is left empty).
    pub fn next_group(&mut self, group_cmp: &KeyCmp<K>, buf: &mut Vec<(K, V)>) -> bool {
        buf.clear();
        match self.pop() {
            None => return false,
            Some(first) => buf.push(first),
        }
        self.peak_resident = self.peak_resident.max(buf.len() + self.heap.len());
        loop {
            let boundary = match self.peek_key() {
                None => true,
                Some(key) => group_cmp(key, &buf[0].0) != Ordering::Equal,
            };
            if boundary {
                return true;
            }
            let item = self.pop().expect("peeked element exists");
            buf.push(item);
            self.peak_resident = self.peak_resident.max(buf.len() + self.heap.len());
        }
    }

    /// Number of run heads currently buffered inside the merge
    /// (`<= m`); together with the caller's group buffer this is every
    /// record the streaming reduce path holds at once.
    pub fn buffered_heads(&self) -> usize {
        self.heap.len()
    }

    /// High-water mark of records resident in the streaming machinery
    /// so far: the group buffer being filled plus all buffered run
    /// heads, sampled after every record delivered by
    /// [`GroupStream::next_group`]. Bounded by `largest group + m`.
    pub fn peak_resident_records(&self) -> usize {
        self.peak_resident
    }
}

/// Reference materialized merge: stable left-biased binary merge tree,
/// `O(N log k)` comparisons, producing the whole merged run at once.
///
/// Retained as the byte-equivalence oracle for the streaming path (the
/// engine itself streams via [`GroupStream`]); also useful for tests of
/// custom comparators.
pub fn merge_sorted_runs<K, V>(mut runs: Vec<Vec<(K, V)>>, cmp: &KeyCmp<K>) -> Vec<(K, V)> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => next.push(merge_two(left, right, cmp)),
                None => next.push(left),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-way merge; ties take from `left` (the earlier map task).
fn merge_two<K, V>(left: Vec<(K, V)>, right: Vec<(K, V)>, cmp: &KeyCmp<K>) -> Vec<(K, V)> {
    if left.is_empty() {
        return right;
    }
    if right.is_empty() {
        return left;
    }
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut li = left.into_iter().peekable();
    let mut ri = right.into_iter().peekable();
    loop {
        match (li.peek(), ri.peek()) {
            (Some(l), Some(r)) => {
                // Strictly-less on the right is the only way right
                // wins — equality stays left-biased for stability.
                if cmp(&r.0, &l.0) == Ordering::Less {
                    out.push(ri.next().expect("peeked"));
                } else {
                    out.push(li.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(li);
                return out;
            }
            (None, _) => {
                out.extend(ri);
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{by_projection, natural_order};

    /// Drains a stream into (groups, peak buffered heads).
    fn collect_groups<K: Clone, V: Clone>(
        runs: Vec<Vec<(K, V)>>,
        sort_cmp: &KeyCmp<K>,
        group_cmp: &KeyCmp<K>,
    ) -> Vec<Vec<(K, V)>> {
        let mut stream = GroupStream::new(runs, sort_cmp);
        let mut buf = Vec::new();
        let mut groups = Vec::new();
        while stream.next_group(group_cmp, &mut buf) {
            groups.push(buf.clone());
        }
        assert!(buf.is_empty(), "exhausted stream leaves the buffer empty");
        groups
    }

    /// Reference grouping: materialized merge + boundary scan, the
    /// engine's pre-streaming implementation.
    fn reference_groups<K, V>(
        runs: Vec<Vec<(K, V)>>,
        sort_cmp: &KeyCmp<K>,
        group_cmp: &KeyCmp<K>,
    ) -> Vec<Vec<(K, V)>>
    where
        K: Clone,
        V: Clone,
    {
        let run = merge_sorted_runs(runs, sort_cmp);
        let mut groups = Vec::new();
        let mut lo = 0usize;
        while lo < run.len() {
            let mut hi = lo + 1;
            while hi < run.len() && group_cmp(&run[hi].0, &run[lo].0) == Ordering::Equal {
                hi += 1;
            }
            groups.push(run[lo..hi].to_vec());
            lo = hi;
        }
        groups
    }

    fn tagged_runs() -> Vec<Vec<(u32, (usize, usize))>> {
        // Values tag (run, position) so stability violations show up
        // in the comparison, not just ordering violations.
        vec![
            vec![(1, (0, 0)), (3, (0, 1)), (3, (0, 2)), (9, (0, 3))],
            vec![],
            vec![(0, (2, 0)), (3, (2, 1)), (9, (2, 2))],
            vec![(3, (3, 0)), (4, (3, 1))],
            vec![(2, (4, 0))],
        ]
    }

    #[test]
    fn merge_sorted_runs_equals_concat_then_stable_sort() {
        let cmp = natural_order::<u32>();
        let runs = tagged_runs();
        let mut expected: Vec<(u32, (usize, usize))> = runs.concat();
        expected.sort_by(|a, b| cmp(&a.0, &b.0));
        assert_eq!(merge_sorted_runs(runs, &cmp), expected);
    }

    #[test]
    fn merge_sorted_runs_degenerate_shapes() {
        let cmp = natural_order::<u8>();
        assert!(merge_sorted_runs::<u8, ()>(vec![], &cmp).is_empty());
        assert!(merge_sorted_runs::<u8, ()>(vec![vec![], vec![]], &cmp).is_empty());
        let single = vec![vec![(1u8, ()), (2, ())]];
        assert_eq!(merge_sorted_runs(single, &cmp), vec![(1, ()), (2, ())]);
    }

    #[test]
    fn streaming_groups_equal_materialized_reference() {
        let sort_cmp = natural_order::<u32>();
        let group_cmp = natural_order::<u32>();
        let streamed = collect_groups(tagged_runs(), &sort_cmp, &group_cmp);
        let reference = reference_groups(tagged_runs(), &sort_cmp, &group_cmp);
        assert_eq!(streamed, reference);
        // Spot-check the left bias directly: the three equal keys `3`
        // must drain run 0 first, then runs 2 and 3.
        let g3 = streamed.iter().find(|g| g[0].0 == 3).unwrap();
        let tags: Vec<(usize, usize)> = g3.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![(0, 1), (0, 2), (2, 1), (3, 0)]);
    }

    #[test]
    fn streaming_matches_reference_under_coarse_grouping() {
        // Sort by (block, seq), group by block only — the PairRange
        // secondary-sort shape. Group boundaries must fall exactly
        // where the reference scan puts them.
        let sort_cmp = natural_order::<(u32, u32)>();
        let group_cmp = by_projection(|k: &(u32, u32)| k.0);
        let runs = vec![
            vec![((1, 0), "a"), ((1, 2), "b"), ((2, 0), "c")],
            vec![((1, 1), "d"), ((2, 1), "e"), ((3, 0), "f")],
            vec![((1, 2), "g")],
        ];
        let streamed = collect_groups(runs.clone(), &sort_cmp, &group_cmp);
        let reference = reference_groups(runs, &sort_cmp, &group_cmp);
        assert_eq!(streamed, reference);
        assert_eq!(streamed.len(), 3, "three blocks -> three groups");
        assert_eq!(streamed[0].len(), 4, "block 1 spans all three runs");
    }

    #[test]
    fn streaming_matches_reference_on_adversarial_shapes() {
        let sort_cmp = natural_order::<u32>();
        let group_cmp = natural_order::<u32>();
        let cases: Vec<Vec<Vec<(u32, usize)>>> = vec![
            vec![],
            vec![vec![], vec![], vec![]],
            vec![vec![(5, 0)]],
            // All runs one identical key: pure stability test.
            vec![vec![(7, 0), (7, 1)], vec![(7, 2)], vec![(7, 3), (7, 4)]],
            // Interleaved and disjoint ranges.
            vec![
                (0..20).map(|k| (k * 2, 0)).collect(),
                (0..20).map(|k| (k * 2 + 1, 1)).collect(),
                (10..15).map(|k| (k, 2)).collect(),
            ],
        ];
        for (i, runs) in cases.into_iter().enumerate() {
            let streamed = collect_groups(runs.clone(), &sort_cmp, &group_cmp);
            let reference = reference_groups(runs, &sort_cmp, &group_cmp);
            assert_eq!(streamed, reference, "case {i}");
        }
    }

    #[test]
    fn peak_resident_tracks_group_plus_heads_high_water() {
        // All runs share one key, forming a single group of 4. Every
        // record delivered moves from a run head into the buffer (with
        // the head refilled when the run continues), so the resident
        // high-water mark is `group + surviving heads` — here exactly
        // the group size, since all runs drain into it — and a later
        // exhausted call must not disturb it.
        let sort_cmp = natural_order::<u32>();
        let group_cmp = natural_order::<u32>();
        let runs: Vec<Vec<(u32, usize)>> = vec![vec![(1, 0), (1, 1)], vec![(1, 2)], vec![(1, 3)]];
        let mut stream = GroupStream::new(runs, &sort_cmp);
        let mut buf = Vec::new();
        assert!(stream.next_group(&group_cmp, &mut buf));
        assert_eq!(buf.len(), 4);
        assert_eq!(stream.peak_resident_records(), 4);
        assert!(!stream.next_group(&group_cmp, &mut buf));
        assert_eq!(stream.peak_resident_records(), 4, "exhaustion adds nothing");

        // Two groups: while group [1, 1] assembles, run 1's head (2)
        // stays buffered, so the peak is 2 + 1 = 3 even though the
        // second group leaves only one record resident.
        let runs: Vec<Vec<(u32, usize)>> = vec![vec![(1, 0), (1, 1)], vec![(2, 2)]];
        let mut stream = GroupStream::new(runs, &sort_cmp);
        let mut buf = Vec::new();
        while stream.next_group(&group_cmp, &mut buf) {}
        assert_eq!(stream.peak_resident_records(), 3);
    }

    #[test]
    fn borrowed_stream_matches_owned_and_leaves_runs_intact() {
        // `over` must deliver exactly the groups `new` does while the
        // source runs survive a full drain untouched — the property a
        // retryable reduce attempt depends on.
        let sort_cmp = natural_order::<u32>();
        let group_cmp = natural_order::<u32>();
        let runs = tagged_runs();
        let owned = collect_groups(runs.clone(), &sort_cmp, &group_cmp);
        let mut stream = GroupStream::over(&runs, &sort_cmp);
        let mut buf = Vec::new();
        let mut borrowed = Vec::new();
        while stream.next_group(&group_cmp, &mut buf) {
            borrowed.push(buf.clone());
        }
        assert_eq!(borrowed, owned);
        assert_eq!(runs, tagged_runs(), "borrowed runs survive the drain");
    }

    #[test]
    fn buffered_heads_never_exceed_run_count() {
        let sort_cmp = natural_order::<u32>();
        let group_cmp = natural_order::<u32>();
        let runs = tagged_runs();
        let m = runs.len();
        let mut stream = GroupStream::new(runs, &sort_cmp);
        assert!(stream.buffered_heads() <= m);
        let mut buf = Vec::new();
        while stream.next_group(&group_cmp, &mut buf) {
            assert!(stream.buffered_heads() <= m);
        }
        assert_eq!(stream.buffered_heads(), 0, "exhausted stream holds nothing");
    }
}
