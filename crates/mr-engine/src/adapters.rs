//! Closure adapters: build mappers/reducers from plain functions.
//!
//! The production strategies in `er-loadbalance` implement the traits
//! directly (they carry per-task state such as the BDM); the adapters
//! keep tests, examples and small jobs terse.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::mapper::{MapContext, MapTaskInfo, Mapper};
use crate::reducer::{Group, ReduceContext, ReduceTaskInfo, Reducer};

/// A [`Mapper`] backed by a closure `(key, value, ctx)`.
pub struct ClosureMapper<KI, VI, KO, VO, S = ()> {
    f: Arc<dyn Fn(&KI, &VI, &mut MapContext<KO, VO, S>) + Send + Sync>,
    _types: PhantomData<fn() -> (KI, VI, KO, VO, S)>,
}

impl<KI, VI, KO, VO, S> ClosureMapper<KI, VI, KO, VO, S> {
    /// Wraps a map closure.
    pub fn new(f: impl Fn(&KI, &VI, &mut MapContext<KO, VO, S>) + Send + Sync + 'static) -> Self {
        Self {
            f: Arc::new(f),
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO, S> Clone for ClosureMapper<KI, VI, KO, VO, S> {
    fn clone(&self) -> Self {
        Self {
            f: Arc::clone(&self.f),
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO, S> Mapper for ClosureMapper<KI, VI, KO, VO, S>
where
    KI: Clone + Send + Sync,
    VI: Clone + Send + Sync,
    KO: Clone + Send + Sync,
    VO: Clone + Send + Sync,
    S: Clone + Send + Sync,
{
    type KIn = KI;
    type VIn = VI;
    type KOut = KO;
    type VOut = VO;
    type Side = S;

    fn map(&mut self, key: &KI, value: &VI, ctx: &mut MapContext<KO, VO, S>) {
        (self.f)(key, value, ctx);
    }
}

/// A [`Mapper`] whose closure also receives the [`MapTaskInfo`]
/// (partition index, `m`, `r`) — for map functions that, like the
/// paper's algorithms, depend on which input partition they read.
pub struct PartitionAwareMapper<KI, VI, KO, VO, S = ()> {
    f: Arc<dyn Fn(MapTaskInfo, &KI, &VI, &mut MapContext<KO, VO, S>) + Send + Sync>,
    info: Option<MapTaskInfo>,
    _types: PhantomData<fn() -> (KI, VI, KO, VO, S)>,
}

impl<KI, VI, KO, VO, S> PartitionAwareMapper<KI, VI, KO, VO, S> {
    /// Wraps a partition-aware map closure.
    pub fn new(
        f: impl Fn(MapTaskInfo, &KI, &VI, &mut MapContext<KO, VO, S>) + Send + Sync + 'static,
    ) -> Self {
        Self {
            f: Arc::new(f),
            info: None,
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO, S> Clone for PartitionAwareMapper<KI, VI, KO, VO, S> {
    fn clone(&self) -> Self {
        Self {
            f: Arc::clone(&self.f),
            info: self.info,
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO, S> Mapper for PartitionAwareMapper<KI, VI, KO, VO, S>
where
    KI: Clone + Send + Sync,
    VI: Clone + Send + Sync,
    KO: Clone + Send + Sync,
    VO: Clone + Send + Sync,
    S: Clone + Send + Sync,
{
    type KIn = KI;
    type VIn = VI;
    type KOut = KO;
    type VOut = VO;
    type Side = S;

    fn setup(&mut self, info: &MapTaskInfo) {
        self.info = Some(*info);
    }

    fn map(&mut self, key: &KI, value: &VI, ctx: &mut MapContext<KO, VO, S>) {
        let info = self.info.expect("setup ran before map");
        (self.f)(info, key, value, ctx);
    }
}

/// A [`Reducer`] backed by a closure `(group, ctx)`.
pub struct ClosureReducer<KI, VI, KO, VO> {
    f: Arc<dyn Fn(Group<'_, KI, VI>, &mut ReduceContext<KO, VO>) + Send + Sync>,
    _types: PhantomData<fn() -> (KI, VI, KO, VO)>,
}

impl<KI, VI, KO, VO> ClosureReducer<KI, VI, KO, VO> {
    /// Wraps a reduce closure.
    pub fn new(
        f: impl Fn(Group<'_, KI, VI>, &mut ReduceContext<KO, VO>) + Send + Sync + 'static,
    ) -> Self {
        Self {
            f: Arc::new(f),
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO> Clone for ClosureReducer<KI, VI, KO, VO> {
    fn clone(&self) -> Self {
        Self {
            f: Arc::clone(&self.f),
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO> Reducer for ClosureReducer<KI, VI, KO, VO>
where
    KI: Clone + Send + Sync,
    VI: Clone + Send + Sync,
    KO: Clone + Send + Sync,
    VO: Clone + Send + Sync,
{
    type KIn = KI;
    type VIn = VI;
    type KOut = KO;
    type VOut = VO;

    fn reduce(&mut self, group: Group<'_, KI, VI>, ctx: &mut ReduceContext<KO, VO>) {
        (self.f)(group, ctx);
    }
}

/// A reducer variant whose closure also receives [`ReduceTaskInfo`].
pub struct TaskAwareReducer<KI, VI, KO, VO> {
    f: Arc<dyn Fn(ReduceTaskInfo, Group<'_, KI, VI>, &mut ReduceContext<KO, VO>) + Send + Sync>,
    info: Option<ReduceTaskInfo>,
    _types: PhantomData<fn() -> (KI, VI, KO, VO)>,
}

impl<KI, VI, KO, VO> TaskAwareReducer<KI, VI, KO, VO> {
    /// Wraps a task-aware reduce closure.
    pub fn new(
        f: impl Fn(ReduceTaskInfo, Group<'_, KI, VI>, &mut ReduceContext<KO, VO>)
            + Send
            + Sync
            + 'static,
    ) -> Self {
        Self {
            f: Arc::new(f),
            info: None,
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO> Clone for TaskAwareReducer<KI, VI, KO, VO> {
    fn clone(&self) -> Self {
        Self {
            f: Arc::clone(&self.f),
            info: self.info,
            _types: PhantomData,
        }
    }
}

impl<KI, VI, KO, VO> Reducer for TaskAwareReducer<KI, VI, KO, VO>
where
    KI: Clone + Send + Sync,
    VI: Clone + Send + Sync,
    KO: Clone + Send + Sync,
    VO: Clone + Send + Sync,
{
    type KIn = KI;
    type VIn = VI;
    type KOut = KO;
    type VOut = VO;

    fn setup(&mut self, info: &ReduceTaskInfo) {
        self.info = Some(*info);
    }

    fn reduce(&mut self, group: Group<'_, KI, VI>, ctx: &mut ReduceContext<KO, VO>) {
        let info = self.info.expect("setup ran before reduce");
        (self.f)(info, group, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Job;
    use crate::input::partition_evenly;

    #[test]
    fn partition_aware_mapper_sees_its_partition_index() {
        let mapper = PartitionAwareMapper::new(
            |info: MapTaskInfo, _k: &(), v: &u32, ctx: &mut MapContext<u32, usize, ()>| {
                ctx.emit(*v, info.task_index);
            },
        );
        let reducer = ClosureReducer::new(
            |group: Group<'_, u32, usize>, ctx: &mut ReduceContext<u32, usize>| {
                for (k, v) in group.iter() {
                    ctx.emit(*k, *v);
                }
            },
        );
        let input = partition_evenly(vec![((), 10u32), ((), 20), ((), 30), ((), 40)], 2);
        let out = Job::builder("t", mapper, reducer)
            .reduce_tasks(1)
            .build()
            .run(input)
            .unwrap();
        let mut got = out.into_records();
        got.sort();
        assert_eq!(got, vec![(10, 0), (20, 0), (30, 1), (40, 1)]);
    }

    #[test]
    fn task_aware_reducer_sees_its_task_index() {
        let mapper = ClosureMapper::new(|_: &(), v: &u32, ctx: &mut MapContext<u32, u32, ()>| {
            ctx.emit(*v % 3, *v);
        });
        let reducer = TaskAwareReducer::new(
            |info: ReduceTaskInfo,
             group: Group<'_, u32, u32>,
             ctx: &mut ReduceContext<usize, u32>| {
                for v in group.values() {
                    ctx.emit(info.task_index, *v);
                }
            },
        );
        let input = partition_evenly((0..9u32).map(|v| ((), v)).collect(), 2);
        let out = Job::builder("t", mapper, reducer)
            .reduce_tasks(3)
            .build()
            .run(input)
            .unwrap();
        // Key k (=v%3) is hashed to some reduce task; all values of one
        // key must report the same task index.
        use std::collections::HashMap;
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for (task, v) in out.into_records() {
            let prev = seen.insert(v % 3, task);
            if let Some(p) = prev {
                assert_eq!(p, task);
            }
        }
    }
}
