//! Input partitioning (Hadoop's "input splits").
//!
//! Map task `i` reads input partition `Π_i`. The BlockSplit strategy's
//! behaviour depends on how entities are laid out across partitions
//! (the paper's Figure 11 shows an 80 % slowdown when a sorted dataset
//! confines large blocks to single partitions), so the library exposes
//! the partitioning step explicitly instead of hiding it.

/// A partitioned input: `partitions[i]` is read by map task `i`.
pub type Partitions<K, V> = Vec<Vec<(K, V)>>;

/// Splits `records` into `m` contiguous, near-equal partitions —
/// Hadoop's default behaviour of splitting a file by byte ranges.
///
/// Contiguity is what makes sorted inputs adversarial for BlockSplit:
/// a block whose entities are contiguous lands in few partitions and
/// cannot be split into many sub-blocks.
///
/// The first `len % m` partitions receive one extra record. Panics if
/// `m == 0`.
pub fn partition_evenly<K, V>(records: Vec<(K, V)>, m: usize) -> Partitions<K, V> {
    assert!(m > 0, "cannot split input into zero partitions");
    let len = records.len();
    let base = len / m;
    let extra = len % m;
    let mut partitions: Vec<Vec<(K, V)>> = Vec::with_capacity(m);
    let mut iter = records.into_iter();
    for i in 0..m {
        let take = base + usize::from(i < extra);
        partitions.push(iter.by_ref().take(take).collect());
    }
    partitions
}

/// Splits `records` round-robin: record `j` goes to partition `j % m`.
///
/// Round-robin is the best case for BlockSplit (every block is spread
/// over all partitions) and is used by ablation benches to bound the
/// effect of input order.
pub fn partition_round_robin<K, V>(records: Vec<(K, V)>, m: usize) -> Partitions<K, V> {
    assert!(m > 0, "cannot split input into zero partitions");
    let mut partitions: Vec<Vec<(K, V)>> = (0..m).map(|_| Vec::new()).collect();
    for (j, kv) in records.into_iter().enumerate() {
        partitions[j % m].push(kv);
    }
    partitions
}

/// Total number of records across partitions.
pub fn total_records<K, V>(partitions: &Partitions<K, V>) -> usize {
    partitions.iter().map(Vec::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize) -> Vec<((), usize)> {
        (0..n).map(|i| ((), i)).collect()
    }

    #[test]
    fn even_partitioning_is_contiguous_and_balanced() {
        let parts = partition_evenly(records(10), 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        // Contiguity: concatenation restores the original order.
        let flat: Vec<usize> = parts.iter().flatten().map(|(_, v)| *v).collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn even_partitioning_handles_fewer_records_than_partitions() {
        let parts = partition_evenly(records(2), 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(total_records(&parts), 2);
        assert_eq!(parts[0].len(), 1);
        assert_eq!(parts[1].len(), 1);
        assert_eq!(parts[2].len(), 0);
    }

    #[test]
    fn round_robin_interleaves() {
        let parts = partition_round_robin(records(7), 3);
        let p0: Vec<usize> = parts[0].iter().map(|(_, v)| *v).collect();
        let p1: Vec<usize> = parts[1].iter().map(|(_, v)| *v).collect();
        let p2: Vec<usize> = parts[2].iter().map(|(_, v)| *v).collect();
        assert_eq!(p0, vec![0, 3, 6]);
        assert_eq!(p1, vec![1, 4]);
        assert_eq!(p2, vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn zero_partitions_panics() {
        let _ = partition_evenly(records(3), 0);
    }

    #[test]
    fn total_records_sums_partitions() {
        let parts = partition_evenly(records(9), 4);
        assert_eq!(total_records(&parts), 9);
    }
}
