//! Multi-job dataflows.
//!
//! The paper's ER workflow (Figure 2) chains two MR jobs: the BDM job
//! whose *side output* (entities annotated with their blocking key,
//! written per map task) becomes the — identically partitioned — input
//! of the matching job. This module provides the small amount of glue
//! for that pattern plus invariant checks.

use crate::input::Partitions;

/// Converts the side outputs of a completed job into the input
/// partitions of a follow-up job.
///
/// Side outputs are collected per map task, so using them as input
/// partitions guarantees the second job sees the *same* partitioning of
/// the data as the first — the property Algorithms 1–3 require ("by
/// prohibiting the splitting of input files, it is ensured that the
/// second MR job receives the same partitioning of the input data as
/// the first job").
pub fn side_outputs_as_input<K, V>(side_outputs: Vec<Vec<(K, V)>>) -> Partitions<K, V> {
    side_outputs
}

/// Checks that two partitionings have identical shape (same number of
/// partitions, same number of records per partition). Used by the ER
/// driver as a debug assertion between Job 1 and Job 2.
pub fn same_shape<K1, V1, K2, V2>(a: &Partitions<K1, V1>, b: &Partitions<K2, V2>) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.len() == y.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{ClosureMapper, ClosureReducer};
    use crate::engine::Job;
    use crate::input::partition_evenly;
    use crate::mapper::MapContext;
    use crate::reducer::{Group, ReduceContext};

    #[test]
    fn side_outputs_feed_a_second_job_with_identical_partitioning() {
        // Job 1: annotate each number with its parity, side-output the
        // annotated records, reduce-output parity counts.
        let mapper1 = ClosureMapper::new(
            |_: &(), v: &u32, ctx: &mut MapContext<bool, u64, (bool, u32)>| {
                let even = v.is_multiple_of(2);
                ctx.side_output((even, *v));
                ctx.emit(even, 1);
            },
        );
        let reducer1 = ClosureReducer::new(
            |group: Group<'_, bool, u64>, ctx: &mut ReduceContext<bool, u64>| {
                ctx.emit(*group.key(), group.values().sum());
            },
        );
        let input = partition_evenly((0..10u32).map(|v| ((), v)).collect(), 3);
        let shapes: Vec<usize> = input.iter().map(Vec::len).collect();
        let job1 = Job::builder("annotate", mapper1, reducer1)
            .reduce_tasks(2)
            .parallelism(1)
            .build();
        let out1 = job1.run(input).unwrap();

        let input2 = side_outputs_as_input(out1.side_outputs);
        let shapes2: Vec<usize> = input2.iter().map(Vec::len).collect();
        assert_eq!(shapes, shapes2, "partition shape must be preserved");

        // Job 2: sum values per parity from the annotated records.
        let mapper2 = ClosureMapper::new(
            |even: &bool, v: &u32, ctx: &mut MapContext<bool, u64, ()>| {
                ctx.emit(*even, u64::from(*v));
            },
        );
        let reducer2 = ClosureReducer::new(
            |group: Group<'_, bool, u64>, ctx: &mut ReduceContext<bool, u64>| {
                ctx.emit(*group.key(), group.values().sum());
            },
        );
        let job2 = Job::builder("sum", mapper2, reducer2)
            .reduce_tasks(2)
            .parallelism(1)
            .build();
        let out2 = job2.run(input2).unwrap();
        let mut sums = out2.into_records();
        sums.sort();
        assert_eq!(sums, vec![(false, 25), (true, 20)]);
    }

    #[test]
    fn same_shape_detects_mismatch() {
        let a: Partitions<(), u8> = vec![vec![((), 1)], vec![]];
        let b: Partitions<(), u8> = vec![vec![((), 2)], vec![]];
        let c: Partitions<(), u8> = vec![vec![], vec![((), 2)]];
        assert!(same_shape(&a, &b));
        assert!(!same_shape(&a, &c));
        let d: Partitions<(), u8> = vec![vec![((), 1)]];
        assert!(!same_shape(&a, &d));
    }
}
