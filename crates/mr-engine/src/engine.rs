//! Job definition and execution.
//!
//! Execution proceeds in two phases, exactly like Hadoop with a barrier
//! between them: all map tasks run (on the worker pool), their output
//! is partitioned into `r` buckets per task, then each reduce task
//! merges its buckets **in map-task order**, forms groups under the
//! grouping comparator, and invokes the reducer per group.
//!
//! # Shuffle architecture: sorted runs in, streamed groups out
//!
//! The shuffle sort runs entirely on the worker pool, mirroring
//! Hadoop's spill-sort/merge split, and the reduce side never
//! materializes its merged input:
//!
//! 1. **Map side** — each map task routes its output into `r` open
//!    partition buckets *as it is emitted* (the context buffer is
//!    drained after every `map` call, never accumulating the task's
//!    full output). Whenever the open records cross the configured
//!    [`JobBuilder::spill_threshold`] the whole bucket set is sealed
//!    into immutable sorted runs — each non-empty bucket is
//!    stable-sorted by the sort comparator and (when a combiner is
//!    installed) combined in a single pass, exactly like Hadoop's
//!    spill files — and once more at end of task. The bucket sort the
//!    shuffle needs anyway doubles as the combiner's grouping sort, so
//!    each record is sorted exactly once. A map task therefore holds
//!    at most `threshold` unsorted records (measured by the map-side
//!    [`TaskMetrics::peak_resident_records`](crate::metrics::TaskMetrics)
//!    and [`TaskMetrics::spilled_runs`](crate::metrics::TaskMetrics)
//!    gauges); with no threshold it seals exactly one run per bucket
//!    at the end, the legacy fully-buffered layout. All of this
//!    happens inside the map task body, in parallel across map tasks;
//!    see [`crate::spill`] for the machinery.
//! 2. **Coordinator** — only *transposes* the per-task run lists so
//!    each reduce task receives its `m × (runs per task)` sorted runs
//!    flattened in (map task, seal order): an `O(total runs)` pointer
//!    move, no comparisons.
//!    [`JobMetrics::shuffle_wall`](crate::metrics::JobMetrics)
//!    records this residual coordinator cost.
//! 3. **Reduce side** — each reduce task drives a streaming heap merge
//!    ([`crate::merge::GroupStream`], `O(N_j log k)` comparisons over
//!    its `k` runs) that yields reduce *groups* incrementally. Only
//!    the current group — one maximal run of keys equal under the
//!    grouping comparator — is buffered (in a reusable buffer), plus
//!    at most one head record per unexhausted run. The fully merged
//!    run is never allocated — the extra `O(task input)` copy the
//!    pre-streaming path materialized is gone, and the merge/group
//!    machinery itself buffers only `O(largest group + k)` records
//!    (input runs remain owned by the stream's iterators, with heap
//!    payloads released group by group as they are moved out);
//!    [`TaskMetrics::peak_group_len`](crate::metrics::TaskMetrics) and
//!    [`TaskMetrics::peak_resident_records`](crate::metrics::TaskMetrics)
//!    record the observed machinery peaks per reduce task so the bound
//!    is measured, not asserted.
//!
//! # Determinism guarantee
//!
//! Equal sort keys arrive in (map task index, seal order, emission
//! order): within a sealed run the map-side sort is stable, a seal
//! contains only records emitted before every record of the next
//! seal, and the heap merge breaks ties toward the lower run index —
//! with runs flattened in (map task, seal) order that bias composes
//! to the lower-indexed map task first, earlier seal next. Since seal
//! boundaries respect emission order, (map task, seal, emission) is
//! the same total order as (map task, emission): the output is
//! byte-identical to concatenating per-task output in map-task order
//! and stable-sorting — the pre-streaming implementation, retained as
//! [`merge_sorted_runs`](crate::merge::merge_sorted_runs) for
//! equivalence tests — at **any** spill threshold and any
//! `parallelism`; `reduce_outputs` is a pure function of (input, job
//! definition). (With a combiner installed the reduce *input* may
//! differ across thresholds — the combiner runs once per seal — but a
//! legal combiner leaves the job result unchanged.) The test suite
//! asserts this property across spill thresholds × parallelism
//! levels.

use std::sync::Arc;
use std::sync::RwLock;
use std::time::Instant;

use crate::combiner::Combiner;
use crate::comparator::{natural_order, KeyCmp};
use crate::counters::{self, CounterSet};
use crate::error::MrError;
use crate::fault::{
    read_unpoisoned, run_speculative, write_unpoisoned, FaultKind, FaultPlan, FaultPolicy, FtStats,
    PhaseFt, TaskAttempts,
};
use crate::input::Partitions;
use crate::mapper::{run_map_task_spilling, MapTaskInfo, Mapper};
use crate::merge::GroupStream;
use crate::metrics::{JobMetrics, TaskKind, TaskMetrics};
use crate::partitioner::{HashPartitioner, Partitioner};
use crate::pool::{run_tasks_ctx, BatchTag, WorkerPool};
use crate::reducer::{Group, ReduceContext, ReduceTaskInfo, Reducer};
use crate::spill::MapSpiller;
use crate::trace::{SpillTrace, TaskCtx, TraceEventData, TraceSink, Tracer};

/// How a job's map/reduce tasks are executed: a transient scoped pool
/// spawned for this run, or a caller-owned persistent [`WorkerPool`]
/// (optionally capped to fewer concurrent slots than the pool owns).
/// All modes produce byte-identical output (index-addressed slots
/// either way); the choice is purely operational.
enum Exec<'p> {
    Transient {
        parallelism: usize,
    },
    Pooled {
        pool: &'p WorkerPool,
        /// Upper bound on concurrently used pool slots; `None` uses
        /// the whole pool.
        cap: Option<usize>,
        /// Scheduler identity of this job's dispatches — `(tenant,
        /// workflow, stage, weight)`; untagged for bare `run_on`.
        tag: BatchTag,
    },
}

impl Exec<'_> {
    fn parallelism(&self) -> usize {
        match self {
            Exec::Transient { parallelism } => *parallelism,
            Exec::Pooled { pool, cap, .. } => cap.map_or(pool.threads(), |c| c.min(pool.threads())),
        }
    }

    fn run<T, F>(&self, count: usize, tracer: &Tracer, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, TaskCtx) -> T + Sync,
    {
        match self {
            Exec::Transient { parallelism } => run_tasks_ctx(count, *parallelism, tracer, f),
            Exec::Pooled { pool, cap, tag } => {
                pool.run_tasks_tagged_ctx(count, cap.unwrap_or(usize::MAX), tracer, tag.clone(), f)
            }
        }
    }

    /// Runs one phase's tasks under the fault boundary: every task
    /// body executes inside `PhaseFt::run_task` (panic catch + retry
    /// loop), and — when the policy sets a task deadline — on the
    /// speculative dispatcher instead of the plain cursor pool.
    fn run_ft<T, F>(&self, count: usize, phase: &PhaseFt<'_>, body: F) -> Vec<Result<T, MrError>>
    where
        T: Send,
        F: Fn(usize, u32, TaskCtx) -> Result<T, MrError> + Sync,
    {
        let attempts = TaskAttempts::new(count);
        match (phase.policy.task_deadline, self) {
            (None, _) => self.run(count, &phase.tracer, |i, ctx| {
                phase.run_task(i, attempts.task(i), ctx, |attempt| body(i, attempt, ctx))
            }),
            (Some(deadline), Exec::Pooled { pool, cap, tag }) => run_speculative(
                pool,
                cap.unwrap_or(usize::MAX),
                count,
                deadline,
                Some(&tag.tenant),
                phase,
                &attempts,
                &body,
            ),
            (Some(deadline), Exec::Transient { parallelism }) => {
                if *parallelism <= 1 {
                    // No free slot can ever exist; sequential, like the
                    // plain inline path.
                    (0..count)
                        .map(|i| {
                            let ctx = TaskCtx::default();
                            phase
                                .run_task(i, attempts.task(i), ctx, |attempt| body(i, attempt, ctx))
                        })
                        .collect()
                } else {
                    // Speculation needs a real pool to find free slots
                    // on; spawn the transient one for this phase.
                    let pool = WorkerPool::new(*parallelism);
                    run_speculative(
                        &pool,
                        usize::MAX,
                        count,
                        deadline,
                        None,
                        phase,
                        &attempts,
                        &body,
                    )
                }
            }
        }
    }
}

/// Result of a completed job.
#[derive(Debug)]
pub struct JobOutput<KO, VO, S> {
    /// Reduce outputs per reduce task.
    pub reduce_outputs: Vec<Vec<(KO, VO)>>,
    /// Side-output records per map task ("additional output" files on
    /// the simulated DFS; index == map task index == input partition).
    pub side_outputs: Vec<Vec<S>>,
    /// Execution metrics.
    pub metrics: JobMetrics,
}

impl<KO, VO, S> JobOutput<KO, VO, S> {
    /// All output records in reduce-task order, borrowed — no copy.
    pub fn records(&self) -> impl Iterator<Item = &(KO, VO)> {
        self.reduce_outputs.iter().flatten()
    }

    /// Consumes the output, *moving* the records out in reduce-task
    /// order (metrics and side outputs are dropped; read them first).
    pub fn into_records(self) -> Vec<(KO, VO)> {
        let total = self.reduce_outputs.iter().map(Vec::len).sum();
        let mut records = Vec::with_capacity(total);
        for out in self.reduce_outputs {
            records.extend(out);
        }
        records
    }

    /// Total number of output records.
    pub fn num_records(&self) -> usize {
        self.reduce_outputs.iter().map(Vec::len).sum()
    }
}

/// A fully configured MapReduce job.
pub struct Job<M, R>
where
    M: Mapper,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
{
    name: String,
    mapper: M,
    reducer: R,
    partitioner: Arc<dyn Partitioner<M::KOut>>,
    sort_cmp: KeyCmp<M::KOut>,
    group_cmp: KeyCmp<M::KOut>,
    combiner: Option<Combiner<M::KOut, M::VOut>>,
    reduce_tasks: usize,
    parallelism: usize,
    spill_threshold: Option<usize>,
    fault_policy: FaultPolicy,
    fault_plan: FaultPlan,
    trace_sink: Option<Arc<dyn TraceSink>>,
    weight_hint: u64,
}

// Deliberately free of key bounds (unlike the `builder` impl's
// `M::KOut: Ord` and the `run` impl's `Sync` bounds): the workflow
// layer must be able to name a stage under its own minimal bounds.
impl<M, R> Job<M, R>
where
    M: Mapper,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
{
    /// The job name (used in metrics and workflow stage reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the map-side spill threshold on an already-built job —
    /// the post-hoc twin of [`JobBuilder::spill_threshold`], letting
    /// drivers apply a runtime-wide knob to jobs whose construction
    /// they do not own. Purely operational: output is byte-identical
    /// at any threshold.
    #[must_use]
    pub fn with_spill_threshold(mut self, threshold: Option<usize>) -> Self {
        assert!(
            threshold.is_none_or(|t| t >= 1),
            "spill threshold must be at least one record"
        );
        self.spill_threshold = threshold;
        self
    }

    /// The configured map-side spill threshold, if any.
    pub fn spill_threshold(&self) -> Option<usize> {
        self.spill_threshold
    }

    /// Replaces the fault policy on an already-built job — the
    /// post-hoc twin of [`JobBuilder::fault_policy`], letting drivers
    /// apply a runtime-wide policy to jobs whose construction they do
    /// not own. Purely operational: retried tasks are byte-identical
    /// re-executions (see [`crate::fault`]).
    #[must_use]
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// The fault policy in force for this job (workflow-level
    /// overrides take precedence when the job runs as a stage).
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Replaces the fault-injection plan on an already-built job — the
    /// test/bench hook for deterministic failure schedules.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The fault-injection plan in force for this job.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Attaches a [`TraceSink`] receiving the structured execution
    /// events of [`crate::trace`] — the post-hoc twin of
    /// [`JobBuilder::trace_sink`]. The default (no sink) runs the
    /// engine untraced: every instrumentation point is one untaken
    /// branch. When the job runs as a workflow stage, a workflow-level
    /// sink takes precedence so all stages share one timeline.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// The trace sink attached to this job, if any.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace_sink.as_ref()
    }

    /// Declares the job's estimated total work in comparison pairs —
    /// the seed for [`crate::pool::SchedulingPolicy::
    /// ShortestRemainingWork`], set by drivers whose BDM already
    /// computed the exact pair count. Zero (the default) means
    /// unknown. Purely operational: scheduling order never changes
    /// output.
    #[must_use]
    pub fn with_weight_hint(mut self, pairs: u64) -> Self {
        self.weight_hint = pairs;
        self
    }

    /// The job's estimated total work in comparison pairs (0 =
    /// unknown).
    pub fn weight_hint(&self) -> u64 {
        self.weight_hint
    }
}

impl<M, R> Job<M, R>
where
    M: Mapper,
    M::KOut: Ord,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
{
    /// Starts building a job with natural-order sorting/grouping and a
    /// hash partitioner (Hadoop defaults).
    pub fn builder(name: impl Into<String>, mapper: M, reducer: R) -> JobBuilder<M, R>
    where
        M::KOut: std::hash::Hash + Sync,
    {
        JobBuilder {
            name: name.into(),
            mapper,
            reducer,
            partitioner: Arc::new(HashPartitioner),
            sort_cmp: natural_order::<M::KOut>(),
            group_cmp: natural_order::<M::KOut>(),
            combiner: None,
            reduce_tasks: 1,
            parallelism: default_parallelism(),
            spill_threshold: None,
            fault_policy: FaultPolicy::default(),
            fault_plan: FaultPlan::default(),
            trace_sink: None,
        }
    }
}

/// Number of worker threads used when the caller does not override it.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Builder for [`Job`].
pub struct JobBuilder<M, R>
where
    M: Mapper,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
{
    name: String,
    mapper: M,
    reducer: R,
    partitioner: Arc<dyn Partitioner<M::KOut>>,
    sort_cmp: KeyCmp<M::KOut>,
    group_cmp: KeyCmp<M::KOut>,
    combiner: Option<Combiner<M::KOut, M::VOut>>,
    reduce_tasks: usize,
    parallelism: usize,
    spill_threshold: Option<usize>,
    fault_policy: FaultPolicy,
    fault_plan: FaultPlan,
    trace_sink: Option<Arc<dyn TraceSink>>,
}

impl<M, R> JobBuilder<M, R>
where
    M: Mapper,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
{
    /// Sets the number of reduce tasks `r`.
    pub fn reduce_tasks(mut self, r: usize) -> Self {
        self.reduce_tasks = r;
        self
    }

    /// Sets the number of local worker threads (task slots).
    pub fn parallelism(mut self, p: usize) -> Self {
        self.parallelism = p;
        self
    }

    /// Sets the map-side spill threshold, in records: a map task seals
    /// its open partition buckets into immutable sorted runs whenever
    /// they hold this many records, bounding the map phase's unsorted
    /// resident set (`None`, the default, buffers the whole task
    /// output and seals once — the legacy layout). Output is
    /// byte-identical at any threshold; see [`crate::spill`].
    ///
    /// # Panics
    /// If `threshold` is `Some(0)` — a seal needs at least one record.
    pub fn spill_threshold(mut self, threshold: Option<usize>) -> Self {
        assert!(
            threshold.is_none_or(|t| t >= 1),
            "spill threshold must be at least one record"
        );
        self.spill_threshold = threshold;
        self
    }

    /// Replaces the partition function (`part`).
    pub fn partitioner(mut self, p: impl Partitioner<M::KOut> + 'static) -> Self {
        self.partitioner = Arc::new(p);
        self
    }

    /// Replaces the sort comparator (`comp`).
    pub fn sort_by(mut self, cmp: KeyCmp<M::KOut>) -> Self {
        self.sort_cmp = cmp;
        self
    }

    /// Replaces the grouping comparator (`group`). Must be coarser than
    /// or equal to the sort comparator.
    pub fn group_by(mut self, cmp: KeyCmp<M::KOut>) -> Self {
        self.group_cmp = cmp;
        self
    }

    /// Installs a per-map-task combiner.
    pub fn combiner(mut self, c: Combiner<M::KOut, M::VOut>) -> Self {
        self.combiner = Some(c);
        self
    }

    /// Sets the fault policy (attempts per task, straggler deadline);
    /// the default is [`FaultPolicy::fail_fast`]. See [`crate::fault`].
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Installs a deterministic fault-injection plan (test/bench
    /// hook); the default empty plan injects nothing.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Attaches a [`TraceSink`] receiving structured execution events
    /// (see [`crate::trace`]). The default runs untraced at zero cost.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Finalizes the job.
    pub fn build(self) -> Job<M, R> {
        Job {
            name: self.name,
            mapper: self.mapper,
            reducer: self.reducer,
            partitioner: self.partitioner,
            sort_cmp: self.sort_cmp,
            group_cmp: self.group_cmp,
            combiner: self.combiner,
            reduce_tasks: self.reduce_tasks,
            parallelism: self.parallelism,
            spill_threshold: self.spill_threshold,
            fault_policy: self.fault_policy,
            fault_plan: self.fault_plan,
            trace_sink: self.trace_sink,
            weight_hint: 0,
        }
    }
}

struct MapTaskResult<K, V, S> {
    /// Sealed sorted runs per reduce task, in seal order.
    runs: Vec<Vec<Vec<(K, V)>>>,
    side: Vec<S>,
    metrics: TaskMetrics,
}

/// Drives one reduce attempt's streaming group loop over either run
/// source — owned (a final execution moving records out) or borrowed
/// (a retryable/speculative attempt cloning them lazily). Groups come
/// out of the heap merge one at a time into a reusable buffer; the
/// merged run is never materialized. Returns `(groups,
/// peak_group_len)`; the stream itself tracks the resident high-water
/// mark (group buffer + buffered run heads, sampled per record so
/// mid-group states count too).
fn drive_reduce<K, V, I, Rd>(
    stream: &mut GroupStream<'_, K, V, I>,
    group_cmp: &KeyCmp<K>,
    reducer: &mut Rd,
    ctx: &mut ReduceContext<Rd::KOut, Rd::VOut>,
) -> (u64, u64)
where
    I: Iterator<Item = (K, V)>,
    Rd: Reducer<KIn = K, VIn = V>,
{
    let mut group_buf: Vec<(K, V)> = Vec::new();
    let mut groups = 0u64;
    let mut peak_group_len = 0u64;
    while stream.next_group(group_cmp, &mut group_buf) {
        groups += 1;
        peak_group_len = peak_group_len.max(group_buf.len() as u64);
        reducer.reduce(Group::new(&group_buf), ctx);
    }
    (groups, peak_group_len)
}

impl<M, R> Job<M, R>
where
    M: Mapper,
    M::KOut: Sync,
    M::VOut: Sync,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
{
    /// Executes the job over the given input partitions.
    ///
    /// The number of map tasks `m` equals `input.len()`. Tasks run on
    /// a transient pool of [`JobBuilder::parallelism`] scoped threads
    /// spawned for this run; see [`Job::run_on`] to reuse a persistent
    /// [`WorkerPool`] across jobs instead.
    pub fn run(
        &self,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError> {
        self.run_with(
            Exec::Transient {
                parallelism: self.parallelism,
            },
            input,
        )
    }

    /// Executes the job on a caller-owned persistent [`WorkerPool`]
    /// (no thread spawn in this call; the pool's thread count takes
    /// the place of [`JobBuilder::parallelism`]).
    ///
    /// Output is byte-identical to [`Job::run`] at any parallelism:
    /// the engine's determinism contract makes the result a pure
    /// function of `(input, job definition)`.
    pub fn run_on(
        &self,
        pool: &WorkerPool,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError> {
        self.run_with(
            Exec::Pooled {
                pool,
                cap: None,
                tag: BatchTag::untagged(),
            },
            input,
        )
    }

    /// Like [`Job::run_on`], but uses at most `max_parallelism` of the
    /// pool's slots concurrently — so one run can be throttled without
    /// respawning the pool (the pool's threads outlive the cap).
    /// Output is byte-identical to any other execution mode.
    pub fn run_on_capped(
        &self,
        pool: &WorkerPool,
        max_parallelism: usize,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError> {
        self.run_with(
            Exec::Pooled {
                pool,
                cap: Some(max_parallelism),
                tag: BatchTag::untagged(),
            },
            input,
        )
    }

    fn run_with(
        &self,
        exec: Exec<'_>,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError> {
        self.run_with_faults(exec, None, None, None, input)
    }

    /// Workflow entry point: run on an optional `(pool, cap, tag)`
    /// with workflow-level fault policy/plan overrides (each `None`
    /// falls back to the job's own configuration) and an optional
    /// workflow-level tracer, which takes precedence over the job's
    /// own sink so all stages share one timeline and epoch. The
    /// [`BatchTag`] identifies the stage's dispatches to the pool's
    /// shared scheduler, so concurrent workflows interleave fairly.
    pub(crate) fn run_with_overrides(
        &self,
        pool: Option<(&WorkerPool, Option<usize>, BatchTag)>,
        policy: Option<FaultPolicy>,
        plan: Option<&FaultPlan>,
        tracer: Option<Tracer>,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError> {
        let exec = match pool {
            Some((pool, cap, tag)) => Exec::Pooled { pool, cap, tag },
            None => Exec::Transient {
                parallelism: self.parallelism,
            },
        };
        self.run_with_faults(exec, policy, plan, tracer, input)
    }

    fn run_with_faults(
        &self,
        exec: Exec<'_>,
        policy_override: Option<FaultPolicy>,
        plan_override: Option<&FaultPlan>,
        tracer_override: Option<Tracer>,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError> {
        let policy = policy_override.unwrap_or(self.fault_policy);
        let plan = plan_override.unwrap_or(&self.fault_plan);
        let tracer = tracer_override.unwrap_or_else(|| match &self.trace_sink {
            Some(sink) => Tracer::new(Arc::clone(sink)),
            None => Tracer::off(),
        });
        let stats = FtStats::default();
        let job_start = Instant::now();
        let m = input.len();
        let r = self.reduce_tasks;
        if m == 0 {
            return Err(MrError::NoMapTasks);
        }
        if r == 0 {
            return Err(MrError::NoReduceTasks);
        }
        if exec.parallelism() == 0 {
            return Err(MrError::ZeroParallelism);
        }
        tracer.emit_with(None, || TraceEventData::JobStarted {
            job: self.name.clone(),
            map_tasks: m,
            reduce_tasks: r,
        });

        // ---- Map phase -------------------------------------------------
        // Each *attempt* builds a fresh spiller and context over the
        // borrowed, immutable input partition, so a retried or
        // speculative re-execution observes exactly the state of the
        // first — the determinism argument of `crate::fault`.
        let map_phase = PhaseFt {
            policy,
            job: &self.name,
            kind: FaultKind::Map,
            stats: &stats,
            tracer: tracer.clone(),
        };
        let map_results: Vec<Result<MapTaskResult<M::KOut, M::VOut, M::Side>, MrError>> = exec
            .run_ft(m, &map_phase, |i, attempt, tctx| {
                let start = Instant::now();
                plan.fire(&self.name, FaultKind::Map, i, attempt);
                let info = MapTaskInfo {
                    task_index: i,
                    num_map_tasks: m,
                    num_reduce_tasks: r,
                };
                // Emitted records stream straight into the spiller,
                // which partitions them into open buckets and seals
                // the set into sorted (and combined) runs whenever the
                // spill threshold is crossed — the map task never
                // holds more than `threshold` unsorted records plus
                // its sealed runs. Sorting and combining thus run
                // inside map tasks, in parallel; the coordinator never
                // sorts.
                let mut spiller = MapSpiller::new(
                    self.partitioner.as_ref(),
                    &self.sort_cmp,
                    self.combiner.as_ref(),
                    r,
                    self.spill_threshold,
                )
                .with_trace(tracer.is_on().then(|| SpillTrace {
                    tracer: tracer.clone(),
                    job: self.name.clone(),
                    task: i,
                    slot: Some(tctx.slot),
                }));
                let mut ctx = run_map_task_spilling(&self.mapper, info, &input[i], |k, v| {
                    spiller.push(k, v)
                })?;
                ctx.counters.add(
                    counters::MAP_OUTPUT_RECORDS_PRECOMBINE,
                    ctx.emitted() as u64,
                );
                plan.fire(&self.name, FaultKind::Sort, i, attempt);
                let spilled = spiller.finish();
                ctx.counters
                    .add(counters::MAP_OUTPUT_RECORDS, spilled.records_out);
                let metrics = TaskMetrics {
                    kind: TaskKind::Map,
                    index: i,
                    records_in: input[i].len() as u64,
                    records_out: spilled.records_out,
                    counters: ctx.counters,
                    wall: start.elapsed(),
                    peak_group_len: 0,
                    peak_resident_records: spilled.peak_open_records,
                    spilled_runs: spilled.spilled_runs,
                    queue_wait: tctx.queue_wait,
                    attempts: attempt,
                };
                Ok(MapTaskResult {
                    runs: spilled.runs,
                    side: ctx.side,
                    metrics,
                })
            });
        let mut map_tasks_metrics = Vec::with_capacity(m);
        let mut side_outputs = Vec::with_capacity(m);
        let mut all_runs: Vec<Vec<Vec<Vec<(M::KOut, M::VOut)>>>> = Vec::with_capacity(m);
        for res in map_results {
            let task = res?;
            map_tasks_metrics.push(task.metrics);
            side_outputs.push(task.side);
            all_runs.push(task.runs);
        }

        // ---- Shuffle ---------------------------------------------------
        // Reduce task j receives every sealed run destined for it,
        // flattened in (map task, seal order). The coordinator only
        // moves run pointers (no comparisons); the k-way merge happens
        // inside each reduce task on the worker pool. Merge ties break
        // toward the lower run index — lower map task first, earlier
        // seal next — so values with equal sort keys keep (map task,
        // emission) order, the Hadoop-like guarantee that keeps
        // sub-block entities of one input partition contiguous.
        let shuffle_start = Instant::now();
        let mut runs_per_reduce: Vec<Vec<Vec<(M::KOut, M::VOut)>>> =
            (0..r).map(|_| Vec::with_capacity(m)).collect();
        for task_runs in all_runs {
            for (j, runs) in task_runs.into_iter().enumerate() {
                runs_per_reduce[j].extend(runs);
            }
        }
        let total_runs: usize = runs_per_reduce.iter().map(Vec::len).sum();
        // Slots let each reduce closure reach its runs through the
        // shared `Fn` the pool requires: non-final attempts share a
        // read guard over the one resident copy, a final execution
        // takes ownership through the write guard.
        let run_slots: Vec<RwLock<Option<Vec<Vec<(M::KOut, M::VOut)>>>>> = runs_per_reduce
            .into_iter()
            .map(|runs| RwLock::new(Some(runs)))
            .collect();
        let shuffle_wall = shuffle_start.elapsed();
        tracer.emit_with(None, || TraceEventData::ShuffleCompleted {
            job: self.name.clone(),
            runs: total_runs,
            wall: shuffle_wall,
        });

        // ---- Reduce phase ----------------------------------------------
        let reduce_phase = PhaseFt {
            policy,
            job: &self.name,
            kind: FaultKind::Reduce,
            stats: &stats,
            tracer: tracer.clone(),
        };
        let reduce_results: Vec<Result<(Vec<(R::KOut, R::VOut)>, TaskMetrics), MrError>> = exec
            .run_ft(r, &reduce_phase, |j, attempt, tctx| {
                let start = Instant::now();
                plan.fire(&self.name, FaultKind::Reduce, j, attempt);
                let info = ReduceTaskInfo {
                    task_index: j,
                    num_reduce_tasks: r,
                    num_map_tasks: m,
                };
                let mut reducer = self.reducer.clone();
                let mut ctx = ReduceContext::new(info);
                reducer.setup(&info);
                // An attempt that can be followed by another execution
                // — a retry (attempt below the budget) or a
                // speculative twin (deadline set) — must leave the
                // runs in place: it streams them *borrowed* under a
                // shared read guard, cloning each record only as the
                // merge delivers it, so a retry finds the runs
                // untouched and concurrent twins share the one
                // resident copy (never a second full copy). Only a
                // provably final, sole execution takes ownership and
                // moves records out. On the fail-fast default (1
                // attempt, no deadline) every attempt takes, so the
                // fault boundary adds no copy to the fault-free path.
                let (records_in, groups, peak_group_len, peak_resident_records) =
                    if attempt >= policy.max_attempts && policy.task_deadline.is_none() {
                        let runs = write_unpoisoned(&run_slots[j])
                            .take()
                            .expect("each reduce task's runs outlive its final attempt");
                        let records_in: u64 = runs.iter().map(|run| run.len() as u64).sum();
                        let mut stream = GroupStream::new(runs, &self.sort_cmp);
                        let (groups, peak_group_len) =
                            drive_reduce(&mut stream, &self.group_cmp, &mut reducer, &mut ctx);
                        let peak = stream.peak_resident_records() as u64;
                        (records_in, groups, peak_group_len, peak)
                    } else {
                        let guard = read_unpoisoned(&run_slots[j]);
                        let runs = guard
                            .as_deref()
                            .expect("each reduce task's runs outlive its final attempt");
                        let records_in: u64 = runs.iter().map(|run| run.len() as u64).sum();
                        let mut stream = GroupStream::over(runs, &self.sort_cmp);
                        let (groups, peak_group_len) =
                            drive_reduce(&mut stream, &self.group_cmp, &mut reducer, &mut ctx);
                        let peak = stream.peak_resident_records() as u64;
                        (records_in, groups, peak_group_len, peak)
                    };
                reducer.finish(&mut ctx);
                ctx.counters.add(counters::REDUCE_INPUT_RECORDS, records_in);
                ctx.counters.add(counters::REDUCE_INPUT_GROUPS, groups);
                ctx.counters
                    .add(counters::REDUCE_OUTPUT_RECORDS, ctx.out.len() as u64);
                let metrics = TaskMetrics {
                    kind: TaskKind::Reduce,
                    index: j,
                    records_in,
                    records_out: ctx.out.len() as u64,
                    counters: ctx.counters,
                    wall: start.elapsed(),
                    peak_group_len,
                    peak_resident_records,
                    spilled_runs: 0,
                    queue_wait: tctx.queue_wait,
                    attempts: attempt,
                };
                Ok((ctx.out, metrics))
            });

        let mut reduce_outputs = Vec::with_capacity(r);
        let mut reduce_tasks_metrics = Vec::with_capacity(r);
        for res in reduce_results {
            let (out, metrics) = res?;
            reduce_outputs.push(out);
            reduce_tasks_metrics.push(metrics);
        }

        let mut counters_total = CounterSet::new();
        for t in map_tasks_metrics.iter().chain(reduce_tasks_metrics.iter()) {
            counters_total.merge(&t.counters);
        }
        let metrics = JobMetrics {
            job_name: self.name.clone(),
            map_tasks: map_tasks_metrics,
            reduce_tasks: reduce_tasks_metrics,
            counters: counters_total,
            shuffle_wall,
            wall: job_start.elapsed(),
            task_failures: stats
                .task_failures
                .load(std::sync::atomic::Ordering::Relaxed),
            tasks_retried: stats
                .tasks_retried
                .load(std::sync::atomic::Ordering::Relaxed),
            speculative_launched: stats
                .speculative_launched
                .load(std::sync::atomic::Ordering::Relaxed),
            speculative_won: stats
                .speculative_won
                .load(std::sync::atomic::Ordering::Relaxed),
        };
        tracer.emit_with(None, || TraceEventData::JobFinished {
            job: self.name.clone(),
            wall: metrics.wall,
        });
        Ok(JobOutput {
            reduce_outputs,
            side_outputs,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{ClosureMapper, ClosureReducer};
    use crate::comparator::by_projection;
    use crate::input::partition_evenly;
    use crate::mapper::MapContext;
    use crate::partitioner::FnPartitioner;

    type WcMapper = ClosureMapper<(), String, String, u64, ()>;
    type WcReducer = ClosureReducer<String, u64, String, u64>;

    fn wordcount_job(r: usize, parallelism: usize) -> Job<WcMapper, WcReducer> {
        let mapper = ClosureMapper::new(
            |_: &(), line: &String, ctx: &mut MapContext<String, u64, ()>| {
                for w in line.split_whitespace() {
                    ctx.emit(w.to_string(), 1);
                }
            },
        );
        let reducer = ClosureReducer::new(
            |group: Group<'_, String, u64>, ctx: &mut ReduceContext<String, u64>| {
                let sum: u64 = group.values().sum();
                ctx.emit(group.key().clone(), sum);
            },
        );
        Job::builder("wc", mapper, reducer)
            .reduce_tasks(r)
            .parallelism(parallelism)
            .build()
    }

    fn lines(ls: &[&str]) -> Vec<((), String)> {
        ls.iter().map(|l| ((), l.to_string())).collect()
    }

    #[test]
    fn wordcount_end_to_end() {
        let input = partition_evenly(lines(&["a b a", "c b", "a"]), 2);
        let out = wordcount_job(3, 2).run(input).unwrap();
        let mut counts: Vec<_> = out.records().cloned().collect();
        counts.sort();
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
        assert_eq!(out.metrics.map_input_records(), 3);
        assert_eq!(out.metrics.map_output_records(), 6);
    }

    #[test]
    fn determinism_across_parallelism_levels() {
        let input = lines(&["x y z", "y z", "z z y x", "w", "x w y"]);
        let mut reference: Option<Vec<(String, u64)>> = None;
        for p in [1, 2, 4, 8] {
            let out = wordcount_job(4, p)
                .run(partition_evenly(input.clone(), 3))
                .unwrap();
            // Full per-reduce-task structure must match, not just the
            // multiset of records.
            let flat: Vec<(String, u64)> = out.reduce_outputs.concat();
            match &reference {
                None => reference = Some(flat),
                Some(r) => assert_eq!(r, &flat, "parallelism {p} changed the output"),
            }
        }
    }

    #[test]
    fn combiner_shrinks_shuffle_but_not_result() {
        let input = partition_evenly(lines(&["a a a a", "a a a b"]), 2);
        let no_combine = wordcount_job(2, 1).run(input.clone()).unwrap();

        let mapper = ClosureMapper::new(
            |_: &(), line: &String, ctx: &mut MapContext<String, u64, ()>| {
                for w in line.split_whitespace() {
                    ctx.emit(w.to_string(), 1);
                }
            },
        );
        let reducer = ClosureReducer::new(
            |group: Group<'_, String, u64>, ctx: &mut ReduceContext<String, u64>| {
                let sum: u64 = group.values().sum();
                ctx.emit(group.key().clone(), sum);
            },
        );
        let combined_job = Job::builder("wc+c", mapper, reducer)
            .reduce_tasks(2)
            .parallelism(1)
            .combiner(crate::combiner::sum_u64_combiner())
            .build();
        let combined = combined_job.run(input).unwrap();

        let mut a: Vec<_> = no_combine.records().cloned().collect();
        let mut b: Vec<_> = combined.records().cloned().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "combiner must not change the job result");
        assert_eq!(no_combine.metrics.map_output_records(), 8);
        // Task 0 emits only "a" x4 -> 1 pair; task 1 emits a x3, b -> 2.
        assert_eq!(combined.metrics.map_output_records(), 3);
        assert_eq!(
            combined
                .metrics
                .counters
                .get(counters::MAP_OUTPUT_RECORDS_PRECOMBINE),
            8
        );
    }

    #[test]
    fn coarse_grouping_exposes_individual_keys() {
        // Sort by (block, seq), group by block only; the reducer sees
        // the sequence numbers through the per-value key — the exact
        // mechanism PairRange needs for its entity indexes.
        let mapper = ClosureMapper::new(
            |_: &(), v: &(u32, u32), ctx: &mut MapContext<(u32, u32), u32, ()>| {
                ctx.emit(*v, v.1 * 100);
            },
        );
        let reducer = ClosureReducer::new(
            |group: Group<'_, (u32, u32), u32>, ctx: &mut ReduceContext<u32, Vec<u32>>| {
                let seqs: Vec<u32> = group.iter().map(|(k, _)| k.1).collect();
                ctx.emit(group.key().0, seqs);
            },
        );
        let input = partition_evenly(
            vec![
                ((), (1u32, 3u32)),
                ((), (1, 1)),
                ((), (2, 5)),
                ((), (1, 2)),
                ((), (2, 4)),
            ],
            2,
        );
        let job = Job::builder("grouping", mapper, reducer)
            .reduce_tasks(1)
            .parallelism(1)
            .group_by(by_projection(|k: &(u32, u32)| k.0))
            .build();
        let out = job.run(input).unwrap();
        assert_eq!(
            out.metrics.peak_group_len(),
            3,
            "block 1 is the largest streamed group"
        );
        assert_eq!(
            out.into_records(),
            vec![(1, vec![1, 2, 3]), (2, vec![4, 5])],
            "groups must be contiguous and sorted by the full key"
        );
    }

    #[test]
    fn streaming_reduce_matches_materialized_reference_across_parallelism() {
        // Independent oracle for the tentpole: re-derive each reduce
        // task's output with the pre-streaming pipeline (partition →
        // stable sort → materialized merge via `merge_sorted_runs` →
        // boundary scan) and demand byte-equality at every
        // parallelism level. Values encode (map task, emission order)
        // so any stability drift fails loudly.
        use crate::merge::merge_sorted_runs;

        let lines = [
            "the quick brown fox the",
            "lazy dog the fox",
            "quick quick lazy",
            "brown the dog",
            "fox",
        ];
        let m = 3usize;
        let r = 4usize;
        let input: Partitions<(), String> =
            partition_evenly(lines.iter().map(|l| ((), l.to_string())).collect(), m);

        // Reference: simulate map + shuffle by hand.
        let sort_cmp = natural_order::<String>();
        let partitioner = HashPartitioner;
        let mut runs_per_reduce: Vec<Vec<Vec<(String, String)>>> =
            (0..r).map(|_| Vec::with_capacity(m)).collect();
        for (i, part) in input.iter().enumerate() {
            let mut buckets: Vec<Vec<(String, String)>> = (0..r).map(|_| Vec::new()).collect();
            let mut emission = 0usize;
            for (_, line) in part {
                for w in line.split_whitespace() {
                    let key = w.to_string();
                    let p = Partitioner::partition(&partitioner, &key, r);
                    buckets[p].push((key, format!("t{i}e{emission}")));
                    emission += 1;
                }
            }
            for bucket in &mut buckets {
                bucket.sort_by(|a, b| sort_cmp(&a.0, &b.0));
            }
            for (j, bucket) in buckets.into_iter().enumerate() {
                runs_per_reduce[j].push(bucket);
            }
        }
        let expected: Vec<Vec<(String, Vec<String>)>> = runs_per_reduce
            .into_iter()
            .map(|runs| {
                let run = merge_sorted_runs(runs, &sort_cmp);
                let mut out = Vec::new();
                let mut lo = 0usize;
                while lo < run.len() {
                    let mut hi = lo + 1;
                    while hi < run.len() && run[hi].0 == run[lo].0 {
                        hi += 1;
                    }
                    out.push((
                        run[lo].0.clone(),
                        run[lo..hi].iter().map(|(_, v)| v.clone()).collect(),
                    ));
                    lo = hi;
                }
                out
            })
            .collect();

        // The real job, with a mapper emitting the same tags.
        for parallelism in [1usize, 2, 4, 8] {
            let mapper = ClosureMapper::new(
                |_: &(), line: &String, ctx: &mut MapContext<String, String, ()>| {
                    for w in line.split_whitespace() {
                        let n = ctx.emitted();
                        ctx.emit(w.to_string(), format!("t{}e{n}", ctx.info().task_index));
                    }
                },
            );
            let reducer = ClosureReducer::new(
                |group: Group<'_, String, String>, ctx: &mut ReduceContext<String, Vec<String>>| {
                    ctx.emit(group.key().clone(), group.values().cloned().collect());
                },
            );
            let out = Job::builder("oracle", mapper, reducer)
                .reduce_tasks(r)
                .parallelism(parallelism)
                .build()
                .run(input.clone())
                .unwrap();
            assert_eq!(
                out.reduce_outputs, expected,
                "parallelism {parallelism} diverged from the materialized reference"
            );
        }
    }

    #[test]
    fn peak_gauges_measure_streaming_working_set() {
        // "a" x5, "b" x3, "c" x1 over two map tasks, one reduce task:
        // the largest group is 5, and the streaming path must never
        // hold more than (largest group + m run heads) = 7 records —
        // far below the 9-record task input a materialized merge
        // would pin.
        let input = partition_evenly(lines(&["a a a b b c", "a a b"]), 2);
        let out = wordcount_job(1, 1).run(input).unwrap();
        let task = &out.metrics.reduce_tasks[0];
        assert_eq!(task.records_in, 9);
        assert_eq!(task.peak_group_len, 5);
        assert!(
            task.peak_resident_records <= task.peak_group_len + 2,
            "resident = group buffer + at most one head per run; got {}",
            task.peak_resident_records
        );
        assert!(
            task.peak_resident_records < task.records_in,
            "streaming must stay below the materialized bound"
        );
        assert_eq!(out.metrics.peak_group_len(), 5);
        assert_eq!(
            out.metrics.peak_resident_records(),
            task.peak_resident_records
        );
        assert!(out.metrics.peak_resident_fraction() < 1.0);
        // Map tasks report no group peaks; without a spill threshold
        // their open-set high-water is the full task output (6 and 3
        // words respectively).
        assert!(out.metrics.map_tasks.iter().all(|t| t.peak_group_len == 0));
        assert_eq!(out.metrics.map_peak_resident_records(), 6);
        assert_eq!(out.metrics.spilled_runs(), 0, "no threshold, no spills");
    }

    #[test]
    fn spill_threshold_bounds_map_resident_set_and_keeps_output_identical() {
        // 9 records per map task over 3 tasks; thresholds from 1 to
        // beyond the input must leave every reduce output byte-equal
        // while capping the map-side open set.
        let input = lines(&[
            "a b c a b c a b c",
            "c c c a a a b b b",
            "b a b a b a b a b",
        ]);
        let reference = wordcount_job(3, 1)
            .run(partition_evenly(input.clone(), 3))
            .unwrap();
        assert_eq!(reference.metrics.spilled_runs(), 0);
        for threshold in [1usize, 2, 4, 9, 100] {
            let mut gauges: Option<(u64, u64)> = None;
            for parallelism in [1usize, 2, 4, 8] {
                let out = wordcount_job(3, parallelism)
                    .with_spill_threshold(Some(threshold))
                    .run(partition_evenly(input.clone(), 3))
                    .unwrap();
                assert_eq!(
                    out.reduce_outputs, reference.reduce_outputs,
                    "threshold {threshold} x parallelism {parallelism} changed the output"
                );
                assert!(
                    out.metrics.map_peak_resident_records() <= threshold as u64,
                    "threshold {threshold}: open set peaked at {}",
                    out.metrics.map_peak_resident_records()
                );
                // The map-side gauges are per-task quantities: they
                // must be invariant under parallelism.
                let now = (
                    out.metrics.map_peak_resident_records(),
                    out.metrics.spilled_runs(),
                );
                match gauges {
                    None => gauges = Some(now),
                    Some(expected) => assert_eq!(
                        now, expected,
                        "threshold {threshold}: gauges drifted at parallelism {parallelism}"
                    ),
                }
                // Each map task emits exactly 9 records, so a
                // threshold of 9 still seals once (on the 9th record);
                // only a threshold beyond the input never spills.
                if threshold <= 9 {
                    assert!(
                        out.metrics.spilled_runs() > 0,
                        "threshold {threshold} must trigger spills"
                    );
                } else {
                    assert_eq!(out.metrics.spilled_runs(), 0);
                }
            }
        }
    }

    #[test]
    fn spilled_job_with_combiner_matches_unspilled_result() {
        // The combiner runs once per seal, so the reduce *input* may
        // differ across thresholds — the job *result* must not, and
        // the precombine counter still counts raw emissions.
        let input = partition_evenly(lines(&["a a a a b", "a a b b b"]), 2);
        let build = |threshold: Option<usize>| {
            let mapper = ClosureMapper::new(
                |_: &(), line: &String, ctx: &mut MapContext<String, u64, ()>| {
                    for w in line.split_whitespace() {
                        ctx.emit(w.to_string(), 1);
                    }
                },
            );
            let reducer = ClosureReducer::new(
                |group: Group<'_, String, u64>, ctx: &mut ReduceContext<String, u64>| {
                    ctx.emit(group.key().clone(), group.values().sum());
                },
            );
            Job::builder("wc+spill", mapper, reducer)
                .reduce_tasks(2)
                .parallelism(1)
                .combiner(crate::combiner::sum_u64_combiner())
                .spill_threshold(threshold)
                .build()
        };
        let plain = build(None).run(input.clone()).unwrap();
        for threshold in [1usize, 2, 3, 5] {
            let spilled = build(Some(threshold)).run(input.clone()).unwrap();
            assert_eq!(
                spilled.reduce_outputs, plain.reduce_outputs,
                "threshold {threshold} changed the combined result"
            );
            assert_eq!(
                spilled
                    .metrics
                    .counters
                    .get(counters::MAP_OUTPUT_RECORDS_PRECOMBINE),
                10,
                "precombine counter counts raw emissions at any threshold"
            );
            // Per-seal combining can only keep *more* pairs than the
            // one-shot full-bucket combine.
            assert!(spilled.metrics.map_output_records() >= plain.metrics.map_output_records());
        }
    }

    #[test]
    fn spilled_runs_reach_the_reducer_in_emission_order() {
        // Single key, threshold 1: every record becomes its own sealed
        // run, and the reducer must still see (map task, emission)
        // order — the multi-run extension of the stability contract.
        let mapper =
            ClosureMapper::new(|_: &(), v: &String, ctx: &mut MapContext<u8, String, ()>| {
                ctx.emit(0u8, v.clone());
            });
        let reducer = ClosureReducer::new(
            |group: Group<'_, u8, String>, ctx: &mut ReduceContext<(), Vec<String>>| {
                ctx.emit((), group.values().cloned().collect());
            },
        );
        let input = vec![
            vec![((), "m0-a".to_string()), ((), "m0-b".to_string())],
            vec![((), "m1-a".to_string())],
            vec![((), "m2-a".to_string()), ((), "m2-b".to_string())],
        ];
        let job = Job::builder("stable-spill", mapper, reducer)
            .reduce_tasks(1)
            .parallelism(4)
            .spill_threshold(Some(1))
            .build();
        let out = job.run(input).unwrap();
        assert_eq!(
            out.records().next().expect("one record").1,
            vec!["m0-a", "m0-b", "m1-a", "m2-a", "m2-b"]
        );
        assert_eq!(out.metrics.spilled_runs(), 5, "one sealed run per record");
        assert_eq!(out.metrics.map_peak_resident_records(), 1);
    }

    #[test]
    fn spill_threshold_survives_pooled_and_capped_execution() {
        let input = partition_evenly(lines(&["x y z", "y z", "z z y x", "w", "x w y"]), 3);
        let reference = wordcount_job(4, 1).run(input.clone()).unwrap();
        let pool = WorkerPool::new(4);
        let job = wordcount_job(4, 2).with_spill_threshold(Some(2));
        let pooled = job.run_on(&pool, input.clone()).unwrap();
        assert_eq!(pooled.reduce_outputs, reference.reduce_outputs);
        for cap in [1usize, 2, 3, 8] {
            let capped = job.run_on_capped(&pool, cap, input.clone()).unwrap();
            assert_eq!(
                capped.reduce_outputs, reference.reduce_outputs,
                "cap {cap} diverged"
            );
        }
        assert_eq!(pool.threads_spawned(), 4, "caps must not spawn threads");
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_spill_threshold_is_rejected() {
        let _ = wordcount_job(1, 1).with_spill_threshold(Some(0));
    }

    #[test]
    fn stable_shuffle_keeps_map_task_order_for_equal_keys() {
        // All records share one key; values must arrive in (map task,
        // emission) order at the single reduce task.
        let mapper =
            ClosureMapper::new(|_: &(), v: &String, ctx: &mut MapContext<u8, String, ()>| {
                ctx.emit(0u8, v.clone());
            });
        let reducer = ClosureReducer::new(
            |group: Group<'_, u8, String>, ctx: &mut ReduceContext<(), Vec<String>>| {
                ctx.emit((), group.values().cloned().collect());
            },
        );
        let input = vec![
            vec![((), "m0-a".to_string()), ((), "m0-b".to_string())],
            vec![((), "m1-a".to_string())],
            vec![((), "m2-a".to_string()), ((), "m2-b".to_string())],
        ];
        let job = Job::builder("stable", mapper, reducer)
            .reduce_tasks(1)
            .parallelism(4)
            .build();
        let out = job.run(input).unwrap();
        assert_eq!(
            out.records().next().expect("one record").1,
            vec!["m0-a", "m0-b", "m1-a", "m2-a", "m2-b"]
        );
    }

    #[test]
    fn custom_partitioner_routes_by_key_component() {
        let mapper = ClosureMapper::new(
            |_: &(), v: &u32, ctx: &mut MapContext<(usize, u32), u32, ()>| {
                ctx.emit(((*v % 2) as usize, *v), *v);
            },
        );
        let reducer = ClosureReducer::new(
            |group: Group<'_, (usize, u32), u32>, ctx: &mut ReduceContext<usize, u32>| {
                for v in group.values() {
                    ctx.emit(group.key().0, *v);
                }
            },
        );
        let job = Job::builder("route", mapper, reducer)
            .reduce_tasks(2)
            .parallelism(1)
            .partitioner(FnPartitioner::new(|k: &(usize, u32), r: usize| k.0 % r))
            .build();
        let input = partition_evenly((0..10u32).map(|v| ((), v)).collect(), 3);
        let out = job.run(input).unwrap();
        // Reduce task 0 got evens, task 1 got odds.
        assert!(out.reduce_outputs[0].iter().all(|(_, v)| v % 2 == 0));
        assert!(out.reduce_outputs[1].iter().all(|(_, v)| v % 2 == 1));
        assert_eq!(out.reduce_outputs[0].len(), 5);
        assert_eq!(out.reduce_outputs[1].len(), 5);
    }

    #[test]
    fn out_of_range_partition_is_an_error() {
        let mapper = ClosureMapper::new(|_: &(), v: &u32, ctx: &mut MapContext<u32, u32, ()>| {
            ctx.emit(*v, *v);
        });
        let reducer = ClosureReducer::new(
            |group: Group<'_, u32, u32>, ctx: &mut ReduceContext<u32, u32>| {
                ctx.emit(*group.key(), group.len() as u32);
            },
        );
        let job = Job::builder("bad", mapper, reducer)
            .reduce_tasks(2)
            .parallelism(1)
            .partitioner(FnPartitioner::new(|_: &u32, _| 99))
            .build();
        let err = job.run(vec![vec![((), 1u32)]]).unwrap_err();
        assert_eq!(
            err,
            MrError::PartitionOutOfRange {
                got: 99,
                num_reduce_tasks: 2
            }
        );
    }

    #[test]
    fn empty_input_partitions_still_run() {
        // m partitions where some are empty: valid (paper's BDM may
        // contain empty partitions for a block).
        let input = vec![lines(&["a"]).remove(0)]
            .into_iter()
            .map(|kv| vec![kv])
            .collect::<Vec<_>>();
        let mut input = input;
        input.push(vec![]); // empty partition
        let out = wordcount_job(2, 1).run(input).unwrap();
        assert_eq!(
            out.records().cloned().collect::<Vec<_>>(),
            vec![("a".to_string(), 1)]
        );
        assert_eq!(out.metrics.map_tasks.len(), 2);
    }

    #[test]
    fn no_input_is_an_error() {
        let err = wordcount_job(1, 1).run(vec![]).unwrap_err();
        assert_eq!(err, MrError::NoMapTasks);
    }

    #[test]
    fn zero_reduce_tasks_is_an_error() {
        let err = wordcount_job(0, 1)
            .run(partition_evenly(lines(&["a"]), 1))
            .unwrap_err();
        assert_eq!(err, MrError::NoReduceTasks);
    }

    #[test]
    fn shuffle_wall_excludes_the_sort() {
        // A job big enough that sorting takes measurable time: the
        // coordinator's shuffle share must stay a tiny fraction of the
        // total wall because sorting/merging runs inside tasks.
        let input = partition_evenly(
            (0..20_000u32)
                .map(|v| ((), format!("w{}", v % 997)))
                .collect(),
            8,
        );
        let out = wordcount_job(4, 2).run(input).unwrap();
        assert!(
            out.metrics.shuffle_wall <= out.metrics.wall,
            "coordinator shuffle {:?} cannot exceed job wall {:?}",
            out.metrics.shuffle_wall,
            out.metrics.wall
        );
        let reduce_wall: std::time::Duration =
            out.metrics.reduce_tasks.iter().map(|t| t.wall).sum();
        assert!(
            reduce_wall > std::time::Duration::ZERO,
            "merge cost must be attributed to reduce tasks"
        );
    }

    #[test]
    fn run_on_pool_is_byte_identical_to_transient_run() {
        let input = partition_evenly(lines(&["x y z", "y z", "z z y x", "w", "x w y"]), 3);
        let reference = wordcount_job(4, 1).run(input.clone()).unwrap();
        let pool = WorkerPool::new(4);
        for round in 0..3 {
            let pooled = wordcount_job(4, 2).run_on(&pool, input.clone()).unwrap();
            assert_eq!(
                pooled.reduce_outputs, reference.reduce_outputs,
                "round {round} diverged on the pool"
            );
        }
        assert_eq!(
            pool.threads_spawned(),
            4,
            "three jobs must share the four construction-time threads"
        );
        assert!(pool.tasks_executed() > 0);
    }

    #[test]
    fn fail_once_retry_is_byte_identical_at_every_kind_and_parallelism() {
        use crate::fault::{FaultKind, FaultPlan, FaultPolicy};
        let input = lines(&["x y z", "y z", "z z y x", "w", "x w y"]);
        let reference = wordcount_job(4, 1)
            .run(partition_evenly(input.clone(), 3))
            .unwrap();
        for kind in [FaultKind::Map, FaultKind::Sort, FaultKind::Reduce] {
            for parallelism in [1usize, 2, 4, 8] {
                let plan = FaultPlan::new().silence_injected_panics().panic_at(
                    FaultPlan::ANY_JOB,
                    kind,
                    0,
                    1,
                    "injected once",
                );
                let out = wordcount_job(4, parallelism)
                    .with_fault_policy(FaultPolicy::retry(2))
                    .with_fault_plan(plan)
                    .run(partition_evenly(input.clone(), 3))
                    .unwrap();
                assert_eq!(
                    out.reduce_outputs, reference.reduce_outputs,
                    "{kind} fault at parallelism {parallelism} changed the output"
                );
                assert_eq!(out.metrics.task_failures, 1, "{kind} x{parallelism}");
                assert_eq!(out.metrics.tasks_retried, 1, "{kind} x{parallelism}");
            }
        }
    }

    #[test]
    fn exhausted_retries_surface_as_typed_error_not_panic() {
        use crate::fault::{FaultKind, FaultPlan, FaultPolicy};
        let input = partition_evenly(lines(&["a b", "c d"]), 2);
        let plan = FaultPlan::new().silence_injected_panics().panic_always(
            "wc",
            FaultKind::Reduce,
            1,
            "always dies",
        );
        let err = wordcount_job(2, 2)
            .with_fault_policy(FaultPolicy::retry(3))
            .with_fault_plan(plan)
            .run(input)
            .unwrap_err();
        let MrError::TaskFailed(task_error) = err else {
            panic!("expected TaskFailed, got {err:?}");
        };
        assert_eq!(task_error.job, "wc");
        assert_eq!(task_error.kind, FaultKind::Reduce);
        assert_eq!(task_error.task, 1);
        assert_eq!(task_error.attempts, 3);
        assert_eq!(task_error.payload, "always dies");
    }

    #[test]
    fn fail_fast_catches_the_panic_at_the_boundary() {
        use crate::fault::{FaultKind, FaultPlan};
        // Default policy: no retry, but still a typed error — the
        // panic must not unwind out of `run`.
        let plan = FaultPlan::new().silence_injected_panics().panic_at(
            "wc",
            FaultKind::Map,
            0,
            1,
            "first failure",
        );
        let err = wordcount_job(2, 2)
            .with_fault_plan(plan)
            .run(partition_evenly(lines(&["a b", "c"]), 2))
            .unwrap_err();
        let MrError::TaskFailed(task_error) = err else {
            panic!("expected TaskFailed, got {err:?}");
        };
        assert_eq!(task_error.attempts, 1);
        assert_eq!(task_error.kind, FaultKind::Map);
    }

    #[test]
    fn pool_survives_a_failed_job_and_reruns_byte_identically() {
        use crate::fault::{FaultKind, FaultPlan, FaultPolicy};
        let input = partition_evenly(lines(&["x y z", "y z", "w w"]), 3);
        let pool = WorkerPool::new(4);
        let reference = wordcount_job(4, 1).run(input.clone()).unwrap();
        let failing = wordcount_job(4, 2)
            .with_fault_policy(FaultPolicy::retry(2))
            .with_fault_plan(FaultPlan::new().silence_injected_panics().panic_always(
                FaultPlan::ANY_JOB,
                FaultKind::Map,
                1,
                "doomed",
            ));
        for _ in 0..2 {
            assert!(matches!(
                failing.run_on(&pool, input.clone()).unwrap_err(),
                MrError::TaskFailed(_)
            ));
        }
        // The same pool immediately completes a clean job with output
        // identical to the transient reference and no new threads.
        let out = wordcount_job(4, 2).run_on(&pool, input.clone()).unwrap();
        assert_eq!(out.reduce_outputs, reference.reduce_outputs);
        assert_eq!(pool.threads_spawned(), 4, "failures must not spawn threads");
    }

    #[test]
    fn straggler_deadline_speculates_and_keeps_output_identical() {
        use crate::fault::{FaultKind, FaultPlan, FaultPolicy};
        use std::time::Duration;
        let input = lines(&["x y z", "y z", "z z y x", "w", "x w y"]);
        let reference = wordcount_job(2, 1)
            .run(partition_evenly(input.clone(), 3))
            .unwrap();
        let pool = WorkerPool::new(4);
        // Map task 0's first attempt stalls 300ms; the 25ms deadline
        // launches a twin (attempt 2, no delay) that wins.
        let job = wordcount_job(2, 4)
            .with_fault_policy(
                FaultPolicy::retry(2).with_task_deadline(Some(Duration::from_millis(25))),
            )
            .with_fault_plan(FaultPlan::new().delay_at(
                FaultPlan::ANY_JOB,
                FaultKind::Map,
                0,
                1,
                Duration::from_millis(300),
            ));
        let out = job
            .run_on(&pool, partition_evenly(input.clone(), 3))
            .unwrap();
        assert_eq!(out.reduce_outputs, reference.reduce_outputs);
        assert_eq!(out.metrics.speculative_launched, 1);
        assert_eq!(
            out.metrics.speculative_won, 1,
            "the clean twin must beat a 300ms straggler under a 25ms deadline"
        );
        assert_eq!(out.metrics.task_failures, 0);
    }

    #[test]
    fn metrics_record_per_task_data() {
        let input = partition_evenly(lines(&["a b", "c d e", "f"]), 3);
        let out = wordcount_job(2, 1).run(input).unwrap();
        assert_eq!(out.metrics.map_tasks.len(), 3);
        assert_eq!(out.metrics.reduce_tasks.len(), 2);
        assert_eq!(out.metrics.map_tasks[0].records_in, 1);
        assert_eq!(out.metrics.map_tasks[1].records_out, 3);
        let group_total: u64 = out
            .metrics
            .reduce_tasks
            .iter()
            .map(|t| t.counter(counters::REDUCE_INPUT_GROUPS))
            .sum();
        assert_eq!(group_total, 6, "six distinct words -> six groups");
    }
}
