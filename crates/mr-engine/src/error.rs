//! Engine configuration and execution errors.

use std::fmt;

use crate::fault::TaskError;

/// Errors surfaced by [`crate::engine::Job::run`] and helpers.
///
/// User map/reduce functions are infallible by construction (mirroring
/// the paper's pseudo-code); most errors here are configuration or
/// input-shape problems detected before any task runs. The exception
/// is [`MrError::TaskFailed`]: a task *panic* caught at the task
/// boundary whose retry budget (see
/// [`FaultPolicy`](crate::fault::FaultPolicy)) ran out — the one error
/// produced mid-execution, and always instead of a propagated panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// A job was configured with zero reduce tasks.
    NoReduceTasks,
    /// A job received an empty list of input partitions (zero map tasks).
    NoMapTasks,
    /// The partitioner returned an out-of-range reduce task index.
    PartitionOutOfRange {
        /// Index the partitioner produced.
        got: usize,
        /// Number of configured reduce tasks.
        num_reduce_tasks: usize,
    },
    /// `parallelism` was zero.
    ZeroParallelism,
    /// A workflow stage received input whose partitioning diverges
    /// from the partitioning established earlier in the workflow.
    ///
    /// The paper's multi-job pattern (Figure 2) requires every chained
    /// job to see the *same* partitioning of the data as its
    /// predecessor ("by prohibiting the splitting of input files, it
    /// is ensured that the second MR job receives the same partitioning
    /// of the input data as the first job"); the
    /// [`crate::workflow::Workflow`] layer enforces that invariant and
    /// reports violations through this variant instead of scattered
    /// debug assertions.
    StageShapeMismatch {
        /// `workflow/stage` path of the offending stage.
        stage: String,
        /// Index of the first diverging partition; `None` when the
        /// partition *counts* themselves differ.
        partition: Option<usize>,
        /// Expected partitions (`partition == None`) or records in
        /// the diverging partition.
        expected: usize,
        /// Observed value.
        got: usize,
    },
    /// A task panicked on every allowed attempt; the payload names the
    /// job, stage, task kind/index, attempt count, and panic message.
    TaskFailed(TaskError),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::NoReduceTasks => write!(f, "job configured with zero reduce tasks"),
            MrError::NoMapTasks => write!(f, "job received no input partitions"),
            MrError::PartitionOutOfRange {
                got,
                num_reduce_tasks,
            } => write!(
                f,
                "partitioner returned reduce task {got} but only {num_reduce_tasks} exist"
            ),
            MrError::ZeroParallelism => write!(f, "parallelism must be at least 1"),
            MrError::StageShapeMismatch {
                stage,
                partition,
                expected,
                got,
            } => match partition {
                None => write!(
                    f,
                    "stage `{stage}` received {got} input partitions but the workflow \
                     established {expected} — chained jobs must see the same partitioning"
                ),
                Some(p) => write!(
                    f,
                    "stage `{stage}` partition {p} holds {got} records where {expected} \
                     were expected — the partitioning drifted between stages"
                ),
            },
            MrError::TaskFailed(task_error) => write!(f, "{task_error}"),
        }
    }
}

impl std::error::Error for MrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(MrError::NoReduceTasks.to_string().contains("zero reduce"));
        assert!(MrError::NoMapTasks.to_string().contains("no input"));
        let e = MrError::PartitionOutOfRange {
            got: 9,
            num_reduce_tasks: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        assert!(MrError::ZeroParallelism.to_string().contains("at least 1"));
        let e = MrError::StageShapeMismatch {
            stage: "er/match".into(),
            partition: None,
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("er/match"));
        assert!(e.to_string().contains("same partitioning"));
        let e = MrError::StageShapeMismatch {
            stage: "er/match".into(),
            partition: Some(1),
            expected: 5,
            got: 4,
        };
        assert!(e.to_string().contains("partition 1"));
        let e = MrError::TaskFailed(crate::fault::TaskError {
            job: "bdm".into(),
            stage: Some("er-BlockSplit/bdm".into()),
            kind: crate::fault::FaultKind::Map,
            task: 2,
            attempts: 3,
            payload: "boom".into(),
        });
        for needle in [
            "bdm",
            "er-BlockSplit/bdm",
            "map task 2",
            "3 attempts",
            "boom",
        ] {
            assert!(e.to_string().contains(needle), "missing {needle}: {e}");
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MrError::NoReduceTasks, MrError::NoReduceTasks);
        assert_ne!(MrError::NoReduceTasks, MrError::NoMapTasks);
    }
}
