//! Engine configuration and execution errors.

use std::fmt;

/// Errors surfaced by [`crate::engine::Job::run`] and helpers.
///
/// User map/reduce functions are infallible by construction (mirroring
/// the paper's pseudo-code); every error here is a configuration or
/// input-shape problem detected before any task runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// A job was configured with zero reduce tasks.
    NoReduceTasks,
    /// A job received an empty list of input partitions (zero map tasks).
    NoMapTasks,
    /// The partitioner returned an out-of-range reduce task index.
    PartitionOutOfRange {
        /// Index the partitioner produced.
        got: usize,
        /// Number of configured reduce tasks.
        num_reduce_tasks: usize,
    },
    /// `parallelism` was zero.
    ZeroParallelism,
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::NoReduceTasks => write!(f, "job configured with zero reduce tasks"),
            MrError::NoMapTasks => write!(f, "job received no input partitions"),
            MrError::PartitionOutOfRange {
                got,
                num_reduce_tasks,
            } => write!(
                f,
                "partitioner returned reduce task {got} but only {num_reduce_tasks} exist"
            ),
            MrError::ZeroParallelism => write!(f, "parallelism must be at least 1"),
        }
    }
}

impl std::error::Error for MrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(MrError::NoReduceTasks.to_string().contains("zero reduce"));
        assert!(MrError::NoMapTasks.to_string().contains("no input"));
        let e = MrError::PartitionOutOfRange {
            got: 9,
            num_reduce_tasks: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        assert!(MrError::ZeroParallelism.to_string().contains("at least 1"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MrError::NoReduceTasks, MrError::NoReduceTasks);
        assert_ne!(MrError::NoReduceTasks, MrError::NoMapTasks);
    }
}
