//! Optional per-map-task combiner.
//!
//! The paper's footnote 2 suggests "a combine function that aggregates
//! the frequencies of the blocking keys per map task" as a BDM-job
//! optimization; this module provides exactly that machinery.
//!
//! Semantics follow Hadoop's contract: the combiner runs over the map
//! task's local output, on groups of keys that compare equal under the
//! job's *sort* comparator, and must be an associative + commutative
//! reduction of values for a fixed key. The engine applies it once per
//! **seal** — once per map task without a spill threshold, once per
//! spill with one (exactly Hadoop's "zero or more applications per
//! spill" contract; any number of applications must be legal, and our
//! tests assert idempotence of a second application for the shipped
//! combiners plus result equality across spill thresholds).
//!
//! Like Hadoop's spill combiner, the engine combines *per partition
//! bucket*: map output is partitioned first, each sealed bucket is
//! stable-sorted once, and [`combine_sorted_run`] then reduces
//! adjacent equal-key groups in a single pass — the bucket sort the
//! shuffle needs anyway doubles as the combiner's grouping sort, so
//! each record is sorted exactly once.

use std::sync::Arc;

/// Reduces all values of one locally sorted key group to fewer values.
///
/// `combine(key, values)` returns the replacement values (commonly a
/// single element).
pub type Combiner<K, V> = Arc<dyn Fn(&K, Vec<V>) -> Vec<V> + Send + Sync>;

/// A combiner that sums `u64` values per key — the word-count /
/// BDM-frequency combiner.
pub fn sum_u64_combiner<K>() -> Combiner<K, u64> {
    Arc::new(|_k: &K, values: Vec<u64>| vec![values.into_iter().sum()])
}

/// A combiner that keeps only the first value per key (dedup).
pub fn first_value_combiner<K, V: Clone + Send + Sync + 'static>() -> Combiner<K, V> {
    Arc::new(|_k: &K, mut values: Vec<V>| {
        values.truncate(1);
        values
    })
}

/// Applies `combiner` to *unsorted* map output: sorts a copy under
/// `sort_cmp`, then combines adjacent equal-key groups. A convenience
/// for testing combiners in isolation — the engine itself partitions
/// first and calls [`combine_sorted_run`] on each already-sorted
/// bucket, so map records are sorted exactly once.
pub fn apply_combiner<K: Clone, V: Clone>(
    output: Vec<(K, V)>,
    sort_cmp: &crate::comparator::KeyCmp<K>,
    combiner: &Combiner<K, V>,
) -> Vec<(K, V)> {
    let mut sorted = output;
    sorted.sort_by(|a, b| sort_cmp(&a.0, &b.0));
    combine_sorted_run(sorted, sort_cmp, combiner)
}

/// Reduces a run already sorted under `sort_cmp` in one pass: adjacent
/// equal-key groups are replaced by the combiner's output, keyed by the
/// group's first key. The result is still sorted under `sort_cmp`
/// (group keys appear in the input's sorted order), so a combined
/// bucket remains a valid shuffle run.
pub fn combine_sorted_run<K: Clone, V>(
    sorted: Vec<(K, V)>,
    sort_cmp: &crate::comparator::KeyCmp<K>,
    combiner: &Combiner<K, V>,
) -> Vec<(K, V)> {
    if sorted.is_empty() {
        return sorted;
    }
    let mut result: Vec<(K, V)> = Vec::with_capacity(sorted.len());
    let mut iter = sorted.into_iter();
    let (first_k, first_v) = iter.next().expect("non-empty");
    let mut group_key = first_k;
    let mut group_vals = vec![first_v];
    for (k, v) in iter {
        if sort_cmp(&k, &group_key) == std::cmp::Ordering::Equal {
            group_vals.push(v);
        } else {
            let combined = combiner(&group_key, std::mem::take(&mut group_vals));
            result.extend(combined.into_iter().map(|v| (group_key.clone(), v)));
            group_key = k;
            group_vals.push(v);
        }
    }
    let combined = combiner(&group_key, group_vals);
    result.extend(combined.into_iter().map(|v| (group_key.clone(), v)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::natural_order;

    #[test]
    fn sum_combiner_aggregates_per_key() {
        let out = vec![("b", 1u64), ("a", 2), ("b", 3), ("a", 4), ("c", 5)];
        let combined = apply_combiner(out, &natural_order(), &sum_u64_combiner());
        assert_eq!(combined, vec![("a", 6), ("b", 4), ("c", 5)]);
    }

    #[test]
    fn combining_twice_is_idempotent() {
        let out = vec![("x", 1u64), ("x", 1), ("y", 7)];
        let once = apply_combiner(out, &natural_order(), &sum_u64_combiner());
        let twice = apply_combiner(once.clone(), &natural_order(), &sum_u64_combiner());
        assert_eq!(once, twice);
    }

    #[test]
    fn first_value_combiner_dedups() {
        let out = vec![(1u32, "a"), (1, "b"), (2, "c")];
        let combined = apply_combiner(out, &natural_order(), &first_value_combiner());
        assert_eq!(combined, vec![(1, "a"), (2, "c")]);
    }

    #[test]
    fn combine_sorted_run_is_single_pass_and_stays_sorted() {
        let sorted = vec![("a", 2u64), ("a", 4), ("b", 1), ("b", 3), ("c", 5)];
        let combined = combine_sorted_run(sorted, &natural_order(), &sum_u64_combiner());
        assert_eq!(combined, vec![("a", 6), ("b", 4), ("c", 5)]);
        assert!(
            combined.windows(2).all(|w| w[0].0 <= w[1].0),
            "combined bucket must remain a valid sorted run"
        );
    }

    #[test]
    fn empty_output_passes_through() {
        let out: Vec<(u8, u64)> = vec![];
        let combined = apply_combiner(out, &natural_order(), &sum_u64_combiner());
        assert!(combined.is_empty());
    }
}
