//! Optional per-map-task combiner.
//!
//! The paper's footnote 2 suggests "a combine function that aggregates
//! the frequencies of the blocking keys per map task" as a BDM-job
//! optimization; this module provides exactly that machinery.
//!
//! Semantics follow Hadoop's contract: the combiner runs over the map
//! task's local output, on groups of keys that compare equal under the
//! job's *sort* comparator, and must be an associative + commutative
//! reduction of values for a fixed key. The engine applies it once per
//! map task (Hadoop may apply it zero or more times per spill — any
//! number of applications must be legal; our tests assert idempotence
//! of a second application for the shipped combiners).

use std::sync::Arc;

/// Reduces all values of one locally sorted key group to fewer values.
///
/// `combine(key, values)` returns the replacement values (commonly a
/// single element).
pub type Combiner<K, V> = Arc<dyn Fn(&K, Vec<V>) -> Vec<V> + Send + Sync>;

/// A combiner that sums `u64` values per key — the word-count /
/// BDM-frequency combiner.
pub fn sum_u64_combiner<K>() -> Combiner<K, u64> {
    Arc::new(|_k: &K, values: Vec<u64>| vec![values.into_iter().sum()])
}

/// A combiner that keeps only the first value per key (dedup).
pub fn first_value_combiner<K, V: Clone + Send + Sync + 'static>() -> Combiner<K, V> {
    Arc::new(|_k: &K, mut values: Vec<V>| {
        values.truncate(1);
        values
    })
}

/// Applies `combiner` to a map task's output, grouping equal keys under
/// `sort_cmp`. Stable: group order follows first occurrence in sorted
/// order; the function sorts a copy of the output.
pub(crate) fn apply_combiner<K: Clone, V: Clone>(
    output: Vec<(K, V)>,
    sort_cmp: &crate::comparator::KeyCmp<K>,
    combiner: &Combiner<K, V>,
) -> Vec<(K, V)> {
    if output.is_empty() {
        return output;
    }
    let mut sorted = output;
    sorted.sort_by(|a, b| sort_cmp(&a.0, &b.0));
    let mut result: Vec<(K, V)> = Vec::with_capacity(sorted.len());
    let mut iter = sorted.into_iter();
    let (first_k, first_v) = iter.next().expect("non-empty");
    let mut group_key = first_k;
    let mut group_vals = vec![first_v];
    for (k, v) in iter {
        if sort_cmp(&k, &group_key) == std::cmp::Ordering::Equal {
            group_vals.push(v);
        } else {
            let combined = combiner(&group_key, std::mem::take(&mut group_vals));
            result.extend(combined.into_iter().map(|v| (group_key.clone(), v)));
            group_key = k;
            group_vals.push(v);
        }
    }
    let combined = combiner(&group_key, group_vals);
    result.extend(combined.into_iter().map(|v| (group_key.clone(), v)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::natural_order;

    #[test]
    fn sum_combiner_aggregates_per_key() {
        let out = vec![("b", 1u64), ("a", 2), ("b", 3), ("a", 4), ("c", 5)];
        let combined = apply_combiner(out, &natural_order(), &sum_u64_combiner());
        assert_eq!(combined, vec![("a", 6), ("b", 4), ("c", 5)]);
    }

    #[test]
    fn combining_twice_is_idempotent() {
        let out = vec![("x", 1u64), ("x", 1), ("y", 7)];
        let once = apply_combiner(out, &natural_order(), &sum_u64_combiner());
        let twice = apply_combiner(once.clone(), &natural_order(), &sum_u64_combiner());
        assert_eq!(once, twice);
    }

    #[test]
    fn first_value_combiner_dedups() {
        let out = vec![(1u32, "a"), (1, "b"), (2, "c")];
        let combined = apply_combiner(out, &natural_order(), &first_value_combiner());
        assert_eq!(combined, vec![(1, "a"), (2, "c")]);
    }

    #[test]
    fn empty_output_passes_through() {
        let out: Vec<(u8, u64)> = vec![];
        let combined = apply_combiner(out, &natural_order(), &sum_u64_combiner());
        assert!(combined.is_empty());
    }
}
