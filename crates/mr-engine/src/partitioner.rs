//! The `part` function: routing intermediate keys to reduce tasks.
//!
//! The paper's load-balancing strategies hinge on partitioners that
//! inspect *only a component* of a composite key (e.g. only the reduce
//! task index of `reduceIndex.blockIndex.split`, or only the range
//! index of `rangeIndex.blockIndex.entityIndex`), while sorting and
//! grouping consider more of the key.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Assigns intermediate keys to reduce tasks.
pub trait Partitioner<K>: Send + Sync {
    /// Returns the reduce task index in `0..num_reduce_tasks` for `key`.
    fn partition(&self, key: &K, num_reduce_tasks: usize) -> usize;
}

/// Hadoop's default: `hash(key) mod r`.
///
/// This is what the paper's *Basic* strategy uses on the blocking key —
/// and precisely why Basic collapses under skew: a hash treats a block
/// of 20 000 entities the same as a block of 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// Stable hash for a key (used by tests to predict placements).
    pub fn bucket<K: Hash>(key: &K, num_reduce_tasks: usize) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % num_reduce_tasks as u64) as usize
    }
}

impl<K: Hash + Send + Sync> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, num_reduce_tasks: usize) -> usize {
        Self::bucket(key, num_reduce_tasks)
    }
}

/// Partitioner from a plain function or closure over the key.
///
/// The function receives the key and `r` and must return an index in
/// `0..r`; the engine validates the range at runtime.
#[derive(Clone)]
pub struct FnPartitioner<K> {
    f: Arc<dyn Fn(&K, usize) -> usize + Send + Sync>,
}

impl<K> FnPartitioner<K> {
    /// Wraps `f` as a partitioner.
    pub fn new(f: impl Fn(&K, usize) -> usize + Send + Sync + 'static) -> Self {
        Self { f: Arc::new(f) }
    }
}

impl<K> std::fmt::Debug for FnPartitioner<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnPartitioner")
    }
}

impl<K: Send + Sync> Partitioner<K> for FnPartitioner<K> {
    fn partition(&self, key: &K, num_reduce_tasks: usize) -> usize {
        (self.f)(key, num_reduce_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner;
        for key in ["aaa", "bbb", "zzz", ""] {
            let a = p.partition(&key, 7);
            let b = p.partition(&key, 7);
            assert_eq!(a, b, "same key must land on same reduce task");
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        // Not a statistical test — just checks we don't map everything
        // to a single bucket.
        let p = HashPartitioner;
        let buckets: std::collections::HashSet<usize> =
            (0..100u32).map(|i| p.partition(&i, 10)).collect();
        assert!(buckets.len() > 3);
    }

    #[test]
    fn fn_partitioner_uses_only_the_requested_component() {
        // Composite key (reduce_index, payload): route on index only,
        // the pattern used by BlockSplit and PairRange.
        let p = FnPartitioner::new(|key: &(usize, &str), r: usize| key.0 % r);
        assert_eq!(p.partition(&(4, "ignored"), 3), 1);
        assert_eq!(p.partition(&(4, "also-ignored"), 3), 1);
        assert_eq!(p.partition(&(2, "x"), 3), 2);
    }
}
