//! Multi-stage dataflows: the workflow layer.
//!
//! Every major scenario of this reproduction follows the same shape
//! (the paper's Figure 2): a preprocessing MR job whose *side output*
//! (annotated entities, written per map task) becomes the —
//! identically partitioned — input of one or more follow-up jobs. The
//! ER driver (BDM job → matching job), the Sorted Neighborhood driver
//! (distribution job → window job → optional stitch job), and every
//! future multi-job scenario compose [`Workflow`] stages instead of
//! hand-rolling the glue:
//!
//! * **Chaining** — [`Workflow::chained_stage`] runs a job whose input
//!   must share the partitioning the workflow established with its
//!   first stage. Side outputs are collected per map task, so feeding
//!   them to the next chained stage guarantees the follow-up job sees
//!   the *same* partitioning of the data ("by prohibiting the
//!   splitting of input files, it is ensured that the second MR job
//!   receives the same partitioning of the input data as the first
//!   job"). The invariant is enforced by the layer — a violation is
//!   the typed [`MrError::StageShapeMismatch`], not a debug assertion.
//! * **Repartitioning** — some stages legitimately re-shape the data
//!   (JobSN's stitch job runs over one partition per range boundary);
//!   [`Workflow::repartitioned_stage`] runs them without touching the
//!   established shape.
//! * **Metrics roll-up** — each stage's [`JobMetrics`] is recorded in
//!   execution order; [`Workflow::finish`] rolls them into a
//!   [`WorkflowMetrics`]: per-stage walls, the end-to-end wall
//!   (including driver glue between stages), merged counters, and the
//!   peak-memory gauges of the streaming reduce path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::counters::CounterSet;
use crate::engine::{Job, JobOutput};
use crate::error::MrError;
use crate::fault::{FaultPlan, FaultPolicy};
use crate::input::Partitions;
use crate::mapper::Mapper;
use crate::metrics::JobMetrics;
use crate::pool::{BatchTag, WorkerPool};
use crate::reducer::Reducer;
use crate::trace::{TraceEventData, TraceSink, Tracer};

/// Checks that two partitionings have identical shape (same number of
/// partitions, same number of records per partition); a mismatch is
/// reported as the typed [`MrError::StageShapeMismatch`] naming
/// `context` and the first divergence.
///
/// The workflow layer itself enforces only partition-*count* equality
/// when chaining (annotation stages may drop keyless entities or
/// replicate multi-pass entities, so per-partition record counts are
/// not invariant in general); this full check is for callers whose
/// stages are record-preserving.
pub fn ensure_same_shape<K1, V1, K2, V2>(
    context: &str,
    expected: &Partitions<K1, V1>,
    got: &Partitions<K2, V2>,
) -> Result<(), MrError> {
    if expected.len() != got.len() {
        return Err(MrError::StageShapeMismatch {
            stage: context.to_string(),
            partition: None,
            expected: expected.len(),
            got: got.len(),
        });
    }
    for (i, (e, g)) in expected.iter().zip(got.iter()).enumerate() {
        if e.len() != g.len() {
            return Err(MrError::StageShapeMismatch {
                stage: context.to_string(),
                partition: Some(i),
                expected: e.len(),
                got: g.len(),
            });
        }
    }
    Ok(())
}

/// A running multi-stage dataflow: executes jobs as stages, enforces
/// the same-partitioning invariant between chained stages, and
/// collects per-stage metrics. Call [`Workflow::finish`] when the last
/// stage completed to obtain the rolled-up [`WorkflowMetrics`].
pub struct Workflow {
    name: String,
    /// Tenant this workflow's stage batches are attributed to on the
    /// shared pool's ready-queue — the identity the dispatcher's
    /// [`crate::pool::SchedulingPolicy::FairShare`] balances across
    /// and [`crate::pool::PoolStats::per_tenant_inflight`] reports.
    /// Defaults to `"default"`; purely operational (never changes
    /// output).
    tenant: Arc<str>,
    started: Instant,
    /// Partition count established by the first chained stage.
    partitions: Option<usize>,
    stages: Vec<JobMetrics>,
    /// Persistent worker pool the stages execute on; `None` runs each
    /// stage on its own transient scoped pool (the historical path).
    pool: Option<Arc<WorkerPool>>,
    /// Per-workflow cap on concurrently used pool slots; `None` uses
    /// the whole pool. Only meaningful for pool-bound workflows.
    parallelism_cap: Option<usize>,
    /// Workflow-level fault policy; overrides every stage job's own
    /// policy when set (the [`crate::runtime::Runtime`] seeds it from
    /// [`crate::runtime::RuntimeConfig::fault_policy`]).
    fault_policy: Option<FaultPolicy>,
    /// Workflow-level fault-injection plan; overrides every stage
    /// job's own plan when set.
    fault_plan: Option<FaultPlan>,
    /// Workflow-level trace sink; when set, every stage runs traced
    /// with the workflow's start instant as the shared epoch
    /// (overriding any per-job sink), and stage boundary events wrap
    /// each job's own event stream.
    trace_sink: Option<Arc<dyn TraceSink>>,
}

// Manual: `dyn TraceSink` carries no `Debug` bound.
impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workflow")
            .field("name", &self.name)
            .field("tenant", &self.tenant)
            .field("partitions", &self.partitions)
            .field("stages", &self.stages)
            .field("pool", &self.pool)
            .field("parallelism_cap", &self.parallelism_cap)
            .field("fault_policy", &self.fault_policy)
            .field("fault_plan", &self.fault_plan)
            .field("traced", &self.trace_sink.is_some())
            .finish_non_exhaustive()
    }
}

impl Workflow {
    /// Starts a workflow; the end-to-end wall clock starts here. Each
    /// stage spawns its own transient worker threads — see
    /// [`Workflow::on_pool`] (or [`crate::runtime::Runtime::workflow`])
    /// to share one persistent pool across stages and workflows.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tenant: Arc::from("default"),
            started: Instant::now(),
            partitions: None,
            stages: Vec::new(),
            pool: None,
            parallelism_cap: None,
            fault_policy: None,
            fault_plan: None,
            trace_sink: None,
        }
    }

    /// Starts a workflow whose stages all execute on `pool` — no
    /// thread is spawned per stage, and consecutive workflows given
    /// the same pool share its threads (the
    /// [`crate::runtime::Runtime`] execution mode). Output is
    /// byte-identical to the transient path.
    pub fn on_pool(name: impl Into<String>, pool: Arc<WorkerPool>) -> Self {
        Self {
            pool: Some(pool),
            ..Self::new(name)
        }
    }

    /// The workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The persistent pool this workflow is bound to, if any.
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Attributes this workflow's stage batches to `tenant` on the
    /// shared pool's ready-queue. The tenant id is what
    /// [`crate::pool::SchedulingPolicy::FairShare`] balances across,
    /// what [`crate::pool::PoolStats`] breaks inflight work down by,
    /// and what the per-tenant section of
    /// [`crate::trace::TraceReport`] aggregates on. Scheduling is
    /// purely operational: output is byte-identical under any tenant
    /// labeling.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<Arc<str>>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// The tenant this workflow's stages are attributed to
    /// (`"default"` unless [`Workflow::with_tenant`] was called).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Caps this workflow's stages to at most `cap` concurrently used
    /// pool slots — a per-run parallelism override that reuses the
    /// pool's existing threads instead of respawning a smaller pool
    /// (see [`crate::pool::WorkerPool::run_tasks_capped`]). Output is
    /// byte-identical at any cap. Effective only for pool-bound
    /// workflows; a transient workflow's stages keep their jobs'
    /// configured parallelism.
    ///
    /// # Panics
    /// If `cap` is zero.
    #[must_use]
    pub fn with_parallelism_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "parallelism cap must be at least 1");
        self.parallelism_cap = Some(cap);
        self
    }

    /// The configured parallelism cap, if any.
    pub fn parallelism_cap(&self) -> Option<usize> {
        self.parallelism_cap
    }

    /// Sets the fault policy every stage of this workflow runs under,
    /// overriding the stage jobs' own policies — how a runtime-wide
    /// retry/deadline configuration reaches jobs whose construction
    /// the workflow does not own. Retried tasks re-execute
    /// byte-identically (see [`crate::fault`]), so the policy never
    /// changes workflow output — only whether a task panic becomes a
    /// retry or a typed
    /// [`MrError::TaskFailed`].
    #[must_use]
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// The workflow-level fault policy, if one is set.
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        self.fault_policy
    }

    /// Installs a deterministic fault-injection plan for every stage
    /// of this workflow (test/bench hook), overriding the stage jobs'
    /// own plans.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The workflow-level fault-injection plan, if one is set.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Attaches a [`TraceSink`] receiving structured execution events
    /// from every stage of this workflow (see [`crate::trace`]). All
    /// stages share one timeline: event timestamps are offsets from
    /// the workflow's start instant, and each stage's job events are
    /// bracketed by
    /// [`StageStarted`](TraceEventData::StageStarted)/
    /// [`StageFinished`](TraceEventData::StageFinished). A
    /// workflow-level sink overrides any sink attached to a stage job
    /// (mirroring the fault policy/plan precedence).
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// The workflow-level trace sink, if one is set.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace_sink.as_ref()
    }

    /// Number of stages executed so far.
    pub fn stages_run(&self) -> usize {
        self.stages.len()
    }

    /// Runs `job` as the next stage over input that must share the
    /// workflow's partitioning: the first chained stage establishes
    /// the partition count, every later one (typically fed from a
    /// predecessor's side outputs) is checked against it —
    /// [`MrError::StageShapeMismatch`] on violation.
    pub fn chained_stage<M, R>(
        &mut self,
        job: &Job<M, R>,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError>
    where
        M: Mapper,
        M::KOut: Sync,
        M::VOut: Sync,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
    {
        match self.partitions {
            None => self.partitions = Some(input.len()),
            Some(expected) if expected != input.len() => {
                return Err(MrError::StageShapeMismatch {
                    stage: format!("{}/{}", self.name, job.name()),
                    partition: None,
                    expected,
                    got: input.len(),
                });
            }
            Some(_) => {}
        }
        self.execute(job, input)
    }

    /// Runs `job` as the next stage over deliberately re-partitioned
    /// input (e.g. one partition per range boundary in JobSN's stitch
    /// job); the workflow's established shape is neither checked nor
    /// changed.
    pub fn repartitioned_stage<M, R>(
        &mut self,
        job: &Job<M, R>,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError>
    where
        M: Mapper,
        M::KOut: Sync,
        M::VOut: Sync,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
    {
        self.execute(job, input)
    }

    fn execute<M, R>(
        &mut self,
        job: &Job<M, R>,
        input: Partitions<M::KIn, M::VIn>,
    ) -> Result<JobOutput<R::KOut, R::VOut, M::Side>, MrError>
    where
        M: Mapper,
        M::KOut: Sync,
        M::VOut: Sync,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
    {
        let stage = self.stages.len();
        // Every task batch this stage dispatches carries the
        // (tenant, workflow, stage) identity the operation-level
        // dispatcher schedules on, plus the job's pair-count weight
        // hint for shortest-remaining-work ordering.
        let tag = BatchTag::new(
            Arc::clone(&self.tenant),
            self.name.as_str(),
            stage,
            job.weight_hint(),
        );
        let pool = self
            .pool
            .as_ref()
            .map(|pool| (pool.as_ref(), self.parallelism_cap, tag));
        // The workflow's start instant is the shared epoch, so stage
        // and task events of consecutive stages land on one timeline.
        let tracer = self
            .trace_sink
            .as_ref()
            .map(|sink| Tracer::with_epoch(Arc::clone(sink), self.started));
        let stage_start = Instant::now();
        if let Some(t) = &tracer {
            t.emit_with(None, || TraceEventData::StageStarted {
                workflow: self.name.clone(),
                job: job.name().to_string(),
                stage,
            });
        }
        let out = job
            .run_with_overrides(
                pool,
                self.fault_policy,
                self.fault_plan.as_ref(),
                tracer.clone(),
                input,
            )
            .map_err(|e| self.identify_stage(job.name(), e))?;
        if let Some(t) = &tracer {
            t.emit_with(None, || TraceEventData::StageFinished {
                workflow: self.name.clone(),
                job: job.name().to_string(),
                stage,
                wall: stage_start.elapsed(),
            });
        }
        self.stages.push(out.metrics.clone());
        Ok(out)
    }

    /// Fills the `workflow/stage` path into a task failure bubbling up
    /// from a stage, so the error's `Display` alone identifies the
    /// workflow, stage, and task.
    fn identify_stage(&self, job_name: &str, err: MrError) -> MrError {
        match err {
            MrError::TaskFailed(mut task_error) => {
                task_error
                    .stage
                    .get_or_insert_with(|| format!("{}/{}", self.name, job_name));
                MrError::TaskFailed(task_error)
            }
            other => other,
        }
    }

    /// Completes the workflow, rolling every stage's metrics into a
    /// [`WorkflowMetrics`].
    pub fn finish(self) -> WorkflowMetrics {
        let mut counters = CounterSet::new();
        for stage in &self.stages {
            counters.merge(&stage.counters);
        }
        WorkflowMetrics {
            workflow_name: self.name,
            stages: self.stages,
            wall: self.started.elapsed(),
            counters,
        }
    }
}

/// Rolled-up metrics of a completed [`Workflow`].
#[derive(Debug, Clone)]
pub struct WorkflowMetrics {
    /// The workflow name.
    pub workflow_name: String,
    /// Per-stage job metrics, in execution order.
    pub stages: Vec<JobMetrics>,
    /// End-to-end wall clock from [`Workflow::new`] to
    /// [`Workflow::finish`] — stage walls *plus* the driver glue
    /// between stages (side-output routing, candidate assembly), so
    /// it is always at least [`WorkflowMetrics::stages_wall`].
    pub wall: Duration,
    /// Counters merged across every stage: for each counter name, the
    /// sum of the per-job totals.
    pub counters: CounterSet,
}

impl WorkflowMetrics {
    /// Number of stages the workflow executed.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The first stage with the given job name, if any ran.
    pub fn stage(&self, job_name: &str) -> Option<&JobMetrics> {
        self.stages.iter().find(|s| s.job_name == job_name)
    }

    /// `(job name, wall)` per stage, in execution order.
    pub fn stage_walls(&self) -> Vec<(&str, Duration)> {
        self.stages
            .iter()
            .map(|s| (s.job_name.as_str(), s.wall))
            .collect()
    }

    /// Sum of the per-stage walls — the time spent inside MR jobs,
    /// excluding driver glue; never exceeds [`WorkflowMetrics::wall`].
    pub fn stages_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Largest reduce group any stage buffered (peak-memory gauge of
    /// the streaming reduce path, maximized across stages).
    pub fn peak_group_len(&self) -> u64 {
        self.stages
            .iter()
            .map(JobMetrics::peak_group_len)
            .max()
            .unwrap_or(0)
    }

    /// Worst per-reduce-task resident peak of the merge machinery
    /// across all stages.
    pub fn peak_resident_records(&self) -> u64 {
        self.stages
            .iter()
            .map(JobMetrics::peak_resident_records)
            .max()
            .unwrap_or(0)
    }

    /// Worst per-map-task open-bucket resident peak across all stages
    /// — the map-side spill gauge, maximized like its reduce twin.
    pub fn map_peak_resident_records(&self) -> u64 {
        self.stages
            .iter()
            .map(JobMetrics::map_peak_resident_records)
            .max()
            .unwrap_or(0)
    }

    /// Total threshold-triggered sealed runs across all stages.
    pub fn spilled_runs(&self) -> u64 {
        self.stages.iter().map(JobMetrics::spilled_runs).sum()
    }

    /// Total task attempts that panicked (and were caught at the task
    /// boundary) across all stages.
    pub fn task_failures(&self) -> u64 {
        self.stages.iter().map(|s| s.task_failures).sum()
    }

    /// Total failed attempts that were re-executed under the fault
    /// policy's retry budget, across all stages.
    pub fn tasks_retried(&self) -> u64 {
        self.stages.iter().map(|s| s.tasks_retried).sum()
    }

    /// Total speculative twins launched for deadline-exceeding tasks,
    /// across all stages.
    pub fn speculative_launched(&self) -> u64 {
        self.stages.iter().map(|s| s.speculative_launched).sum()
    }

    /// Total speculative twins that beat their straggling original,
    /// across all stages.
    pub fn speculative_won(&self) -> u64 {
        self.stages.iter().map(|s| s.speculative_won).sum()
    }
}

/// Handle to a stage node registered on a [`StageGraph`], used to
/// declare dependency edges of later nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// One registered stage node: its display name, the nodes whose
/// completion it waits on, and the deferred body that dispatches its
/// task sets when the node is admitted.
struct GraphNode<'a, E> {
    name: String,
    deps: Vec<NodeId>,
    run: Option<Box<dyn FnOnce(&mut Workflow) -> Result<(), E> + 'a>>,
}

/// A workflow compiled to a DAG of stage nodes instead of an eager
/// loop.
///
/// The scenario drivers (`run_er_in`, the Sorted Neighborhood
/// drivers, …) historically drove their stages to completion inline:
/// build job 1, run it, build job 2 from its outputs, run it. A
/// `StageGraph` separates *declaring* the stage structure from
/// *executing* it: each stage registers as a [`StageGraph::node`]
/// with explicit dependency edges, and [`StageGraph::run`] admits
/// nodes in dependency order — a node's body fires only once every
/// upstream node completed, and each body hands its task batches to
/// the pool's central ready-queue (tagged with the workflow's
/// tenant) rather than owning the pool until the stage finishes.
/// That is what lets stages of *different* workflows interleave on
/// the shared pool: while this graph waits on one stage's fence,
/// the pool's workers are free to pull batches of any other tenant.
///
/// # Determinism
///
/// Admission order is deterministic: among ready nodes, insertion
/// order wins. Since a node's dependencies must be `NodeId`s the
/// same graph returned earlier, the graph is acyclic by
/// construction and insertion order is always a valid topological
/// order — so a linear chain executes exactly as the eager loop
/// did, and outputs stay byte-identical.
///
/// Intermediate results flow between nodes through captured slots
/// (e.g. `RefCell<Option<T>>`): an upstream node fills the slot, a
/// downstream node takes it. The dependency edge guarantees the
/// fill happens before the take.
///
/// # Errors
///
/// The first node body returning `Err` aborts the run; downstream
/// nodes never fire. Node bodies of *other* workflows (other
/// `StageGraph`s on other threads) are unaffected — failure
/// isolation across tenants is the pool's concern and holds
/// regardless (see [`crate::pool::WorkerPool`]).
pub struct StageGraph<'a, E> {
    nodes: Vec<GraphNode<'a, E>>,
}

impl<E> std::fmt::Debug for StageGraph<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<(&str, &[NodeId])> = self
            .nodes
            .iter()
            .map(|n| (n.name.as_str(), n.deps.as_slice()))
            .collect();
        f.debug_struct("StageGraph").field("nodes", &names).finish()
    }
}

impl<'a, E> Default for StageGraph<'a, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, E> StageGraph<'a, E> {
    /// An empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Registers a stage node named `name` that runs `body` once
    /// every node in `deps` has completed. Returns the node's handle
    /// for downstream dependency edges.
    ///
    /// # Panics
    /// If `deps` contains a handle this graph did not return (the
    /// only way to name a not-yet-registered node, which would make
    /// the graph cyclic).
    pub fn node(
        &mut self,
        name: impl Into<String>,
        deps: &[NodeId],
        body: impl FnOnce(&mut Workflow) -> Result<(), E> + 'a,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        for dep in deps {
            assert!(
                dep.0 < id.0,
                "dependency {dep:?} is not a node of this graph"
            );
        }
        self.nodes.push(GraphNode {
            name: name.into(),
            deps: deps.to_vec(),
            run: Some(Box::new(body)),
        });
        id
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Executes the graph on `workflow`: repeatedly admits the first
    /// registered node whose dependencies have all completed, until
    /// every node ran or a body failed.
    pub fn run(mut self, workflow: &mut Workflow) -> Result<(), E> {
        let total = self.nodes.len();
        let mut completed = vec![false; total];
        for _ in 0..total {
            let ready = (0..total).find(|&i| {
                !completed[i]
                    && self.nodes[i].run.is_some()
                    && self.nodes[i].deps.iter().all(|d| completed[d.0])
            });
            let Some(i) = ready else {
                // Unreachable: acyclic by construction, so some
                // uncompleted node always has its deps met.
                unreachable!("stage graph admitted no node with {total} pending");
            };
            let body = self.nodes[i].run.take().expect("node admitted twice");
            body(workflow)?;
            completed[i] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{ClosureMapper, ClosureReducer};
    use crate::engine::Job;
    use crate::input::partition_evenly;
    use crate::mapper::MapContext;
    use crate::reducer::{Group, ReduceContext};

    type AnnotateMapper = ClosureMapper<(), u32, bool, u64, (bool, u32)>;
    type CountReducer = ClosureReducer<bool, u64, bool, u64>;

    /// Job 1: annotate each number with its parity, side-output the
    /// annotated records, reduce-output parity counts.
    fn annotate_job(parallelism: usize) -> Job<AnnotateMapper, CountReducer> {
        let mapper = ClosureMapper::new(
            |_: &(), v: &u32, ctx: &mut MapContext<bool, u64, (bool, u32)>| {
                let even = v.is_multiple_of(2);
                ctx.side_output((even, *v));
                ctx.emit(even, 1);
            },
        );
        let reducer = ClosureReducer::new(
            |group: Group<'_, bool, u64>, ctx: &mut ReduceContext<bool, u64>| {
                ctx.emit(*group.key(), group.values().sum());
            },
        );
        Job::builder("annotate", mapper, reducer)
            .reduce_tasks(2)
            .parallelism(parallelism)
            .build()
    }

    type SumMapper = ClosureMapper<bool, u32, bool, u64, ()>;

    /// Job 2: sum values per parity from the annotated records.
    fn sum_job(parallelism: usize) -> Job<SumMapper, CountReducer> {
        let mapper = ClosureMapper::new(
            |even: &bool, v: &u32, ctx: &mut MapContext<bool, u64, ()>| {
                ctx.emit(*even, u64::from(*v));
            },
        );
        let reducer = ClosureReducer::new(
            |group: Group<'_, bool, u64>, ctx: &mut ReduceContext<bool, u64>| {
                ctx.emit(*group.key(), group.values().sum());
            },
        );
        Job::builder("sum", mapper, reducer)
            .reduce_tasks(2)
            .parallelism(parallelism)
            .build()
    }

    #[test]
    fn side_outputs_feed_a_chained_stage_with_identical_partitioning() {
        let input = partition_evenly((0..10u32).map(|v| ((), v)).collect(), 3);
        let shapes: Vec<usize> = input.iter().map(Vec::len).collect();

        let mut wf = Workflow::new("parity");
        let out1 = wf.chained_stage(&annotate_job(1), input).unwrap();
        let shapes2: Vec<usize> = out1.side_outputs.iter().map(Vec::len).collect();
        assert_eq!(shapes, shapes2, "partition shape must be preserved");

        let out2 = wf.chained_stage(&sum_job(1), out1.side_outputs).unwrap();
        let mut sums = out2.into_records();
        sums.sort();
        assert_eq!(sums, vec![(false, 25), (true, 20)]);

        let metrics = wf.finish();
        assert_eq!(metrics.num_stages(), 2);
        assert_eq!(metrics.workflow_name, "parity");
        assert_eq!(
            metrics
                .stage_walls()
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>(),
            vec!["annotate", "sum"]
        );
        assert!(metrics.stage("annotate").is_some());
        assert!(metrics.stage("missing").is_none());
        assert!(metrics.stages_wall() <= metrics.wall);
    }

    #[test]
    fn chained_stage_rejects_a_drifted_partition_count() {
        let input = partition_evenly((0..10u32).map(|v| ((), v)).collect(), 3);
        let mut wf = Workflow::new("parity");
        let out1 = wf.chained_stage(&annotate_job(1), input).unwrap();
        // Drop a partition before chaining — the exact drift the layer
        // must catch.
        let mut truncated = out1.side_outputs;
        truncated.pop();
        let err = wf.chained_stage(&sum_job(1), truncated).unwrap_err();
        assert_eq!(
            err,
            MrError::StageShapeMismatch {
                stage: "parity/sum".into(),
                partition: None,
                expected: 3,
                got: 2,
            }
        );
    }

    #[test]
    fn repartitioned_stage_neither_checks_nor_resets_the_shape() {
        let input = partition_evenly((0..10u32).map(|v| ((), v)).collect(), 3);
        let mut wf = Workflow::new("parity");
        let out1 = wf.chained_stage(&annotate_job(1), input.clone()).unwrap();
        // A deliberately re-shaped intermediate stage (1 partition)...
        let flat: Partitions<bool, u32> = vec![out1.side_outputs.into_iter().flatten().collect()];
        wf.repartitioned_stage(&sum_job(1), flat).unwrap();
        // ...does not change what "chained" means afterwards.
        let err = wf
            .chained_stage(&annotate_job(1), partition_evenly(vec![((), 1u32)], 1))
            .unwrap_err();
        assert!(matches!(
            err,
            MrError::StageShapeMismatch {
                partition: None,
                expected: 3,
                got: 1,
                ..
            }
        ));
        assert_eq!(wf.stages_run(), 2);
    }

    #[test]
    fn workflow_metrics_merge_counters_and_gauges_across_stages() {
        let input = partition_evenly((0..10u32).map(|v| ((), v)).collect(), 3);
        let mut wf = Workflow::new("parity");
        let out1 = wf.chained_stage(&annotate_job(1), input).unwrap();
        let stage1 = out1.metrics.clone();
        let out2 = wf.chained_stage(&sum_job(1), out1.side_outputs).unwrap();
        let stage2 = out2.metrics.clone();
        let metrics = wf.finish();
        // Merged counters == sum of the per-job counters.
        for name in [
            crate::counters::MAP_INPUT_RECORDS,
            crate::counters::MAP_OUTPUT_RECORDS,
            crate::counters::REDUCE_INPUT_RECORDS,
            crate::counters::REDUCE_OUTPUT_RECORDS,
        ] {
            assert_eq!(
                metrics.counters.get(name),
                stage1.counters.get(name) + stage2.counters.get(name),
                "counter {name} must merge across stages"
            );
        }
        assert_eq!(
            metrics.peak_group_len(),
            stage1.peak_group_len().max(stage2.peak_group_len())
        );
        assert_eq!(
            metrics.peak_resident_records(),
            stage1
                .peak_resident_records()
                .max(stage2.peak_resident_records())
        );
    }

    #[test]
    fn capped_workflow_reuses_the_pool_and_matches_uncapped_output() {
        let pool = Arc::new(WorkerPool::new(4));
        let input = partition_evenly((0..20u32).map(|v| ((), v)).collect(), 4);
        let mut reference = Workflow::on_pool("uncapped", Arc::clone(&pool));
        let expected = reference
            .chained_stage(&annotate_job(1), input.clone())
            .unwrap()
            .reduce_outputs;
        for cap in [1usize, 2, 3, 9] {
            let mut wf = Workflow::on_pool("capped", Arc::clone(&pool)).with_parallelism_cap(cap);
            assert_eq!(wf.parallelism_cap(), Some(cap));
            let out = wf.chained_stage(&annotate_job(1), input.clone()).unwrap();
            assert_eq!(out.reduce_outputs, expected, "cap {cap} diverged");
            assert_eq!(
                pool.threads_spawned(),
                4,
                "cap {cap} must not respawn the pool"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn zero_parallelism_cap_is_rejected() {
        let _ = Workflow::new("bad").with_parallelism_cap(0);
    }

    #[test]
    fn stage_graph_admits_in_dependency_order_and_threads_results() {
        use std::cell::RefCell;
        let order = RefCell::new(Vec::new());
        let slot: RefCell<Option<u32>> = RefCell::new(None);
        let mut graph: StageGraph<'_, MrError> = StageGraph::new();
        let a = graph.node("a", &[], |_| {
            order.borrow_mut().push("a");
            *slot.borrow_mut() = Some(7);
            Ok(())
        });
        let b = graph.node("b", &[a], |_| {
            order.borrow_mut().push("b");
            Ok(())
        });
        // A diamond: c depends on a only, d joins b and c.
        let c = graph.node("c", &[a], |_| {
            order.borrow_mut().push("c");
            Ok(())
        });
        graph.node("d", &[b, c], |_| {
            let upstream = slot.borrow_mut().take().expect("a must have run");
            assert_eq!(upstream, 7);
            order.borrow_mut().push("d");
            Ok(())
        });
        assert_eq!(graph.len(), 4);
        let mut wf = Workflow::new("graph");
        graph.run(&mut wf).unwrap();
        // Insertion order among ready nodes is the deterministic
        // admission order.
        assert_eq!(*order.borrow(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn stage_graph_failure_stops_downstream_nodes() {
        use std::cell::Cell;
        let downstream_ran = Cell::new(false);
        let mut graph: StageGraph<'_, &'static str> = StageGraph::new();
        let a = graph.node("fails", &[], |_| Err("boom"));
        graph.node("after", &[a], |_| {
            downstream_ran.set(true);
            Ok(())
        });
        let mut wf = Workflow::new("graph");
        assert_eq!(graph.run(&mut wf), Err("boom"));
        assert!(
            !downstream_ran.get(),
            "downstream of a failure must not fire"
        );
    }

    #[test]
    #[should_panic(expected = "not a node of this graph")]
    fn stage_graph_rejects_foreign_dependency_handles() {
        let mut foreign: StageGraph<'_, ()> = StageGraph::new();
        foreign.node("x", &[], |_| Ok(()));
        let other = foreign.node("y", &[], |_| Ok(()));
        let mut graph: StageGraph<'_, ()> = StageGraph::new();
        graph.node("first", &[other], |_| Ok(()));
    }

    #[test]
    fn workflow_tenant_defaults_and_overrides() {
        let wf = Workflow::new("wf");
        assert_eq!(wf.tenant(), "default");
        let wf = Workflow::new("wf").with_tenant("team-a");
        assert_eq!(wf.tenant(), "team-a");
    }

    #[test]
    fn ensure_same_shape_reports_the_first_divergence() {
        let a: Partitions<(), u8> = vec![vec![((), 1)], vec![]];
        let b: Partitions<(), u8> = vec![vec![((), 2)], vec![]];
        assert!(ensure_same_shape("t", &a, &b).is_ok());
        let c: Partitions<(), u8> = vec![vec![], vec![((), 2)]];
        assert_eq!(
            ensure_same_shape("t", &a, &c).unwrap_err(),
            MrError::StageShapeMismatch {
                stage: "t".into(),
                partition: Some(0),
                expected: 1,
                got: 0,
            }
        );
        let d: Partitions<(), u8> = vec![vec![((), 1)]];
        assert_eq!(
            ensure_same_shape("t", &a, &d).unwrap_err(),
            MrError::StageShapeMismatch {
                stage: "t".into(),
                partition: None,
                expected: 2,
                got: 1,
            }
        );
    }
}
