//! Per-task and per-job execution metrics.
//!
//! Metrics serve two purposes in this reproduction:
//!
//! 1. **Observability** of the real in-process execution (wall time,
//!    records, custom counters), and
//! 2. **Input for the cluster simulator** (`cluster-sim`), which
//!    replays the exact per-task workloads recorded here on a virtual
//!    n-node Hadoop cluster to estimate paper-scale execution times.

use std::time::Duration;

use crate::counters::{self, CounterSet};

/// Whether a task ran in the map or reduce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// A map task (one per input partition).
    Map,
    /// A reduce task (one per configured reduce partition).
    Reduce,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Map => write!(f, "map"),
            TaskKind::Reduce => write!(f, "reduce"),
        }
    }
}

/// Metrics for a single executed task.
#[derive(Debug, Clone)]
pub struct TaskMetrics {
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within its phase (`0..m` or `0..r`).
    pub index: usize,
    /// Key-value pairs consumed.
    pub records_in: u64,
    /// Key-value pairs produced (post-combine for map tasks).
    pub records_out: u64,
    /// All counters touched by this task, including engine counters.
    pub counters: CounterSet,
    /// Wall-clock time of the task body (excludes scheduling waits).
    pub wall: Duration,
    /// Largest reduce group this task buffered (records). Reduce tasks
    /// only; zero for map tasks.
    pub peak_group_len: u64,
    /// Peak records simultaneously resident in this task's streaming
    /// machinery. For **reduce** tasks: the current group buffer plus
    /// one buffered head per unexhausted run — the *extra* buffering
    /// beyond the input runs themselves (whose inline storage lives
    /// until the task ends); the pre-streaming materialized merge
    /// held a full second copy, sitting at `records_in` here. For
    /// **map** tasks: the high-water mark of unsorted records in the
    /// spiller's open bucket set — bounded by the job's spill
    /// threshold when one is configured, equal to the task's full
    /// post-map output when not.
    pub peak_resident_records: u64,
    /// Sorted runs this map task sealed because its open bucket set
    /// crossed the spill threshold (the final flush is not counted, so
    /// an unspilled map task reports zero). Always zero for reduce
    /// tasks.
    pub spilled_runs: u64,
    /// Scheduling delay between this task's dispatch being enqueued on
    /// the worker pool and its winning attempt starting; zero on
    /// inline (single-slot) execution. A wall quantity — excluded from
    /// the deterministic-gauge set, like [`TaskMetrics::wall`].
    pub queue_wait: Duration,
    /// Attempt number that produced this task's output (1 = the first
    /// attempt succeeded; higher values count retries, and a winning
    /// speculative twin reports its own attempt number). Deterministic
    /// under a deterministic [`FaultPlan`](crate::fault::FaultPlan)
    /// with no task deadline.
    pub attempts: u32,
}

impl TaskMetrics {
    /// Value of a named counter for this task.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name)
    }
}

/// Metrics for one completed MapReduce job.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub job_name: String,
    /// One entry per map task, in task order.
    pub map_tasks: Vec<TaskMetrics>,
    /// One entry per reduce task, in task order.
    pub reduce_tasks: Vec<TaskMetrics>,
    /// Aggregated counters over all tasks.
    pub counters: CounterSet,
    /// Coordinator-thread time spent in the shuffle between the map
    /// and reduce phases. With map-side sorted runs and reduce-side
    /// merging this is only the bucket transpose — sorting never runs
    /// on the coordinator (the merge cost shows up in reduce-task
    /// `wall` instead).
    pub shuffle_wall: Duration,
    /// Wall-clock duration of the whole job on the local worker pool.
    pub wall: Duration,
    /// Task attempts that ended in a panic caught at the task boundary
    /// (each failed attempt counts once, whether retried or fatal).
    pub task_failures: u64,
    /// Failed attempts that were re-executed under the job's
    /// [`FaultPolicy`](crate::fault::FaultPolicy) retry budget; always
    /// `<= task_failures`.
    pub tasks_retried: u64,
    /// Speculative twins launched for tasks that exceeded the policy's
    /// task deadline.
    pub speculative_launched: u64,
    /// Speculative twins that finished before their straggling
    /// original (first completion wins); always
    /// `<= speculative_launched`.
    pub speculative_won: u64,
}

impl JobMetrics {
    /// Total key-value pairs emitted by the map phase (post-combine).
    ///
    /// This is the quantity plotted in the paper's Figure 12.
    pub fn map_output_records(&self) -> u64 {
        self.counters.get(counters::MAP_OUTPUT_RECORDS)
    }

    /// Total records consumed by map tasks.
    pub fn map_input_records(&self) -> u64 {
        self.counters.get(counters::MAP_INPUT_RECORDS)
    }

    /// Per-reduce-task values of an arbitrary counter, in task order.
    ///
    /// `per_reduce_counter("comparisons")` yields the reduce workload
    /// distribution that the paper's load-balancing strategies aim to
    /// flatten.
    pub fn per_reduce_counter(&self, name: &str) -> Vec<u64> {
        self.reduce_tasks.iter().map(|t| t.counter(name)).collect()
    }

    /// Largest reduce group any reduce task buffered, in records —
    /// the dominant term of the streaming reduce path's working set.
    pub fn peak_group_len(&self) -> u64 {
        self.reduce_tasks
            .iter()
            .map(|t| t.peak_group_len)
            .max()
            .unwrap_or(0)
    }

    /// Worst per-reduce-task peak of records resident in the merge +
    /// group machinery (current group buffer + buffered run heads).
    pub fn peak_resident_records(&self) -> u64 {
        self.reduce_tasks
            .iter()
            .map(|t| t.peak_resident_records)
            .max()
            .unwrap_or(0)
    }

    /// Worst per-**map**-task peak of unsorted records resident in the
    /// spiller's open bucket set — the map-side twin of
    /// [`JobMetrics::peak_resident_records`]. With a spill threshold
    /// configured this is bounded by the threshold; without one it
    /// equals the largest map task's post-map output (the legacy
    /// fully-buffered behavior). Invariant under parallelism, like
    /// every per-task gauge.
    pub fn map_peak_resident_records(&self) -> u64 {
        self.map_tasks
            .iter()
            .map(|t| t.peak_resident_records)
            .max()
            .unwrap_or(0)
    }

    /// Total sorted runs sealed by threshold-triggered spills across
    /// all map tasks; zero when no task ever crossed the spill
    /// threshold (including the unspilled `None` configuration).
    pub fn spilled_runs(&self) -> u64 {
        self.map_tasks.iter().map(|t| t.spilled_runs).sum()
    }

    /// Job-level memory ratio of the reduce phase's merge buffering:
    /// `Σ peak_resident_records / Σ records_in` over reduce tasks —
    /// the size of the merge machinery's working set relative to the
    /// second full copy the materialized design allocated.
    ///
    /// The materialized-merge design this engine replaced pins every
    /// task at `peak ≈ records_in`, i.e. a ratio of ~1.0; the
    /// streaming path buffers only the current group plus `m` run
    /// heads, so the ratio tracks (largest group / task input) and
    /// drops well below 1 on multi-group workloads. Returns 1.0 for
    /// jobs with no reduce input (vacuously "at the bound").
    pub fn peak_resident_fraction(&self) -> f64 {
        let total_in: u64 = self.reduce_tasks.iter().map(|t| t.records_in).sum();
        if total_in == 0 {
            return 1.0;
        }
        let total_peak: u64 = self
            .reduce_tasks
            .iter()
            .map(|t| t.peak_resident_records)
            .sum();
        total_peak as f64 / total_in as f64
    }

    /// Max/mean ratio of a per-reduce-task counter: 1.0 is a perfect
    /// balance, large values indicate skew.
    pub fn reduce_imbalance(&self, name: &str) -> f64 {
        let loads = self.per_reduce_counter(name);
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = loads.iter().sum();
        if sum == 0 || loads.is_empty() {
            return 1.0;
        }
        let mean = sum as f64 / loads.len() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(kind: TaskKind, index: usize, cmp: u64) -> TaskMetrics {
        let mut counters = CounterSet::new();
        counters.add("comparisons", cmp);
        TaskMetrics {
            kind,
            index,
            records_in: 1,
            records_out: 1,
            counters,
            wall: Duration::from_millis(1),
            peak_group_len: 0,
            peak_resident_records: 0,
            spilled_runs: 0,
            queue_wait: Duration::ZERO,
            attempts: 1,
        }
    }

    fn job(loads: &[u64]) -> JobMetrics {
        JobMetrics {
            job_name: "t".into(),
            map_tasks: vec![],
            reduce_tasks: loads
                .iter()
                .enumerate()
                .map(|(i, &l)| task(TaskKind::Reduce, i, l))
                .collect(),
            counters: CounterSet::new(),
            shuffle_wall: Duration::ZERO,
            wall: Duration::ZERO,
            task_failures: 0,
            tasks_retried: 0,
            speculative_launched: 0,
            speculative_won: 0,
        }
    }

    #[test]
    fn per_reduce_counter_orders_by_task() {
        let j = job(&[5, 3, 8]);
        assert_eq!(j.per_reduce_counter("comparisons"), vec![5, 3, 8]);
    }

    #[test]
    fn imbalance_of_uniform_load_is_one() {
        let j = job(&[4, 4, 4, 4]);
        assert!((j.reduce_imbalance("comparisons") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        // One task does all the work among four: max/mean = 4.
        let j = job(&[12, 0, 0, 0]);
        assert!((j.reduce_imbalance("comparisons") - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_empty_or_zero_load_is_one() {
        let j = job(&[0, 0]);
        assert_eq!(j.reduce_imbalance("comparisons"), 1.0);
        let j = job(&[]);
        assert_eq!(j.reduce_imbalance("comparisons"), 1.0);
    }

    #[test]
    fn peak_gauges_aggregate_as_maxima_and_ratio() {
        let mut j = job(&[0, 0, 0]);
        for (t, (input, group, resident)) in
            j.reduce_tasks
                .iter_mut()
                .zip([(100u64, 10u64, 14u64), (50, 40, 44), (50, 5, 9)])
        {
            t.records_in = input;
            t.peak_group_len = group;
            t.peak_resident_records = resident;
        }
        assert_eq!(j.peak_group_len(), 40);
        assert_eq!(j.peak_resident_records(), 44);
        // (14 + 44 + 9) / (100 + 50 + 50)
        assert!((j.peak_resident_fraction() - 67.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn peak_gauges_of_an_empty_job_are_neutral() {
        let j = job(&[]);
        assert_eq!(j.peak_group_len(), 0);
        assert_eq!(j.peak_resident_records(), 0);
        assert_eq!(j.peak_resident_fraction(), 1.0);
        assert_eq!(j.map_peak_resident_records(), 0);
        assert_eq!(j.spilled_runs(), 0);
    }

    #[test]
    fn map_gauges_aggregate_as_max_and_sum() {
        let mut j = job(&[0]);
        j.map_tasks = (0..3).map(|i| task(TaskKind::Map, i, 0)).collect();
        for (t, (resident, spilled)) in j.map_tasks.iter_mut().zip([(12u64, 3u64), (40, 0), (7, 5)])
        {
            t.peak_resident_records = resident;
            t.spilled_runs = spilled;
        }
        assert_eq!(j.map_peak_resident_records(), 40, "max over map tasks");
        assert_eq!(j.spilled_runs(), 8, "sum over map tasks");
        // Reduce-side gauges must not pick up map-task values.
        assert_eq!(j.peak_resident_records(), 0);
    }

    #[test]
    fn task_kind_display() {
        assert_eq!(TaskKind::Map.to_string(), "map");
        assert_eq!(TaskKind::Reduce.to_string(), "reduce");
    }
}
