//! Map-side spill-to-runs: bounding the map phase's resident set.
//!
//! Historically each map task buffered its *entire* output in `r`
//! partition buckets before sorting — the one remaining
//! unbounded-memory phase after the reduce side went streaming. The
//! `MapSpiller` closes that gap, mirroring Hadoop's spill files:
//! map output is partitioned into an **open bucket set** as it is
//! emitted, and whenever the open records cross the configured
//! [`spill threshold`](crate::engine::JobBuilder::spill_threshold)
//! the whole bucket set is **sealed** — each non-empty bucket is
//! stable-sorted, run through the combiner (if any), and appended as
//! one immutable sorted run for its reduce task. A map task therefore
//! holds at most `threshold` unsorted records plus the sealed runs'
//! storage; the engine's shuffle hands each reduce task the flattened
//! `m × (runs per task)` run list, which the k-way
//! [`GroupStream`](crate::merge::GroupStream) merge consumes exactly
//! like the single-run-per-task layout.
//!
//! # Determinism across thresholds
//!
//! Output is byte-identical at *any* threshold (including `None`, the
//! unspilled legacy path):
//!
//! * runs are flattened in (map task, seal order) — seal `s` contains
//!   only records emitted before every record of seal `s+1`, and the
//!   merge breaks ties toward the lower run index;
//! * within a seal the sort is stable, preserving emission order;
//!
//! so equal sort keys still arrive in (map task, emission order) — the
//! engine-wide contract. With a combiner installed the *reduce input*
//! may differ across thresholds (the combiner runs once per seal,
//! Hadoop's "zero or more applications per spill" contract), but a
//! legal combiner leaves the job result unchanged.

use crate::combiner::{combine_sorted_run, Combiner};
use crate::comparator::KeyCmp;
use crate::error::MrError;
use crate::partitioner::Partitioner;
use crate::trace::{SpillTrace, TraceEventData};

/// What a finished map task hands back to the engine.
pub(crate) struct SpillResult<K, V> {
    /// Sealed sorted runs per reduce task, in seal order. Empty
    /// buckets contribute no run.
    pub runs: Vec<Vec<Vec<(K, V)>>>,
    /// Runs sealed because the open set crossed the threshold; the
    /// final flush is not counted, so an unspilled task reports zero.
    pub spilled_runs: u64,
    /// High-water mark of unsorted records simultaneously resident in
    /// the open bucket set — the map-side twin of the reduce side's
    /// `peak_resident_records` gauge. Bounded by the threshold when
    /// one is set.
    pub peak_open_records: u64,
    /// Post-combine records across all sealed runs.
    pub records_out: u64,
}

/// Per-map-task spill machinery: partitions records into an open
/// bucket set and seals it into immutable sorted runs whenever the
/// configured record threshold is crossed (and once more at
/// [`MapSpiller::finish`]).
pub(crate) struct MapSpiller<'j, K, V> {
    partitioner: &'j dyn Partitioner<K>,
    sort_cmp: &'j KeyCmp<K>,
    combiner: Option<&'j Combiner<K, V>>,
    num_reduce_tasks: usize,
    /// Seal the open set once it holds this many records; `None`
    /// reproduces the unspilled single-run-per-bucket layout exactly.
    threshold: Option<usize>,
    open: Vec<Vec<(K, V)>>,
    open_records: usize,
    sealed: Vec<Vec<Vec<(K, V)>>>,
    spilled_runs: u64,
    peak_open_records: usize,
    records_out: u64,
    /// Trace context for threshold-triggered seals; `None` (the
    /// default, and always when no sink is attached) emits nothing.
    trace: Option<SpillTrace>,
}

impl<'j, K: Clone, V> MapSpiller<'j, K, V> {
    pub(crate) fn new(
        partitioner: &'j dyn Partitioner<K>,
        sort_cmp: &'j KeyCmp<K>,
        combiner: Option<&'j Combiner<K, V>>,
        num_reduce_tasks: usize,
        threshold: Option<usize>,
    ) -> Self {
        Self {
            partitioner,
            sort_cmp,
            combiner,
            num_reduce_tasks,
            threshold,
            open: (0..num_reduce_tasks).map(|_| Vec::new()).collect(),
            open_records: 0,
            sealed: (0..num_reduce_tasks).map(|_| Vec::new()).collect(),
            spilled_runs: 0,
            peak_open_records: 0,
            records_out: 0,
            trace: None,
        }
    }

    /// Attaches the trace context threshold-triggered seals report
    /// through. The engine passes `None` unless a sink is attached, so
    /// the untraced path never pays for the context's job-name clone.
    pub(crate) fn with_trace(mut self, trace: Option<SpillTrace>) -> Self {
        self.trace = trace;
        self
    }

    /// Routes one emitted record into its open bucket, sealing the
    /// bucket set if the threshold is now reached.
    pub(crate) fn push(&mut self, key: K, value: V) -> Result<(), MrError> {
        let p = self.partitioner.partition(&key, self.num_reduce_tasks);
        if p >= self.num_reduce_tasks {
            return Err(MrError::PartitionOutOfRange {
                got: p,
                num_reduce_tasks: self.num_reduce_tasks,
            });
        }
        self.open[p].push((key, value));
        self.open_records += 1;
        self.peak_open_records = self.peak_open_records.max(self.open_records);
        if self.threshold.is_some_and(|t| self.open_records >= t) {
            self.seal(true);
        }
        Ok(())
    }

    /// Seals the whole open bucket set: every non-empty bucket is
    /// stable-sorted, combined, and appended as one immutable run for
    /// its reduce task.
    fn seal(&mut self, threshold_triggered: bool) {
        if self.open_records == 0 {
            return;
        }
        for (j, bucket) in self.open.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut run = std::mem::take(bucket);
            // Stable, so equal keys keep emission order within the
            // seal — one third of the (map task, seal, emission)
            // determinism contract.
            run.sort_by(|a, b| (self.sort_cmp)(&a.0, &b.0));
            if let Some(c) = self.combiner {
                run = combine_sorted_run(run, self.sort_cmp, c);
            }
            if threshold_triggered {
                self.spilled_runs += 1;
                // Emitted exactly where the `spilled_runs` gauge
                // increments, so trace count == gauge by construction.
                if let Some(t) = &self.trace {
                    t.tracer
                        .emit_with(t.slot, || TraceEventData::SpillRunSealed {
                            job: t.job.clone(),
                            task: t.task,
                            reduce_task: j,
                            records: run.len(),
                        });
                }
            }
            self.records_out += run.len() as u64;
            self.sealed[j].push(run);
        }
        self.open_records = 0;
    }

    /// Flushes whatever is still open (not counted as spilled — an
    /// unspilled task ends with exactly one run per non-empty bucket)
    /// and returns the sealed runs plus the task's spill gauges.
    pub(crate) fn finish(mut self) -> SpillResult<K, V> {
        self.seal(false);
        SpillResult {
            runs: self.sealed,
            spilled_runs: self.spilled_runs,
            peak_open_records: self.peak_open_records as u64,
            records_out: self.records_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::sum_u64_combiner;
    use crate::comparator::natural_order;
    use crate::partitioner::{FnPartitioner, HashPartitioner};

    fn spill_all(
        records: &[(u32, u64)],
        r: usize,
        threshold: Option<usize>,
        combiner: Option<&Combiner<u32, u64>>,
    ) -> SpillResult<u32, u64> {
        let sort_cmp = natural_order::<u32>();
        let part = FnPartitioner::new(|k: &u32, r: usize| (*k as usize) % r);
        let mut spiller = MapSpiller::new(&part, &sort_cmp, combiner, r, threshold);
        for &(k, v) in records {
            spiller.push(k, v).unwrap();
        }
        spiller.finish()
    }

    /// Flattens a reduce task's runs through the reference merge — the
    /// byte-equivalence oracle against the unspilled layout.
    fn merged(result: SpillResult<u32, u64>, j: usize) -> Vec<(u32, u64)> {
        crate::merge::merge_sorted_runs(result.runs[j].clone(), &natural_order::<u32>())
    }

    #[test]
    fn no_threshold_reproduces_single_run_per_bucket() {
        let records: Vec<(u32, u64)> = (0..10).map(|i| (i % 4, i as u64)).collect();
        let out = spill_all(&records, 2, None, None);
        assert_eq!(out.spilled_runs, 0);
        assert_eq!(out.peak_open_records, 10);
        assert_eq!(out.records_out, 10);
        for runs in &out.runs {
            assert_eq!(runs.len(), 1, "one flush run per non-empty bucket");
        }
    }

    #[test]
    fn threshold_of_one_seals_every_record() {
        let records: Vec<(u32, u64)> = (0..6).map(|i| (i % 2, i as u64)).collect();
        let out = spill_all(&records, 2, Some(1), None);
        assert_eq!(out.spilled_runs, 6, "each record seals its own run");
        assert_eq!(out.peak_open_records, 1);
        assert_eq!(out.records_out, 6);
    }

    #[test]
    fn threshold_above_input_never_spills() {
        let records: Vec<(u32, u64)> = (0..5).map(|i| (i, i as u64)).collect();
        let out = spill_all(&records, 3, Some(100), None);
        assert_eq!(out.spilled_runs, 0);
        assert_eq!(out.peak_open_records, 5);
    }

    #[test]
    fn merged_runs_are_byte_identical_across_thresholds() {
        // Duplicate keys with distinct values: any stability drift
        // between seals changes the merged byte sequence.
        let records: Vec<(u32, u64)> = (0..40).map(|i| (i % 5, i as u64)).collect();
        let reference: Vec<Vec<(u32, u64)>> = (0..3)
            .map(|j| merged(spill_all(&records, 3, None, None), j))
            .collect();
        for threshold in [1usize, 2, 3, 7, 39, 40, 1000] {
            for (j, expected) in reference.iter().enumerate() {
                assert_eq!(
                    &merged(spill_all(&records, 3, Some(threshold), None), j),
                    expected,
                    "threshold {threshold}, reduce task {j}"
                );
            }
        }
    }

    #[test]
    fn open_set_stays_bounded_by_the_threshold() {
        let records: Vec<(u32, u64)> = (0..100).map(|i| (i % 7, i as u64)).collect();
        for threshold in [1usize, 4, 10] {
            let out = spill_all(&records, 4, Some(threshold), None);
            assert!(
                out.peak_open_records <= threshold as u64,
                "threshold {threshold}: open peak {}",
                out.peak_open_records
            );
        }
    }

    #[test]
    fn combiner_runs_per_seal_and_result_is_preserved() {
        // 12 records of 3 keys. Unspilled: the combiner collapses each
        // bucket to one pair per key. Spilled every 4: each seal
        // combines only its own records, so more pairs survive — but
        // the per-key sums (what the reducer computes) are identical.
        let records: Vec<(u32, u64)> = (0..12).map(|i| (i % 3, 1u64)).collect();
        let combiner = sum_u64_combiner::<u32>();
        let plain = spill_all(&records, 1, None, Some(&combiner));
        assert_eq!(plain.records_out, 3, "fully combined: one pair per key");
        let spilled = spill_all(&records, 1, Some(4), Some(&combiner));
        assert!(
            spilled.records_out > 3,
            "per-seal combining keeps more pairs"
        );
        let sum_per_key = |merged: Vec<(u32, u64)>| {
            let mut sums = std::collections::BTreeMap::new();
            for (k, v) in merged {
                *sums.entry(k).or_insert(0u64) += v;
            }
            sums
        };
        assert_eq!(
            sum_per_key(merged(plain, 0)),
            sum_per_key(merged(spilled, 0)),
            "combiner application count must not change the aggregate"
        );
    }

    #[test]
    fn empty_input_yields_no_runs() {
        let out = spill_all(&[], 3, Some(2), None);
        assert!(out.runs.iter().all(Vec::is_empty));
        assert_eq!(out.spilled_runs, 0);
        assert_eq!(out.peak_open_records, 0);
        assert_eq!(out.records_out, 0);
    }

    #[test]
    fn out_of_range_partition_is_reported() {
        let sort_cmp = natural_order::<u32>();
        let part = FnPartitioner::new(|_: &u32, _| 9);
        let mut spiller: MapSpiller<'_, u32, u64> =
            MapSpiller::new(&part, &sort_cmp, None, 2, None);
        assert_eq!(
            spiller.push(1, 1).unwrap_err(),
            MrError::PartitionOutOfRange {
                got: 9,
                num_reduce_tasks: 2
            }
        );
    }

    #[test]
    fn hash_partitioned_seals_route_like_the_unspilled_path() {
        // Same partitioner the engine defaults to: every record must
        // land in the same reduce task regardless of threshold.
        let sort_cmp = natural_order::<u32>();
        let part = HashPartitioner;
        let mut a: MapSpiller<'_, u32, u64> = MapSpiller::new(&part, &sort_cmp, None, 4, None);
        let mut b: MapSpiller<'_, u32, u64> = MapSpiller::new(&part, &sort_cmp, None, 4, Some(2));
        for i in 0..20u32 {
            a.push(i % 6, u64::from(i)).unwrap();
            b.push(i % 6, u64::from(i)).unwrap();
        }
        let (a, b) = (a.finish(), b.finish());
        for j in 0..4 {
            let flat_a: usize = a.runs[j].iter().map(Vec::len).sum();
            let flat_b: usize = b.runs[j].iter().map(Vec::len).sum();
            assert_eq!(flat_a, flat_b, "reduce task {j} record routing drifted");
        }
    }
}
