//! Sort (`comp`) and grouping (`group`) comparators.
//!
//! Keys of a reduce task are sorted by the *sort comparator*; reduce
//! groups are maximal runs of keys that compare `Equal` under the
//! *grouping comparator*. A grouping comparator coarser than the sort
//! order implements Hadoop's "secondary sort" pattern, which PairRange
//! uses (sort by `range.block.entityIndex`, group by `range.block`).

use std::cmp::Ordering;
use std::sync::Arc;

/// A shared, thread-safe key comparison function.
pub type KeyCmp<K> = Arc<dyn Fn(&K, &K) -> Ordering + Send + Sync>;

/// The natural `Ord`-based comparator.
pub fn natural_order<K: Ord>() -> KeyCmp<K> {
    Arc::new(|a: &K, b: &K| a.cmp(b))
}

/// Comparator derived from a key projection: keys compare equal iff
/// their projections compare equal. Handy for coarse grouping:
/// `by_projection(|k: &(u32, u32)| k.0)` groups on the first component.
pub fn by_projection<K, T, F>(f: F) -> KeyCmp<K>
where
    T: Ord,
    F: Fn(&K) -> T + Send + Sync + 'static,
{
    Arc::new(move |a: &K, b: &K| f(a).cmp(&f(b)))
}

/// Verifies that `group` is coarser than (or equal to) `sort` on a
/// sample of keys: any two keys equal under `sort` must be equal under
/// `group`. Used by debug assertions and tests; MapReduce semantics
/// are undefined otherwise (groups must be contiguous under the sort).
pub fn group_consistent_with_sort<K>(sort: &KeyCmp<K>, group: &KeyCmp<K>, sample: &[K]) -> bool {
    for a in sample {
        for b in sample {
            if sort(a, b) == Ordering::Equal && group(a, b) != Ordering::Equal {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_order_matches_ord() {
        let cmp = natural_order::<u32>();
        assert_eq!(cmp(&1, &2), Ordering::Less);
        assert_eq!(cmp(&2, &2), Ordering::Equal);
        assert_eq!(cmp(&3, &2), Ordering::Greater);
    }

    #[test]
    fn projection_groups_on_component() {
        let cmp = by_projection(|k: &(u32, &str)| k.0);
        assert_eq!(cmp(&(1, "a"), &(1, "b")), Ordering::Equal);
        assert_eq!(cmp(&(1, "a"), &(2, "a")), Ordering::Less);
    }

    #[test]
    fn consistency_check_accepts_coarser_group() {
        let sort = natural_order::<(u32, u32)>();
        let group = by_projection(|k: &(u32, u32)| k.0);
        let sample = vec![(1, 1), (1, 2), (2, 1)];
        assert!(group_consistent_with_sort(&sort, &group, &sample));
    }

    #[test]
    fn consistency_check_rejects_finer_group() {
        // Sorting on first component but grouping on the full key means
        // equal-sort keys could be split across groups => inconsistent.
        let sort = by_projection(|k: &(u32, u32)| k.0);
        let group = natural_order::<(u32, u32)>();
        let sample = vec![(1, 1), (1, 2)];
        assert!(!group_consistent_with_sort(&sort, &group, &sample));
    }
}
