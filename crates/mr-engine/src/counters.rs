//! Named counters, the MapReduce equivalent of Hadoop's `Counters`.
//!
//! Counters are the measurement backbone of the reproduction: the
//! per-reduce-task `comparisons` counter drives the load-balance
//! figures, and the engine-maintained record counters drive Figure 12
//! (map output size).

use std::collections::BTreeMap;

/// Engine-maintained counter: records consumed by map tasks.
pub const MAP_INPUT_RECORDS: &str = "mr.map.input.records";
/// Engine-maintained counter: key-value pairs emitted by map tasks
/// (after combining, i.e. what is actually shuffled).
pub const MAP_OUTPUT_RECORDS: &str = "mr.map.output.records";
/// Engine-maintained counter: key-value pairs emitted by map tasks
/// before the combiner ran.
pub const MAP_OUTPUT_RECORDS_PRECOMBINE: &str = "mr.map.output.records.precombine";
/// Engine-maintained counter: side-output records written by map tasks.
pub const MAP_SIDE_OUTPUT_RECORDS: &str = "mr.map.side.records";
/// Engine-maintained counter: key-value pairs consumed by reduce tasks.
pub const REDUCE_INPUT_RECORDS: &str = "mr.reduce.input.records";
/// Engine-maintained counter: reduce groups (reduce function calls).
pub const REDUCE_INPUT_GROUPS: &str = "mr.reduce.input.groups";
/// Engine-maintained counter: records emitted by reduce tasks.
pub const REDUCE_OUTPUT_RECORDS: &str = "mr.reduce.output.records";

/// A set of named monotonically increasing counters.
///
/// Counter names are ordinary strings; a `BTreeMap` keeps iteration
/// deterministic, which matters for reproducible reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counts: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counts.get_mut(name) {
            *v += delta;
        } else {
            self.counts.insert(name.to_string(), delta);
        }
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Merges another counter set into this one (summing values).
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, v) in &other.counts {
            self.add(name, *v);
        }
    }

    /// Iterates `(name, value)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = CounterSet::new();
        assert_eq!(c.get("x"), 0);
        c.add("x", 5);
        c.inc("x");
        assert_eq!(c.get("x"), 6);
        assert_eq!(c.get("y"), 0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = CounterSet::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut c = CounterSet::new();
        c.add("zeta", 1);
        c.add("alpha", 2);
        c.add("mid", 3);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn len_and_empty() {
        let mut c = CounterSet::new();
        assert!(c.is_empty());
        c.inc("a");
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
