//! The reduce side of the programming model.

use crate::counters::CounterSet;

/// Information made available to a reduce task at `setup` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceTaskInfo {
    /// Index of this reduce task (`0..r`).
    pub task_index: usize,
    /// Total number of reduce tasks `r`.
    pub num_reduce_tasks: usize,
    /// Total number of map tasks `m` of the job.
    pub num_map_tasks: usize,
}

/// One reduce group: a maximal run of shuffle-sorted key-value pairs
/// whose keys compare equal under the *grouping* comparator.
///
/// Hadoop semantics preserved deliberately: when the grouping
/// comparator is coarser than the sort comparator, the *individual*
/// keys within a group differ, and the framework exposes the current
/// key alongside each value. PairRange (Algorithm 2) depends on this —
/// it groups by (range, block) but needs each value's entity index,
/// which travels in the key. [`Group::iter`] yields `(&K, &V)` pairs.
#[derive(Debug)]
pub struct Group<'a, K, V> {
    entries: &'a [(K, V)],
}

impl<'a, K, V> Group<'a, K, V> {
    pub(crate) fn new(entries: &'a [(K, V)]) -> Self {
        debug_assert!(!entries.is_empty(), "reduce groups are never empty");
        Self { entries }
    }

    /// A standalone group for unit-testing reducers outside a job.
    ///
    /// # Panics
    /// If `entries` is empty (real groups never are).
    pub fn for_testing(entries: &'a [(K, V)]) -> Self {
        assert!(!entries.is_empty(), "reduce groups are never empty");
        Self::new(entries)
    }

    /// The group key — by convention the first key of the run (all keys
    /// of the run compare equal under the grouping comparator).
    pub fn key(&self) -> &K {
        &self.entries[0].0
    }

    /// Iterates `(key, value)` pairs in shuffle-sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a K, &'a V)> + '_ {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates values only, in shuffle-sorted order.
    pub fn values(&self) -> impl Iterator<Item = &'a V> + '_ {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Number of values in the group.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Groups are never empty, but the method exists for completeness.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Output collector handed to [`Reducer::reduce`].
#[derive(Debug)]
pub struct ReduceContext<KO, VO> {
    pub(crate) info: ReduceTaskInfo,
    pub(crate) out: Vec<(KO, VO)>,
    pub(crate) counters: CounterSet,
}

impl<KO, VO> ReduceContext<KO, VO> {
    pub(crate) fn new(info: ReduceTaskInfo) -> Self {
        Self {
            info,
            out: Vec::new(),
            counters: CounterSet::new(),
        }
    }

    /// A standalone context for unit-testing reducers outside a job.
    pub fn for_testing(info: ReduceTaskInfo) -> Self {
        Self::new(info)
    }

    /// Task info (reduce index, `r`, `m`).
    pub fn info(&self) -> ReduceTaskInfo {
        self.info
    }

    /// Emits a final output record.
    pub fn emit(&mut self, key: KO, value: VO) {
        self.out.push((key, value));
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Records emitted so far (read access for tests of custom
    /// reducers).
    pub fn output(&self) -> &[(KO, VO)] {
        &self.out
    }

    /// Counters recorded so far.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }
}

/// A user-defined reduce function.
///
/// One clone of the reducer runs per reduce task; `setup` mirrors the
/// paper's `reduce_configure(m, r)`.
pub trait Reducer: Clone + Send + Sync {
    /// Intermediate key type (must match the mapper's `KOut`).
    type KIn: Clone + Send + Sync;
    /// Intermediate value type (must match the mapper's `VOut`).
    type VIn: Clone + Send + Sync;
    /// Final output key type.
    type KOut: Clone + Send + Sync;
    /// Final output value type.
    type VOut: Clone + Send + Sync;

    /// Called once per task before the first group.
    fn setup(&mut self, _info: &ReduceTaskInfo) {}

    /// Called once per reduce group.
    fn reduce(
        &mut self,
        group: Group<'_, Self::KIn, Self::VIn>,
        ctx: &mut ReduceContext<Self::KOut, Self::VOut>,
    );

    /// Called once per task after the last group.
    fn finish(&mut self, _ctx: &mut ReduceContext<Self::KOut, Self::VOut>) {}
}

/// A reducer that sums `u64` counts per group — the reduce-side twin
/// of [`crate::combiner::sum_u64_combiner`]. Count-style jobs (the
/// paper's BDM job, er-sn's sort-key distribution job) share this one
/// implementation instead of re-deriving it.
#[derive(Debug)]
pub struct SumReducer<K>(std::marker::PhantomData<fn() -> K>);

// Manual impls: `K` only names the key type, so the reducer itself is
// always cloneable/constructible regardless of `K`'s bounds.
impl<K> Clone for SumReducer<K> {
    fn clone(&self) -> Self {
        SumReducer(std::marker::PhantomData)
    }
}

impl<K> Default for SumReducer<K> {
    fn default() -> Self {
        SumReducer(std::marker::PhantomData)
    }
}

impl<K: Clone + Send + Sync> Reducer for SumReducer<K> {
    type KIn = K;
    type VIn = u64;
    type KOut = K;
    type VOut = u64;

    fn reduce(&mut self, group: Group<'_, K, u64>, ctx: &mut ReduceContext<K, u64>) {
        ctx.emit(group.key().clone(), group.values().sum());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_reducer_totals_group_values() {
        let entries = vec![("k", 2u64), ("k", 3), ("k", 5)];
        let mut reducer = SumReducer::<&'static str>::default().clone();
        let mut ctx = ReduceContext::for_testing(ReduceTaskInfo {
            task_index: 0,
            num_reduce_tasks: 1,
            num_map_tasks: 1,
        });
        reducer.reduce(Group::for_testing(&entries), &mut ctx);
        assert_eq!(ctx.output(), &[("k", 10u64)]);
    }

    #[test]
    fn group_exposes_first_key_and_all_values() {
        let entries = vec![(("a", 1), 10), (("a", 2), 20), (("a", 3), 30)];
        let g = Group::new(&entries);
        assert_eq!(g.key(), &("a", 1));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        let vals: Vec<i32> = g.values().copied().collect();
        assert_eq!(vals, vec![10, 20, 30]);
        // Keys within a coarsely grouped run remain observable:
        let seconds: Vec<i32> = g.iter().map(|(k, _)| k.1).collect();
        assert_eq!(seconds, vec![1, 2, 3]);
    }

    #[test]
    fn reduce_context_collects_output_and_counters() {
        let mut ctx: ReduceContext<String, u64> = ReduceContext::new(ReduceTaskInfo {
            task_index: 1,
            num_reduce_tasks: 4,
            num_map_tasks: 2,
        });
        ctx.emit("k".into(), 9);
        ctx.add_counter("comparisons", 3);
        assert_eq!(ctx.out, vec![("k".to_string(), 9)]);
        assert_eq!(ctx.counters.get("comparisons"), 3);
        assert_eq!(ctx.info().task_index, 1);
    }
}
