//! Dependency-free JSON value type with a writer and a strict parser.
//!
//! This module originally lived in `er-bench` (which still re-exports
//! it for source compatibility); it moved into the engine so the
//! [`trace`](crate::trace) JSONL sink can serialize events without
//! inverting the crate dependency direction. The build container has
//! no crates.io access, so both the writer and the parser are
//! hand-rolled.
//!
//! The subset implemented is full JSON minus one deliberate
//! restriction: numbers are `f64` (ints round-trip exactly up to
//! 2⁵³, far beyond any record count or millisecond figure we emit).
//! Non-finite floats serialize as `null`, which keeps the writer total.

use std::fmt;

/// A JSON value. Object member order is preserved (and duplicate keys
/// rejected at parse time), so exports diff cleanly across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs on `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects (`None` on other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    /// Nesting deeper than [`MAX_PARSE_DEPTH`] is rejected with `Err`
    /// rather than overflowing the stack — the CI validator feeds this
    /// arbitrary files and must report malformed input, not abort.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

/// Deepest container nesting [`Json::parse`] accepts; bench exports
/// use ~4 levels, so this is generous while keeping recursion bounded.
pub const MAX_PARSE_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_PARSE_DEPTH {
        return Err(format!("nesting deeper than {MAX_PARSE_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members: Vec<(String, Json)> = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                if members.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate object key `{key}`"));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are rejected rather than paired:
                        // the writer never emits them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("invalid \\u{hex} escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&lead) => {
                // Consume one UTF-8 scalar. The input is &str, so
                // *pos always sits on a char boundary; decode just
                // this character's bytes (its length is encoded in
                // the leading byte) instead of re-validating the
                // whole remaining document per character.
                let len = match lead {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8 sequence")?;
                let c = std::str::from_utf8(chunk)
                    .map_err(|e| e.to_string())?
                    .chars()
                    .next()
                    .expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(format!("raw control character at byte {pos}", pos = *pos));
                }
                out.push(c);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Rust's f64 parser is laxer than RFC 8259 (it accepts `.5`, `5.`,
    // `+5`, `01`, `inf`, …), so validate the token against the JSON
    // number grammar first — the CI guard exists to catch exactly the
    // nonstandard forms other consumers would reject.
    if !is_json_number(text) {
        return Err(format!("invalid number `{text}` at byte {start}"));
    }
    text.parse::<f64>()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

/// RFC 8259 `number` grammar: `-? (0 | [1-9][0-9]*) (\.[0-9]+)?
/// ([eE][+-]?[0-9]+)?`.
fn is_json_number(text: &str) -> bool {
    let b = text.as_bytes();
    let mut i = 0usize;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b'e') | Some(b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+') | Some(b'-')) {
            i += 1;
        }
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Json) -> Json {
        Json::parse(&value.to_string()).expect("writer output must parse")
    }

    #[test]
    fn writer_output_reparses_identically() {
        let value = Json::obj([
            ("name", Json::str("micro_engine")),
            ("wall_ms", Json::Num(12.75)),
            ("records", Json::Num(4096.0)),
            (
                "tasks",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Bool(true)]),
            ),
            ("nested", Json::obj([("ok", Json::Null)])),
        ]);
        assert_eq!(roundtrip(&value), value);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(4096.0).to_string(), "4096");
        assert_eq!(Json::Num(0.6).to_string(), "0.6");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::str("a \"b\"\\\n\tc\u{0007}é");
        let text = s.to_string();
        assert!(text.contains("\\u0007"));
        assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn lookup_helpers() {
        let value = Json::obj([("x", Json::Num(3.0)), ("s", Json::str("y"))]);
        assert_eq!(value.get("x").and_then(Json::as_f64), Some(3.0));
        assert_eq!(value.get("s").and_then(Json::as_str), Some("y"));
        assert!(value.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
        assert_eq!(
            Json::Arr(vec![Json::Num(1.0)]).as_arr().map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"dup\":1,\"dup\":2}",
            "nul",
            "- 5",
            "{\"a\" 1}",
            // RFC 8259 forbids these even though Rust's f64 parser
            // accepts them.
            ".5",
            "5.",
            "+5",
            "01",
            "1e",
            "1e+",
            "-",
            "inf",
            "NaN",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn parser_rejects_pathological_nesting_without_overflowing() {
        let deep = "[".repeat(MAX_PARSE_DEPTH + 10);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting deeper"));
        // At-the-limit nesting still parses.
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parser_accepts_whitespace_and_unicode() {
        let parsed = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u00e9\" ] } ").unwrap();
        assert_eq!(
            parsed,
            Json::obj([(
                "k",
                Json::Arr(vec![Json::Num(1.0), Json::Num(-25.0), Json::str("é")])
            )])
        );
    }
}
