//! Fault-tolerant task execution: retry policies, deterministic fault
//! injection, and straggler speculation.
//!
//! MapReduce's defining operational property is that individual task
//! failures do not kill the job. This module supplies the three pieces
//! the engine threads through every phase:
//!
//! * [`FaultPolicy`] — how many attempts a task gets and whether a
//!   wall-clock deadline triggers speculative re-execution. The policy
//!   rides on [`crate::runtime::RuntimeConfig`] and on every
//!   [`crate::engine::Job`] / [`crate::workflow::Workflow`].
//! * [`FaultPlan`] — a *deterministic* fault-injection schedule: panic
//!   or delay exactly at a `(job, task kind, task index, attempt)`
//!   tuple, so failure scenarios are reproducible in tests and benches
//!   instead of depending on sleeps and races.
//! * [`TaskError`] — the typed identity of an attempt that exhausted
//!   its retry budget, surfaced as
//!   [`MrError::TaskFailed`] —
//!   never as a raw panic.
//!
//! # Why retries are byte-identical
//!
//! Every map task is a pure function of `(job definition, its input
//! partition)`: the engine hands it a borrowed partition, a fresh
//! mapper clone, and a fresh spiller per *attempt*. Every reduce task
//! is a pure function of `(job definition, its shuffled runs)`: an
//! attempt that may be followed by another (retry or speculative twin)
//! leaves the runs in place and streams them *borrowed*, cloning each
//! record only as the merge delivers it; a provably final, sole
//! execution takes ownership and moves records out instead. A
//! re-executed task therefore observes exactly the state its first
//! execution observed, and the engine's determinism contract (output
//! is a pure function of input and job definition at any parallelism)
//! extends to any failure schedule. The fault-matrix suite asserts
//! byte-equality of faulty and fault-free runs across every scenario
//! family.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::{Duration, Instant};

use crate::error::MrError;
use crate::metrics::TaskKind;
use crate::pool::WorkerPool;
use crate::trace::{TaskCtx, TraceEventData, Tracer};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// The fault layer's whole purpose is to contain task panics; every
/// lock on its bookkeeping (and on the pool's dispatch state) must
/// therefore tolerate poison instead of converting a contained panic
/// into an abort-by-double-panic. All values guarded this way are
/// either plain counters or write-once slots whose invariants hold at
/// every instruction boundary, so the "poisoned" state is benign.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_unpoisoned`] for shared `RwLock` reads (reduce attempts
/// borrowing their runs concurrently).
pub(crate) fn read_unpoisoned<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_unpoisoned`] for exclusive `RwLock` writes (a final reduce
/// execution taking its runs).
pub(crate) fn write_unpoisoned<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Which phase of a task a fault belongs to.
///
/// `Map` and `Reduce` match [`TaskKind`]; `Sort` addresses the
/// map-side seal/sort step (the spill-sort that runs at the end of a
/// map task), which Hadoop schedules as part of the map attempt — so a
/// `Sort` fault fails, and is retried as, the surrounding map task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The map function body.
    Map,
    /// The map-side seal/sort of emitted records into sorted runs.
    Sort,
    /// The reduce task body (merge, group, reduce function).
    Reduce,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Map => write!(f, "map"),
            FaultKind::Sort => write!(f, "sort"),
            FaultKind::Reduce => write!(f, "reduce"),
        }
    }
}

impl From<TaskKind> for FaultKind {
    fn from(kind: TaskKind) -> Self {
        match kind {
            TaskKind::Map => FaultKind::Map,
            TaskKind::Reduce => FaultKind::Reduce,
        }
    }
}

/// Per-task fault-tolerance policy: how often a panicking task is
/// re-executed and when a slow task is speculatively re-dispatched.
///
/// The default is **fail-fast** (`max_attempts == 1`, no deadline):
/// the first task panic is converted into a typed
/// [`MrError::TaskFailed`] and ends
/// the job — right for debugging (the original failure site is not
/// obscured by retries) and for callers that treat any failure as
/// fatal anyway. Panics are caught at the task boundary in *every*
/// mode; no policy lets a task panic unwind out of a resolve.
///
/// With [`FaultPolicy::retry`] a failed task is deterministically
/// re-executed (tasks are pure over their inputs, so a retried task's
/// output is byte-identical — see the module docs) until it succeeds
/// or `max_attempts` executions have failed.
///
/// With a [`FaultPolicy::with_task_deadline`] deadline, a task running
/// longer than the deadline is additionally re-dispatched
/// *speculatively* on a free pool slot while the original keeps
/// running; the first completion wins (pure tasks make the race
/// benign) and the loser's output is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Maximum executions per task, counting the first (`>= 1`). A
    /// task whose every execution panicked `max_attempts` times fails
    /// the job with [`MrError::TaskFailed`](crate::error::MrError).
    pub max_attempts: u32,
    /// Wall-clock deadline per task attempt; exceeding it launches one
    /// speculative twin of the task on a free pool slot (`None`, the
    /// default, never speculates).
    pub task_deadline: Option<Duration>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self::fail_fast()
    }
}

impl FaultPolicy {
    /// The default policy: one attempt, no deadline — the first task
    /// panic fails the job (as a typed error, not a panic).
    pub fn fail_fast() -> Self {
        Self {
            max_attempts: 1,
            task_deadline: None,
        }
    }

    /// Allows up to `max_attempts` executions per task.
    ///
    /// # Panics
    /// If `max_attempts` is zero — the first execution is an attempt.
    pub fn retry(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "a task needs at least one attempt");
        Self {
            max_attempts,
            task_deadline: None,
        }
    }

    /// Sets the per-attempt wall-clock deadline that triggers
    /// speculative re-execution; `None` disables speculation.
    #[must_use]
    pub fn with_task_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.task_deadline = deadline;
        self
    }
}

/// The typed identity of a task that exhausted its retry budget —
/// carried by [`MrError::TaskFailed`](crate::error::MrError) so a
/// failed resolve is diagnosable from its `Display` alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Name of the failing job.
    pub job: String,
    /// `workflow/stage` path, filled in by the workflow layer (`None`
    /// for jobs run outside a workflow).
    pub stage: Option<String>,
    /// Which phase of the task failed.
    pub kind: FaultKind,
    /// Task index within its phase.
    pub task: usize,
    /// Failed executions when the budget ran out (== the policy's
    /// `max_attempts`).
    pub attempts: u32,
    /// The panic payload, stringified.
    pub payload: String,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} task {} of job `{}`", self.kind, self.task, self.job)?;
        if let Some(stage) = &self.stage {
            write!(f, " (stage `{stage}`)")?;
        }
        write!(
            f,
            " failed after {} attempt{}: {}",
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.payload
        )
    }
}

/// What an [`InjectedFault`] does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with the given message (caught at the task boundary like
    /// any real task panic).
    Panic(String),
    /// Sleep for the given duration before the task body runs — the
    /// deterministic straggler.
    Delay(Duration),
}

/// One entry of a [`FaultPlan`]: fire `action` when the task matching
/// `(job, kind, task, attempt)` executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Job name to match, or [`FaultPlan::ANY_JOB`] for every job.
    pub job: String,
    /// Task phase to match.
    pub kind: FaultKind,
    /// Task index to match.
    pub task: usize,
    /// Attempt number to match (1-based); `None` fires on *every*
    /// attempt — the "fail always" schedule.
    pub attempt: Option<u32>,
    /// What happens on a match.
    pub action: FaultAction,
}

/// A deterministic fault-injection schedule, threaded through
/// [`Job`](crate::engine::Job) / [`Workflow`](crate::workflow::Workflow)
/// and the driver configs behind a test/bench-facing hook.
///
/// Injection sites are addressed by `(job, task kind, task index,
/// attempt)`, so a schedule reproduces the same failures on every run
/// regardless of thread interleaving. An empty plan (the default)
/// injects nothing and costs one slice iteration per probe.
///
/// ```
/// use mr_engine::fault::{FaultPlan, FaultKind};
///
/// // Map task 0 of every job panics on its first attempt only; with
/// // FaultPolicy::retry(2) the second attempt succeeds and the job
/// // output is byte-identical to the fault-free run.
/// let plan = FaultPlan::new()
///     .panic_at(FaultPlan::ANY_JOB, FaultKind::Map, 0, 1, "injected");
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<InjectedFault>,
    /// Explicit opt-in for the process-wide stderr filter on injected
    /// panics; off by default so library callers never get a panic
    /// hook installed as a side effect.
    silence_panic_output: bool,
}

impl FaultPlan {
    /// Wildcard job name: matches every job of the workflow.
    pub const ANY_JOB: &'static str = "*";

    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan contains no injections.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of injection entries.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Adds an arbitrary injection entry.
    #[must_use]
    pub fn with(mut self, fault: InjectedFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Suppresses the default "thread panicked" stderr report for
    /// panics *injected by this plan* (real task panics still reach
    /// the hook chain unchanged).
    ///
    /// This installs a permanent, process-wide filtering panic hook
    /// the first time an injected panic fires, chaining to whatever
    /// hook is current at that moment — so it is an explicit opt-in
    /// for test and bench code that owns the process's panic hook.
    /// Library callers should leave it off (the default).
    #[must_use]
    pub fn silence_injected_panics(mut self) -> Self {
        self.silence_panic_output = true;
        self
    }

    /// Panics at `(job, kind, task)` on the given 1-based `attempt`
    /// only — subsequent attempts run clean ("fail once" at attempt 1).
    #[must_use]
    pub fn panic_at(
        self,
        job: impl Into<String>,
        kind: FaultKind,
        task: usize,
        attempt: u32,
        message: impl Into<String>,
    ) -> Self {
        self.with(InjectedFault {
            job: job.into(),
            kind,
            task,
            attempt: Some(attempt),
            action: FaultAction::Panic(message.into()),
        })
    }

    /// Panics at `(job, kind, task)` on **every** attempt — the "fail
    /// always" schedule that exhausts any retry budget.
    #[must_use]
    pub fn panic_always(
        self,
        job: impl Into<String>,
        kind: FaultKind,
        task: usize,
        message: impl Into<String>,
    ) -> Self {
        self.with(InjectedFault {
            job: job.into(),
            kind,
            task,
            attempt: None,
            action: FaultAction::Panic(message.into()),
        })
    }

    /// Delays `(job, kind, task)` by `delay` on the given 1-based
    /// `attempt` — the deterministic straggler that drives a task past
    /// its [`FaultPolicy::task_deadline`].
    #[must_use]
    pub fn delay_at(
        self,
        job: impl Into<String>,
        kind: FaultKind,
        task: usize,
        attempt: u32,
        delay: Duration,
    ) -> Self {
        self.with(InjectedFault {
            job: job.into(),
            kind,
            task,
            attempt: Some(attempt),
            action: FaultAction::Delay(delay),
        })
    }

    /// Executes every matching injection for this probe site. Called
    /// by the engine at the start of each map/reduce attempt and just
    /// before the map-side seal/sort.
    pub(crate) fn fire(&self, job: &str, kind: FaultKind, task: usize, attempt: u32) {
        for fault in &self.faults {
            if fault.kind != kind || fault.task != task {
                continue;
            }
            if fault.attempt.is_some_and(|a| a != attempt) {
                continue;
            }
            if fault.job != Self::ANY_JOB && fault.job != job {
                continue;
            }
            match &fault.action {
                FaultAction::Delay(delay) => std::thread::sleep(*delay),
                FaultAction::Panic(message) => {
                    if self.silence_panic_output {
                        silence_injected_panic_output();
                    }
                    std::panic::panic_any(InjectedPanic {
                        kind,
                        message: message.clone(),
                    });
                }
            }
        }
    }
}

/// Panic payload of an injected [`FaultAction::Panic`]: carries the
/// fault kind so the catch site attributes a map-side `Sort` fault
/// correctly, and is recognized by the filtering panic hook (opt-in
/// via [`FaultPlan::silence_injected_panics`]) so injected panics do
/// not spam stderr in tests and benches.
struct InjectedPanic {
    kind: FaultKind,
    message: String,
}

/// Installs (once) a panic hook that suppresses the default "thread
/// panicked" report for [`InjectedPanic`] payloads only; every real
/// panic still reaches the previous hook. Only called when a plan
/// explicitly opted in via [`FaultPlan::silence_injected_panics`].
fn silence_injected_panic_output() {
    static SILENCE: std::sync::Once = std::sync::Once::new();
    SILENCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Stringifies a caught panic payload and resolves the fault kind it
/// belongs to (an injected panic knows its own site; a real panic is
/// attributed to the catching phase).
fn describe_panic(
    payload: Box<dyn std::any::Any + Send + 'static>,
    phase_kind: FaultKind,
) -> (FaultKind, String) {
    match payload.downcast::<InjectedPanic>() {
        Ok(injected) => (injected.kind, injected.message),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "task panicked with a non-string payload".to_string());
            (phase_kind, message)
        }
    }
}

/// Per-job fault gauges, accumulated across both phases and rolled
/// into [`JobMetrics`](crate::metrics::JobMetrics) at job end.
#[derive(Debug, Default)]
pub(crate) struct FtStats {
    pub task_failures: AtomicU64,
    pub tasks_retried: AtomicU64,
    pub speculative_launched: AtomicU64,
    pub speculative_won: AtomicU64,
}

/// Shared attempt bookkeeping for one task: every execution — retry or
/// speculative twin — draws the next global attempt number
/// (Hadoop-style attempt ids), and the retry budget counts *failures*,
/// shared between the original and its speculative twin.
pub(crate) struct TaskAttemptState {
    attempts: AtomicU32,
    failures: AtomicU32,
}

/// Attempt state for every task of one phase.
pub(crate) struct TaskAttempts(Vec<TaskAttemptState>);

impl TaskAttempts {
    pub fn new(count: usize) -> Self {
        Self(
            (0..count)
                .map(|_| TaskAttemptState {
                    attempts: AtomicU32::new(0),
                    failures: AtomicU32::new(0),
                })
                .collect(),
        )
    }

    pub fn task(&self, index: usize) -> &TaskAttemptState {
        &self.0[index]
    }
}

/// One phase's view of the fault machinery: the policy in force, the
/// job identity for error reporting, the shared gauge sink, and the
/// trace handle attempt events are emitted on.
pub(crate) struct PhaseFt<'a> {
    pub policy: FaultPolicy,
    pub job: &'a str,
    pub kind: FaultKind,
    pub stats: &'a FtStats,
    pub tracer: Tracer,
}

impl PhaseFt<'_> {
    /// Runs one task under the policy: executes `body(attempt)` inside
    /// a panic boundary, retrying until success or the shared failure
    /// budget is exhausted. Never panics on a task panic; returns the
    /// typed [`MrError::TaskFailed`] instead. Non-panic errors
    /// (configuration problems) are not retried — they are
    /// deterministic and would fail identically again.
    ///
    /// Attempt lifecycle events are emitted at exactly the same sites
    /// as the `FtStats` gauges, so per-category event counts and the
    /// gauges can never disagree. With tracing off every extra site is
    /// one branch — no clock reads, no allocation.
    pub fn run_task<T>(
        &self,
        task: usize,
        state: &TaskAttemptState,
        ctx: TaskCtx,
        body: impl Fn(u32) -> Result<T, MrError>,
    ) -> Result<T, MrError> {
        let tracing = self.tracer.is_on();
        if tracing {
            self.tracer.emit(
                Some(ctx.slot),
                TraceEventData::QueueWaited {
                    job: self.job.to_string(),
                    kind: self.kind,
                    task,
                    wait: ctx.queue_wait,
                },
            );
        }
        loop {
            let attempt = state.attempts.fetch_add(1, Ordering::Relaxed) + 1;
            if tracing {
                self.tracer.emit(
                    Some(ctx.slot),
                    TraceEventData::AttemptStarted {
                        job: self.job.to_string(),
                        kind: self.kind,
                        task,
                        attempt,
                    },
                );
            }
            let started = tracing.then(Instant::now);
            match catch_unwind(AssertUnwindSafe(|| body(attempt))) {
                Ok(result) => {
                    if let Some(started) = started {
                        self.tracer.emit(
                            Some(ctx.slot),
                            TraceEventData::AttemptFinished {
                                job: self.job.to_string(),
                                kind: self.kind,
                                task,
                                attempt,
                                wall: started.elapsed(),
                            },
                        );
                    }
                    return result;
                }
                Err(payload) => {
                    self.stats.task_failures.fetch_add(1, Ordering::Relaxed);
                    let failures = state.failures.fetch_add(1, Ordering::Relaxed) + 1;
                    let (kind, message) = describe_panic(payload, self.kind);
                    if tracing {
                        self.tracer.emit(
                            Some(ctx.slot),
                            TraceEventData::AttemptFailed {
                                job: self.job.to_string(),
                                kind,
                                task,
                                attempt,
                                message: message.clone(),
                            },
                        );
                    }
                    if failures >= self.policy.max_attempts {
                        return Err(MrError::TaskFailed(TaskError {
                            job: self.job.to_string(),
                            stage: None,
                            kind,
                            task,
                            attempts: failures,
                            payload: message,
                        }));
                    }
                    self.stats.tasks_retried.fetch_add(1, Ordering::Relaxed);
                    if tracing {
                        self.tracer.emit(
                            Some(ctx.slot),
                            TraceEventData::AttemptRetried {
                                job: self.job.to_string(),
                                kind: self.kind,
                                task,
                                next_attempt: attempt + 1,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Per-task completion state for the speculative dispatcher.
struct SpecSlot<T> {
    /// First writer wins; the losing twin's result is dropped.
    result: Mutex<Option<Result<T, MrError>>>,
    done: AtomicBool,
    /// When the task's current attempt started (re-armed at every
    /// attempt boundary) — the watchdog's reference point for the
    /// per-attempt deadline.
    started: Mutex<Option<Instant>>,
    /// Set once when the watchdog decides to speculate, so each task
    /// gets at most one twin.
    speculated: AtomicBool,
}

/// Decrements the dispatcher's pending count exactly once, even if a
/// loop body dies on a panic the task boundary could not contain — the
/// borrow fence below must never hang.
struct PendingGuard<'a> {
    pending: &'a Mutex<usize>,
    done: &'a Condvar,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut pending = lock_unpoisoned(self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Runs `count` tasks on `pool` under a straggler deadline: tasks
/// running past `deadline` are re-dispatched speculatively on free
/// pool slots, first completion wins. Results are in task order and
/// byte-identical to plain execution — tasks are pure, so the twin
/// computes the same value and only bookkeeping decides which copy is
/// kept.
///
/// The calling thread doubles as the straggler watchdog while it
/// blocks on the borrow fence (all loop bodies returned).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_speculative<T, F>(
    pool: &WorkerPool,
    cap: usize,
    count: usize,
    deadline: Duration,
    tenant: Option<&Arc<str>>,
    phase: &PhaseFt<'_>,
    attempts: &TaskAttempts,
    body: &F,
) -> Vec<Result<T, MrError>>
where
    T: Send,
    F: Fn(usize, u32, TaskCtx) -> Result<T, MrError> + Sync,
{
    // Inline execution (single-slot pool, cap 1, or a single task) has
    // no free slots to speculate on: run sequentially like the plain
    // path so output and thread behavior stay identical.
    if pool.worker_count() == 0 || cap <= 1 || count == 1 {
        return (0..count)
            .map(|i| {
                let ctx = TaskCtx::default();
                phase.run_task(i, attempts.task(i), ctx, |a| body(i, a, ctx))
            })
            .collect();
    }
    let loops = cap.min(pool.worker_count()).min(count);
    let slots: Vec<SpecSlot<T>> = (0..count)
        .map(|_| SpecSlot {
            result: Mutex::new(None),
            done: AtomicBool::new(false),
            started: Mutex::new(None),
            speculated: AtomicBool::new(false),
        })
        .collect();
    // Work items: (task index, is speculative twin, enqueue instant —
    // the reference point for the item's queue wait). Primaries are
    // enqueued up front in task order; the watchdog appends twins.
    let enqueued = Instant::now();
    let queue: Mutex<VecDeque<(usize, bool, Instant)>> =
        Mutex::new((0..count).map(|i| (i, false, enqueued)).collect());
    let queue_ready = Condvar::new();
    let completed = AtomicUsize::new(0);
    let pending = Mutex::new(loops);
    let all_returned = Condvar::new();
    // The enqueued loop bodies are `copies` of one identical closure;
    // each copy draws its own slot id here so trace events can tell
    // the lanes apart.
    let next_slot = AtomicUsize::new(0);
    phase
        .tracer
        .emit_with(None, || TraceEventData::TasksEnqueued {
            tasks: count,
            queue_depth: count,
        });

    let loop_body = || {
        let worker_slot = next_slot.fetch_add(1, Ordering::Relaxed);
        phase
            .tracer
            .emit_with(Some(worker_slot), || TraceEventData::SlotAcquired {
                tenant: tenant.map(|t| t.to_string()),
            });
        let _guard = PendingGuard {
            pending: &pending,
            done: &all_returned,
        };
        loop {
            let item = {
                let mut q = lock_unpoisoned(&queue);
                loop {
                    if completed.load(Ordering::Acquire) >= count {
                        break None;
                    }
                    if let Some(item) = q.pop_front() {
                        break Some(item);
                    }
                    q = queue_ready.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some((i, speculative, item_enqueued)) = item else {
                phase
                    .tracer
                    .emit(Some(worker_slot), TraceEventData::SlotReleased);
                return;
            };
            let slot = &slots[i];
            if slot.done.load(Ordering::Acquire) {
                continue; // a twin whose primary already finished (never ran)
            }
            let ctx = TaskCtx {
                slot: worker_slot,
                queue_wait: item_enqueued.elapsed(),
            };
            // Each attempt re-arms the deadline clock: the policy's
            // deadline is per *attempt*, so a retry is measured from
            // its own start, not the first attempt's. A twin re-arming
            // the clock is harmless — `speculated` is one-shot.
            let result = phase.run_task(i, attempts.task(i), ctx, |a| {
                *lock_unpoisoned(&slot.started) = Some(Instant::now());
                body(i, a, ctx)
            });
            let mut cell = lock_unpoisoned(&slot.result);
            if cell.is_none() {
                *cell = Some(result);
                drop(cell);
                slot.done.store(true, Ordering::Release);
                if speculative {
                    phase.stats.speculative_won.fetch_add(1, Ordering::Relaxed);
                    phase
                        .tracer
                        .emit_with(Some(worker_slot), || TraceEventData::SpeculativeWon {
                            job: phase.job.to_string(),
                            kind: phase.kind,
                            task: i,
                            twin: true,
                        });
                }
                if completed.fetch_add(1, Ordering::AcqRel) + 1 >= count {
                    // Wake loop bodies parked on an empty queue. The
                    // notify is bracketed by the queue mutex: a waiter
                    // holds it between its `completed` check and its
                    // park, so acquiring (and releasing) it here
                    // orders this completion after any stale check —
                    // the wakeup cannot be lost.
                    drop(lock_unpoisoned(&queue));
                    queue_ready.notify_all();
                }
            } else {
                // The sibling copy already installed a result — this
                // copy ran to completion and lost the race.
                drop(cell);
                phase
                    .tracer
                    .emit_with(Some(worker_slot), || TraceEventData::SpeculativeLost {
                        job: phase.job.to_string(),
                        kind: phase.kind,
                        task: i,
                        twin: speculative,
                    });
            }
        }
    };

    // SAFETY: the enqueued loop bodies borrow `slots`, `queue`,
    // `completed`, `pending`, `phase`, `attempts` and `body` from this
    // stack frame. The frame is not torn down until the fence below
    // observed `pending == 0`, i.e. every copy has fully returned —
    // guaranteed even on an uncontained panic by `PendingGuard`.
    unsafe {
        pool.enqueue_fenced(loops, &loop_body);
    }

    // Borrow fence + straggler watchdog: while waiting for the loop
    // bodies to drain, periodically scan for tasks past their deadline
    // and enqueue one speculative twin each.
    let tick = (deadline / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    let mut left = lock_unpoisoned(&pending);
    while *left > 0 {
        let (guard, _) = all_returned
            .wait_timeout(left, tick)
            .unwrap_or_else(PoisonError::into_inner);
        left = guard;
        if *left == 0 {
            break;
        }
        let now = Instant::now();
        for (index, slot) in slots.iter().enumerate() {
            if slot.done.load(Ordering::Acquire) {
                continue;
            }
            let Some(started) = *lock_unpoisoned(&slot.started) else {
                continue; // not yet picked up — cannot be a straggler
            };
            if now.duration_since(started) >= deadline
                && !slot.speculated.swap(true, Ordering::AcqRel)
            {
                phase
                    .stats
                    .speculative_launched
                    .fetch_add(1, Ordering::Relaxed);
                phase
                    .tracer
                    .emit_with(None, || TraceEventData::SpeculativeLaunched {
                        job: phase.job.to_string(),
                        kind: phase.kind,
                        task: index,
                    });
                lock_unpoisoned(&queue).push_back((index, true, Instant::now()));
                queue_ready.notify_all();
            }
        }
    }
    drop(left);

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.result
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_fast_is_the_default_policy() {
        let policy = FaultPolicy::default();
        assert_eq!(policy, FaultPolicy::fail_fast());
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(policy.task_deadline, None);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = FaultPolicy::retry(0);
    }

    #[test]
    fn plan_matches_job_kind_task_and_attempt() {
        let plan = FaultPlan::new().silence_injected_panics().panic_at(
            "bdm",
            FaultKind::Map,
            2,
            1,
            "boom",
        );
        // Wrong job / kind / task / attempt: no fire.
        plan.fire("other", FaultKind::Map, 2, 1);
        plan.fire("bdm", FaultKind::Reduce, 2, 1);
        plan.fire("bdm", FaultKind::Map, 1, 1);
        plan.fire("bdm", FaultKind::Map, 2, 2);
        // Exact match panics with the injected payload.
        let err = catch_unwind(AssertUnwindSafe(|| plan.fire("bdm", FaultKind::Map, 2, 1)))
            .expect_err("exact match must fire");
        let injected = err
            .downcast_ref::<InjectedPanic>()
            .expect("injected payload");
        assert_eq!(injected.kind, FaultKind::Map);
        assert_eq!(injected.message, "boom");
    }

    #[test]
    fn wildcard_job_and_every_attempt_match() {
        let plan = FaultPlan::new().silence_injected_panics().panic_always(
            FaultPlan::ANY_JOB,
            FaultKind::Sort,
            0,
            "always",
        );
        for attempt in 1..4 {
            for job in ["a", "b"] {
                let err = catch_unwind(AssertUnwindSafe(|| {
                    plan.fire(job, FaultKind::Sort, 0, attempt)
                }))
                .expect_err("wildcard must fire on every job and attempt");
                assert!(err.downcast_ref::<InjectedPanic>().is_some());
            }
        }
    }

    #[test]
    fn delay_entries_sleep_instead_of_panicking() {
        let plan = FaultPlan::new().delay_at(
            FaultPlan::ANY_JOB,
            FaultKind::Map,
            0,
            1,
            Duration::from_millis(15),
        );
        let start = Instant::now();
        plan.fire("j", FaultKind::Map, 0, 1);
        assert!(start.elapsed() >= Duration::from_millis(15));
        // Other attempts are unaffected.
        let start = Instant::now();
        plan.fire("j", FaultKind::Map, 0, 2);
        assert!(start.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn run_task_retries_until_success_and_counts_every_failure() {
        let stats = FtStats::default();
        let phase = PhaseFt {
            policy: FaultPolicy::retry(3),
            job: "j",
            kind: FaultKind::Map,
            stats: &stats,
            tracer: Tracer::off(),
        };
        let attempts = TaskAttempts::new(1);
        let out = phase.run_task(0, attempts.task(0), TaskCtx::default(), |attempt| {
            if attempt < 3 {
                panic!("attempt {attempt} dies");
            }
            Ok(attempt)
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(stats.task_failures.load(Ordering::Relaxed), 2);
        assert_eq!(stats.tasks_retried.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_task_exhausts_into_typed_error() {
        let stats = FtStats::default();
        let phase = PhaseFt {
            policy: FaultPolicy::retry(2),
            job: "j",
            kind: FaultKind::Reduce,
            stats: &stats,
            tracer: Tracer::off(),
        };
        let attempts = TaskAttempts::new(1);
        let err = phase
            .run_task::<()>(0, attempts.task(0), TaskCtx::default(), |_| {
                panic!("always dies")
            })
            .unwrap_err();
        let MrError::TaskFailed(task_error) = err else {
            panic!("expected TaskFailed, got {err:?}");
        };
        assert_eq!(task_error.job, "j");
        assert_eq!(task_error.kind, FaultKind::Reduce);
        assert_eq!(task_error.task, 0);
        assert_eq!(task_error.attempts, 2);
        assert_eq!(task_error.payload, "always dies");
        assert_eq!(stats.task_failures.load(Ordering::Relaxed), 2);
        assert_eq!(stats.tasks_retried.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_task_does_not_retry_deterministic_errors() {
        let stats = FtStats::default();
        let phase = PhaseFt {
            policy: FaultPolicy::retry(5),
            job: "j",
            kind: FaultKind::Map,
            stats: &stats,
            tracer: Tracer::off(),
        };
        let attempts = TaskAttempts::new(1);
        let calls = AtomicU32::new(0);
        let err = phase
            .run_task::<()>(0, attempts.task(0), TaskCtx::default(), |_| {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(MrError::NoReduceTasks)
            })
            .unwrap_err();
        assert_eq!(err, MrError::NoReduceTasks);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "config errors never retry"
        );
        assert_eq!(stats.task_failures.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn injected_sort_panic_keeps_its_kind_through_a_map_boundary() {
        let stats = FtStats::default();
        let phase = PhaseFt {
            policy: FaultPolicy::fail_fast(),
            job: "j",
            kind: FaultKind::Map,
            stats: &stats,
            tracer: Tracer::off(),
        };
        let plan = FaultPlan::new().silence_injected_panics().panic_always(
            "j",
            FaultKind::Sort,
            0,
            "seal died",
        );
        let attempts = TaskAttempts::new(1);
        let err = phase
            .run_task::<()>(0, attempts.task(0), TaskCtx::default(), |attempt| {
                plan.fire("j", FaultKind::Sort, 0, attempt);
                unreachable!("the injection fires first");
            })
            .unwrap_err();
        let MrError::TaskFailed(task_error) = err else {
            panic!("expected TaskFailed");
        };
        assert_eq!(task_error.kind, FaultKind::Sort);
        assert_eq!(task_error.payload, "seal died");
    }

    #[test]
    fn speculative_twin_wins_over_a_delayed_straggler() {
        let pool = WorkerPool::new(4);
        let stats = FtStats::default();
        let phase = PhaseFt {
            policy: FaultPolicy::retry(2).with_task_deadline(Some(Duration::from_millis(25))),
            job: "j",
            kind: FaultKind::Map,
            stats: &stats,
            tracer: Tracer::off(),
        };
        let attempts = TaskAttempts::new(3);
        let out = run_speculative(
            &pool,
            usize::MAX,
            3,
            Duration::from_millis(25),
            None,
            &phase,
            &attempts,
            &|i, attempt, _ctx| {
                if i == 1 && attempt == 1 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(i * 10)
            },
        );
        let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![0, 10, 20]);
        assert_eq!(stats.speculative_launched.load(Ordering::Relaxed), 1);
        assert_eq!(
            stats.speculative_won.load(Ordering::Relaxed),
            1,
            "the twin (attempt 2, no delay) must beat the 400ms straggler"
        );
        assert_eq!(stats.task_failures.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn speculative_dispatcher_drains_under_racy_completions() {
        // Tasks that finish almost instantly maximize the window where
        // the final completion lands between a worker's `completed`
        // check and its park on the queue condvar — the lost-wakeup
        // shape. Many rounds on one pool must all drain.
        let pool = WorkerPool::new(4);
        let stats = FtStats::default();
        let phase = PhaseFt {
            policy: FaultPolicy::fail_fast().with_task_deadline(Some(Duration::from_millis(5))),
            job: "j",
            kind: FaultKind::Map,
            stats: &stats,
            tracer: Tracer::off(),
        };
        for round in 0..50 {
            let attempts = TaskAttempts::new(8);
            let out = run_speculative(
                &pool,
                usize::MAX,
                8,
                Duration::from_millis(5),
                None,
                &phase,
                &attempts,
                &|i, _, _| Ok(i + round),
            );
            assert_eq!(
                out.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
                (round..8 + round).collect::<Vec<_>>(),
                "round {round} lost a task"
            );
        }
    }

    #[test]
    fn speculation_degrades_to_sequential_without_free_slots() {
        let pool = WorkerPool::new(1);
        let stats = FtStats::default();
        let phase = PhaseFt {
            policy: FaultPolicy::fail_fast().with_task_deadline(Some(Duration::from_millis(1))),
            job: "j",
            kind: FaultKind::Reduce,
            stats: &stats,
            tracer: Tracer::off(),
        };
        let attempts = TaskAttempts::new(4);
        let out = run_speculative(
            &pool,
            usize::MAX,
            4,
            Duration::from_millis(1),
            None,
            &phase,
            &attempts,
            &|i, _, _| Ok(i),
        );
        assert_eq!(
            out.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(pool.threads_spawned(), 0);
        assert_eq!(stats.speculative_launched.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn task_error_display_names_the_full_identity() {
        let err = TaskError {
            job: "match".into(),
            stage: Some("er-BlockSplit/match".into()),
            kind: FaultKind::Reduce,
            task: 3,
            attempts: 2,
            payload: "boom".into(),
        };
        let text = err.to_string();
        assert!(text.contains("reduce task 3"));
        assert!(text.contains("job `match`"));
        assert!(text.contains("stage `er-BlockSplit/match`"));
        assert!(text.contains("2 attempts"));
        assert!(text.contains("boom"));
    }
}
